"""Unit tests for instrumentation probes."""

import pytest

from repro.core import (
    AccessTraceRecorder,
    CacheProbe,
    Instrument,
    MultiInstrument,
    NULL_INSTRUMENT,
    NestedRecursionSpec,
    OpCounter,
    ReuseDistanceProbe,
    WorkCallback,
    WorkRecorder,
    combine,
    run_original,
)
from repro.memory import AddressMap, layout_tree, tiny_hierarchy
from repro.spaces import balanced_tree


@pytest.fixture
def spec():
    return NestedRecursionSpec(balanced_tree(7), balanced_tree(7))


class TestNullInstrument:
    def test_all_hooks_are_noops(self):
        NULL_INSTRUMENT.op("call")
        NULL_INSTRUMENT.access("outer", balanced_tree(1))
        NULL_INSTRUMENT.work(balanced_tree(1), balanced_tree(1))


class TestOpCounter:
    def test_counts_by_kind(self, spec):
        ops = OpCounter()
        run_original(spec, instrument=ops)
        assert ops.work_points == 49
        assert ops.accesses == 98
        assert ops.counts["trunc_check"] > 0


class TestRecorders:
    def test_work_recorder_labels(self, spec):
        recorder = WorkRecorder()
        run_original(spec, instrument=recorder)
        assert len(recorder.points) == 49
        assert recorder.points[0] == (0, 0)  # balanced_tree labels

    def test_access_trace_keys(self, spec):
        trace = AccessTraceRecorder()
        run_original(spec, instrument=trace)
        assert len(trace.trace) == 98
        trees = {tree for tree, _number in trace.trace}
        assert trees == {"outer", "inner"}

    def test_work_callback(self, spec):
        seen = []
        run_original(spec, instrument=WorkCallback(lambda o, i: seen.append(1)))
        assert len(seen) == 49


class TestReuseProbe:
    def test_streams_into_analyzer(self, spec):
        probe = ReuseDistanceProbe()
        run_original(spec, instrument=probe)
        assert probe.analyzer.num_accesses == 98
        # 14 distinct nodes -> 14 cold accesses
        assert probe.analyzer.cold_accesses == 14


class TestCacheProbe:
    def test_expands_nodes_to_lines(self, spec):
        amap = AddressMap()
        layout_tree(amap, spec.outer_root, "outer", lines_per_node=2)
        layout_tree(amap, spec.inner_root, "inner", lines_per_node=2)
        probe = CacheProbe(amap, tiny_hierarchy())
        run_original(spec, instrument=probe)
        assert probe.accesses == 98 * 2
        assert sum(probe.level_hits) == probe.accesses
        assert probe.memory_accesses >= 14  # at least the cold lines

    def test_level_hits_shape(self, spec):
        amap = AddressMap()
        layout_tree(amap, spec.outer_root, "outer")
        layout_tree(amap, spec.inner_root, "inner")
        probe = CacheProbe(amap, tiny_hierarchy())
        run_original(spec, instrument=probe)
        assert len(probe.cache_level_hits) == 3


class TestComposition:
    def test_combine_drops_none(self):
        ops = OpCounter()
        assert combine(None, ops) is ops
        assert combine(None, None) is NULL_INSTRUMENT
        assert isinstance(combine(OpCounter(), OpCounter()), MultiInstrument)

    def test_multi_broadcasts_everything(self, spec):
        a, b = OpCounter(), OpCounter()
        run_original(spec, instrument=MultiInstrument([a, b]))
        assert a.counts == b.counts
        assert a.work_points == b.work_points == 49

    def test_custom_instrument_subclass(self, spec):
        class OnlyWork(Instrument):
            def __init__(self):
                self.count = 0

            def work(self, o, i):
                self.count += 1

        probe = OnlyWork()
        run_original(spec, instrument=probe)
        assert probe.count == 49

"""Unit tests for guard/child purity and adaptive-truncation checks."""

from repro.transform import recognize
from repro.transform.lint.diagnostics import DiagnosticSink
from repro.transform.lint.footprints import analyze_work
from repro.transform.lint.purity import (
    check_adaptive_truncation,
    check_child_purity,
    check_guard_purity,
)


def make_template(guard="i is None", work="o.data = o.data + i.data",
                  inner_child="i.left"):
    source = f'''
def outer(o, i):
    if o is None:
        return
    inner(o, i)
    outer(o.left, i)
    outer(o.right, i)

def inner(o, i):
    if {guard}:
        return
    {work}
    inner(o, {inner_child})
    inner(o, i.right)
'''
    return recognize(source, "outer", "inner")


def run_checks(template, assume_pure=()):
    sink = DiagnosticSink()
    work = analyze_work(template, sink, assume_pure)
    guard_reads = check_guard_purity(template, sink, assume_pure)
    check_child_purity(template, sink, assume_pure)
    adaptive = check_adaptive_truncation(template, guard_reads, work, sink)
    return sink, adaptive


def codes(sink):
    return {d.code for d in sink.diagnostics}


class TestGuardPurity:
    def test_pure_guard_is_silent(self):
        sink, adaptive = run_checks(make_template("i is None or i.data > 0"))
        assert codes(sink) == set()
        assert not adaptive

    def test_unknown_call_in_guard_is_tw021(self):
        sink, _ = run_checks(make_template("i is None or prune(o, i)"))
        assert "TW021" in codes(sink)
        (diag,) = [d for d in sink.diagnostics if d.code == "TW021"]
        assert "prune" in diag.message

    def test_assume_pure_clears_guard_call(self):
        sink, _ = run_checks(
            make_template("i is None or prune(o, i)"), assume_pure={"prune"}
        )
        assert codes(sink) == set()

    def test_mutating_guard_is_tw020(self):
        sink, _ = run_checks(make_template("i is None or i.visits.append(1)"))
        assert "TW020" in codes(sink)

    def test_guard_reads_include_both_guards(self):
        template = make_template("i is None or i.data > o.reach")
        sink = DiagnosticSink()
        reads = check_guard_purity(template, sink)
        displays = {r.path.display for r in reads.reads}
        assert "i.data" in displays
        assert "o.reach" in displays


class TestChildPurity:
    def test_pure_child_expressions_silent(self):
        sink, _ = run_checks(make_template())
        assert codes(sink) == set()

    def test_unknown_call_in_child_is_tw021(self):
        sink, _ = run_checks(make_template(inner_child="next_node(i)"))
        assert "TW021" in codes(sink)

    def test_mutating_child_is_tw022(self):
        sink, _ = run_checks(make_template(inner_child="i.queue.pop()"))
        assert "TW022" in codes(sink)


class TestAdaptiveTruncation:
    def test_guard_reading_work_written_field_is_adaptive(self):
        sink, adaptive = run_checks(
            make_template(
                guard="i is None or i.data > o.best",
                work="o.best = min(o.best, i.data)",
            )
        )
        assert adaptive
        assert "TW023" in codes(sink)
        (diag,) = [d for d in sink.diagnostics if d.code == "TW023"]
        assert "o.best" in diag.message

    def test_guard_reading_untouched_field_is_not_adaptive(self):
        sink, adaptive = run_checks(
            make_template(
                guard="i is None or i.data > o.reach",
                work="o.count = o.count + 1",
            )
        )
        assert not adaptive
        assert "TW023" not in codes(sink)

    def test_bare_index_test_is_not_adaptive(self):
        # ``i is None`` reads the parameter identity, not heap state.
        sink, adaptive = run_checks(
            make_template(guard="i is None", work="o.data = i.data")
        )
        assert not adaptive
        assert codes(sink) == set()

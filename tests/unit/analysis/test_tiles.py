"""Unit tests for tile-structure analysis."""

import pytest

from repro.analysis import (
    Tile,
    TileSummary,
    balance_profile,
    rectangle_decomposition,
    tile_summary,
    window_balance,
)
from repro.core import NestedRecursionSpec, WorkRecorder, run_original, run_twisted
from repro.spaces import balanced_tree, paper_inner_tree, paper_outer_tree


class TestRectangleDecomposition:
    def test_single_point(self):
        tiles = rectangle_decomposition([("a", 1)])
        assert len(tiles) == 1
        assert tiles[0].area == 1
        assert tiles[0].shape == (1, 1)

    def test_full_column_is_one_tile(self):
        points = [("a", i) for i in range(5)]
        tiles = rectangle_decomposition(points)
        assert len(tiles) == 1
        assert tiles[0].shape == (1, 5)

    def test_square_tile_detected(self):
        points = [(o, i) for o in "ab" for i in (1, 2)]
        tiles = rectangle_decomposition(points)
        assert len(tiles) == 1
        assert tiles[0].shape == (2, 2)
        assert tiles[0].balance == 1.0

    def test_non_rectangular_window_splits(self):
        # (a,1),(b,2) is not a cross product: two 1x1 tiles.
        tiles = rectangle_decomposition([("a", 1), ("b", 2)])
        assert [tile.area for tile in tiles] == [1, 1]

    def test_duplicate_point_forces_split(self):
        tiles = rectangle_decomposition([("a", 1), ("a", 1)])
        assert len(tiles) == 2

    def test_partition_covers_everything(self):
        points = [(o, i) for o in range(4) for i in range(3)]
        tiles = rectangle_decomposition(points)
        assert tiles[0].start == 0
        assert tiles[-1].end == len(points)
        for before, after in zip(tiles, tiles[1:]):
            assert before.end == after.start


class TestOnPaperSchedules:
    def spec(self):
        return NestedRecursionSpec(paper_outer_tree(), paper_inner_tree())

    def points(self, run):
        recorder = WorkRecorder()
        run(self.spec(), instrument=recorder)
        return recorder.points

    def test_complete_enumeration_is_one_rectangle(self):
        # Caveat documented in the module: a full enumeration of a
        # rectangular space is itself one giant rectangle.
        tiles = rectangle_decomposition(self.points(run_original))
        assert len(tiles) == 1
        assert tiles[0].shape == (7, 7)

    def test_twisted_windows_are_squarer(self):
        # The "tiles emerge" claim, measured: at window ~ tile size,
        # the twisted schedule touches near-square regions while the
        # original touches 1-wide strips.
        original = window_balance(self.points(run_original), 9)
        twisted = window_balance(self.points(run_twisted), 9)
        assert original < 0.4
        assert twisted > 2 * original

    def test_balance_gap_grows_with_tree_size(self):
        spec = NestedRecursionSpec(balanced_tree(63), balanced_tree(63))
        original, twisted = WorkRecorder(), WorkRecorder()
        run_original(spec, instrument=original)
        run_twisted(spec, instrument=twisted)
        for window in (16, 64, 256):
            assert window_balance(twisted.points, window) > 3 * window_balance(
                original.points, window
            ), window

    def test_balance_profile_shape(self):
        profile = balance_profile(self.points(run_twisted), [4, 9, 16])
        assert set(profile) == {4, 9, 16}
        assert all(0.0 <= value <= 1.0 for value in profile.values())


class TestSummary:
    def test_empty(self):
        summary = TileSummary.of([])
        assert summary.num_tiles == 0
        assert summary.mean_area == 0.0

    def test_statistics(self):
        tiles = [
            Tile(0, 4, frozenset("ab"), frozenset([1, 2])),
            Tile(4, 6, frozenset("a"), frozenset([3, 4])),
        ]
        summary = TileSummary.of(tiles)
        assert summary.num_tiles == 2
        assert summary.mean_area == 3.0
        assert summary.max_area == 4
        assert summary.mean_balance == pytest.approx((1.0 + 0.5) / 2)


class TestWindowBalance:
    def test_strip_schedule_scores_low(self):
        points = [("a", i) for i in range(16)]
        assert window_balance(points, 8) == pytest.approx(1 / 8)

    def test_square_tiles_score_one(self):
        points = []
        for tile in range(4):
            outer = [f"o{tile}a", f"o{tile}b"]
            inner = [2 * tile, 2 * tile + 1]
            points.extend((o, i) for o in outer for i in inner)
        assert window_balance(points, 4) == 1.0

    def test_window_larger_than_schedule(self):
        assert window_balance([("a", 1)], 5) == 0.0

    def test_stride_control(self):
        points = [("a", i) for i in range(6)]
        overlapping = window_balance(points, 3, stride=1)
        assert overlapping == pytest.approx(1 / 3)

    def test_validation(self):
        with pytest.raises(ValueError):
            window_balance([("a", 1)], 0)

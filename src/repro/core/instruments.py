"""Instrumentation probes attached to schedule executions.

Every executor accepts an :class:`Instrument` and reports three kinds
of events through it:

* ``op(kind)`` — one bookkeeping operation: a recursive call, a
  truncation check, a flag/counter manipulation, a size comparison.
  These are the raw material of the instruction-overhead results
  (Figure 8a and Figure 10a).
* ``access(tree, node)`` — one logical data touch.  ``tree`` is the
  *absolute* tree identity (:data:`~repro.core.spec.OUTER_TREE` or
  :data:`~repro.core.spec.INNER_TREE`), independent of which recursion
  is currently traversing that tree — exactly the Section 2.1
  terminology.  Accesses feed the reuse-distance and cache probes.
* ``work(o, i)`` — one executed iteration (one point of the iteration
  space).

The concrete instruments below cover everything the experiments need;
:class:`MultiInstrument` composes several probes into one pass so a
benchmark execution is instrumented once, not re-run per metric.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Callable, Hashable, Optional, Sequence

from repro.memory.hierarchy import CacheHierarchy
from repro.memory.layout import AddressMap
from repro.memory.reuse import ReuseDistanceAnalyzer
from repro.spaces.node import IndexNode

#: Operation kinds emitted by the executors.  Kept as a tuple so tests
#: can assert executors never emit an unknown kind.
OP_KINDS = (
    "call",
    "visit",
    "trunc_check",
    "flag_check",
    "flag_set",
    "flag_unset",
    "size_compare",
    "twist",
    "counter_check",
    "counter_set",
)


class Instrument:
    """Base probe: every hook is a no-op.

    Subclass and override only what you need; executors call every hook
    unconditionally.
    """

    def op(self, kind: str) -> None:
        """One bookkeeping operation of the given kind."""

    def access(self, tree: str, node: IndexNode) -> None:
        """One logical data touch on ``node`` of the identified tree."""

    def work(self, o: IndexNode, i: IndexNode) -> None:
        """One executed iteration at point ``(o, i)``."""


#: Shared do-nothing instrument for uninstrumented runs.
NULL_INSTRUMENT = Instrument()


class MultiInstrument(Instrument):
    """Broadcasts every event to a sequence of child instruments."""

    def __init__(self, children: Sequence[Instrument]) -> None:
        self.children = list(children)

    def op(self, kind: str) -> None:
        for child in self.children:
            child.op(kind)

    def access(self, tree: str, node: IndexNode) -> None:
        for child in self.children:
            child.access(tree, node)

    def work(self, o: IndexNode, i: IndexNode) -> None:
        for child in self.children:
            child.work(o, i)


class OpCounter(Instrument):
    """Counts bookkeeping operations and work points.

    ``counts`` maps op kind to count; ``work_points`` is the number of
    executed iterations; ``accesses`` the number of logical touches.
    """

    def __init__(self) -> None:
        self.counts: Counter[str] = Counter()
        self.work_points = 0
        self.accesses = 0

    def op(self, kind: str) -> None:
        self.counts[kind] += 1

    def access(self, tree: str, node: IndexNode) -> None:
        self.accesses += 1

    def work(self, o: IndexNode, i: IndexNode) -> None:
        self.work_points += 1


class WorkRecorder(Instrument):
    """Records the schedule as a list of ``(outer_label, inner_label)``.

    The label of a node defaults to its pre-order ``number`` when it has
    no ``label`` attribute (spatial-tree nodes, for instance).
    """

    def __init__(self) -> None:
        self.points: list[tuple[Hashable, Hashable]] = []

    def work(self, o: IndexNode, i: IndexNode) -> None:
        self.points.append(
            (getattr(o, "label", o.number), getattr(i, "label", i.number))
        )


class AccessTraceRecorder(Instrument):
    """Records the logical access trace as ``(tree, node_number)`` keys.

    This is the trace format consumed directly by
    :class:`~repro.memory.reuse.ReuseDistanceAnalyzer` for node-granular
    reuse studies (Figure 5 counts "tree nodes that are accessed").
    """

    def __init__(self) -> None:
        self.trace: list[tuple[str, int]] = []

    def access(self, tree: str, node: IndexNode) -> None:
        self.trace.append((tree, node.number))


class ReuseDistanceProbe(Instrument):
    """Streams node-granularity accesses into a reuse-distance analyzer.

    Unlike :class:`AccessTraceRecorder` + offline analysis, this keeps
    only the histogram, so it scales to multi-million-access runs.
    """

    def __init__(self, analyzer: Optional[ReuseDistanceAnalyzer] = None) -> None:
        self.analyzer = analyzer or ReuseDistanceAnalyzer()

    def access(self, tree: str, node: IndexNode) -> None:
        self.analyzer.access((tree, node.number))


class CacheProbe(Instrument):
    """Feeds accesses through an address map into a cache hierarchy.

    Each logical node touch expands to the node's registered cache
    lines (one line for plain tree nodes; several for nodes that own
    point data or vector blocks — see :mod:`repro.memory.layout`).
    Per-level hit counts are tallied for the cost model.
    """

    def __init__(self, address_map: AddressMap, hierarchy: CacheHierarchy) -> None:
        self.address_map = address_map
        self.hierarchy = hierarchy
        #: hits per level index, plus one slot for memory at the end
        self.level_hits = [0] * (len(hierarchy.levels) + 1)
        self.accesses = 0

    def access(self, tree: str, node: IndexNode) -> None:
        lines = self.address_map.lines_of((tree, node.number))
        hierarchy_access = self.hierarchy.access
        for line in lines:
            self.level_hits[hierarchy_access(line)] += 1
            self.accesses += 1

    @property
    def cache_level_hits(self) -> list[int]:
        """Hit counts per cache level (excluding the memory slot)."""
        return self.level_hits[:-1]

    @property
    def memory_accesses(self) -> int:
        """Accesses that missed in every level."""
        return self.level_hits[-1]


class WorkCallback(Instrument):
    """Adapts a plain callable into a work-event probe.

    Handy in tests: ``WorkCallback(lambda o, i: pairs.append(...))``.
    """

    def __init__(self, callback: Callable[[IndexNode, IndexNode], Any]) -> None:
        self.callback = callback

    def work(self, o: IndexNode, i: IndexNode) -> None:
        self.callback(o, i)


def combine(*instruments: Optional[Instrument]) -> Instrument:
    """Compose instruments, dropping ``None`` entries.

    Returns :data:`NULL_INSTRUMENT` when nothing is left, a bare
    instrument when exactly one remains, and a
    :class:`MultiInstrument` otherwise.
    """
    remaining = [probe for probe in instruments if probe is not None]
    if not remaining:
        return NULL_INSTRUMENT
    if len(remaining) == 1:
        return remaining[0]
    return MultiInstrument(remaining)

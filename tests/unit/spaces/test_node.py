"""Unit tests for the index-node protocol and tree finalization."""

import pytest

from repro.errors import SpecError
from repro.spaces import (
    TreeNode,
    finalize_tree,
    tree_depth,
    tree_from_nested,
    tree_nodes,
    validate_index_node,
)


def build_small():
    return tree_from_nested(("a", ("b", "c", None), "d"))


class TestTreeStructure:
    def test_preorder_iteration_order(self):
        root = build_small()
        assert [n.label for n in root.iter_preorder()] == ["a", "b", "c", "d"]

    def test_sizes_count_subtree_nodes(self):
        root = build_small()
        sizes = {n.label: n.size for n in root.iter_preorder()}
        assert sizes == {"a": 4, "b": 2, "c": 1, "d": 1}

    def test_preorder_numbers_are_dense(self):
        root = build_small()
        assert [n.number for n in root.iter_preorder()] == [0, 1, 2, 3]

    def test_subtree_occupies_number_range(self):
        # The Section 4.3 counter optimization depends on this exact
        # invariant: subtree of node = [number, number + size).
        root = build_small()
        for node in root.iter_preorder():
            numbers = sorted(child.number for child in node.iter_preorder())
            assert numbers == list(range(node.number, node.number + node.size))

    def test_is_leaf(self):
        root = build_small()
        leaves = {n.label for n in root.iter_preorder() if n.is_leaf}
        assert leaves == {"c", "d"}

    def test_left_right_accessors(self):
        root = build_small()
        assert root.left.label == "b"
        assert root.right.label == "d"
        leaf = root.right
        assert leaf.left is None and leaf.right is None

    def test_tree_depth(self):
        assert tree_depth(build_small()) == 3
        assert tree_depth(None) == 0
        assert tree_depth(TreeNode("x")) == 1

    def test_tree_nodes_handles_none(self):
        assert tree_nodes(None) == []
        assert len(tree_nodes(build_small())) == 4


class TestTruncationState:
    def test_defaults(self):
        node = TreeNode("x")
        assert node.trunc is False
        assert node.trunc_counter == -1

    def test_reset_clears_whole_subtree(self):
        root = build_small()
        for node in root.iter_preorder():
            node.trunc = True
            node.trunc_counter = 5
        root.reset_truncation_state()
        for node in root.iter_preorder():
            assert node.trunc is False
            assert node.trunc_counter == -1


class TestValidation:
    def test_accepts_tree_node(self):
        validate_index_node(TreeNode("x"))

    def test_rejects_plain_object(self):
        with pytest.raises(SpecError, match="index-node protocol"):
            validate_index_node(object())

    def test_deep_tree_iteration_is_not_recursive(self):
        # 10k-deep list tree would blow the default recursion limit if
        # iter_preorder recursed.
        from repro.spaces import list_tree

        root = list_tree(10_000)
        assert sum(1 for _ in root.iter_preorder()) == 10_000
        assert root.size == 10_000

"""Unit tests for kd-tree and vp-tree builders."""

import numpy as np
import pytest

from repro.dualtree import build_kdtree, build_vptree
from repro.dualtree.boxes import Ball, HRect
from repro.spaces import clustered_points, uniform_points


@pytest.fixture(params=["kd", "vp"])
def builder(request):
    return {"kd": build_kdtree, "vp": build_vptree}[request.param]


class TestCommonInvariants:
    def test_structural_validation(self, builder, small_points):
        tree = builder(small_points, leaf_size=8)
        tree.validate()

    def test_all_points_indexed(self, builder, small_points):
        tree = builder(small_points, leaf_size=4)
        assert sorted(tree.indices.tolist()) == list(range(len(small_points)))

    def test_leaf_ids_populated(self, builder, small_points):
        tree = builder(small_points, leaf_size=8)
        ids = [pid for leaf in tree.leaves() for pid in leaf.point_ids]
        assert sorted(ids) == list(range(len(small_points)))

    def test_sizes_and_numbers_finalized(self, builder, small_points):
        tree = builder(small_points, leaf_size=8)
        assert tree.root.size == tree.num_nodes
        numbers = [n.number for n in tree.root.iter_preorder()]
        assert numbers == list(range(tree.num_nodes))

    def test_single_point(self, builder):
        tree = builder(np.array([[0.5, 0.5]]), leaf_size=4)
        assert tree.num_nodes == 1
        assert tree.root.is_leaf

    def test_duplicate_points_terminate(self, builder):
        pts = np.zeros((40, 2))
        tree = builder(pts, leaf_size=4)
        # Degenerate input: builders must not recurse forever; the
        # oversized leaf is acceptable.
        assert tree.num_points == 40

    def test_input_validation(self, builder):
        with pytest.raises(ValueError):
            builder(np.zeros((0, 2)))
        with pytest.raises(ValueError):
            builder(np.zeros((5, 2)), leaf_size=0)


class TestKdSpecifics:
    def test_bounds_are_tight_hrects(self, small_points):
        tree = build_kdtree(small_points, leaf_size=8)
        assert isinstance(tree.root.bound, HRect)
        assert tree.root.bound.mins == tuple(small_points.min(axis=0))
        assert tree.root.bound.maxs == tuple(small_points.max(axis=0))

    def test_roughly_balanced(self):
        tree = build_kdtree(uniform_points(1024, seed=3), leaf_size=1)
        from repro.spaces import tree_depth

        # Median splits: depth ~ log2(1024) + small constant.
        assert tree_depth(tree.root) <= 14

    def test_leaf_size_respected(self, small_points):
        tree = build_kdtree(small_points, leaf_size=5)
        assert all(leaf.count <= 5 for leaf in tree.leaves())


class TestVpSpecifics:
    def test_bounds_are_balls(self, small_points):
        tree = build_vptree(small_points, leaf_size=8)
        assert isinstance(tree.root.bound, Ball)

    def test_deterministic_for_seed(self, small_points):
        a = build_vptree(small_points, leaf_size=8, seed=4)
        b = build_vptree(small_points, leaf_size=8, seed=4)
        assert np.array_equal(a.indices, b.indices)

    def test_split_partitions_by_distance(self, small_points):
        tree = build_vptree(small_points, leaf_size=8)
        for node in tree.root.iter_preorder():
            if node.is_leaf:
                continue
            near, far = node.children
            center = node.bound.center
            near_max = max(
                np.sqrt(((tree.points[tree.indices[near.start:near.end]] - center) ** 2).sum(1))
            )
            far_min = min(
                np.sqrt(((tree.points[tree.indices[far.start:far.end]] - center) ** 2).sum(1))
            )
            assert near_max <= far_min + 1e-9

"""QueryService: startup analysis, batch execution, demux, lifecycle."""

import os

import numpy as np
import pytest

from repro.errors import SpecError
from repro.serve.protocol import (
    CountQuery,
    CountResult,
    KNNQuery,
    KNNResult,
    NNQuery,
    NNResult,
)
from repro.serve.service import KINDS, QueryService, ServiceConfig
from repro.spaces.points import clustered_points


def shm_entries():
    try:
        return set(os.listdir("/dev/shm"))
    except FileNotFoundError:  # pragma: no cover - non-Linux hosts
        return set()


def mixed_queries(n=64, seed=11):
    rng = np.random.default_rng(seed)
    points = clustered_points(n, clusters=6, spread=0.07, seed=seed)
    queries = []
    for index in range(n):
        point = tuple(float(value) for value in points[index])
        kind = index % 3
        if kind == 0:
            queries.append(NNQuery(point))
        elif kind == 1:
            queries.append(KNNQuery(point, int(rng.integers(1, 6))))
        else:
            queries.append(CountQuery(point, 0.3))
    return queries


@pytest.fixture(scope="module")
def service():
    references = clustered_points(768, clusters=8, spread=0.08, seed=1)
    service = QueryService(references, ServiceConfig(max_batch=64))
    yield service
    service.close()


class TestStartupAnalysis:
    def test_every_kind_gets_a_pinned_choice(self, service):
        assert set(service.choices) == set(KINDS)
        for kind in KINDS:
            entry = service.analysis[kind]
            assert entry["backend"] == service.choices[kind].backend
            assert "conformance" in entry
            assert "lowerability" in entry

    def test_reference_accelerators_are_warm(self, service):
        # Finalize-once: the executors' lazily-built staging arrays
        # must already hang off the resident tree.
        assert getattr(service.reference_tree, "_leaf_blocks", None) is not None
        assert getattr(service.reference_tree, "_bound_arrays", None) is not None

    def test_publication_carries_the_reference_points(self, service):
        arrays = service.publication.arrays()
        assert np.array_equal(arrays["references"], service.references)

    def test_bad_references_rejected(self):
        with pytest.raises(SpecError, match="non-empty"):
            QueryService(np.zeros((0, 2)))

    def test_bad_config_rejected(self):
        with pytest.raises(SpecError, match="max_batch"):
            ServiceConfig(max_batch=0)
        with pytest.raises(SpecError, match="leaf sizes"):
            ServiceConfig(leaf_size=0)
        with pytest.raises(SpecError, match="workers"):
            ServiceConfig(workers=-1)


class TestBatchVsSerial:
    def test_mixed_batch_is_bit_identical_to_the_oracle(self, service):
        queries = mixed_queries(64)
        batched = service.execute_batch(queries)
        oracle = service.execute_serial(queries)
        assert batched == oracle

    def test_demux_preserves_submission_order(self, service):
        # Interleaved kinds: results must land at their query's index,
        # not grouped-by-kind order.
        queries = mixed_queries(12, seed=5)
        results = service.execute_batch(queries)
        for query, result in zip(queries, results):
            expected = {
                NNQuery: NNResult,
                KNNQuery: KNNResult,
                CountQuery: CountResult,
            }[type(query)]
            assert isinstance(result, expected)
        knn = [
            (query, result)
            for query, result in zip(queries, results)
            if isinstance(query, KNNQuery)
        ]
        assert all(len(result.neighbor_ids) == query.k for query, result in knn)

    def test_empty_batch(self, service):
        assert service.execute_batch([]) == []

    def test_verdict_cache_hits_across_ticks(self, service):
        service.verdict_cache.clear()
        queries = [
            CountQuery(tuple(float(v) for v in point), 0.3)
            for point in clustered_points(32, clusters=4, spread=0.05, seed=7)
        ]
        service.execute_batch(queries)
        assert service.verdict_cache.hits == 0
        # The same hot points inside a different batch: all rows hot.
        service.execute_batch(queries[16:] + queries[:8])
        assert service.verdict_cache.hits > 0

    def test_stats_account_queries_and_batches(self):
        references = clustered_points(256, clusters=4, spread=0.08, seed=2)
        with QueryService(references) as service:
            service.execute_batch(mixed_queries(30))
            stats = service.service_stats()
        assert stats["queries"] == 30
        assert stats["batches"] >= 3  # one per kind-compatible group
        assert set(stats["backends"]) == set(KINDS)
        assert stats["references"] == 256


class TestPooledExecution:
    def test_worker_pool_matches_the_oracle(self):
        references = clustered_points(384, clusters=4, spread=0.08, seed=3)
        queries = mixed_queries(24, seed=13)
        before = shm_entries()
        with QueryService(
            references, ServiceConfig(workers=1)
        ) as service:
            oracle = service.execute_serial(queries)
            pooled = service.execute_batch(queries)
            again = service.execute_batch(queries)  # resident worker reuse
        assert pooled == oracle
        assert again == oracle
        assert shm_entries() == before


class TestLifecycle:
    def test_close_is_idempotent_and_leaks_nothing(self):
        before = shm_entries()
        references = clustered_points(128, clusters=4, spread=0.08, seed=4)
        service = QueryService(references)
        service.execute_batch(mixed_queries(9))
        service.close()
        service.close()
        assert shm_entries() == before

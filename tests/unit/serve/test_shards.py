"""Shard partitioning and the exact scatter/gather reductions.

The gathers are pure array functions, so most cases pin them directly
against hand-built columns; the end-to-end bit-identity against the
serial oracle lives in ``test_service.py`` and the hypothesis
properties.
"""

import numpy as np
import pytest

from repro.errors import SpecError
from repro.serve.rules import PAD_ID
from repro.serve.shards import (
    gather_columns,
    gather_count_columns,
    gather_neighbor_columns,
    rebase_ids,
    shard_slices,
)
from repro.serve.service import QueryService, ServiceConfig
from repro.spaces.points import clustered_points


class TestShardSlices:
    def test_slices_cover_and_balance(self):
        slices = shard_slices(10, 3)
        assert slices == [(0, 3), (3, 7), (7, 10)]
        assert slices[0][0] == 0 and slices[-1][1] == 10

    def test_one_shard_is_the_whole_set(self):
        assert shard_slices(7, 1) == [(0, 7)]

    def test_every_shard_non_empty(self):
        for n in (1, 2, 5, 17, 100):
            for shards in range(1, n + 1):
                slices = shard_slices(n, shards)
                assert all(stop > start for start, stop in slices)
                assert slices[0][0] == 0 and slices[-1][1] == n

    def test_bad_counts_rejected(self):
        with pytest.raises(SpecError, match="shards"):
            shard_slices(10, 0)
        with pytest.raises(SpecError, match="non-empty"):
            shard_slices(3, 4)


class TestRebase:
    def test_rebase_shifts_real_ids_only(self):
        ids = np.array([[0, 2, PAD_ID]], dtype=np.int64)
        rebased = rebase_ids(ids, 100)
        assert rebased.tolist() == [[100, 102, PAD_ID]]
        # zero base returns the input untouched
        assert rebase_ids(ids, 0) is ids


class TestNeighborGather:
    def test_merge_matches_lexicographic_top_k(self):
        # Shard A holds global ids 0..1, shard B ids 10..11; the
        # global top-2 interleaves across shards.
        shard_a = {
            "dists": np.array([[0.1, 0.4]]),
            "ids": np.array([[1, 0]], dtype=np.int64),
        }
        shard_b = {
            "dists": np.array([[0.2, 0.3]]),
            "ids": np.array([[1, 0]], dtype=np.int64),
        }
        merged = gather_neighbor_columns([shard_a, shard_b], [0, 10], 2)
        assert merged["dists"].tolist() == [[0.1, 0.2]]
        assert merged["ids"].tolist() == [[1, 11]]

    def test_distance_ties_break_on_global_id(self):
        shard_a = {
            "dists": np.array([[0.5]]),
            "ids": np.array([[3]], dtype=np.int64),
        }
        shard_b = {
            "dists": np.array([[0.5]]),
            "ids": np.array([[0]], dtype=np.int64),
        }
        # Global ids 3 vs 7: the tie goes to the smaller global id,
        # regardless of shard order in the gather.
        merged = gather_neighbor_columns([shard_b, shard_a], [7, 0], 2)
        assert merged["ids"].tolist() == [[3, 7]]

    def test_padding_sorts_last_and_survives(self):
        # Shard B is smaller than k and answers with padding.
        shard_a = {
            "dists": np.array([[0.9, np.inf]]),
            "ids": np.array([[0, PAD_ID]], dtype=np.int64),
        }
        shard_b = {
            "dists": np.array([[0.1]]),
            "ids": np.array([[0]], dtype=np.int64),
        }
        merged = gather_neighbor_columns([shard_a, shard_b], [0, 5], 2)
        assert merged["ids"].tolist() == [[5, 0]]
        assert merged["dists"].tolist() == [[0.1, 0.9]]

    def test_single_shard_passthrough(self):
        columns = {
            "dists": np.array([[0.1]]),
            "ids": np.array([[4]], dtype=np.int64),
        }
        assert gather_neighbor_columns([columns], [0], 1) == columns

    def test_shard_result_count_mismatch_rejected(self):
        with pytest.raises(SpecError, match="shard"):
            gather_neighbor_columns([], [0], 1)


class TestCountGather:
    def test_counts_sum_exactly(self):
        a = {"counts": np.array([3, 0, 7], dtype=np.int64)}
        b = {"counts": np.array([1, 2, 0], dtype=np.int64)}
        merged = gather_count_columns([a, b])
        assert merged["counts"].tolist() == [4, 2, 7]
        assert merged["counts"].dtype == np.int64

    def test_dispatch_routes_by_kind(self):
        counts = {"counts": np.array([1], dtype=np.int64)}
        assert gather_columns("count", [counts], [0], 1) == counts


class TestShardedService:
    def test_sharded_batches_match_the_serial_oracle(self):
        from repro.serve.protocol import CountQuery, KNNQuery, NNQuery

        references = clustered_points(600, seed=3)
        points = [
            tuple(float(v) for v in p) for p in clustered_points(12, seed=9)
        ]
        queries = []
        for point in points:
            queries += [
                NNQuery(point),
                KNNQuery(point, 7),
                CountQuery(point, 0.35),
            ]
        with QueryService(references, ServiceConfig(shards=1)) as single, \
                QueryService(references, ServiceConfig(shards=3)) as sharded:
            oracle = single.execute_serial(queries)
            assert sharded.execute_batch(queries) == oracle
            stats = sharded.service_stats()
            assert stats["shards"]["count"] == 3
            assert sum(stats["shards"]["points"]) == 600

    def test_k_exceeding_every_shard_stays_exact(self):
        from repro.serve.protocol import KNNQuery

        references = clustered_points(10, seed=5)
        queries = [
            KNNQuery(tuple(float(v) for v in p), 8)
            for p in clustered_points(5, seed=11)
        ]
        with QueryService(references, ServiceConfig(shards=1)) as single, \
                QueryService(references, ServiceConfig(shards=3)) as sharded:
            assert sharded.execute_batch(queries) == single.execute_serial(
                queries
            )

    def test_shard_publications_unlink_on_close(self):
        import os

        def shm_segments():
            try:
                return set(os.listdir("/dev/shm"))
            except FileNotFoundError:
                return set()

        before = shm_segments()
        service = QueryService(
            clustered_points(64, seed=1), ServiceConfig(shards=2)
        )
        assert len(shm_segments() - before) >= 2
        service.close()
        assert shm_segments() <= before

    def test_bad_shard_config_rejected(self):
        with pytest.raises(SpecError, match="shards"):
            ServiceConfig(shards=0)
        with pytest.raises(SpecError, match="non-empty"):
            QueryService(
                clustered_points(3, seed=1), ServiceConfig(shards=4)
            )

"""Bench target: the Section 6.1 benchmark inventory table.

Regenerates the methodology table — scaled inputs, modeled baseline
cycles, and the dependence/truncation classification, which is derived
programmatically and must match the paper's: TJ/MM regular, the four
dual-tree benchmarks irregular, all six with parallel outer recursions.
"""

from benchmarks.conftest import register_report
from repro.bench.experiments import run_sec61


def test_sec61_inventory(benchmark, bench_scale):
    report, data = benchmark.pedantic(
        run_sec61, kwargs={"scale": min(bench_scale, 0.25)}, rounds=1, iterations=1
    )
    register_report(report, "sec61_inventory.txt")

    assert set(data) == {"TJ", "MM", "PC", "NN", "KNN", "VP"}
    for name in ("TJ", "MM"):
        assert not data[name]["irregular"], name
    for name in ("PC", "NN", "KNN", "VP"):
        assert data[name]["irregular"], name
    for name, entry in data.items():
        assert entry["outer_parallel"], name
        assert entry["baseline"].cycles > 0

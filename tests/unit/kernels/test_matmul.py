"""Unit tests for the recursive Matrix Multiplication kernel."""

import numpy as np
import pytest

from repro.core import run_interchanged, run_original, run_twisted
from repro.kernels import MatrixMultiply, matmul_footprint
from repro.memory import AddressMap


class TestMatrixMultiply:
    def test_original_computes_product(self):
        mm = MatrixMultiply(n=16, m=12, p=5)
        run_original(mm.make_spec())
        assert mm.max_error() < 1e-12

    @pytest.mark.parametrize("run", [run_interchanged, run_twisted])
    def test_transformed_schedules_compute_product(self, run):
        mm = MatrixMultiply(n=16, m=16, p=4)
        run(mm.make_spec())
        assert mm.max_error() < 1e-12

    def test_make_spec_clears_output(self):
        mm = MatrixMultiply(n=8, m=8)
        run_original(mm.make_spec())
        spec = mm.make_spec()
        assert mm.c.sum() == 0.0
        run_original(spec)
        assert mm.max_error() < 1e-12

    def test_rectangular_output(self):
        mm = MatrixMultiply(n=5, m=9, p=3)
        run_twisted(mm.make_spec())
        assert mm.c.shape == (5, 9)
        assert mm.max_error() < 1e-12

    def test_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            MatrixMultiply(n=0, m=4)


class TestLayout:
    def test_vectors_are_multi_line_blocks(self):
        mm = MatrixMultiply(n=4, m=4, lines_per_vector=3)
        amap = AddressMap()
        mm.register_layout(amap)
        assert len(amap.lines_of(("outer", 0))) == 3
        assert amap.total_lines == (4 + 4) * 3


class TestFootprint:
    def test_unique_output_cell_written(self):
        mm = MatrixMultiply(n=4, m=4)
        touches = matmul_footprint(mm.outer_root, mm.inner_root)
        writes = [loc for loc, is_write in touches if is_write]
        assert writes == [("out", mm.outer_root.data, mm.inner_root.data)]

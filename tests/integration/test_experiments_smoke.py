"""Integration smoke tests: every experiment driver runs end to end.

Reduced-scale versions of the benchmark experiments, checking the
report structure and the coarse paper shapes.  The full-scale numbers
live in ``benchmarks/`` and EXPERIMENTS.md.
"""

import pytest

from repro.bench.experiments import (
    fig7_report,
    fig8_reports,
    run_fig5,
    run_fig7,
    run_fig9,
    run_fig10,
    run_sec42,
    run_sec61,
)
from repro.bench.workloads import (
    make_knn,
    make_mm,
    make_nn,
    make_pc,
    make_tj,
    make_vp,
)
from repro.memory.counters import speedup


@pytest.fixture(scope="module")
def tiny_fig7_data():
    cases = [
        make_tj(300),
        make_mm(96),
        make_pc(768),
        make_nn(768),
        make_knn(512),
        make_vp(512),
    ]
    return run_fig7(cases=cases)


class TestFig5:
    def test_cdf_shapes(self):
        report, data = run_fig5(num_nodes=256)
        text = report.render()
        assert "Figure 5" in text
        original, twisted = data["original"], data["twisted"]
        # Bimodal original: ~half the accesses at distance <= 2.
        assert 0.4 < original.fraction_at_most(2) < 0.6
        # Twisted dominates at mid distances.
        assert twisted.fraction_at_most(32) > original.fraction_at_most(32)


class TestFig7And8:
    def test_all_benchmarks_present(self, tiny_fig7_data):
        assert sorted(tiny_fig7_data) == ["KNN", "MM", "NN", "PC", "TJ", "VP"]

    def test_twisting_wins_on_every_benchmark(self, tiny_fig7_data):
        for name, (baseline, twisted) in tiny_fig7_data.items():
            assert speedup(baseline, twisted) > 1.0, name

    def test_results_match_across_schedules(self, tiny_fig7_data):
        for name, (baseline, twisted) in tiny_fig7_data.items():
            if isinstance(baseline.result, float):
                assert baseline.result == pytest.approx(twisted.result), name
            else:
                assert baseline.result == twisted.result, name

    def test_report_rendering(self, tiny_fig7_data):
        text = fig7_report(tiny_fig7_data).render()
        assert "geomean" in text
        overhead, misses = fig8_reports(tiny_fig7_data)
        assert "instruction overhead" in overhead.render()
        assert "L3" in misses.render()

    def test_cache_misses_drop_everywhere_the_baseline_thrashes(
        self, tiny_fig7_data
    ):
        # Twisting eliminates capacity misses at whatever level the
        # baseline thrashes.  At this reduced scale the working sets
        # exceed L2 (128 lines) but mostly fit in L3, so L2 carries the
        # signal — the full-scale benchmarks exercise L3 as well.
        for name, (baseline, twisted) in tiny_fig7_data.items():
            assert (
                twisted.levels["L2"].misses < baseline.levels["L2"].misses / 2
            ), name


class TestFig9:
    def test_speedup_grows_with_input(self):
        report, data = run_fig9(sizes=(128, 512, 2048))
        small = speedup(*data[128])
        large = speedup(*data[2048])
        assert large > small
        assert large > 1.5
        # Baseline saturates: the fraction of accesses reaching memory
        # grows with input size.
        small_ratio = data[128][0].memory_accesses / data[128][0].accesses
        large_ratio = data[2048][0].memory_accesses / data[2048][0].accesses
        assert large_ratio > small_ratio


class TestFig10:
    def test_cutoff_monotone_overhead(self):
        report, runs = run_fig10(num_points=512, cutoffs=(4, 64, 512))
        base = runs["original"]

        def overhead(name):
            return runs[name].instructions / base.instructions

        # Larger cutoff -> fewer twists -> less overhead.
        assert overhead("twist(cutoff=512)") <= overhead("twist(cutoff=64)")
        assert overhead("twist(cutoff=64)") <= overhead("twist(cutoff=4)")
        assert overhead("twist(cutoff=4)") <= overhead("parameterless") + 0.05


class TestSectionTables:
    def test_sec42_ordering(self):
        report, counts = run_sec42(num_points=768)
        assert counts["original"] <= counts["twist + subtree trunc"]
        assert counts["twist + subtree trunc"] <= counts["twist (no subtree trunc)"]
        assert counts["twist (no subtree trunc)"] < counts["interchange"]

    def test_sec61_classification(self):
        report, data = run_sec61(scale=0.05)
        assert not data["TJ"]["irregular"] and data["TJ"]["outer_parallel"]
        assert not data["MM"]["irregular"] and data["MM"]["outer_parallel"]
        for name in ("PC", "NN", "KNN", "VP"):
            assert data[name]["irregular"], name
            assert data[name]["outer_parallel"], name

"""Unit tests for the Section 7.3 task-parallel extension."""

import pytest

from repro.core import (
    NestedRecursionSpec,
    WorkRecorder,
    run_original,
    run_task_parallel,
    spawn_tasks,
    task_spec,
)
from repro.core.schedules import ORIGINAL, TWIST
from repro.errors import ScheduleError
from repro.kernels import TreeJoin
from repro.spaces import balanced_tree, paper_inner_tree, paper_outer_tree


def paper_spec(**kwargs):
    return NestedRecursionSpec(paper_outer_tree(), paper_inner_tree(), **kwargs)


class TestSpawnTasks:
    def test_depth_zero_is_one_task(self):
        tasks = spawn_tasks(paper_spec(), 0)
        assert len(tasks) == 1
        assert tasks[0].outer_root.size == 7

    def test_depth_one_splits_root_and_children(self):
        tasks = spawn_tasks(paper_spec(), 1)
        # One single-node task for the root + one per child subtree.
        assert len(tasks) == 3
        assert sorted(task.outer_root.size for task in tasks) == [1, 3, 3]

    def test_tasks_partition_the_iteration_space(self):
        spec = paper_spec()
        reference = WorkRecorder()
        run_original(spec, instrument=reference)
        collected = []
        for task in spawn_tasks(spec, 2):
            recorder = WorkRecorder()
            run_original(task_spec(task), instrument=recorder)
            collected.extend(recorder.points)
        assert sorted(collected) == sorted(reference.points)

    def test_max_depth_is_one_task_per_node(self):
        tasks = spawn_tasks(paper_spec(), 2)  # deepest level of the tree
        assert len(tasks) == 7  # one per outer node
        assert all(task.outer_root.size == 1 or task.outer_root.is_leaf
                   for task in tasks)

    def test_depth_beyond_tree_rejected_with_valid_range(self):
        with pytest.raises(ScheduleError, match=r"valid depths are 0\.\.2"):
            spawn_tasks(paper_spec(), 10)  # deeper than the tree

    def test_negative_depth_rejected(self):
        with pytest.raises(ScheduleError):
            spawn_tasks(paper_spec(), -1)

    def test_cost_estimate(self):
        tasks = spawn_tasks(paper_spec(), 1)
        assert {task.cost_estimate for task in tasks} == {7, 21}


class TestRunTaskParallel:
    def test_correct_result_under_twisting(self):
        tj = TreeJoin(63, 63)
        spec = tj.make_spec()
        run_task_parallel(spec, num_workers=4, spawn_depth=2, schedule=TWIST)
        assert tj.result == tj.expected_total()

    def test_makespan_at_most_total(self):
        report = run_task_parallel(paper_spec(), num_workers=3, spawn_depth=2)
        assert 0 < report.makespan <= report.total_cycles
        assert report.parallel_speedup >= 1.0

    def test_single_worker_equals_sequential_total(self):
        report = run_task_parallel(paper_spec(), num_workers=1, spawn_depth=2)
        assert report.makespan == report.total_cycles
        assert report.parallel_speedup == 1.0

    def test_more_workers_never_slower(self):
        spec_factory = lambda: NestedRecursionSpec(
            balanced_tree(127), balanced_tree(127)
        )
        one = run_task_parallel(spec_factory(), num_workers=1, spawn_depth=3)
        four = run_task_parallel(spec_factory(), num_workers=4, spawn_depth=3)
        assert four.makespan <= one.makespan
        assert four.parallel_speedup > 2.0  # decent load balance

    def test_work_conserved_across_workers(self):
        report = run_task_parallel(paper_spec(), num_workers=2, spawn_depth=2)
        assert report.total_cycles == 49  # default cost = work points

    def test_per_worker_instruments(self):
        recorders = [WorkRecorder(), WorkRecorder()]
        run_task_parallel(
            paper_spec(), num_workers=2, spawn_depth=2, instruments=recorders
        )
        merged = recorders[0].points + recorders[1].points
        assert len(merged) == 49
        assert len(recorders[0].points) > 0 and len(recorders[1].points) > 0

    def test_validation(self):
        with pytest.raises(ScheduleError):
            run_task_parallel(paper_spec(), num_workers=0)
        with pytest.raises(ScheduleError):
            run_task_parallel(paper_spec(), num_workers=2, instruments=[WorkRecorder()])

    def test_irregular_truncation_inside_tasks(self):
        spec = paper_spec(
            truncate_inner2=lambda o, i: o.label == "B" and i.label == 2
        )
        seen = []
        recorders = [WorkRecorder(), WorkRecorder(), WorkRecorder()]
        run_task_parallel(
            spec, num_workers=3, spawn_depth=2, schedule=TWIST,
            instruments=recorders,
        )
        for recorder in recorders:
            seen.extend(recorder.points)
        assert len(seen) == 46
        assert ("B", 2) not in set(seen)


class TestSingleNodeViewSemantics:
    """Regression: the childless task facade must not change the
    *decisions* outer-node-sensitive predicates make.

    Dual-tree specs truncate reference traversals at internal query
    nodes ("is this outer node a leaf?"); before the fix, a spawned
    parent's single-node view reported no children, so an internal
    query node executed a full reference traversal per task and the
    parallel result diverged wildly from the sequential one."""

    def _pc(self):
        from repro.dualtree import PointCorrelation
        from repro.spaces.points import clustered_points

        points = clustered_points(512, clusters=8, spread=0.05, seed=5)
        return PointCorrelation(points, radius=0.3, leaf_size=8)

    def test_dualtree_parallel_matches_sequential(self):
        pc = self._pc()
        spec = pc.make_spec()
        run_original(spec)
        sequential = pc.result

        for backend in ("recursive", "batched"):
            spec = pc.make_spec()
            run_task_parallel(
                spec, num_workers=4, spawn_depth=3, backend=backend
            )
            assert pc.result == sequential, backend

    def test_dualtree_parallel_twist_matches_sequential(self):
        pc = self._pc()
        spec = pc.make_spec()
        run_original(spec)
        sequential = pc.result
        spec = pc.make_spec()
        run_task_parallel(spec, num_workers=4, spawn_depth=3, schedule=TWIST)
        assert pc.result == sequential

    def test_view_predicates_see_real_node(self):
        from repro.core.parallel import _single_node_view, _task_spec, Task

        root = balanced_tree(7)
        seen = []
        spec = NestedRecursionSpec(
            root,
            balanced_tree(3),
            truncate_inner2=lambda o, i: bool(seen.append(len(o.children))),
        )
        task = Task(outer_root=_single_node_view(root), spec=spec)
        run_original(task_spec(task))
        # The predicate observed the real root's two children, not the
        # facade's zero.
        assert set(seen) == {2}
        assert _task_spec(task).outer_root.children == ()


class TestCostEstimates:
    """Regression: LPT weights track launchable work, not raw sizes."""

    def test_single_node_view_of_non_launching_node_is_cheap(self):
        spec = paper_spec(outer_launches_work=lambda node: not node.children)
        tasks = spawn_tasks(spec, 1)
        by_size = sorted(tasks, key=lambda t: t.outer_root.size)
        view_task = by_size[0]
        assert view_task.outer_root.size == 1
        # Internal node: cannot launch, costs one visit.
        assert view_task.cost_estimate == 1

    def test_estimates_track_actual_work(self):
        """For dual-tree PC, estimated cost must rank tasks in the same
        ballpark as the work they actually execute: every task with
        zero work points gets the minimal estimate, and the
        largest-estimate task is within the top actual workers."""
        from repro.core.instruments import OpCounter
        from repro.dualtree import PointCorrelation
        from repro.spaces.points import clustered_points

        points = clustered_points(512, clusters=8, spread=0.05, seed=9)
        pc = PointCorrelation(points, radius=0.3, leaf_size=8)
        spec = pc.make_spec()
        tasks = spawn_tasks(spec, 3)

        actuals = []
        for task in tasks:
            ops = OpCounter()
            run_original(task_spec(task), instrument=ops)
            actuals.append(ops.work_points)

        estimates = [task.cost_estimate for task in tasks]
        # Non-launching single-node tasks: minimal estimate, no work.
        for estimate, actual in zip(estimates, actuals):
            if actual == 0:
                assert estimate == min(estimates)
        # Estimates separate the no-work tasks from the real ones.
        real = [e for e, a in zip(estimates, actuals) if a > 0]
        empty = [e for e, a in zip(estimates, actuals) if a == 0]
        assert real and empty
        assert min(real) > max(empty)

    def test_rectangular_estimate_unchanged(self):
        tasks = spawn_tasks(paper_spec(), 1)
        assert {task.cost_estimate for task in tasks} == {7, 21}


class TestTruncationIsolation:
    """Section 4 flag/counter state must stay private to each task."""

    def test_task_specs_are_isolated(self):
        spec = paper_spec(truncate_inner2=lambda o, i: o.label == "B")
        for task in spawn_tasks(spec, 2):
            assert task_spec(task).isolated_truncation

    def test_isolated_runs_leave_shared_trees_untouched(self):
        from repro.core import run_interchanged, run_twisted

        spec = paper_spec(truncate_inner2=lambda o, i: i.label in (2, 4))
        tasks = spawn_tasks(spec, 1)
        shared_nodes = list(spec.outer_root.iter_preorder()) + list(
            spec.inner_root.iter_preorder()
        )
        for task in tasks:
            restricted = task_spec(task)
            run_interchanged(restricted, subtree_truncation=True)
            run_twisted(restricted, use_counters=True)
            for node in shared_nodes:
                assert node.trunc is False
                assert node.trunc_counter == -1

    def test_interleaved_tasks_match_sequential(self):
        """Simulated concurrency: alternating inner phases of two tasks
        over the SAME shared trees must reproduce each task's solo
        work set — impossible if flags leaked through tree nodes."""
        spec = paper_spec(truncate_inner2=lambda o, i: o.label == "B")
        tasks = [
            task
            for task in spawn_tasks(spec, 1)
            if task.outer_root.children
        ]
        assert len(tasks) >= 2

        def solo_points(task):
            recorder = WorkRecorder()
            from repro.core import run_interchanged

            run_interchanged(
                task_spec(task), instrument=recorder, subtree_truncation=True
            )
            return recorder.points

        expected = [solo_points(task) for task in tasks]
        # Interleave: rerun both, in lockstep by alternating runs (the
        # executors are not generators, so this exercises state left
        # behind between runs rather than true concurrency).
        observed = [solo_points(task) for task in reversed(tasks)]
        assert observed == list(reversed(expected))

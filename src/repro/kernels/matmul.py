"""Matrix Multiplication (MM) — the paper's second synthetic benchmark.

"A simple computation over two matrices where the outer recursion walks
over the rows of the first matrix and the inner recursion walks over the
columns of the second.  The work(o, i) performed by the nested recursion
is a dot product of row o and column i, so the overall computation
performs a matrix multiplication."

Rows and columns are organized as balanced binary *index trees*: every
tree node owns one row (respectively column) index, so the cross
product of the two trees is exactly the ``n x m`` output space, and the
tree structure gives recursion twisting its size hierarchy.  For the
memory model, each row and each column is one data block of
``lines_per_vector`` cache lines (see
:meth:`MatrixMultiply.register_layout`) — the locality structure is the
vector outer product analyzed in Section 3.2.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.spec import NestedRecursionSpec
from repro.memory.layout import AddressMap
from repro.spaces.node import TreeNode
from repro.spaces.soa import soa_arrays, soa_from_arrays, soa_view
from repro.spaces.trees import balanced_tree


#: Expected TW2xx verdicts for this benchmark's spec (the output of
#: ``python -m repro.transform lint-lower --benchmark MM``).  MM is
#: ``lowerable`` (typed gathers and affine rank indexing throughout)
#: and ``independent`` under a verified data precondition: its output
#: write ``c[o.data, i.data]`` is disjoint across outer tasks because
#: ``outer.data`` (the row index column) is injective on the live tree
#: (TW212).  A regression below either verdict fails tests and CI.
LOWER_VERDICT = {"lower": "lowerable", "independence": "independent"}

#: Expected TW30x locality verdicts at the benchmark's default size
#: (384 x 384, scale 1.0) under the paper's Xeon cache model.  The
#: inner working set — column-index nodes plus the per-column slices
#: of the captured ``b`` matrix — lands just past L1 into L2 with full
#: reuse, so blocking is predicted profitable across the board.
LOCALITY_VERDICT = {
    "interchange": "profitable",
    "twist": "profitable",
    "layout:veb": "profitable",
    "layout:bfs": "neutral",
}


@dataclass
class MatrixMultiply:
    """A runnable recursive matrix multiplication ``C = A @ B``.

    ``A`` is ``n x p``, ``B`` is ``p x m``; the outer tree has one node
    per row of ``A`` and the inner tree one node per column of ``B``.
    ``C`` is written once per work point, at a unique position, so the
    computation is dependence-free (as the paper classifies MM).
    """

    n: int
    m: int
    p: int = 8
    seed: int = 0
    #: cache lines modeling one row/column vector (the knob that sets
    #: the working-set-to-cache ratio in the experiments)
    lines_per_vector: int = 4

    a: np.ndarray = field(init=False)
    b: np.ndarray = field(init=False)
    c: np.ndarray = field(init=False)
    outer_root: TreeNode = field(init=False)
    inner_root: TreeNode = field(init=False)

    def __post_init__(self) -> None:
        if min(self.n, self.m, self.p) < 1:
            raise ValueError("matrix dimensions must be positive")
        rng = np.random.default_rng(self.seed)
        self.a = rng.random((self.n, self.p))
        self.b = rng.random((self.p, self.m))
        self.c = np.zeros((self.n, self.m))
        # data = the row/column index owned by the node (BFS order).
        self.outer_root = balanced_tree(self.n, data=lambda k: k)
        self.inner_root = balanced_tree(self.m, data=lambda k: k)

    def make_spec(self) -> NestedRecursionSpec:
        """A fresh spec; clears the output matrix."""
        self.c = np.zeros((self.n, self.m))
        spec = _matmul_spec(
            self.outer_root,
            self.inner_root,
            self.a,
            self.b,
            self.c,
            f"MM({self.n}x{self.m})",
        )
        spec.parallel_plan = self._parallel_plan()
        return spec

    def _parallel_plan(self):
        """The real task-parallel runtime's view of this instance.

        Inputs (both index trees as SoA columns, plus ``A`` and ``B``)
        are published once; the output is one fill-initialized shared
        column that tasks write at disjoint ``(row, col)`` cells — the
        property the independence witness proves — so no parent-side
        merge is needed beyond one copy back into ``self.c``.
        """
        from repro.core.parallel_exec import ParallelPlan
        from repro.spaces.soa import ResultColumn

        arrays = {"a": self.a, "b": self.b}
        for prefix, root in (("outer.", self.outer_root), ("inner.", self.inner_root)):
            for name, column in soa_arrays(soa_view(root)).items():
                arrays[prefix + name] = column

        def apply(results: dict) -> None:
            np.copyto(self.c, results["c"])

        def make_probe():
            probe = MatrixMultiply(n=12, m=12, p=4)
            return probe.make_spec(), matmul_footprint

        return ParallelPlan(
            factory="repro.kernels.matmul:parallel_worker",
            arrays=arrays,
            params={"name": f"MM({self.n}x{self.m})"},
            results=(ResultColumn("c", (self.n, self.m), "float64", "shared"),),
            apply=apply,
            make_probe=make_probe,
            witness_key="matmul",
        )

    def expected(self) -> np.ndarray:
        """The oracle product ``A @ B``."""
        return self.a @ self.b

    def max_error(self) -> float:
        """Largest absolute deviation of the last run from the oracle."""
        return float(np.abs(self.c - self.expected()).max())

    def register_layout(self, address_map: AddressMap) -> None:
        """Register row/column vectors as multi-line blocks.

        Keys follow the ``(tree, node.number)`` convention consumed by
        :class:`~repro.core.instruments.CacheProbe`: touching an outer
        node means streaming through its row; touching an inner node
        means streaming through its column.
        """
        for node in self.outer_root.iter_preorder():
            address_map.register(("outer", node.number), self.lines_per_vector)
        for node in self.inner_root.iter_preorder():
            address_map.register(("inner", node.number), self.lines_per_vector)


def _matmul_spec(
    outer_root: TreeNode,
    inner_root: TreeNode,
    a: np.ndarray,
    b: np.ndarray,
    c: np.ndarray,
    name: str,
) -> NestedRecursionSpec:
    """The MM spec over given trees and matrices.

    Shared by :meth:`MatrixMultiply.make_spec` (parent-side) and
    :func:`parallel_worker` (worker-side, with ``c`` attached to the
    published shared-memory output column) so both execute the
    identical per-cell dot products.
    """

    def work(o: TreeNode, i: TreeNode) -> None:
        row, col = o.data, i.data
        c[row, col] = float(a[row, :] @ b[:, col])

    def work_batch(os: list, is_: list) -> None:
        # Every (row, col) is visited exactly once per run, so the
        # fancy-index assignment never sees duplicate targets.
        rows = np.array([o.data for o in os], dtype=np.intp)
        cols = np.array([i.data for i in is_], dtype=np.intp)
        c[rows, cols] = np.einsum("ij,ji->i", a[rows, :], b[:, cols])

    def work_batch_soa(o_view, i_view, o_positions, i_positions) -> None:
        # Row/column indices come straight out of the packed
        # ``data`` columns — same einsum, no node objects.  asarray
        # keeps the staging zero-copy when the caller (the compiled
        # backend) already passes np.intp arrays.
        rows = o_view.column("data")[np.asarray(o_positions, dtype=np.intp)]
        cols = i_view.column("data")[np.asarray(i_positions, dtype=np.intp)]
        c[rows, cols] = np.einsum("ij,ji->i", a[rows, :], b[:, cols])

    return NestedRecursionSpec(
        outer_root=outer_root,
        inner_root=inner_root,
        work=work,
        work_batch=work_batch,
        work_batch_soa=work_batch_soa,
        name=name,
    )


def parallel_worker(arrays: dict, params: dict, results: dict):
    """Worker factory for MM (see ``ParallelPlan.factory``).

    Rebuilds the row/column index trees from the shared SoA columns
    and wires the work functions to the *attached* ``A``/``B`` inputs
    and shared ``c`` output, so every task's writes land directly in
    the published result column — cells are disjoint across tasks.
    """
    outer = soa_from_arrays(
        {k[len("outer."):]: v for k, v in arrays.items() if k.startswith("outer.")}
    )
    inner = soa_from_arrays(
        {k[len("inner."):]: v for k, v in arrays.items() if k.startswith("inner.")}
    )
    return _matmul_spec(
        outer.nodes[outer.root],
        inner.nodes[inner.root],
        arrays["a"],
        arrays["b"],
        results["c"],
        str(params.get("name", "MM")),
    )


def matmul_footprint(o: TreeNode, i: TreeNode):
    """Soundness footprint for MM.

    Each work point reads row ``o`` and column ``i`` and writes the
    unique output cell ``C[o, i]`` — no two iterations share a written
    location, so every schedule is trivially sound (and the outer
    recursion is parallel).
    """
    return (
        (("row", o.data), False),
        (("col", i.data), False),
        (("out", o.data, i.data), True),
    )

"""Matrix-matrix multiplication as three-level nested recursion (§7.2).

The paper's motivating example for multi-level twisting: MMM is a
triply-nested loop ``C[i, j] += A[i, k] * B[k, j]``, which two-level
twisting cannot block in all three dimensions at once.  Here each loop
becomes one dimension of a :class:`~repro.core.multilevel.MultiLevelSpec`
(balanced index trees over i, j, k), and
:func:`~repro.core.multilevel.run_twisted_n` produces the recursive
blocking of the classic cache-oblivious MMM — parameter-free.

The memory model is element-granular: a work point ``(i, j, k)``
touches one line each of ``A``, ``B``, and ``C`` (computed from row-
major element coordinates), so the simulated hierarchy sees exactly the
three-array interference pattern that makes MMM the canonical blocking
benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.multilevel import MultiLevelInstrument, MultiLevelSpec
from repro.memory.hierarchy import CacheHierarchy
from repro.spaces.node import IndexNode, TreeNode
from repro.spaces.trees import balanced_tree


@dataclass
class MatMul3:
    """Runnable recursive MMM: ``C (n x m) = A (n x p) @ B (p x m)``."""

    n: int
    m: int
    p: int
    seed: int = 0
    a: np.ndarray = field(init=False)
    b: np.ndarray = field(init=False)
    c: np.ndarray = field(init=False)
    #: index trees over i (rows), j (columns), k (inner dimension)
    roots: tuple[TreeNode, TreeNode, TreeNode] = field(init=False)

    def __post_init__(self) -> None:
        if min(self.n, self.m, self.p) < 1:
            raise ValueError("matrix dimensions must be positive")
        rng = np.random.default_rng(self.seed)
        self.a = rng.random((self.n, self.p))
        self.b = rng.random((self.p, self.m))
        self.c = np.zeros((self.n, self.m))
        self.roots = (
            balanced_tree(self.n, data=lambda x: x),
            balanced_tree(self.m, data=lambda x: x),
            balanced_tree(self.p, data=lambda x: x),
        )

    def make_spec(self) -> MultiLevelSpec:
        """A fresh three-dimensional spec; clears the output matrix."""
        self.c = np.zeros((self.n, self.m))
        a, b, c = self.a, self.b, self.c

        def work(node_i: TreeNode, node_j: TreeNode, node_k: TreeNode) -> None:
            i, j, k = node_i.data, node_j.data, node_k.data
            c[i, j] += a[i, k] * b[k, j]

        return MultiLevelSpec(
            roots=self.roots, work=work, name=f"MMM({self.n}x{self.m}x{self.p})"
        )

    def expected(self) -> np.ndarray:
        """The oracle product."""
        return self.a @ self.b

    def max_error(self) -> float:
        """Largest absolute deviation of the last run from the oracle."""
        return float(np.abs(self.c - self.expected()).max())


class MatMul3CacheProbe(MultiLevelInstrument):
    """Element-granular cache probe for three-level MMM.

    Addresses are row-major element indices divided into
    ``elements_per_line`` (doubles per 64-byte line = 8), with the three
    arrays in disjoint regions — the layout a C allocation would have.
    """

    def __init__(
        self,
        mmm: MatMul3,
        hierarchy: CacheHierarchy,
        elements_per_line: int = 8,
    ) -> None:
        self.mmm = mmm
        self.hierarchy = hierarchy
        self.elements_per_line = elements_per_line
        a_lines = (mmm.n * mmm.p + elements_per_line - 1) // elements_per_line
        b_lines = (mmm.p * mmm.m + elements_per_line - 1) // elements_per_line
        self._a_base = 0
        self._b_base = a_lines
        self._c_base = a_lines + b_lines
        self.accesses = 0
        self.level_hits = [0] * (len(hierarchy.levels) + 1)

    def point(self, nodes: Sequence[IndexNode]) -> None:
        i, j, k = (node.data for node in nodes)  # type: ignore[attr-defined]
        per_line = self.elements_per_line
        lines = (
            self._a_base + (i * self.mmm.p + k) // per_line,
            self._b_base + (k * self.mmm.m + j) // per_line,
            self._c_base + (i * self.mmm.m + j) // per_line,
        )
        access = self.hierarchy.access
        for line in lines:
            self.level_hits[access(line)] += 1
            self.accesses += 1

    @property
    def memory_accesses(self) -> int:
        """Accesses that missed every cache level."""
        return self.level_hits[-1]

"""Property-based guarantees for the parallel runtime's data plane.

Two contracts, driven over arbitrary inputs:

1. **Shared-memory round trip** — exporting a packed SoA tree through
   ``multiprocessing.shared_memory`` and attaching it back yields
   bit-identical columns and an equivalent rebuilt tree, for every
   storage linearization and random tree shape.
2. **Decomposition invariance** — the real thread engine reproduces
   the serial result for arbitrary tree sizes, spawn depths, and
   worker counts; out-of-range spawn depths are always rejected with
   the valid range.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

import pytest

from repro.core.parallel_exec import run_parallel
from repro.core.schedules import ORIGINAL
from repro.errors import ScheduleError
from repro.kernels import TreeJoin
from repro.spaces import random_tree, to_soa, tree_depth
from repro.spaces.soa import (
    LINEARIZATIONS,
    attach_shared_arrays,
    close_shared_segments,
    export_shared_arrays,
    soa_arrays,
    soa_from_arrays,
)

orders = st.sampled_from(LINEARIZATIONS)


def numeric_random_tree(num_nodes: int, seed: int):
    """A random-shaped tree with shareable (numeric) payloads."""
    root = random_tree(num_nodes, seed=seed)
    for node in root.iter_preorder():
        node.data = node.number * 3 + 1
    return root


@given(
    num_nodes=st.integers(min_value=1, max_value=32),
    seed=st.integers(min_value=0, max_value=10_000),
    order=orders,
)
@settings(max_examples=25, deadline=None)
def test_shared_memory_round_trip_is_bit_identical(num_nodes, seed, order):
    root = numeric_random_tree(num_nodes, seed)
    arrays = soa_arrays(to_soa(root, order))
    handles, segments = export_shared_arrays(arrays)
    try:
        attached, worker_segments = attach_shared_arrays(handles)
        try:
            assert set(attached) == set(arrays)
            for name in arrays:
                assert arrays[name].dtype == attached[name].dtype
                assert np.array_equal(arrays[name], attached[name]), name
            rebuilt = soa_from_arrays(
                {name: np.array(col, copy=True) for name, col in attached.items()},
                order=order,
            )
            observed = [
                (node.label, node.data, node.size, node.number)
                for node in rebuilt.nodes[rebuilt.root].iter_preorder()
            ]
            expected = [
                (node.label, node.data, node.size, node.number)
                for node in root.iter_preorder()
            ]
            assert observed == expected
        finally:
            close_shared_segments(worker_segments, unlink=False)
    finally:
        close_shared_segments(segments, unlink=True)


@given(
    outer_nodes=st.integers(min_value=1, max_value=48),
    inner_nodes=st.integers(min_value=1, max_value=48),
    depth_fraction=st.floats(min_value=0.0, max_value=1.0),
    workers=st.integers(min_value=1, max_value=4),
)
@settings(max_examples=20, deadline=None)
def test_thread_engine_matches_serial_at_every_spawn_depth(
    outer_nodes, inner_nodes, depth_fraction, workers
):
    tj = TreeJoin(outer_nodes, inner_nodes)
    ORIGINAL.run(tj.make_spec(), backend="recursive")
    expected = (tj.accumulator.total, tj.accumulator.pairs)

    spec = tj.make_spec()
    max_depth = tree_depth(spec.outer_root) - 1
    depth = min(max_depth, int(round(depth_fraction * max_depth)))
    run_parallel(
        spec,
        schedule=ORIGINAL,
        engine="thread",
        max_workers=workers,
        spawn_depth=depth,
    )
    assert (tj.accumulator.total, tj.accumulator.pairs) == expected


@given(
    outer_nodes=st.integers(min_value=1, max_value=48),
    excess=st.integers(min_value=1, max_value=10),
)
@settings(max_examples=15, deadline=None)
def test_out_of_range_spawn_depths_always_rejected(outer_nodes, excess):
    from repro.core.parallel import spawn_tasks

    tj = TreeJoin(outer_nodes, 3)
    spec = tj.make_spec()
    max_depth = tree_depth(spec.outer_root) - 1
    with pytest.raises(ScheduleError, match="valid depths"):
        spawn_tasks(spec, max_depth + excess)
    with pytest.raises(ScheduleError, match="valid depths"):
        spawn_tasks(spec, -excess)

"""Load generator for the serving layer (``python -m repro.bench serve``).

Drives 10^5–10^6 simulated users against a resident
:class:`~repro.serve.service.QueryService` through the asyncio
:class:`~repro.serve.batcher.AdmissionBatcher` — the exact production
admission path, minus the TCP framing (measured separately by the
framing micro-bench below and the integration tests; the serving claim
is about execution, not socket I/O).  Each simulated user submits one
query drawn from a configurable kind mix with a hot set:
``hot_fraction`` of users re-ask one of ``hot_set`` popular queries,
the rest ask unique ones — the skew that makes the cross-batch verdict
cache and the intra-tick dedup earn their keep.

Two entry points:

* :func:`run_serve_load` — one scenario under one configuration (the
  unit the tests exercise);
* :func:`run_serve_suite` — the checked-in ``BENCH_serve.json``
  producer: the same workload swept across admission configurations
  (PR 8 baseline with dedup/adaptive hold off, dedup on, dedup + N
  shards), sharing one serial baseline and one oracle, plus a wire
  framing micro-bench (JSON vs binary encode/decode cost and bytes).

Correctness is not sampled: the batched result of **every** user in
**every** run is bit-compared against the serial oracle of its
distinct query (equal queries have equal oracles — the oracle is
deterministic), and the run fails loudly on any mismatch.
"""

from __future__ import annotations

import asyncio
import json
import os
import platform
import time
from dataclasses import dataclass, replace
from typing import Optional, Sequence

import numpy as np

from repro.bench.reporting import ExperimentReport
from repro.errors import ReproError
from repro.serve.batcher import AdmissionBatcher
from repro.serve.protocol import (
    CountQuery,
    KNNQuery,
    NNQuery,
    Query,
)
from repro.serve.service import QueryService, ServiceConfig

#: Default knobs of the checked-in BENCH_serve.json run.
DEFAULT_REFERENCES = 16384
DEFAULT_USERS = 100_000
DEFAULT_JSON_PATH = "BENCH_serve.json"

#: Kind mix (nn, knn, count) the simulated users draw from.
DEFAULT_MIX = (0.4, 0.2, 0.4)

#: Messages per side in the framing micro-bench.
FRAMING_MESSAGES = 2000


@dataclass(frozen=True)
class LoadSpec:
    """One load-generation scenario."""

    references: int = DEFAULT_REFERENCES
    users: int = DEFAULT_USERS
    hot_fraction: float = 0.7
    hot_set: int = 64
    mix: tuple[float, float, float] = DEFAULT_MIX
    k: int = 5
    radius: float = 0.3
    seed: int = 1
    concurrency: int = 2048
    serial_sample: int = 1500


@dataclass(frozen=True)
class RunConfig:
    """One admission configuration in the suite sweep."""

    name: str
    shards: int = 1
    dedup: bool = True
    adaptive_hold: bool = True
    workers: int = 0


#: The checked-in sweep: the PR 8 baseline (static hold, no dedup,
#: one shard), dedup alone, and dedup + 2 shards.
DEFAULT_RUNS = (
    RunConfig("baseline-pr8", dedup=False, adaptive_hold=False),
    RunConfig("dedup", shards=1),
    RunConfig("dedup-2shards", shards=2),
)


def generate_workload(
    spec: LoadSpec, references: np.ndarray
) -> list[Query]:
    """The full, deterministic user query sequence for one scenario.

    Query points are fresh clustered draws (same distribution as the
    references, never the same points); hot users resample from the
    first ``hot_set`` of them.
    """
    from repro.spaces.points import clustered_points

    rng = np.random.default_rng(spec.seed)
    distinct = clustered_points(
        max(spec.hot_set, spec.users),
        clusters=24,
        spread=0.05,
        seed=spec.seed + 1,
    )
    kinds = rng.choice(3, size=spec.users, p=list(spec.mix))
    hot = rng.random(spec.users) < spec.hot_fraction
    hot_pick = rng.integers(0, spec.hot_set, size=spec.users)
    queries: list[Query] = []
    for index in range(spec.users):
        row = hot_pick[index] if hot[index] else index
        point = tuple(float(value) for value in distinct[row])
        kind = int(kinds[index])
        if kind == 0:
            queries.append(NNQuery(point))
        elif kind == 1:
            queries.append(KNNQuery(point, spec.k))
        else:
            queries.append(CountQuery(point, spec.radius))
    return queries


async def _drive(
    batcher: AdmissionBatcher,
    queries: Sequence[Query],
    concurrency: int,
) -> tuple[list, np.ndarray, float]:
    """Submit every user query; returns (results, latencies, wall).

    ``concurrency`` long-lived simulator tasks pull user indices from
    one shared iterator — bounded task count regardless of workload
    length, with ``concurrency`` queries in flight at steady state.
    """
    results: list = [None] * len(queries)
    latencies = np.zeros(len(queries))
    indices = iter(range(len(queries)))

    async def simulator() -> None:
        for index in indices:
            start = time.perf_counter()
            results[index] = await batcher.submit(queries[index])
            latencies[index] = time.perf_counter() - start

    wall_start = time.perf_counter()
    await asyncio.gather(
        *(simulator() for _ in range(min(concurrency, len(queries))))
    )
    await batcher.drain()
    wall = time.perf_counter() - wall_start
    return results, latencies, wall


def _drive_scenario(
    service: QueryService,
    config: ServiceConfig,
    spec: LoadSpec,
    queries: Sequence[Query],
    dedup: bool = True,
    adaptive_hold: bool = True,
) -> tuple[list, np.ndarray, float, AdmissionBatcher]:
    """One full load run through a fresh batcher over ``service``."""
    batcher_holder: dict = {}

    async def scenario():
        batcher = AdmissionBatcher(
            service.execute_batch,
            max_batch=config.max_batch,
            max_hold_s=config.max_hold_s,
            dedup=dedup,
            adaptive_hold=adaptive_hold,
        )
        batcher_holder["batcher"] = batcher
        return await _drive(batcher, queries, spec.concurrency)

    results, latencies, wall = asyncio.run(scenario())
    return results, latencies, wall, batcher_holder["batcher"]


def _distinct_map(queries: Sequence[Query]) -> dict[Query, list[int]]:
    distinct: dict[Query, list[int]] = {}
    for index, query in enumerate(queries):
        distinct.setdefault(query, []).append(index)
    return distinct


def _check_identity(
    results: Sequence, oracle: Sequence, distinct: dict[Query, list[int]]
) -> None:
    """Bit-identity of every user's answer vs its distinct oracle."""
    mismatches = 0
    for answer, indices in zip(oracle, distinct.values()):
        for index in indices:
            if results[index] != answer:
                mismatches += 1
    if mismatches:
        raise ReproError(
            f"serving bit-identity violated: {mismatches} of "
            f"{sum(len(v) for v in distinct.values())} batched answers "
            "differ from the serial oracle"
        )


def _host() -> dict:
    return {
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "python": platform.python_version(),
    }


def _latency_summary(latencies: np.ndarray) -> dict:
    return {
        "p50": float(np.percentile(latencies, 50) * 1000),
        "p99": float(np.percentile(latencies, 99) * 1000),
        "mean": float(latencies.mean() * 1000),
        "max": float(latencies.max() * 1000),
    }


def run_serve_load(
    spec: LoadSpec = LoadSpec(),
    config: Optional[ServiceConfig] = None,
    service: Optional[QueryService] = None,
    dedup: bool = True,
    adaptive_hold: bool = True,
) -> tuple[ExperimentReport, dict]:
    """Run one scenario; returns (report, BENCH_serve payload).

    Raises :class:`~repro.errors.ReproError` on any batched-vs-serial
    result mismatch — bit-identity is an acceptance criterion, not a
    statistic.
    """
    from repro.spaces.points import clustered_points

    config = config or ServiceConfig()
    own_service = service is None
    if service is None:
        references = clustered_points(
            spec.references, clusters=24, spread=0.05, seed=spec.seed
        )
        service = QueryService(references, config)
    try:
        queries = generate_workload(spec, service.references)
        results, latencies, wall, batcher = _drive_scenario(
            service, config, spec, queries, dedup, adaptive_hold
        )

        # Serial baseline: per-query cost sampled uniformly.
        rng = np.random.default_rng(spec.seed + 2)
        sample_size = min(spec.serial_sample, len(queries))
        sample = rng.choice(len(queries), size=sample_size, replace=False)
        serial_start = time.perf_counter()
        service.execute_serial([queries[index] for index in sample])
        serial_seconds = time.perf_counter() - serial_start
        serial_mean = serial_seconds / sample_size
        serial_qps = 1.0 / serial_mean

        distinct = _distinct_map(queries)
        oracle = service.execute_serial(list(distinct))
        _check_identity(results, oracle, distinct)

        qps = len(queries) / wall
        speedup = qps / serial_qps
        payload = {
            "experiment": "serve",
            "host": _host(),
            "references": int(len(service.references)),
            "users": len(queries),
            "distinct_queries": len(distinct),
            "hot_fraction": spec.hot_fraction,
            "hot_set": spec.hot_set,
            "mix": {
                "nn": spec.mix[0],
                "knn": spec.mix[1],
                "count": spec.mix[2],
            },
            "config": {
                "leaf_size": config.leaf_size,
                "query_leaf_size": config.query_leaf_size,
                "max_batch": config.max_batch,
                "max_hold_ms": config.max_hold_s * 1000.0,
                "flush_candidates": config.flush_candidates,
                "workers": config.workers,
                "shards": config.shards,
                "dedup": dedup,
                "adaptive_hold": adaptive_hold,
            },
            "backends": {
                kind: dict(entry)
                for kind, entry in service.analysis.items()
            },
            "latency_ms": _latency_summary(latencies),
            "qps": qps,
            "wall_seconds": wall,
            "serial": {
                "sampled": sample_size,
                "mean_ms": serial_mean * 1000.0,
                "qps": serial_qps,
            },
            "speedup": speedup,
            "bit_identical": True,
            "batcher": batcher.batcher_stats(),
            "verdict_cache": service.service_stats()["verdict_cache"],
        }
        report = _report(payload)
        return report, payload
    finally:
        if own_service:
            service.close()


def framing_microbench(
    queries: Sequence[Query],
    results: Sequence,
    messages: int = FRAMING_MESSAGES,
) -> dict:
    """Encode+decode cost and wire bytes: JSON lines vs binary frames.

    Measures the per-message serialization tax of each framing over a
    real query/result sample — the part of the wire cost the server
    pays per request regardless of socket behavior.  Both paths are
    verified to round-trip the identical objects before timing.
    """
    from repro.serve import framing as fr
    from repro.serve.protocol import (
        decode_query,
        decode_result,
        encode_query,
        encode_result,
    )

    queries = list(queries)[:messages]
    results = list(results)[:messages]

    for query, result in zip(queries, results):
        assert decode_query(json.loads(json.dumps(encode_query(query)))) == (
            query
        )
        assert fr.unpack_query(fr.pack_query(query)) == query
        assert decode_result(
            json.loads(json.dumps(encode_result(result)))
        ) == result
        assert fr.unpack_result(fr.pack_result(result)) == result

    json_bytes = 0
    start = time.perf_counter()
    for query, result in zip(queries, results):
        line = json.dumps(encode_query(query)).encode() + b"\n"
        json_bytes += len(line)
        decode_query(json.loads(line))
        line = json.dumps(encode_result(result)).encode() + b"\n"
        json_bytes += len(line)
        decode_result(json.loads(line))
    json_seconds = time.perf_counter() - start

    binary_bytes = 0
    start = time.perf_counter()
    for query, result in zip(queries, results):
        frame = fr.encode_frame(fr.T_QUERY, 1, fr.pack_query(query))
        binary_bytes += len(frame)
        fr.unpack_query(fr.decode_frame(frame[4:])[2])
        frame = fr.encode_frame(fr.T_RESULT, 1, fr.pack_result(result))
        binary_bytes += len(frame)
        fr.unpack_result(fr.decode_frame(frame[4:])[2])
    binary_seconds = time.perf_counter() - start

    count = len(queries)
    return {
        "messages": count,
        "json": {
            "round_trip_us": 1e6 * json_seconds / max(1, count),
            "bytes": json_bytes,
        },
        "binary": {
            "round_trip_us": 1e6 * binary_seconds / max(1, count),
            "bytes": binary_bytes,
        },
        "bytes_ratio": (
            json_bytes / binary_bytes if binary_bytes else float("inf")
        ),
        "speedup": (
            json_seconds / binary_seconds if binary_seconds else float("inf")
        ),
    }


def run_serve_suite(
    spec: LoadSpec = LoadSpec(),
    base_config: Optional[ServiceConfig] = None,
    runs: Sequence[RunConfig] = DEFAULT_RUNS,
) -> tuple[ExperimentReport, dict]:
    """Sweep one workload across admission configurations.

    All runs share the identical deterministic workload, one serial
    baseline measurement, and one distinct-query oracle (computed on
    the first service — ``execute_serial`` always answers over the
    full unsharded tree, so the oracle is configuration-independent).
    Every run's every answer is bit-compared against that oracle.
    """
    from repro.spaces.points import clustered_points

    base_config = base_config or ServiceConfig()
    references = clustered_points(
        spec.references, clusters=24, spread=0.05, seed=spec.seed
    )
    queries = generate_workload(spec, references)
    distinct = _distinct_map(queries)

    serial_info: Optional[dict] = None
    oracle: Optional[list] = None
    run_payloads: dict[str, dict] = {}
    for run in runs:
        config = replace(
            base_config, shards=run.shards, workers=run.workers
        )
        service = QueryService(references, config)
        try:
            if oracle is None:
                rng = np.random.default_rng(spec.seed + 2)
                sample_size = min(spec.serial_sample, len(queries))
                sample = rng.choice(
                    len(queries), size=sample_size, replace=False
                )
                serial_start = time.perf_counter()
                service.execute_serial(
                    [queries[index] for index in sample]
                )
                serial_seconds = time.perf_counter() - serial_start
                serial_info = {
                    "sampled": int(sample_size),
                    "mean_ms": 1000.0 * serial_seconds / sample_size,
                    "qps": sample_size / serial_seconds,
                }
                oracle = service.execute_serial(list(distinct))
            results, latencies, wall, batcher = _drive_scenario(
                service,
                config,
                spec,
                queries,
                dedup=run.dedup,
                adaptive_hold=run.adaptive_hold,
            )
            _check_identity(results, oracle, distinct)
            qps = len(queries) / wall
            stats = batcher.batcher_stats()
            run_payloads[run.name] = {
                "config": {
                    "shards": run.shards,
                    "dedup": run.dedup,
                    "adaptive_hold": run.adaptive_hold,
                    "workers": run.workers,
                    "max_batch": config.max_batch,
                    "max_hold_ms": config.max_hold_s * 1000.0,
                },
                "qps": qps,
                "wall_seconds": wall,
                "speedup": qps * serial_info["mean_ms"] / 1000.0,
                "latency_ms": _latency_summary(latencies),
                "dedup_hit_rate": stats["dedup_hit_rate"],
                "bit_identical": True,
                "batcher": stats,
                "verdict_cache": service.service_stats()["verdict_cache"],
                "backends": {
                    kind: choice.backend
                    for kind, choice in service.choices.items()
                },
            }
        finally:
            service.close()

    assert serial_info is not None and oracle is not None
    framing = framing_microbench(list(distinct), oracle)

    baseline_name = runs[0].name
    candidate_name = runs[-1].name
    baseline = run_payloads[baseline_name]
    candidate = run_payloads[candidate_name]
    comparison = {
        "baseline": baseline_name,
        "candidate": candidate_name,
        "qps_gain": candidate["qps"] / baseline["qps"],
        "p99_gain": (
            baseline["latency_ms"]["p99"] / candidate["latency_ms"]["p99"]
            if candidate["latency_ms"]["p99"] > 0
            else float("inf")
        ),
    }
    payload = {
        "experiment": "serve_suite",
        "host": _host(),
        "workload": {
            "references": int(len(references)),
            "users": len(queries),
            "distinct_queries": len(distinct),
            "hot_fraction": spec.hot_fraction,
            "hot_set": spec.hot_set,
            "mix": {
                "nn": spec.mix[0],
                "knn": spec.mix[1],
                "count": spec.mix[2],
            },
            "concurrency": spec.concurrency,
            "seed": spec.seed,
        },
        "serial": serial_info,
        "runs": run_payloads,
        "framing": framing,
        "comparison": comparison,
        "bit_identical": all(
            run["bit_identical"] for run in run_payloads.values()
        ),
    }
    return _suite_report(payload), payload


def _report(payload: dict) -> ExperimentReport:
    report = ExperimentReport(
        title=(
            f"Serving: {payload['users']:,} users over "
            f"{payload['references']:,} reference points"
        ),
        columns=["metric", "value"],
    )
    latency = payload["latency_ms"]
    report.add_row("queries/sec (batched service)", round(payload["qps"], 1))
    report.add_row("p50 latency (ms)", round(latency["p50"], 3))
    report.add_row("p99 latency (ms)", round(latency["p99"], 3))
    report.add_row("mean latency (ms)", round(latency["mean"], 3))
    report.add_row(
        "serial baseline (ms/query)",
        round(payload["serial"]["mean_ms"], 3),
    )
    report.add_row("serial queries/sec", round(payload["serial"]["qps"], 1))
    report.add_row("throughput speedup", round(payload["speedup"], 2))
    report.add_row(
        "mean admitted batch",
        payload["batcher"]["mean_tick_size"],
    )
    report.add_row(
        "dedup hit rate",
        f"{100.0 * payload['batcher']['dedup_hit_rate']:.1f}%",
    )
    report.add_row(
        "bit-identical vs oracle",
        "yes" if payload["bit_identical"] else "NO",
    )
    cache = payload["verdict_cache"]
    lookups = cache["hits"] + cache["misses"]
    if lookups:
        report.add_row(
            "verdict-cache hit rate",
            f"{100.0 * cache['hits'] / lookups:.1f}%",
        )
    backends = ", ".join(
        f"{kind}={entry['backend']}"
        for kind, entry in payload["backends"].items()
    )
    report.add_note(f"pinned backends: {backends}")
    report.add_note(
        f"serial baseline sampled on {payload['serial']['sampled']} "
        "queries (per-query cost is workload-length independent)"
    )
    return report


def _suite_report(payload: dict) -> ExperimentReport:
    workload = payload["workload"]
    report = ExperimentReport(
        title=(
            f"Serving sweep: {workload['users']:,} users over "
            f"{workload['references']:,} reference points "
            f"({workload['distinct_queries']:,} distinct)"
        ),
        columns=[
            "run",
            "shards",
            "qps",
            "speedup",
            "p50 ms",
            "p99 ms",
            "dedup hit",
            "bit-identical",
        ],
    )
    for name, run in payload["runs"].items():
        report.add_row(
            name,
            run["config"]["shards"],
            round(run["qps"], 1),
            round(run["speedup"], 2),
            round(run["latency_ms"]["p50"], 3),
            round(run["latency_ms"]["p99"], 3),
            f"{100.0 * run['dedup_hit_rate']:.1f}%",
            "yes" if run["bit_identical"] else "NO",
        )
    serial = payload["serial"]
    report.add_note(
        f"serial baseline: {serial['mean_ms']:.3f} ms/query "
        f"({serial['qps']:.1f} qps, sampled {serial['sampled']})"
    )
    comparison = payload["comparison"]
    report.add_note(
        f"{comparison['candidate']} vs {comparison['baseline']}: "
        f"{comparison['qps_gain']:.2f}x qps, "
        f"{comparison['p99_gain']:.2f}x p99"
    )
    framing = payload["framing"]
    report.add_note(
        f"framing ({framing['messages']} msgs): json "
        f"{framing['json']['round_trip_us']:.1f}us/msg vs binary "
        f"{framing['binary']['round_trip_us']:.1f}us/msg "
        f"({framing['speedup']:.2f}x), bytes ratio "
        f"{framing['bytes_ratio']:.2f}x"
    )
    return report


def write_serve_json(
    payload: dict, path: str = DEFAULT_JSON_PATH
) -> str:
    """Write the serving payload as indented JSON; returns the path."""
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    return path

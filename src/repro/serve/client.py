"""A small blocking JSON-lines client for the serve CLI.

Used by the integration tests and the load generator's TCP mode; the
protocol is one JSON object per line, each request carrying a caller
``id`` echoed in its response (responses may arrive out of submission
order — admission ticks complete independently).
"""

from __future__ import annotations

import json
import socket
from typing import Optional, Sequence

from repro.errors import ReproError
from repro.serve.protocol import (
    Query,
    Result,
    decode_result,
    encode_query,
)


class ServeClientError(ReproError):
    """The server reported a failure for one request."""


class ServeClient:
    """One blocking connection to a ``python -m repro.serve`` server."""

    def __init__(
        self, host: str = "127.0.0.1", port: int = 8642, timeout: float = 60.0
    ) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")
        self._next_id = 0

    def _roundtrip(self, requests: Sequence[dict]) -> list[dict]:
        """Pipeline requests, return responses matched by id, in order."""
        by_id = {}
        for request in requests:
            self._next_id += 1
            request = dict(request, id=self._next_id)
            by_id[self._next_id] = None
            self._file.write(json.dumps(request).encode() + b"\n")
        self._file.flush()
        outstanding = len(by_id)
        while outstanding:
            line = self._file.readline()
            if not line:
                raise ServeClientError("server closed the connection")
            response = json.loads(line)
            rid = response.get("id")
            if rid in by_id and by_id[rid] is None:
                by_id[rid] = response
                outstanding -= 1
        return list(by_id.values())

    def query(self, query: Query) -> Result:
        """Answer one query."""
        return self.query_many([query])[0]

    def query_many(self, queries: Sequence[Query]) -> list[Result]:
        """Pipeline many queries over one connection, results in order."""
        responses = self._roundtrip(
            [{"op": "query", "query": encode_query(q)} for q in queries]
        )
        results: list[Result] = []
        for response in responses:
            if not response.get("ok"):
                raise ServeClientError(
                    response.get("error", "unknown server error")
                )
            results.append(decode_result(response["result"]))
        return results

    def stats(self) -> dict:
        """The server's service + batcher counters."""
        response = self._roundtrip([{"op": "stats"}])[0]
        if not response.get("ok"):
            raise ServeClientError(response.get("error", "stats failed"))
        return response["stats"]

    def ping(self) -> bool:
        """Liveness check."""
        return bool(self._roundtrip([{"op": "ping"}])[0].get("ok"))

    def shutdown(self) -> None:
        """Ask the server to exit (fire and forget)."""
        try:
            self._file.write(
                json.dumps({"op": "shutdown", "id": 0}).encode() + b"\n"
            )
            self._file.flush()
        except OSError:  # server may close before the flush completes
            pass

    def close(self) -> None:
        """Close the connection."""
        try:
            self._file.close()
        except OSError:  # pragma: no cover - already closed
            pass
        self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def wait_for_server(
    host: str, port: int, timeout: float = 30.0
) -> Optional[ServeClient]:
    """Poll until the server accepts connections; None on timeout."""
    import time

    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            client = ServeClient(host, port, timeout=timeout)
        except OSError:
            time.sleep(0.05)
            continue
        try:
            if client.ping():
                return client
        except (OSError, ServeClientError):  # pragma: no cover - races
            client.close()
            time.sleep(0.05)
            continue
    return None

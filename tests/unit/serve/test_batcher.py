"""Admission-batcher behavior: flush causes, demuxing, failure paths.

``run_batch`` is stubbed with plain functions so these tests pin the
*admission* semantics — what gets grouped, when a group flushes, and
how results and exceptions land back on the awaiting callers — without
building trees.
"""

import asyncio

import pytest

from repro.errors import SpecError
from repro.serve.batcher import AdmissionBatcher
from repro.serve.protocol import CountQuery, KNNQuery, NNQuery


def run(coroutine):
    return asyncio.run(coroutine)


def echo_batch(queries):
    """A run_batch stub answering each query with its own point."""
    return [query.point for query in queries]


class TestFlushCauses:
    def test_full_batch_flushes_without_waiting(self):
        ticks = []

        def record_batch(queries):
            ticks.append(len(queries))
            return echo_batch(queries)

        async def scenario():
            # A long hold: only the size trigger can flush in time.
            batcher = AdmissionBatcher(
                record_batch, max_batch=4, max_hold_s=30.0
            )
            results = await asyncio.gather(
                *(batcher.submit(NNQuery((float(i),))) for i in range(4))
            )
            return batcher, results

        batcher, results = run(scenario())
        assert ticks == [4]
        assert results == [(float(i),) for i in range(4)]
        assert batcher.full_flushes == 1
        assert batcher.timer_flushes == 0

    def test_straggler_flushes_on_the_hold_timer(self):
        async def scenario():
            batcher = AdmissionBatcher(
                echo_batch, max_batch=100, max_hold_s=0.01
            )
            result = await batcher.submit(NNQuery((1.5,)))
            return batcher, result

        batcher, result = run(scenario())
        assert result == (1.5,)
        assert batcher.timer_flushes == 1
        assert batcher.full_flushes == 0

    def test_incompatible_queries_never_share_a_tick(self):
        ticks = []

        def record_batch(queries):
            ticks.append({type(query).__name__ for query in queries})
            return echo_batch(queries)

        async def scenario():
            batcher = AdmissionBatcher(
                record_batch, max_batch=100, max_hold_s=0.01
            )
            await asyncio.gather(
                batcher.submit(NNQuery((1.0,))),
                batcher.submit(CountQuery((2.0,), 0.3)),
                batcher.submit(KNNQuery((3.0,), 5)),
                batcher.submit(KNNQuery((4.0,), 9)),  # different k
            )
            return batcher

        batcher = run(scenario())
        assert all(len(kinds) == 1 for kinds in ticks)
        assert batcher.ticks == 4

    def test_results_demux_in_submission_order(self):
        async def scenario():
            batcher = AdmissionBatcher(
                echo_batch, max_batch=8, max_hold_s=0.01
            )
            return await asyncio.gather(
                *(batcher.submit(NNQuery((float(i),))) for i in range(8))
            )

        assert run(scenario()) == [(float(i),) for i in range(8)]


class TestFailurePaths:
    def test_run_batch_exception_lands_on_every_caller(self):
        def explode(queries):
            raise RuntimeError("kernel fault")

        async def scenario():
            batcher = AdmissionBatcher(explode, max_batch=2, max_hold_s=30.0)
            return await asyncio.gather(
                batcher.submit(NNQuery((1.0,))),
                batcher.submit(NNQuery((2.0,))),
                return_exceptions=True,
            )

        results = run(scenario())
        assert len(results) == 2
        assert all(isinstance(result, RuntimeError) for result in results)

    def test_result_count_mismatch_is_a_spec_error(self):
        def drop_one(queries):
            return echo_batch(queries)[:-1]

        async def scenario():
            batcher = AdmissionBatcher(drop_one, max_batch=2, max_hold_s=30.0)
            return await asyncio.gather(
                batcher.submit(NNQuery((1.0,))),
                batcher.submit(NNQuery((2.0,))),
                return_exceptions=True,
            )

        results = run(scenario())
        assert all(isinstance(result, SpecError) for result in results)

    def test_bad_admission_knobs_rejected(self):
        with pytest.raises(SpecError, match="max_batch"):
            AdmissionBatcher(echo_batch, max_batch=0)
        with pytest.raises(SpecError, match="max_hold_s"):
            AdmissionBatcher(echo_batch, max_hold_s=-1.0)


class TestDrainAndStats:
    def test_drain_flushes_pending_and_awaits_inflight(self):
        async def scenario():
            batcher = AdmissionBatcher(
                echo_batch, max_batch=100, max_hold_s=30.0
            )
            # Long hold and small load: nothing would flush on its own.
            pending = [
                asyncio.ensure_future(batcher.submit(NNQuery((float(i),))))
                for i in range(3)
            ]
            await asyncio.sleep(0)  # let the submits enqueue
            await batcher.drain()
            return await asyncio.gather(*pending)

        assert run(scenario()) == [(0.0,), (1.0,), (2.0,)]

    def test_stats_account_every_query(self):
        async def scenario():
            batcher = AdmissionBatcher(
                echo_batch, max_batch=2, max_hold_s=0.01
            )
            await asyncio.gather(
                *(batcher.submit(NNQuery((float(i),))) for i in range(5))
            )
            return batcher.batcher_stats()

        stats = run(scenario())
        assert stats["queries"] == 5
        # One full flush admits the first pair; the rest accumulate
        # behind the in-flight tick and drain in capped chunks on its
        # completion.
        assert stats["ticks"] == 3
        assert stats["max_tick_size"] == 2
        assert stats["full_flushes"] == 1
        assert stats["completion_flushes"] >= 1


class TestSaturationDiscipline:
    def test_backlog_accumulates_while_a_tick_executes(self):
        """The anti-collapse property: with a tick in flight, the hold
        timer must NOT flush the backlog into tiny ticks — completion
        admits it as one batch.  (Without per-group serialization the
        saturated steady state degenerates to ~1-query ticks.)"""
        import threading

        release = threading.Event()
        ticks = []

        def slow_batch(queries):
            ticks.append(len(queries))
            if len(ticks) == 1:
                release.wait(5)
            return echo_batch(queries)

        async def scenario():
            batcher = AdmissionBatcher(
                slow_batch, max_batch=100, max_hold_s=0.001
            )
            first = asyncio.ensure_future(batcher.submit(NNQuery((0.0,))))
            await asyncio.sleep(0.05)  # first tick now blocked in flight
            rest = [
                asyncio.ensure_future(batcher.submit(NNQuery((float(i),))))
                for i in range(1, 9)
            ]
            await asyncio.sleep(0.05)  # many holds elapse; no flush
            release.set()
            await asyncio.gather(first, *rest)
            return batcher

        batcher = run(scenario())
        assert ticks == [1, 8]
        assert batcher.completion_flushes == 1

    def test_completion_backlog_drains_in_capped_chunks(self):
        import threading

        release = threading.Event()
        ticks = []

        def slow_batch(queries):
            ticks.append(len(queries))
            if len(ticks) == 1:
                release.wait(5)
            return echo_batch(queries)

        async def scenario():
            batcher = AdmissionBatcher(
                slow_batch, max_batch=4, max_hold_s=0.001
            )
            first = asyncio.ensure_future(batcher.submit(NNQuery((0.0,))))
            await asyncio.sleep(0.05)
            rest = [
                asyncio.ensure_future(batcher.submit(NNQuery((float(i),))))
                for i in range(1, 7)
            ]
            await asyncio.sleep(0.05)
            release.set()
            await asyncio.gather(first, *rest)
            return batcher

        batcher = run(scenario())
        assert ticks == [1, 4, 2]
        assert batcher.max_tick_size == 4


class TestIntraTickDedup:
    def test_duplicates_execute_once_and_fan_out(self):
        ticks = []

        def record_batch(queries):
            ticks.append([query.point for query in queries])
            return echo_batch(queries)

        async def scenario():
            batcher = AdmissionBatcher(
                record_batch, max_batch=100, max_hold_s=0.01
            )
            results = await asyncio.gather(
                batcher.submit(NNQuery((1.0, 2.0))),
                batcher.submit(NNQuery((1.0, 2.0))),
                batcher.submit(NNQuery((3.0, 4.0))),
                batcher.submit(NNQuery((1.0, 2.0))),
            )
            return batcher, results

        batcher, results = run(scenario())
        # run_batch saw only the two distinct points, once each.
        assert ticks == [[(1.0, 2.0), (3.0, 4.0)]]
        assert results == [(1.0, 2.0), (1.0, 2.0), (3.0, 4.0), (1.0, 2.0)]
        # Duplicate callers share the identical demuxed object.
        assert results[0] is results[1] is results[3]
        stats = batcher.batcher_stats()
        assert stats["queries"] == 4
        assert stats["executed"] == 2
        assert stats["dedup_folded"] == 2
        assert stats["dedup_hit_rate"] == 0.5
        assert stats["max_tick_size"] == 4
        assert stats["max_distinct_tick"] == 2

    def test_same_point_different_params_stay_distinct(self):
        ticks = []

        def record_batch(queries):
            ticks.append(len(queries))
            return echo_batch(queries)

        async def scenario():
            batcher = AdmissionBatcher(
                record_batch, max_batch=100, max_hold_s=0.01
            )
            await asyncio.gather(
                batcher.submit(KNNQuery((1.0,), 3)),
                batcher.submit(KNNQuery((1.0,), 3)),
                batcher.submit(CountQuery((1.0,), 0.3)),
                batcher.submit(CountQuery((1.0,), 0.5)),
            )
            return batcher

        batcher = run(scenario())
        # k=3 dedups within its group; the two radii never share a
        # group (group_key includes the radius), so nothing folds there.
        assert batcher.dedup_folded == 1
        assert batcher.executed == 3

    def test_max_batch_caps_distinct_queries_not_callers(self):
        ticks = []

        def record_batch(queries):
            ticks.append(len(queries))
            return echo_batch(queries)

        async def scenario():
            batcher = AdmissionBatcher(
                record_batch, max_batch=2, max_hold_s=30.0
            )
            # Two distinct points fill the tick even though three
            # callers are riding them; the straggler duplicate (after
            # the full flush) drains on completion.
            results = await asyncio.gather(
                batcher.submit(NNQuery((1.0,))),
                batcher.submit(NNQuery((1.0,))),
                batcher.submit(NNQuery((2.0,))),
                batcher.submit(NNQuery((2.0,))),
            )
            return batcher, results

        batcher, results = run(scenario())
        assert ticks == [2, 1]
        assert batcher.full_flushes == 1
        # The full tick admitted three user queries over two distinct.
        assert batcher.max_tick_size == 3
        assert results == [(1.0,), (1.0,), (2.0,), (2.0,)]

    def test_dedup_exception_lands_on_every_duplicate_caller(self):
        def explode(queries):
            raise RuntimeError("kernel fault")

        async def scenario():
            batcher = AdmissionBatcher(explode, max_batch=2, max_hold_s=30.0)
            return await asyncio.gather(
                batcher.submit(NNQuery((1.0,))),
                batcher.submit(NNQuery((1.0,))),
                batcher.submit(NNQuery((2.0,))),
                return_exceptions=True,
            )

        results = run(scenario())
        assert len(results) == 3
        assert all(isinstance(result, RuntimeError) for result in results)

    def test_dedup_disabled_executes_every_caller(self):
        ticks = []

        def record_batch(queries):
            ticks.append(len(queries))
            return echo_batch(queries)

        async def scenario():
            batcher = AdmissionBatcher(
                record_batch, max_batch=100, max_hold_s=0.01, dedup=False
            )
            await asyncio.gather(
                *(batcher.submit(NNQuery((1.0,))) for _ in range(4))
            )
            return batcher

        batcher = run(scenario())
        assert ticks == [4]
        assert batcher.dedup_folded == 0
        assert batcher.executed == 4


class TestAdaptiveHold:
    def test_hold_starts_at_the_ceiling(self):
        async def scenario():
            batcher = AdmissionBatcher(
                echo_batch, max_batch=100, max_hold_s=0.01
            )
            await batcher.submit(NNQuery((1.0,)))
            return batcher.batcher_stats()

        stats = run(scenario())
        holds = stats["adaptive_hold"]
        assert list(holds) == ["nn"]
        # A single arrival gives the controller no inter-arrival sample;
        # the hold stays at the configured ceiling.
        assert holds["nn"]["hold_ms"] == 10.0
        assert holds["nn"]["ewma_interarrival_ms"] is None

    def test_dense_traffic_tightens_the_hold_below_the_ceiling(self):
        async def scenario():
            batcher = AdmissionBatcher(
                echo_batch, max_batch=4, max_hold_s=1.0
            )
            # Bursts of back-to-back arrivals: inter-arrival EWMA is
            # microseconds, so the target hold collapses far below the
            # 1 s ceiling.
            for _ in range(5):
                await asyncio.gather(
                    *(batcher.submit(NNQuery((float(i),))) for i in range(4))
                )
            return batcher.batcher_stats()

        stats = run(scenario())
        hold = stats["adaptive_hold"]["nn"]
        assert hold["ewma_interarrival_ms"] is not None
        assert hold["hold_ms"] < 1000.0

    def test_adaptive_hold_disabled_keeps_the_static_knob(self):
        async def scenario():
            batcher = AdmissionBatcher(
                echo_batch,
                max_batch=4,
                max_hold_s=0.01,
                adaptive_hold=False,
            )
            for _ in range(5):
                await asyncio.gather(
                    *(batcher.submit(NNQuery((float(i),))) for i in range(4))
                )
            return batcher.batcher_stats()

        stats = run(scenario())
        hold = stats["adaptive_hold"]["nn"]
        assert hold["hold_ms"] == 10.0
        assert hold["ewma_interarrival_ms"] is None

    def test_bad_hold_arrivals_rejected(self):
        with pytest.raises(SpecError, match="hold_arrivals"):
            AdmissionBatcher(echo_batch, hold_arrivals=0.0)

"""Address layout: mapping abstract iteration-space data onto cache lines.

The schedule executors emit *logical* accesses — "``work`` touched outer
node ``o`` and inner node ``i``" (Section 3.2's model).  To drive a
cache simulation, those logical touches must land on addresses.  This
module assigns cache-line addresses to tree nodes and to auxiliary data
blocks (e.g. the row/column vectors of the Matrix Multiplication
kernel).

Three allocation policies are provided, because layout interacts with
the *spatial* locality that the paper explicitly scopes out (Section 8
discusses layout transformations as complementary work):

* ``preorder`` — nodes laid out in depth-first order, the layout a
  bump allocator would produce for a recursively built tree;
* ``bfs`` — level order, the layout of an array-backed heap;
* ``veb`` — the van-Emde-Boas-style blocked order of
  :func:`repro.spaces.soa.linearize`, so the simulated cache sees the
  same storage order the SoA backend's packed columns use;
* ``random`` — a seeded shuffle, modelling a fragmented heap.

With one node per line (the default, matching the paper's ~64-byte tree
nodes on 64-byte lines) the policies only differ when ``lines_per_node
> 1`` or when a cache models spatial prefetch; they exist so the bench
harness can show the temporal effects are layout-robust.
"""

from __future__ import annotations

import random
from typing import Hashable, Iterable, Optional

from repro.errors import MemorySimError
from repro.spaces.node import IndexNode

Address = int


class AddressMap:
    """Assigns contiguous line addresses to registered objects.

    Every registered object (tree node, data block) receives a run of
    ``lines`` consecutive line addresses.  Different trees registered in
    the same map occupy disjoint address ranges, as separately allocated
    structures would.
    """

    def __init__(self) -> None:
        self._lines: dict[Hashable, tuple[Address, int]] = {}
        self._next_line: Address = 0

    @property
    def total_lines(self) -> int:
        """Total number of line addresses handed out."""
        return self._next_line

    def register(self, key: Hashable, lines: int = 1) -> Address:
        """Assign ``lines`` consecutive addresses to ``key``.

        Returns the first line address.  Re-registering a key is an
        error — address maps describe a fixed allocation.
        """
        if lines < 1:
            raise MemorySimError(f"cannot register {key!r} with {lines} lines")
        if key in self._lines:
            raise MemorySimError(f"{key!r} is already registered")
        base = self._next_line
        self._lines[key] = (base, lines)
        self._next_line += lines
        return base

    def lines_of(self, key: Hashable) -> range:
        """The line addresses belonging to ``key``."""
        try:
            base, lines = self._lines[key]
        except KeyError:
            raise MemorySimError(f"{key!r} has no assigned address") from None
        return range(base, base + lines)

    def address_of(self, key: Hashable) -> Address:
        """First line address of ``key`` (the common one-line case)."""
        return self.lines_of(key)[0]

    def __contains__(self, key: Hashable) -> bool:
        return key in self._lines


def layout_tree(
    address_map: AddressMap,
    root: IndexNode,
    tree_id: Hashable,
    policy: str = "preorder",
    lines_per_node: int = 1,
    seed: int = 0,
) -> None:
    """Register every node of ``root``'s tree in the address map.

    Nodes are keyed ``(tree_id, node.number)`` so that two trees (or the
    same tree playing both roles) can coexist in one map.  ``policy``
    selects the allocation order described in the module docstring.
    """
    nodes = list(root.iter_preorder())
    if policy == "preorder":
        ordered = nodes
    elif policy == "bfs":
        ordered = sorted(nodes, key=_bfs_key(root))
    elif policy == "veb":
        from repro.spaces.soa import linearize

        ordered = linearize(root, "veb")
    elif policy == "random":
        ordered = list(nodes)
        random.Random(seed).shuffle(ordered)
    else:
        raise MemorySimError(f"unknown layout policy {policy!r}")
    for node in ordered:
        address_map.register((tree_id, node.number), lines_per_node)


def _bfs_key(root: IndexNode):
    """Sort key assigning each node its BFS (level-order) position."""
    position: dict[int, int] = {}
    frontier = [root]
    counter = 0
    while frontier:
        next_frontier: list[IndexNode] = []
        for node in frontier:
            position[id(node)] = counter
            counter += 1
            next_frontier.extend(node.children)
        frontier = next_frontier
    return lambda node: position[id(node)]


def node_lines(
    address_map: AddressMap, tree_id: Hashable, node: IndexNode
) -> range:
    """Line addresses of a node registered via :func:`layout_tree`."""
    return address_map.lines_of((tree_id, node.number))


def register_blocks(
    address_map: AddressMap,
    block_ids: Iterable[Hashable],
    lines_per_block: int,
    prefix: Optional[Hashable] = None,
) -> None:
    """Register a family of equally sized data blocks.

    The Matrix Multiplication kernel registers one block per matrix row
    and one per matrix column; ``work(o, i)`` then touches all lines of
    row ``o`` and column ``i``, reproducing the vector-outer-product
    locality structure the paper analyzes in Section 3.2.
    """
    for block in block_ids:
        key = (prefix, block) if prefix is not None else block
        address_map.register(key, lines_per_block)

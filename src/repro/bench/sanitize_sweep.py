"""The ``python -m repro.bench sanitize`` CI gate.

Shadow-executes every built-in benchmark under every vectorized
backend and schedule via :func:`repro.core.sanitize.run_sanitized`,
demanding bit-identical instrumentation event streams and payloads
against the recursive reference.  This is the runtime half of the
conformance story: whatever the static analyzer
(:mod:`repro.transform.lint.backend`) marked ``needs-dynamic-check``
is discharged — or exposed — here.

Writes ``SANITIZE.json`` (uploaded as a CI artifact on divergence) and
exits nonzero when any run diverges.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field

from repro.bench.workloads import wallclock_cases
from repro.core.sanitize import SanitizeDivergence, run_sanitized

#: Schedules swept by default: the untransformed baseline and the
#: paper's headline transformation.
DEFAULT_SCHEDULES = ("original", "twist")

#: Backends shadow-checked against ``recursive``.  The two vectorized
#: families are forced explicitly — at smoke scales ``auto`` would
#: legitimately pick ``recursive`` and the check would be vacuous.
DEFAULT_BACKENDS = ("batched", "soa")

DEFAULT_JSON_PATH = "SANITIZE.json"


@dataclass
class SanitizeSweep:
    """Outcome of one full sanitize sweep."""

    scale: float
    #: successful-run reports, as JSON dicts
    runs: list = field(default_factory=list)
    #: divergences, as JSON dicts (empty = all proven equivalent)
    divergences: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.divergences

    def to_json(self) -> dict:
        """The ``SANITIZE.json`` payload."""
        return {
            "scale": self.scale,
            "ok": self.ok,
            "runs": list(self.runs),
            "divergences": list(self.divergences),
        }

    def render(self) -> str:
        """One line per run: ``ok`` or ``DIVERGED`` with the details."""
        lines = [
            f"sanitize sweep (scale {self.scale}): "
            f"{len(self.runs)} run(s) equivalent, "
            f"{len(self.divergences)} divergence(s)"
        ]
        for run in self.runs:
            lines.append(
                f"  ok  {run['spec']:4s} {run['schedule']:10s} "
                f"{run['backend']:8s} events={run['events']} "
                f"phases={','.join(run['phases'])}"
            )
        for divergence in self.divergences:
            lines.append(
                f"  DIVERGED  {divergence['spec']} "
                f"{divergence['schedule']} {divergence['backend']}: "
                f"{divergence['message']}"
            )
        return "\n".join(lines)


def run_sanitize_sweep(
    scale: float = 0.05,
    schedule_names: tuple = DEFAULT_SCHEDULES,
    backends: tuple = DEFAULT_BACKENDS,
    benchmarks: tuple = (),
) -> SanitizeSweep:
    """Shadow-execute every (case, schedule, backend) combination.

    Divergences are collected, not raised — the sweep always covers
    the full grid so one broken kernel cannot hide another.
    """
    sweep = SanitizeSweep(scale=scale)
    for case in wallclock_cases(scale):
        if benchmarks and case.name not in benchmarks:
            continue
        for schedule_name in schedule_names:
            for backend in backends:
                try:
                    report = run_sanitized(
                        case.make_spec,
                        schedule_name,
                        backend=backend,
                        probe=case.result,
                    )
                    sweep.runs.append(report.to_json())
                except SanitizeDivergence as divergence:
                    sweep.divergences.append(
                        {
                            "spec": divergence.spec_name,
                            "schedule": divergence.schedule,
                            "backend": divergence.backend,
                            "phase": divergence.phase,
                            "index": divergence.index,
                            "expected": repr(divergence.expected),
                            "actual": repr(divergence.actual),
                            "kernels": list(divergence.kernels),
                            "message": str(divergence),
                        }
                    )
    return sweep


def write_sanitize_json(
    sweep: SanitizeSweep, path: str = DEFAULT_JSON_PATH
) -> str:
    """Write the sweep's JSON payload; returns the absolute path."""
    with open(path, "w") as handle:
        json.dump(sweep.to_json(), handle, indent=2, sort_keys=True)
        handle.write("\n")
    return os.path.abspath(path)


def main(argv: list | None = None) -> int:
    """Entry point used by ``python -m repro.bench sanitize``."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.bench sanitize",
        description="Shadow-execute vectorized backends against the "
        "recursive reference on every built-in benchmark.",
    )
    parser.add_argument("--scale", type=float, default=0.05)
    parser.add_argument(
        "--benchmark", action="append", metavar="NAME", default=None
    )
    parser.add_argument("--json", default=DEFAULT_JSON_PATH)
    args = parser.parse_args(argv)

    sweep = run_sanitize_sweep(
        scale=args.scale,
        benchmarks=tuple(name.upper() for name in args.benchmark or ()),
    )
    print(sweep.render())
    path = write_sanitize_json(sweep, args.json)
    print(f"JSON payload written to {path}")
    return 0 if sweep.ok else 1

"""The transformation tool driver (Section 5's pipeline, end to end).

``transform_source`` runs the full pipeline on source text:

1. **recognize** — syntactic sanity check against the Figure 2
   template (:mod:`repro.transform.recognizer`);
2. **analyze** — irregular-truncation detection
   (:mod:`repro.transform.analysis`);
3. **generate** — synthesis of the interchanged and twisted code
   (:mod:`repro.transform.codegen`).

``twist_functions`` is the convenience entry point for live functions:
it recovers their source with :mod:`inspect`, transforms it, and
executes the generated module in a namespace seeded with the original
functions' globals — so work statements calling helper functions keep
working.

Unlike the paper's prototype — which "relies on the programmer to only
annotate nested recursive functions that can be safely transformed" —
the pipeline runs the static schedule-safety analyzer
(:mod:`repro.transform.lint`) between analysis and codegen.  When the
analyzer *refutes* safety (an error-severity ``TW0xx`` finding), the
tool refuses to generate code unless ``allow_unproven=True``; holes in
the proof (verdict *needs-dynamic-check*) never block, they are
surfaced on the result's ``lint_report`` for the caller to follow up
with :mod:`repro.core.soundness`.
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from dataclasses import dataclass, field
from types import SimpleNamespace
from typing import Callable, Iterable, Optional

from repro.errors import LintError, TransformError
from repro.transform.analysis import TruncationAnalysis, analyze_truncation
from repro.transform.codegen import generate_module
from repro.transform.lint import LintReport, collect_pragmas, lint_template
from repro.transform.recognizer import RecursionTemplate, recognize


@dataclass
class TransformResult:
    """Everything the tool produced for one nested recursive pair."""

    template: RecursionTemplate
    analysis: TruncationAnalysis
    #: complete generated module source (originals + transforms)
    source: str
    #: schedule-safety lint findings (None when linting was disabled)
    lint_report: Optional[LintReport] = field(default=None)

    @property
    def is_irregular(self) -> bool:
        """Whether the Section 4 flag code was synthesized."""
        return self.analysis.is_irregular

    @property
    def twisted_entry(self) -> str:
        """Name of the twisted schedule's entry function."""
        return f"{self.template.outer_name}_twisted"

    @property
    def interchanged_entry(self) -> str:
        """Name of the interchanged schedule's entry function."""
        return f"{self.template.outer_name}_swapped"

    def compile(self, globals_seed: Optional[dict] = None) -> SimpleNamespace:
        """Execute the generated module; return its namespace.

        ``globals_seed`` supplies the helpers the work statements call
        (defaults to empty).  Returns a namespace exposing the original
        and generated functions by name.
        """
        namespace = dict(globals_seed or {})
        exec(compile(self.source, "<twist-generated>", "exec"), namespace)
        return SimpleNamespace(
            **{
                name: value
                for name, value in namespace.items()
                if callable(value) and not name.startswith("__")
            }
        )


def transform_source(
    source: str,
    outer_name: str,
    inner_name: str,
    cutoff: Optional[int] = None,
    *,
    lint: bool = True,
    allow_unproven: bool = False,
    assume_pure: Iterable[str] = (),
) -> TransformResult:
    """Run the full tool pipeline on module source text.

    With ``lint`` enabled (the default) the static schedule-safety
    analyzer runs between truncation analysis and codegen; a verdict
    of *unsafe* raises :class:`~repro.errors.LintError` unless
    ``allow_unproven`` is set, in which case generation proceeds and
    the findings ride along on ``lint_report``.  ``assume_pure`` names
    helper functions the analyzer may treat as read-only (the in-source
    ``# lint: assume-pure:`` pragma adds to it).
    """
    template = recognize(source, outer_name, inner_name)
    analysis = analyze_truncation(template)
    report: Optional[LintReport] = None
    if lint:
        pragma_pure, suppressions = collect_pragmas(source)
        report = lint_template(
            template,
            analysis,
            assume_pure=frozenset(assume_pure) | pragma_pure,
            suppressions=suppressions,
        )
        if report.has_errors and not allow_unproven:
            first = report.errors[0]
            raise LintError(
                f"static schedule-safety analysis refuted "
                f"{outer_name}/{inner_name}: "
                f"[{first.code}] {first.message} "
                f"({len(report.errors)} error(s) total; pass "
                f"allow_unproven=True / --allow-unproven to generate "
                f"anyway)",
                code=first.code,
                report=report,
            )
    generated = generate_module(template, analysis, cutoff=cutoff)
    return TransformResult(
        template=template,
        analysis=analysis,
        source=generated,
        lint_report=report,
    )


def find_annotated_pair(source: str) -> tuple[str, str]:
    """Locate the annotated outer/inner functions in module source.

    Looks for ``@outer_recursion(inner="...")`` and ``@inner_recursion``
    decorators (by name, so both plain and ``repro.transform.``-qualified
    usages work).  Returns ``(outer_name, inner_name)``.
    """
    try:
        tree = ast.parse(textwrap.dedent(source))
    except SyntaxError as error:
        raise TransformError(
            f"input source does not parse: {error}", code="TW001"
        ) from error
    outer_name: Optional[str] = None
    declared_inner: Optional[str] = None
    inner_name: Optional[str] = None
    for node in ast.walk(tree):
        if not isinstance(node, ast.FunctionDef):
            continue
        for decorator in node.decorator_list:
            target = decorator.func if isinstance(decorator, ast.Call) else decorator
            name = _dotted_tail(target)
            if name == "outer_recursion":
                outer_name = node.name
                if isinstance(decorator, ast.Call):
                    declared_inner = _inner_kwarg(decorator)
            elif name == "inner_recursion":
                inner_name = node.name
    if outer_name is None or inner_name is None:
        raise TransformError(
            "could not find an annotated pair: need one @outer_recursion "
            "and one @inner_recursion function"
        )
    if declared_inner is not None and declared_inner != inner_name:
        raise TransformError(
            f"@outer_recursion names inner={declared_inner!r} but the "
            f"@inner_recursion function is {inner_name!r}"
        )
    return outer_name, inner_name


def _dotted_tail(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _inner_kwarg(call: ast.Call) -> Optional[str]:
    for keyword in call.keywords:
        if keyword.arg == "inner" and isinstance(keyword.value, ast.Constant):
            return str(keyword.value.value)
    if call.args and isinstance(call.args[0], ast.Constant):
        return str(call.args[0].value)
    return None


def transform_annotated_source(
    source: str,
    cutoff: Optional[int] = None,
    *,
    lint: bool = True,
    allow_unproven: bool = False,
    assume_pure: Iterable[str] = (),
) -> TransformResult:
    """Pipeline entry that discovers the pair from annotations."""
    outer_name, inner_name = find_annotated_pair(source)
    return transform_source(
        source,
        outer_name,
        inner_name,
        cutoff=cutoff,
        lint=lint,
        allow_unproven=allow_unproven,
        assume_pure=assume_pure,
    )


def twist_functions(
    outer: Callable,
    inner: Callable,
    cutoff: Optional[int] = None,
    *,
    lint: bool = True,
    allow_unproven: bool = False,
    assume_pure: Iterable[str] = (),
) -> SimpleNamespace:
    """Transform two live functions and return runnable replacements.

    The returned namespace contains the original names plus
    ``<outer>_swapped``/``<inner>_swapped`` and the twisted quartet.
    The generated code runs against the originals' global namespace, so
    helpers they call resolve normally.
    """
    source = textwrap.dedent(inspect.getsource(outer)) + "\n" + textwrap.dedent(
        inspect.getsource(inner)
    )
    # Strip decorator lines: the generated module should not re-apply
    # markers (and the decorators may not be importable there).
    source = "\n".join(
        line for line in source.splitlines() if not line.lstrip().startswith("@")
    )
    result = transform_source(
        source,
        outer.__name__,
        inner.__name__,
        cutoff=cutoff,
        lint=lint,
        allow_unproven=allow_unproven,
        assume_pure=assume_pure,
    )
    return result.compile(globals_seed=dict(outer.__globals__))

"""Acceptance tests: the TW21x static proof replaces the warm-up probe.

The ISSUE-6 contract: on a multi-core host, ``choose_backend`` must
select the parallel backend for TJ and MM with *zero* dynamic warm-up
runs — the static affine-footprint proof alone opens the gate.  The
tests enforce "zero" literally by replacing each plan's ``make_probe``
with a tripwire that fails the test if it is ever called.
"""

import os

import pytest

import repro.core.backend_select as backend_select
from repro.core import parallel_exec
from repro.core.parallel_exec import check_outer_independence
from repro.kernels import MatrixMultiply, TreeJoin
from repro.transform.lint import lower


@pytest.fixture(autouse=True)
def fresh_proof_state():
    parallel_exec._INDEPENDENCE_CACHE.clear()
    lower.clear_cache()
    yield
    parallel_exec._INDEPENDENCE_CACHE.clear()
    lower.clear_cache()


def sabotage_probe(spec):
    """Make any warm-up run a loud failure instead of a silent cost."""

    def tripwire():
        raise AssertionError(
            "dynamic warm-up probe ran despite a static proof"
        )

    spec.parallel_plan.make_probe = tripwire
    return spec


class TestZeroProbeSelection:
    def test_tj_selects_parallel_with_no_warmup_run(self, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: 8)
        spec = sabotage_probe(TreeJoin(1023, 1023).make_spec())
        choice = backend_select.choose_backend(spec)
        assert choice.backend == "parallel"
        assert "statically" in choice.reason
        assert "no warm-up probe" in choice.reason

    def test_mm_selects_parallel_with_no_warmup_run(self, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: 8)
        # MM's default full-scale space (384x384) sits below the
        # 1M-point parallel threshold; lower the bar rather than build
        # a 1000x1000 matrix product in a unit test.
        monkeypatch.setattr(backend_select, "PARALLEL_SPACE_POINTS", 100_000)
        spec = sabotage_probe(MatrixMultiply(n=384, m=384, p=4).make_spec())
        choice = backend_select.choose_backend(spec)
        assert choice.backend == "parallel"
        assert "statically" in choice.reason
        assert "no warm-up probe" in choice.reason


class TestStaticGate:
    def test_static_proof_skips_the_probe_entirely(self):
        spec = sabotage_probe(TreeJoin(63, 63).make_spec())
        proven, why = check_outer_independence(spec.parallel_plan, spec)
        assert proven
        assert "statically" in why
        assert "TW21x" in why

    def test_static_verdict_is_cached_per_witness_key(self):
        spec = sabotage_probe(TreeJoin(63, 63).make_spec())
        first = check_outer_independence(spec.parallel_plan, spec)
        assert spec.parallel_plan.witness_key in parallel_exec._INDEPENDENCE_CACHE
        # Second call: cache hit, no re-analysis, no probe.
        assert check_outer_independence(spec.parallel_plan, spec) == first

    def test_without_spec_the_dynamic_witness_still_runs(self):
        # No spec handed over -> no static pass; the probe is the
        # only evidence and must actually run.
        ran = {"count": 0}
        spec = TreeJoin(63, 63).make_spec()
        original = spec.parallel_plan.make_probe

        def counting_probe():
            ran["count"] += 1
            return original()

        spec.parallel_plan.make_probe = counting_probe
        proven, why = check_outer_independence(spec.parallel_plan)
        assert proven
        assert ran["count"] == 1
        assert "witness run" in why

    def test_unprovable_spec_falls_back_to_the_dynamic_witness(self):
        # An opaque side effect drops the static verdict below
        # "independent"; the gate must then consult the probe rather
        # than trusting (or inverting) the partial static answer.
        spec = TreeJoin(63, 63).make_spec()
        shared: dict = {}

        def opaque_work(o, i):
            shared[id(o)] = i

        spec.work = opaque_work
        verdict, _reason = lower.static_independence(spec)
        assert verdict != "independent"
        ran = {"count": 0}
        original = spec.parallel_plan.make_probe

        def counting_probe():
            ran["count"] += 1
            return original()

        spec.parallel_plan.make_probe = counting_probe
        proven, _why = check_outer_independence(spec.parallel_plan, spec)
        assert proven  # the real TJ probe is clean
        assert ran["count"] == 1

    def test_run_parallel_accepts_the_static_proof(self):
        tj = TreeJoin(63, 63)
        expected = tj.expected_total()
        spec = sabotage_probe(tj.make_spec())
        parallel_exec.run_parallel(
            spec, engine="thread", max_workers=2
        )
        assert tj.result == expected

"""Exact reuse-distance (stack-distance) analysis.

The paper's locality arguments (Sections 1.1 and 3.2, Figure 5) are all
phrased in terms of *reuse distance*: the number of unique other
locations touched between two successive accesses to the same location
(Mattson et al., 1970).  This module computes exact reuse distances for
arbitrary access traces.

Two implementations are provided:

* :class:`ReuseDistanceAnalyzer` — Olken's algorithm: a hash map from
  key to its last access time plus a Fenwick (binary indexed) tree over
  time slots marking which past accesses are each key's *most recent*.
  The distance of an access is the count of marked slots strictly after
  the key's previous access — ``O(log T)`` per access, fast enough for
  the multi-million-access traces of the benchmarks.
* :func:`naive_reuse_distances` — the textbook ``O(T * U)`` definition,
  kept as the oracle for property-based tests.

Distances use ``None`` for cold (first) accesses, matching the paper's
``infinity`` entries in the Section 3.2 worked example.
"""

from __future__ import annotations

from collections import Counter
from typing import Hashable, Iterable, Optional, Sequence


class FenwickTree:
    """A binary indexed tree over ``n`` integer slots (1-based internally).

    Supports point updates and prefix sums in ``O(log n)``; used here to
    count "most recent access" markers in a suffix of the time axis.
    """

    __slots__ = ("_tree", "_values", "_n")

    def __init__(self, n: int) -> None:
        if n < 0:
            raise ValueError("FenwickTree size must be non-negative")
        self._n = n
        self._tree = [0] * (n + 1)
        self._values = [0] * n

    def __len__(self) -> int:
        return self._n

    def grow(self, n: int) -> None:
        """Extend the tree to cover ``n`` slots, preserving contents.

        Rebuilds from the per-slot values — ``O(n log n)``, amortized
        away because callers double the capacity on each growth.
        """
        if n <= self._n:
            return
        old_values = self._values
        self._n = n
        self._tree = [0] * (n + 1)
        self._values = [0] * n
        for index, value in enumerate(old_values):
            if value:
                self.add(index, value)

    def add(self, index: int, delta: int) -> None:
        """Add ``delta`` at 0-based slot ``index``."""
        self._values[index] += delta
        index += 1
        while index <= self._n:
            self._tree[index] += delta
            index += index & (-index)

    def prefix_sum(self, index: int) -> int:
        """Sum of slots ``0..index`` inclusive (0-based)."""
        index += 1
        total = 0
        while index > 0:
            total += self._tree[index]
            index -= index & (-index)
        return total

    def range_sum(self, lo: int, hi: int) -> int:
        """Sum of slots ``lo..hi`` inclusive; 0 when the range is empty."""
        if hi < lo:
            return 0
        upper = self.prefix_sum(hi)
        lower = self.prefix_sum(lo - 1) if lo > 0 else 0
        return upper - lower


class ReuseDistanceAnalyzer:
    """Streaming exact reuse-distance computation (Olken's algorithm).

    Feed accesses one at a time with :meth:`access`; each call returns
    the access's reuse distance (``None`` when cold).  The analyzer also
    accumulates a distance histogram so CDFs (Figure 5) can be produced
    without retaining the whole trace.
    """

    def __init__(self) -> None:
        self._last_time: dict[Hashable, int] = {}
        self._tree = FenwickTree(1024)
        self._time = 0
        #: histogram of finite distances -> count
        self.histogram: Counter[int] = Counter()
        #: number of cold (first-touch, infinite-distance) accesses
        self.cold_accesses = 0

    @property
    def num_accesses(self) -> int:
        """Total accesses processed so far."""
        return self._time

    def access(self, key: Hashable) -> Optional[int]:
        """Record an access to ``key``; return its reuse distance.

        The distance counts *unique other keys* touched since the
        previous access to ``key`` — exactly the footnote-2 definition
        in the paper.  Cold accesses return ``None``.
        """
        if self._time >= len(self._tree):
            self._tree.grow(max(2 * len(self._tree), self._time + 1))
        previous = self._last_time.get(key)
        if previous is None:
            distance = None
            self.cold_accesses += 1
        else:
            # Marked slots strictly after the previous access are the
            # distinct keys whose most recent access lies between.
            distance = self._tree.range_sum(previous + 1, self._time - 1)
            self._tree.add(previous, -1)
            self.histogram[distance] += 1
        self._tree.add(self._time, +1)
        self._last_time[key] = self._time
        self._time += 1
        return distance

    def process(self, trace: Iterable[Hashable]) -> list[Optional[int]]:
        """Process a whole trace; return the per-access distances."""
        return [self.access(key) for key in trace]

    def cdf(self) -> list[tuple[int, float]]:
        """Cumulative distribution of reuse distances.

        Returns sorted ``(distance, fraction_of_accesses_with_distance
        <= distance)`` pairs.  Cold accesses count in the denominator
        but never in a numerator, so the CDF tops out below 1.0 when
        there are cold misses — matching how Figure 5 plots "percentage
        of accesses with reuse distance < r".
        """
        total = self.num_accesses
        if total == 0:
            return []
        points = []
        running = 0
        for distance in sorted(self.histogram):
            running += self.histogram[distance]
            points.append((distance, running / total))
        return points

    def fraction_at_most(self, distance: int) -> float:
        """Fraction of all accesses with finite reuse distance <= bound."""
        total = self.num_accesses
        if total == 0:
            return 0.0
        hits = sum(count for d, count in self.histogram.items() if d <= distance)
        return hits / total

    def mean_finite_distance(self) -> float:
        """Mean over finite distances (0.0 when there are none)."""
        count = sum(self.histogram.values())
        if count == 0:
            return 0.0
        return sum(d * c for d, c in self.histogram.items()) / count


def naive_reuse_distances(trace: Sequence[Hashable]) -> list[Optional[int]]:
    """Reference ``O(T*U)`` reuse-distance computation for testing.

    Walks backwards from each access to the previous access of the same
    key, counting distinct intervening keys.
    """
    distances: list[Optional[int]] = []
    for t, key in enumerate(trace):
        between: set[Hashable] = set()
        distance: Optional[int] = None
        for back in range(t - 1, -1, -1):
            if trace[back] == key:
                distance = len(between)
                break
            between.add(trace[back])
        distances.append(distance)
    return distances


def distances_of_key(
    trace: Sequence[Hashable], key: Hashable
) -> list[Optional[int]]:
    """Reuse distances of the accesses to one particular key.

    Used to reproduce the Section 3.2 worked example ("consider accesses
    to node 5 of the inner tree ... [inf, 8, 8, 8, 8, 8, 8]").
    """
    all_distances = naive_reuse_distances(trace)
    return [d for t, d in enumerate(all_distances) if trace[t] == key]

"""Unit tests for the experiment CLI."""

import pytest

from repro.bench.__main__ import EXPERIMENTS, main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_unknown_experiment(self, capsys):
        assert main(["fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_bad_scale(self, capsys):
        assert main(["fig5", "--scale", "0"]) == 2

    def test_fig1_runs(self, capsys):
        assert main(["fig1"]) == 0
        out = capsys.readouterr().out
        assert "worked example" in out
        assert "inf, 10, 3, 3, 10, 3, 3" in out

    def test_fig5_scaled(self, capsys):
        assert main(["fig5", "--scale", "0.1"]) == 0
        assert "reuse distance r" in capsys.readouterr().out

    def test_sec42_scaled(self, capsys):
        assert main(["sec42", "--scale", "0.1"]) == 0
        assert "interchange" in capsys.readouterr().out

    def test_sec72_scaled(self, capsys):
        assert main(["sec72", "--scale", "0.4"]) == 0
        assert "twisted-3level" in capsys.readouterr().out

    def test_registry_complete(self):
        # Every paper artifact has a CLI entry.
        for expected in (
            "fig1", "fig5", "fig7", "fig8", "fig9", "fig10",
            "sec42", "sec61", "sec72", "sec73", "ablations",
        ):
            assert expected in EXPERIMENTS

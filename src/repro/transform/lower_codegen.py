"""Fused-kernel code generation for the ``compiled`` backend.

The TW20x pass (:mod:`repro.transform.lint.lower`) *certifies* that a
spec's ``work_batch_soa`` kernel is lowerable: every access is a typed
column gather, rank indexing is affine, and the hot loop allocates
nothing beyond staging.  This module *consumes* that certificate.  It
translates the kernel's AST into a standalone fused function over plain
``ndarray`` arguments — position arrays, packed SoA columns, captured
environment arrays/scalars, and the numeric fields of captured state
objects — so the whole cross product runs as one allocation-free
dispatch with no attribute walks, no ``SoAView`` indirection, and no
per-block Python overhead.

Two execution tiers share one generated source:

* ``numba`` importable → the source is wrapped in ``numba.njit``.
  Compilation is lazy; if the first call raises (e.g. an einsum the
  nopython frontend rejects) the artifact permanently downgrades to
  the NumPy tier and records why in ``jit_note``.
* otherwise → the generated pure-NumPy function runs directly.  It is
  already a win over the block-dispatch SoA path because the staging
  copies, column lookups, and state attribute traffic are hoisted out.

Translation covers the *certified* subset only — straight-line bodies,
``view.column("name")`` gathers, NumPy staging calls over the position
iterables, captured ``ndarray``/scalar environment, and one level of
method calls on captured state objects (inlined; their numeric fields
become in/out parameters).  Anything outside that subset raises
:class:`LoweringUnsupported` and the caller falls back to dispatching
the original kernel whole-run (still fused-traversal, still a single
dispatch — just not regenerated source).
"""

from __future__ import annotations

import ast
import inspect
import textwrap
import types
from collections import ChainMap
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Optional

import numpy as np

from repro.errors import ReproError

__all__ = [
    "FusedKernel",
    "LoweringUnsupported",
    "generate_fused_kernel",
]


class LoweringUnsupported(ReproError):
    """The kernel uses a construct outside the code generator's subset.

    This is *not* a safety failure — the TW20x verdict still holds and
    the fused traversal is still valid.  Callers respond by dispatching
    the original ``work_batch_soa`` once over the whole position arrays
    instead of running regenerated source.
    """


#: NumPy staging constructors the TW20x pass treats as IR-friendly.
#: When one of these is applied to a position iterable the generated
#: code collapses it away: the fused function already receives the
#: positions as a typed ``np.intp`` array.
_STAGING_CALLS = frozenset(
    {"fromiter", "asarray", "array", "ascontiguousarray", "asanyarray"}
)

#: Scalar/array types that may travel as environment parameters.
_ENV_VALUE_TYPES = (np.ndarray, np.generic, int, float, bool)

#: Hard ceiling on state-method inlining (defends against recursive
#: helper methods; certified kernels use at most one level).
_MAX_INLINE = 16


def _import_numba():
    """Import hook for numba, isolated so tests can monkeypatch it."""
    try:
        import numba  # noqa: PLC0415
    except Exception:
        return None
    return numba


def _capture_env(fn: Callable) -> Mapping[str, Any]:
    """The kernel's name-resolution environment: closure over globals."""
    closure: dict[str, Any] = {}
    if getattr(fn, "__closure__", None):
        for name, cell in zip(fn.__code__.co_freevars, fn.__closure__):
            try:
                closure[name] = cell.cell_contents
            except ValueError:  # pragma: no cover - unfilled cell
                continue
    return ChainMap(closure, fn.__globals__)


def _kernel_ast(fn: Callable) -> ast.FunctionDef:
    """The kernel's FunctionDef, or LoweringUnsupported if unreadable."""
    try:
        source = textwrap.dedent(inspect.getsource(fn))
    except (OSError, TypeError) as exc:
        raise LoweringUnsupported(
            f"cannot read the source of {getattr(fn, '__qualname__', fn)!r}: {exc}"
        ) from exc
    try:
        module = ast.parse(source)
    except SyntaxError as exc:  # pragma: no cover - getsource artifacts
        raise LoweringUnsupported(f"kernel source does not parse: {exc}") from exc
    for node in module.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if isinstance(node, ast.AsyncFunctionDef):
                raise LoweringUnsupported("async kernels are not lowerable")
            return node
    raise LoweringUnsupported("no function definition found in kernel source")


@dataclass
class FusedKernel:
    """A generated fused kernel plus everything needed to call it.

    The artifact is bound to a kernel *family* (code objects), not to
    one spec instance: every :meth:`call` re-resolves the live columns,
    environment values, and state fields from the kernel actually
    passed in, so a cached artifact serves fresh spec instances (new
    closures, reset accumulators) without regeneration.
    """

    source: str
    o_columns: tuple[str, ...]
    i_columns: tuple[str, ...]
    env_names: tuple[str, ...]
    state_fields: tuple[tuple[str, str], ...]
    python_fn: Callable
    jit: str
    jit_note: str
    _jitted: Optional[Callable] = field(default=None, repr=False)

    def call(self, kernel, o_view, i_view, o_positions, i_positions) -> None:
        """Run the fused kernel against live views/positions.

        ``kernel`` is the spec's current ``work_batch_soa`` — used only
        to resolve captured names; its body never executes here.
        """
        env = _capture_env(kernel)
        args: list[Any] = [o_positions, i_positions]
        for name in self.o_columns:
            args.append(o_view.column(name))
        for name in self.i_columns:
            args.append(i_view.column(name))
        for name in self.env_names:
            if name not in env:
                raise LoweringUnsupported(
                    f"captured name {name!r} missing from the live kernel"
                )
            args.append(env[name])
        state_objs = []
        for obj_name, field_name in self.state_fields:
            if obj_name not in env:
                raise LoweringUnsupported(
                    f"captured state object {obj_name!r} missing from the live kernel"
                )
            obj = env[obj_name]
            state_objs.append(obj)
            args.append(getattr(obj, field_name))
        out = self._invoke(args)
        if self.state_fields:
            for (obj_name, field_name), obj, value in zip(
                self.state_fields, state_objs, out
            ):
                setattr(obj, field_name, value)

    def _invoke(self, args: list) -> tuple:
        if self._jitted is not None:
            try:
                return self._jitted(*args)
            except Exception as exc:
                # Permanent downgrade: the nopython frontend rejected
                # the generated source (or typing failed).  The NumPy
                # tier is semantically identical.
                self._jitted = None
                self.jit = "numpy"
                self.jit_note = (
                    "njit compilation failed at first call "
                    f"({type(exc).__name__}: {exc}); using the generated NumPy loop"
                )
        return self.python_fn(*args)


class _Translator:
    """AST-to-AST translation of one certified ``work_batch_soa``."""

    def __init__(self, fn: Callable) -> None:
        self.fn = fn
        self.tree = _kernel_ast(fn)
        params = [a.arg for a in self.tree.args.args]
        if len(params) != 4 or self.tree.args.vararg or self.tree.args.kwarg:
            raise LoweringUnsupported(
                "work_batch_soa must take exactly "
                "(o_view, i_view, o_positions, i_positions)"
            )
        self.o_view_name, self.i_view_name, self.o_pos_name, self.i_pos_name = params
        self.env = _capture_env(fn)
        # Registration order == parameter order == call-time arg order.
        self.o_columns: dict[str, str] = {}
        self.i_columns: dict[str, str] = {}
        self.env_params: dict[str, str] = {}
        self.state_params: dict[tuple[str, str], str] = {}
        self.modules: dict[str, Any] = {}
        self._inline_count = 0

    # -- registration -------------------------------------------------

    def column_param(self, side: str, name: str) -> str:
        table = self.o_columns if side == "o" else self.i_columns
        if name not in table:
            table[name] = f"_{side}_col_{name}"
        return table[name]

    def env_param(self, name: str) -> str:
        if name not in self.env_params:
            self.env_params[name] = f"_env_{name}"
        return self.env_params[name]

    def state_param(self, obj_name: str, field_name: str) -> str:
        key = (obj_name, field_name)
        if key not in self.state_params:
            self.state_params[key] = f"_state_{obj_name}_{field_name}"
        return self.state_params[key]

    # -- translation --------------------------------------------------

    def translate(self) -> list[ast.stmt]:
        scope = _Scope(self, subst={}, locals_prefix="", self_binding=None)
        out: list[ast.stmt] = []
        self._translate_block(self.tree.body, scope, out)
        if not out:
            raise LoweringUnsupported("kernel body is empty after translation")
        return out

    def _translate_block(
        self, stmts: list[ast.stmt], scope: "_Scope", out: list[ast.stmt]
    ) -> None:
        for index, stmt in enumerate(stmts):
            if isinstance(stmt, ast.Expr):
                if isinstance(stmt.value, ast.Constant):
                    continue  # docstring
                inlined = self._maybe_inline_state_call(stmt.value, scope, out)
                if inlined:
                    continue
                out.append(
                    ast.Expr(value=scope.rewriter().visit(stmt.value))
                )
                continue
            if isinstance(stmt, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                out.append(self._translate_assignment(stmt, scope))
                continue
            if isinstance(stmt, ast.Return):
                bare = stmt.value is None or (
                    isinstance(stmt.value, ast.Constant) and stmt.value.value is None
                )
                if bare and index == len(stmts) - 1:
                    continue
                raise LoweringUnsupported(
                    "only a trailing bare return is lowerable"
                )
            if isinstance(stmt, ast.Pass):
                continue
            raise LoweringUnsupported(
                f"statement {type(stmt).__name__} is outside the lowerable subset"
            )

    def _translate_assignment(self, stmt: ast.stmt, scope: "_Scope") -> ast.stmt:
        rewriter = scope.rewriter()
        if isinstance(stmt, ast.AugAssign):
            target = self._rewrite_store_target(stmt.target, scope)
            return ast.AugAssign(
                target=target, op=stmt.op, value=rewriter.visit(stmt.value)
            )
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is None:
                raise LoweringUnsupported("bare annotations are not lowerable")
            target = self._rewrite_store_target(stmt.target, scope)
            return ast.Assign(targets=[target], value=rewriter.visit(stmt.value))
        assert isinstance(stmt, ast.Assign)
        if len(stmt.targets) != 1:
            raise LoweringUnsupported("chained assignments are not lowerable")
        target = self._rewrite_store_target(stmt.targets[0], scope)
        return ast.Assign(targets=[target], value=rewriter.visit(stmt.value))

    def _rewrite_store_target(self, target: ast.expr, scope: "_Scope") -> ast.expr:
        if isinstance(target, ast.Name):
            local = scope.bind_local(target.id)
            return ast.Name(id=local, ctx=ast.Store())
        if isinstance(target, ast.Attribute) and isinstance(target.value, ast.Name):
            owner = scope.resolve_state_object(target.value.id)
            if owner is not None:
                obj_name, _obj = owner
                param = self.state_param(obj_name, target.attr)
                return ast.Name(id=param, ctx=ast.Store())
            raise LoweringUnsupported(
                f"attribute store target {ast.unparse(target)!r} does not "
                "resolve to a captured state object"
            )
        if isinstance(target, ast.Subscript):
            rewriter = scope.rewriter()
            return ast.Subscript(
                value=rewriter.visit(target.value),
                slice=rewriter.visit(target.slice),
                ctx=ast.Store(),
            )
        if isinstance(target, ast.Tuple):
            return ast.Tuple(
                elts=[self._rewrite_store_target(e, scope) for e in target.elts],
                ctx=ast.Store(),
            )
        raise LoweringUnsupported(
            f"store target {type(target).__name__} is outside the lowerable subset"
        )

    def _maybe_inline_state_call(
        self, call: ast.expr, scope: "_Scope", out: list[ast.stmt]
    ) -> bool:
        """Inline ``obj.method(args)`` when obj is captured state."""
        if not (
            isinstance(call, ast.Call)
            and isinstance(call.func, ast.Attribute)
            and isinstance(call.func.value, ast.Name)
        ):
            return False
        owner = scope.resolve_state_object(call.func.value.id)
        if owner is None:
            return False
        if call.keywords:
            raise LoweringUnsupported(
                "keyword arguments in state-method calls are not lowerable"
            )
        obj_name, obj = owner
        method = getattr(type(obj), call.func.attr, None)
        if not isinstance(method, types.FunctionType):
            raise LoweringUnsupported(
                f"{obj_name}.{call.func.attr} is not a plain method"
            )
        self._inline_count += 1
        if self._inline_count > _MAX_INLINE:
            raise LoweringUnsupported("state-method inlining exceeded its depth cap")
        tag = self._inline_count
        tree = _kernel_ast(method)
        params = [a.arg for a in tree.args.args]
        if not params:
            raise LoweringUnsupported("state methods must take self")
        positional = params[1:]
        if tree.args.vararg or tree.args.kwarg or len(call.args) > len(positional):
            raise LoweringUnsupported(
                f"cannot match the arguments of {obj_name}.{call.func.attr}"
            )
        missing = positional[len(call.args) :]
        defaults = list(tree.args.defaults[-len(missing) :]) if missing else []
        if len(defaults) != len(missing) or not all(
            isinstance(d, ast.Constant) for d in defaults
        ):
            if missing:
                raise LoweringUnsupported(
                    f"cannot match the arguments of {obj_name}.{call.func.attr}"
                )
        outer_rewriter = scope.rewriter()
        subst: dict[str, str] = {}
        bound_args = list(call.args) + defaults
        for offset, (pname, arg) in enumerate(zip(positional, bound_args)):
            tmp = f"_inl{tag}_{pname}"
            rewritten = (
                outer_rewriter.visit(arg)
                if offset < len(call.args)
                else arg  # constant default, usable verbatim
            )
            out.append(
                ast.Assign(targets=[ast.Name(id=tmp, ctx=ast.Store())], value=rewritten)
            )
            subst[pname] = tmp
        inner = _Scope(
            self,
            subst=subst,
            locals_prefix=f"_inl{tag}_",
            self_binding=(params[0], obj_name, obj),
            env=_capture_env(method),
        )
        self._translate_block(tree.body, inner, out)
        return True

    # -- rendering ----------------------------------------------------

    def render(self, body: list[ast.stmt]) -> str:
        param_names = ["_o_positions", "_i_positions"]
        param_names += list(self.o_columns.values())
        param_names += list(self.i_columns.values())
        param_names += list(self.env_params.values())
        param_names += list(self.state_params.values())
        args = ast.arguments(
            posonlyargs=[],
            args=[ast.arg(arg=name) for name in param_names],
            vararg=None,
            kwonlyargs=[],
            kw_defaults=[],
            kwarg=None,
            defaults=[],
        )
        body = list(body) + [
            ast.Return(
                value=ast.Tuple(
                    elts=[
                        ast.Name(id=name, ctx=ast.Load())
                        for name in self.state_params.values()
                    ],
                    ctx=ast.Load(),
                )
            )
        ]
        func = ast.FunctionDef(
            name="_fused",
            args=args,
            body=body,
            decorator_list=[],
            returns=None,
        )
        module = ast.Module(body=[func], type_ignores=[])
        ast.fix_missing_locations(module)
        return ast.unparse(module)


class _Scope:
    """One lexical scope during translation (kernel body or inlined method)."""

    def __init__(
        self,
        ctx: _Translator,
        subst: dict[str, str],
        locals_prefix: str,
        self_binding: Optional[tuple[str, str, Any]],
        env: Optional[Mapping[str, Any]] = None,
    ) -> None:
        self.ctx = ctx
        self.subst = subst
        self.locals_prefix = locals_prefix
        self.self_binding = self_binding  # (self_param, obj_name, obj)
        self.env = ctx.env if env is None else env
        self.locals: dict[str, str] = {}
        self.is_kernel_scope = self_binding is None and not locals_prefix

    def bind_local(self, name: str) -> str:
        if name in self.subst:
            # Rebinding an inlined parameter shadows it locally.
            del self.subst[name]
        if name not in self.locals:
            self.locals[name] = f"{self.locals_prefix}{name}" if self.locals_prefix else name
        return self.locals[name]

    def resolve_state_object(self, name: str) -> Optional[tuple[str, Any]]:
        """(obj_name, obj) when ``name`` denotes captured mutable state."""
        if name in self.locals or name in self.subst:
            return None
        if self.self_binding is not None and name == self.self_binding[0]:
            return self.self_binding[1], self.self_binding[2]
        if self.is_kernel_scope and name in (
            self.ctx.o_view_name,
            self.ctx.i_view_name,
            self.ctx.o_pos_name,
            self.ctx.i_pos_name,
        ):
            return None
        value = self.env.get(name)
        if value is None:
            return None
        if isinstance(value, (types.ModuleType, types.FunctionType)):
            return None
        if isinstance(value, _ENV_VALUE_TYPES):
            return None
        return name, value

    def rewriter(self) -> "_ExprRewriter":
        return _ExprRewriter(self)


class _ExprRewriter(ast.NodeTransformer):
    """Expression translation for one scope."""

    def __init__(self, scope: _Scope) -> None:
        self.scope = scope
        self.ctx = scope.ctx

    # Python-level constructs that cannot appear in an allocation-free
    # fused body.
    def _unsupported(self, node: ast.AST) -> ast.AST:
        raise LoweringUnsupported(
            f"expression {type(node).__name__} is outside the lowerable subset"
        )

    visit_Lambda = _unsupported
    visit_ListComp = _unsupported
    visit_SetComp = _unsupported
    visit_DictComp = _unsupported
    visit_GeneratorExp = _unsupported
    visit_Await = _unsupported
    visit_Yield = _unsupported
    visit_YieldFrom = _unsupported
    visit_NamedExpr = _unsupported

    def visit_Call(self, node: ast.Call) -> ast.AST:
        scope = self.scope
        func = node.func
        # view.column("name") -> packed-column parameter
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and scope.is_kernel_scope
            and func.value.id not in scope.locals
            and func.value.id not in scope.subst
        ):
            side = None
            if func.value.id == self.ctx.o_view_name:
                side = "o"
            elif func.value.id == self.ctx.i_view_name:
                side = "i"
            if side is not None:
                if (
                    func.attr != "column"
                    or len(node.args) != 1
                    or node.keywords
                    or not isinstance(node.args[0], ast.Constant)
                    or not isinstance(node.args[0].value, str)
                ):
                    raise LoweringUnsupported(
                        "views may only be used as view.column('name')"
                    )
                param = self.ctx.column_param(side, node.args[0].value)
                return ast.Name(id=param, ctx=ast.Load())
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and scope.resolve_state_object(func.value.id) is not None
        ):
            raise LoweringUnsupported(
                "state-method calls are only lowerable as bare statements"
            )
        node = self.generic_visit(node)  # type: ignore[assignment]
        assert isinstance(node, ast.Call)
        # Collapse staging calls over the position arrays: the fused
        # function already receives np.intp arrays.
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _STAGING_CALLS
            and isinstance(func.value, ast.Name)
            and self._is_numpy_name(func.value.id)
            and node.args
            and isinstance(node.args[0], ast.Name)
            and node.args[0].id in ("_o_positions", "_i_positions")
        ):
            return node.args[0]
        return node

    def _is_numpy_name(self, name: str) -> bool:
        value = self.ctx.modules.get(name)
        if value is None:
            value = self.scope.env.get(name)
        return isinstance(value, types.ModuleType) and value.__name__ == "numpy"

    def visit_Name(self, node: ast.Name) -> ast.AST:
        scope = self.scope
        name = node.id
        if isinstance(node.ctx, ast.Store):
            return ast.Name(id=scope.bind_local(name), ctx=ast.Store())
        if name in scope.subst:
            return ast.Name(id=scope.subst[name], ctx=ast.Load())
        if name in scope.locals:
            return ast.Name(id=scope.locals[name], ctx=ast.Load())
        if scope.is_kernel_scope:
            if name == self.ctx.o_pos_name:
                return ast.Name(id="_o_positions", ctx=ast.Load())
            if name == self.ctx.i_pos_name:
                return ast.Name(id="_i_positions", ctx=ast.Load())
            if name in (self.ctx.o_view_name, self.ctx.i_view_name):
                raise LoweringUnsupported(
                    "views may only be used as view.column('name')"
                )
        if scope.self_binding is not None and name == scope.self_binding[0]:
            raise LoweringUnsupported(
                "self may only be used for field access in state methods"
            )
        if name in scope.env:
            value = scope.env[name]
            if isinstance(value, types.ModuleType):
                self.ctx.modules[name] = value
                return node
            if isinstance(value, _ENV_VALUE_TYPES):
                return ast.Name(id=self.ctx.env_param(name), ctx=ast.Load())
            raise LoweringUnsupported(
                f"captured object {name!r} ({type(value).__name__}) is only "
                "lowerable through state-method calls or field access"
            )
        # Builtins (len, int, float, range, ...) stay by name.
        return node

    def visit_Attribute(self, node: ast.Attribute) -> ast.AST:
        scope = self.scope
        if isinstance(node.value, ast.Name):
            owner = scope.resolve_state_object(node.value.id)
            if owner is not None:
                if not isinstance(node.ctx, ast.Load):
                    raise LoweringUnsupported(
                        "state fields may only be stored via =/augmented assignment"
                    )
                obj_name, _obj = owner
                param = self.ctx.state_param(obj_name, node.attr)
                return ast.Name(id=param, ctx=ast.Load())
            if self._is_module_chain(node.value):
                return node  # np.intp, math.pi, ...
        if isinstance(node.value, ast.Attribute) and self._is_module_chain(node.value):
            return node
        return self.generic_visit(node)

    def _is_module_chain(self, node: ast.expr) -> bool:
        if isinstance(node, ast.Name):
            value = self.scope.env.get(node.id)
            if isinstance(value, types.ModuleType):
                self.ctx.modules[node.id] = value
                return True
            return False
        if isinstance(node, ast.Attribute):
            return self._is_module_chain(node.value)
        return False


def generate_fused_kernel(fn: Callable) -> FusedKernel:
    """Translate a certified ``work_batch_soa`` into a fused artifact.

    Raises :class:`LoweringUnsupported` when the kernel falls outside
    the translator's subset; the compiled executor then degrades to
    whole-run dispatch of the original kernel.
    """
    translator = _Translator(fn)
    body = translator.translate()
    source = translator.render(body)
    namespace: dict[str, Any] = {"np": np}
    namespace.update(translator.modules)
    code = compile(source, f"<fused:{getattr(fn, '__qualname__', 'kernel')}>", "exec")
    exec(code, namespace)  # noqa: S102 - source generated from certified AST
    python_fn = namespace["_fused"]
    jitted, jit, jit_note = _maybe_njit(python_fn)
    return FusedKernel(
        source=source,
        o_columns=tuple(translator.o_columns),
        i_columns=tuple(translator.i_columns),
        env_names=tuple(translator.env_params),
        state_fields=tuple(translator.state_params),
        python_fn=python_fn,
        jit=jit,
        jit_note=jit_note,
        _jitted=jitted,
    )


def _maybe_njit(fn: Callable) -> tuple[Optional[Callable], str, str]:
    numba = _import_numba()
    if numba is None:
        return (
            None,
            "numpy",
            "numba not importable; running the generated NumPy fused loop",
        )
    try:
        jitted = numba.njit(fn)
    except Exception as exc:  # pragma: no cover - depends on numba internals
        return (
            None,
            "numpy",
            f"njit wrapping failed ({type(exc).__name__}: {exc}); "
            "running the generated NumPy fused loop",
        )
    return (
        jitted,
        "numba",
        "numba.njit artifact (downgrades to the NumPy loop if "
        "first-call compilation fails)",
    )

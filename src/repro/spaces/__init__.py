"""Iteration-space substrate: index nodes, trees, points, and spaces.

This subpackage provides the raw material that nested recursive
iteration spaces are made of:

* :mod:`repro.spaces.node` — the index-node protocol and labeled tree
  nodes;
* :mod:`repro.spaces.trees` — builders for perfect, balanced, list,
  random, and hand-specified trees (including the paper's Figure 1(b)
  examples);
* :mod:`repro.spaces.points` — synthetic point clouds for the dual-tree
  benchmarks;
* :mod:`repro.spaces.iteration_space` — materialized 2-D spaces,
  schedule validation, and the ASCII renderings of Figures 1(c)/4(b);
* :mod:`repro.spaces.soa` — structure-of-arrays tree packing under
  selectable linearizations (``preorder``/``bfs``/``veb``), with a
  verified round trip back to linked nodes.
"""

from repro.spaces.iteration_space import (
    IterationSpace,
    column_major_order,
    preorder_labels,
    render_schedule,
    row_major_order,
    schedule_order_grid,
    transposes_to,
)
from repro.spaces.node import (
    IndexNode,
    TreeNode,
    finalize_tree,
    tree_depth,
    tree_nodes,
    validate_index_node,
)
from repro.spaces.points import (
    annulus_points,
    clustered_points,
    grid_points,
    uniform_points,
)
from repro.spaces.soa import (
    LINEARIZATIONS,
    SoATree,
    linearize,
    soa_view,
    to_linked,
    to_soa,
)
from repro.spaces.trees import (
    balanced_tree,
    letter_labeler,
    list_tree,
    paper_inner_tree,
    paper_outer_tree,
    perfect_tree,
    random_tree,
    relabel_preorder,
    tree_from_nested,
)

__all__ = [
    "IndexNode",
    "LINEARIZATIONS",
    "SoATree",
    "TreeNode",
    "IterationSpace",
    "annulus_points",
    "balanced_tree",
    "clustered_points",
    "column_major_order",
    "finalize_tree",
    "grid_points",
    "letter_labeler",
    "linearize",
    "list_tree",
    "paper_inner_tree",
    "paper_outer_tree",
    "perfect_tree",
    "preorder_labels",
    "random_tree",
    "relabel_preorder",
    "render_schedule",
    "row_major_order",
    "schedule_order_grid",
    "soa_view",
    "to_linked",
    "to_soa",
    "transposes_to",
    "tree_depth",
    "tree_from_nested",
    "tree_nodes",
    "uniform_points",
    "validate_index_node",
]

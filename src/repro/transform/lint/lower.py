"""Lowerability (TW20x) and static independence (TW21x) passes.

Two questions about a :class:`~repro.core.spec.NestedRecursionSpec`,
both answered from the typed kernel IR of
:mod:`repro.transform.lint.kernel_ir` without running the spec:

**Lowerability** — could a fused/compiled backend (the §5 codegen
contract: straight-line typed loops over SoA columns, no Python object
model) execute this spec's SoA kernel?  The pass walks the IR of
``work_batch_soa`` (plus ``truncate_inner2_batch`` when present) and
emits TW200–TW209: Python-object escapes, untyped accesses, hot-loop
allocations, non-affine rank indexing, unrecognized reductions,
data-dependent shapes.  Verdict: ``lowerable`` (clean proof) /
``needs-runtime-check`` (holes) / ``not-lowerable`` (refuted).

**Static independence** — may two outer tasks run concurrently?  The
§7.3 outer-parallel schedule is sound iff outer tasks' write sets are
disjoint.  The dynamic witness (``TW030`` via
:func:`repro.core.parallel_exec.check_outer_independence`) proves this
by *running* a probe under a :class:`FootprintRecorder`; this pass
proves it from the IR's affine footprints instead: a write is
task-local when some index dimension is affine in the outer rank with
a non-zero coefficient, or gathers through an outer payload column
verified injective on the live tree (an O(n) data precondition — not
a probe run).  Commutative reductions into scalar state are accepted
under the runtime's per-worker privatization contract.  Verdict:
``independent`` / ``needs-runtime-check`` / ``dependent``; only the
first short-circuits the warm-up probe — anything weaker falls back
to the dynamic witness, which stays the authoritative oracle.
"""

from __future__ import annotations

import enum
import json
import numbers
import weakref
from dataclasses import dataclass, field
from typing import Any, Optional

import numpy as np

from repro.core.spec import NestedRecursionSpec
from repro.transform.lint.diagnostics import Diagnostic, DiagnosticSink
from repro.transform.lint.kernel_ir import (
    AFFINE,
    CONST,
    GATHER,
    MASK,
    SLICE,
    UNKNOWN,
    KernelIR,
    extract_kernel_ir,
)

__all__ = [
    "IndependenceVerdict",
    "LowerReport",
    "LowerVerdict",
    "clear_cache",
    "lint_lower",
    "static_independence",
]

#: JSON payload schema (shared family with the other lint reports).
SCHEMA_VERSION = 2


class LowerVerdict(enum.Enum):
    """Eligibility of a spec for the fused/compiled backend."""

    LOWERABLE = "lowerable"
    NEEDS_RUNTIME_CHECK = "needs-runtime-check"
    NOT_LOWERABLE = "not-lowerable"

    def __str__(self) -> str:
        return self.value


class IndependenceVerdict(enum.Enum):
    """Outcome of the static outer-task disjointness proof."""

    INDEPENDENT = "independent"
    NEEDS_RUNTIME_CHECK = "needs-runtime-check"
    DEPENDENT = "dependent"

    def __str__(self) -> str:
        return self.value


#: kernels whose effects count toward the outer-task write set
_INDEPENDENCE_ROLES = ("work", "work_batch", "work_batch_soa", "truncate_inner2")

#: kernels a compiled backend would actually execute
_LOWER_ROLES = ("work_batch_soa", "truncate_inner2_batch")

_MISSING = object()


@dataclass
class LowerReport:
    """Everything one ``lint-lower`` run concluded about a spec."""

    spec_name: str
    lower: LowerVerdict
    independence: IndependenceVerdict
    lower_reason: str
    independence_reason: str
    diagnostics: list[Diagnostic] = field(default_factory=list)
    #: data preconditions the proofs lean on (e.g. injective columns)
    preconditions: list[str] = field(default_factory=list)
    #: per-role IR summaries (role -> KernelIR JSON)
    kernels: dict[str, dict] = field(default_factory=dict)

    @property
    def errors(self) -> list[Diagnostic]:
        from repro.transform.lint.diagnostics import Severity

        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> list[Diagnostic]:
        from repro.transform.lint.diagnostics import Severity

        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    def codes(self) -> set[str]:
        """The distinct TW codes this report carries."""
        return {d.code for d in self.diagnostics}

    def render(self) -> str:
        """Human-readable multi-line report (the CLI's default output)."""
        lines = [
            diagnostic.format(self.spec_name)
            for diagnostic in sorted(
                self.diagnostics, key=lambda d: (d.line, d.col, d.code)
            )
        ]
        lines.append(
            f"{self.spec_name}: lower: {self.lower} ({self.lower_reason}); "
            f"independence: {self.independence} "
            f"({self.independence_reason})"
        )
        for precondition in self.preconditions:
            lines.append(f"{self.spec_name}: precondition: {precondition}")
        return "\n".join(lines)

    def to_json(self) -> dict:
        """JSON-ready dict with stable keys (the ``--json`` payload)."""
        return {
            "schema_version": SCHEMA_VERSION,
            "kind": "lowerability",
            "spec": self.spec_name,
            "lower": str(self.lower),
            "independence": str(self.independence),
            "lower_reason": self.lower_reason,
            "independence_reason": self.independence_reason,
            "preconditions": list(self.preconditions),
            "diagnostics": [d.to_json() for d in self.diagnostics],
            "kernels": self.kernels,
            "counts": {
                "errors": len(self.errors),
                "warnings": len(self.warnings),
                "suppressed": 0,
            },
        }

    def dumps(self) -> str:
        """Serialized JSON text of :meth:`to_json`."""
        return json.dumps(self.to_json(), indent=2, sort_keys=True)


# --------------------------------------------------------------------
# Lowerability pass (TW20x)
# --------------------------------------------------------------------


def _is_typed_value(value: Any) -> bool:
    return isinstance(value, (bool, numbers.Number, np.generic, np.ndarray))


def _axis_root(spec: NestedRecursionSpec, axis: str):
    return spec.outer_root if axis == "outer" else spec.inner_root


def _lower_kernel(
    spec: NestedRecursionSpec, role: str, ir: KernelIR, sink: DiagnosticSink
) -> None:
    """Emit TW20x findings for one lowering-target kernel."""

    def at(line: int):
        return type("Span", (), {"lineno": line, "col_offset": 0})()

    prefix = f"{role}: "
    if not ir.analyzable:
        sink.emit(
            "TW200",
            prefix + "kernel source could not be fetched or parsed; "
            "lowerability cannot be judged",
        )
        return
    for use in ir.object_uses:
        sink.emit(
            "TW201",
            prefix + f"{use.what} — a compiled loop has no Python "
            "object model",
            at(use.line),
            hint="stage the data into a typed SoA column before the "
            "kernel, or keep this spec on the interpreted backends",
        )
    for desc, line in ir.untyped:
        sink.emit(
            "TW202",
            prefix + f"{desc} does not resolve to a typed column, "
            "array, or scalar",
            at(line),
        )
    for axis, attr in sorted(ir.attr_reads):
        root = _axis_root(spec, axis)
        sample = getattr(root, attr, _MISSING) if root is not None else _MISSING
        if sample is _MISSING or not _is_typed_value(sample):
            sink.emit(
                "TW202",
                prefix + f"node field {axis}.{attr} is not numeric on "
                "the live tree, so it has no typed column",
                hint=f"found {type(sample).__name__}"
                if sample is not _MISSING
                else "field missing on the root node",
            )
    for alloc in ir.allocations:
        if alloc.kind == "ndarray" and not alloc.in_loop:
            # One staging buffer per dispatch lowers fine (hoisted).
            continue
        where = "inside a loop" if alloc.in_loop else "per dispatch"
        sink.emit(
            "TW203",
            prefix + f"allocates a {alloc.kind} {where}; the compiled "
            "hot loop must be allocation-free",
            at(alloc.line),
            hint="hoist the buffer out of the kernel or use a "
            "preallocated scratch column",
        )
    for access in ir.array_accesses:
        for dim in access.dims:
            if dim.kind == UNKNOWN:
                detail = dim.detail or "not affine in any rank"
                sink.emit(
                    "TW204",
                    prefix + f"index of {access.array!r} is "
                    f"{detail}; affine-in-rank or typed-gather "
                    "indexing is required",
                    at(access.line),
                )
            elif dim.kind == MASK:
                sink.emit(
                    "TW206",
                    prefix + f"{access.array!r} is indexed by a "
                    "boolean mask, so the access extent depends on "
                    "runtime values",
                    at(access.line),
                )
    for desc, line in ir.dynamic_shapes:
        sink.emit(
            "TW206",
            prefix + f"{desc} produces a data-dependent extent",
            at(line),
        )
    for write in ir.state_writes():
        if not write.typed:
            sink.emit(
                "TW202",
                prefix + f"state field {write.label} is not numeric, "
                "so it has no typed register",
                at(write.line),
            )
        if not write.reduction:
            sink.emit(
                "TW205",
                prefix + f"write to {write.label} is not a recognized "
                "commutative reduction (+=, *=, |=, &=, ^=)",
                at(write.line),
                hint="rewrite as a commutative augmented assignment "
                "or carry the value through a result column",
            )
    for helper in ir.unknown_helpers:
        sink.emit(
            "TW207",
            prefix + f"call to {helper.name} has no lowerable "
            "summary",
            at(helper.line),
        )
    has_typed_traffic = bool(ir.array_accesses) or any(
        s.reduction for s in ir.state_writes()
    )
    if has_typed_traffic:
        sink.emit(
            "TW209",
            prefix + "lowers to typed column gathers and affine rank "
            "loops; assumes SoA columns stay in sync with node "
            "payloads (repro.spaces.soa invariant)",
        )


def _lowerability_pass(
    spec: NestedRecursionSpec, irs: dict[str, KernelIR], sink: DiagnosticSink
) -> tuple[LowerVerdict, str]:
    targets = [role for role in _LOWER_ROLES if role in irs]
    if "work_batch_soa" not in irs:
        sink.emit(
            "TW208",
            "spec has no work_batch_soa kernel; the compiled backend "
            "consumes SoA blocks, so there is nothing to lower yet",
            hint="provide a work_batch_soa(o_view, i_view, o_positions, "
            "i_positions) kernel to become eligible",
        )
        return (
            LowerVerdict.NEEDS_RUNTIME_CHECK,
            "no SoA-native kernel to lower (TW208)",
        )
    for role in targets:
        _lower_kernel(spec, role, irs[role], sink)
    errors = [d for d in sink.errors if d.code.startswith("TW20")]
    warnings = [d for d in sink.warnings if d.code.startswith("TW20")]
    if errors:
        codes = ", ".join(sorted({d.code for d in errors}))
        return (
            LowerVerdict.NOT_LOWERABLE,
            f"refuted by {codes}: the kernel leaves the typed subset",
        )
    if warnings:
        codes = ", ".join(sorted({d.code for d in warnings}))
        return (
            LowerVerdict.NEEDS_RUNTIME_CHECK,
            f"holes in the proof ({codes})",
        )
    return (
        LowerVerdict.LOWERABLE,
        "every access is typed, affine-or-gather indexed, and "
        "allocation-free",
    )


# --------------------------------------------------------------------
# Static independence pass (TW21x)
# --------------------------------------------------------------------


def _column_injective(
    spec: NestedRecursionSpec, column: str
) -> tuple[Optional[bool], str]:
    """Is payload ``column`` injective over the live outer tree?

    Returns ``(True, detail)`` / ``(False, detail)`` / ``(None,
    detail)`` when the column cannot be evaluated (missing field or
    unhashable values).  This is an O(n) scan of node payloads — a
    data precondition, not a probe run of the traversal.
    """
    root = spec.outer_root
    if root is None:
        return None, "spec has no live outer tree to verify against"
    seen: set = set()
    count = 0
    for node in root.iter_preorder():
        value = getattr(node, column, _MISSING)
        if value is _MISSING or value is None:
            return None, f"outer node without a {column!r} payload"
        try:
            if value in seen:
                return False, (
                    f"outer.{column} repeats value {value!r}; two tasks "
                    "would write the same row"
                )
            seen.add(value)
        except TypeError:
            return None, f"outer.{column} values are unhashable"
        count += 1
    return True, f"outer.{column} is injective across {count} outer nodes"


def _write_disjointness(
    spec: NestedRecursionSpec,
    role: str,
    access,
    sink: DiagnosticSink,
    preconditions: list[str],
    checked_columns: dict[str, tuple[Optional[bool], str]],
) -> None:
    """Classify one array write; emit TW21x findings."""

    def at(line: int):
        return type("Span", (), {"lineno": line, "col_offset": 0})()

    prefix = f"{role}: "
    if access.array.startswith("<fresh"):
        # A buffer the kernel itself allocated: task-local by birth.
        return
    for dim in access.dims:
        if dim.kind == AFFINE and dim.axis == "outer" and dim.coeff not in (0, None):
            # c*outer_rank + k with c != 0: distinct outer positions
            # hit distinct rows — disjoint by construction.
            return
    gather_dims = [
        dim for dim in access.dims if dim.kind == GATHER and dim.axis == "outer"
    ]
    for dim in gather_dims:
        column = dim.column or ""
        if column not in checked_columns:
            checked_columns[column] = _column_injective(spec, column)
        injective, detail = checked_columns[column]
        if injective:
            sink.emit(
                "TW212",
                prefix + f"write to {access.array!r} is keyed by "
                f"outer.{column}; disjointness holds because {detail}",
                at(access.line),
            )
            note = f"outer.{column} injective ({detail})"
            if note not in preconditions:
                preconditions.append(note)
            return
        if injective is None:
            sink.emit(
                "TW211",
                prefix + f"write to {access.array!r} gathers through "
                f"outer.{column}, but {detail}",
                at(access.line),
            )
            return
        sink.emit(
            "TW210",
            prefix + f"write to {access.array!r}: {detail}",
            at(access.line),
        )
        return
    if any(dim.kind in (UNKNOWN, MASK) for dim in access.dims):
        sink.emit(
            "TW211",
            prefix + f"write to {access.array!r} through an index the "
            "IR could not classify; the footprint is not provably "
            "task-local",
            at(access.line),
        )
        return
    if access.reduction:
        sink.emit(
            "TW211",
            prefix + f"reduction into {access.array!r} is not keyed by "
            "the outer index; privatization of array reductions is "
            "not part of the static contract",
            at(access.line),
        )
        return
    keyed = ", ".join(d.describe() for d in access.dims) or "<scalar>"
    sink.emit(
        "TW210",
        prefix + f"write to {access.array!r} is keyed by [{keyed}] — "
        "no dimension distinguishes outer tasks, so two tasks "
        "overwrite the same location",
        at(access.line),
    )


def _independence_pass(
    spec: NestedRecursionSpec,
    irs: dict[str, KernelIR],
    sink: DiagnosticSink,
    preconditions: list[str],
) -> tuple[IndependenceVerdict, str]:
    def at(line: int):
        return type("Span", (), {"lineno": line, "col_offset": 0})()

    checked_columns: dict[str, tuple[Optional[bool], str]] = {}
    reductions: set[str] = set()
    for role in _INDEPENDENCE_ROLES:
        ir = irs.get(role)
        if ir is None:
            continue
        prefix = f"{role}: "
        if not ir.analyzable:
            sink.emit(
                "TW211",
                prefix + "kernel source unavailable; its write set is "
                "unknown",
            )
            continue
        for helper in ir.unknown_helpers:
            sink.emit(
                "TW214",
                prefix + f"call to {helper.name} is not summarized; "
                "the task write set may be larger than proven",
                at(helper.line),
            )
        for use in ir.object_uses:
            sink.emit(
                "TW214",
                prefix + f"{use.what}: Python-object effects are "
                "outside the affine footprint model",
                at(use.line),
            )
        for write in ir.state_writes():
            if write.reduction:
                reductions.add(write.label)
                continue
            sink.emit(
                "TW210",
                prefix + f"plain write to shared state {write.label} "
                "is visible across outer tasks (not a commutative "
                "reduction, so not privatizable)",
                at(write.line),
            )
        for node_write in ir.node_writes:
            if node_write.axis == "outer":
                # Each outer node belongs to exactly one outer task.
                continue
            sink.emit(
                "TW210",
                prefix + f"writes field {node_write.attr!r} of "
                f"{node_write.axis} nodes, which every outer task "
                "shares",
                at(node_write.line),
            )
        for desc, line in ir.untyped:
            if desc.startswith("store"):
                sink.emit(
                    "TW211",
                    prefix + f"{desc}; the write set is incomplete",
                    at(line),
                )
        for access in ir.writes():
            _write_disjointness(
                spec, role, access, sink, preconditions, checked_columns
            )
    for label in sorted(reductions):
        sink.emit(
            "TW213",
            f"commutative reduction into {label} is privatized per "
            "worker and merged deterministically by the runtime "
            "(ResultColumn contract)",
        )
    errors = [d for d in sink.errors if d.code.startswith("TW21")]
    warnings = [d for d in sink.warnings if d.code.startswith("TW21")]
    if errors:
        return (
            IndependenceVerdict.DEPENDENT,
            "a write provably overlaps across outer tasks (TW210)",
        )
    if warnings:
        codes = ", ".join(sorted({d.code for d in warnings}))
        return (
            IndependenceVerdict.NEEDS_RUNTIME_CHECK,
            f"footprint not fully resolved ({codes}); the dynamic "
            "TW030 witness remains required",
        )
    detail = "all writes are outer-keyed"
    if reductions:
        detail = (
            "all writes are outer-keyed or privatized commutative "
            "reductions"
        )
    return IndependenceVerdict.INDEPENDENT, detail


# --------------------------------------------------------------------
# Entry points + cache
# --------------------------------------------------------------------

#: cache key -> (weakref to the outer root, report).  The weakref guard
#: invalidates entries whose live tree died (the injectivity
#: precondition is a property of the *data*, not just the code).
_REPORT_CACHE: dict[tuple, tuple[Any, LowerReport]] = {}


def clear_cache() -> None:
    """Drop memoized lowerability reports (tests, mutation harnesses)."""
    _REPORT_CACHE.clear()


def _cache_key(spec: NestedRecursionSpec) -> tuple:
    from repro.transform.lint.backend import _spec_cache_key

    return (_spec_cache_key(spec), id(spec.outer_root), id(spec.inner_root))


def lint_lower(spec: NestedRecursionSpec, use_cache: bool = True) -> LowerReport:
    """Run both TW2xx passes over one spec and fold the verdicts.

    Reports are cached on the kernels' code objects *and* the identity
    of the live trees — the independence proof may rest on a data
    precondition (injective payload column), so a new tree means a new
    proof even under identical kernel code.
    """
    key = _cache_key(spec) if use_cache else None
    if key is not None and key in _REPORT_CACHE:
        root_ref, cached = _REPORT_CACHE[key]
        if root_ref is None or root_ref() is spec.outer_root:
            return cached
    irs: dict[str, KernelIR] = {}
    roles = set(_INDEPENDENCE_ROLES) | set(_LOWER_ROLES)
    for role in sorted(roles):
        fn = getattr(spec, role, None)
        if fn is not None:
            irs[role] = extract_kernel_ir(fn, role)
    sink = DiagnosticSink()
    preconditions: list[str] = []
    lower_verdict, lower_reason = _lowerability_pass(spec, irs, sink)
    independence_verdict, independence_reason = _independence_pass(
        spec, irs, sink, preconditions
    )
    report = LowerReport(
        spec_name=spec.name or "<spec>",
        lower=lower_verdict,
        independence=independence_verdict,
        lower_reason=lower_reason,
        independence_reason=independence_reason,
        diagnostics=list(sink.diagnostics),
        preconditions=preconditions,
        kernels={role: ir.to_json() for role, ir in irs.items()},
    )
    if key is not None:
        try:
            root_ref = (
                weakref.ref(spec.outer_root)
                if spec.outer_root is not None
                else None
            )
        except TypeError:  # pragma: no cover - non-weakrefable root
            root_ref = None
        _REPORT_CACHE[key] = (root_ref, report)
    return report


def static_independence(
    spec: NestedRecursionSpec, use_cache: bool = True
) -> tuple[str, str]:
    """The independence verdict alone, for the parallel runtime.

    Returns ``(verdict_value, reason)`` where the verdict value is one
    of ``"independent"`` / ``"needs-runtime-check"`` / ``"dependent"``.
    :func:`repro.core.parallel_exec.check_outer_independence` treats
    only ``"independent"`` as a probe-skipping proof.
    """
    report = lint_lower(spec, use_cache=use_cache)
    return str(report.independence), report.independence_reason

"""Boot a real query server and verify it bit-for-bit — CI smoke.

Starts ``python -m repro.serve`` as a subprocess with a chosen shard
count, drives it over TCP with the blocking client in a chosen wire
framing, and compares every answer against an in-process serial
oracle over the same deterministic reference set.  The workload
deliberately repeats queries so the intra-tick dedup path is
exercised; the exit code is the verdict.

    python examples/serve_smoke.py --shards 2 --framing binary
"""

from __future__ import annotations

import argparse
import os
import socket
import subprocess
import sys

from repro.serve.client import ServeClient, wait_for_server
from repro.serve.protocol import CountQuery, KNNQuery, NNQuery
from repro.serve.service import QueryService, ServiceConfig
from repro.spaces.points import clustered_points


def free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def sample_queries(n: int, duplicates: int) -> list:
    """A mixed-kind workload whose tail repeats the head ``duplicates``
    times — the repeats are what the dedup counters should fold."""
    points = clustered_points(n, clusters=6, spread=0.07, seed=17)
    queries = []
    for index in range(n):
        point = tuple(float(value) for value in points[index])
        kind = index % 3
        if kind == 0:
            queries.append(NNQuery(point))
        elif kind == 1:
            queries.append(KNNQuery(point, 5))
        else:
            queries.append(CountQuery(point, 0.3))
    return queries + queries[:duplicates]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--shards", type=int, default=1)
    parser.add_argument(
        "--framing", choices=("json", "binary"), default="json"
    )
    parser.add_argument("--references", type=int, default=2048)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--queries", type=int, default=60)
    parser.add_argument("--duplicates", type=int, default=30)
    args = parser.parse_args(argv)

    port = free_port()
    env = dict(os.environ)
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.serve",
            "--port",
            str(port),
            "--references",
            str(args.references),
            "--seed",
            str(args.seed),
            "--shards",
            str(args.shards),
            "--max-hold-ms",
            "2",
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    try:
        probe = wait_for_server("127.0.0.1", port, timeout=60)
        if probe is None:
            print(f"server never came up:\n{process.communicate()[0]}")
            return 1
        probe.close()

        queries = sample_queries(args.queries, args.duplicates)
        with ServeClient(
            "127.0.0.1", port, framing=args.framing
        ) as client:
            results = client.query_many(queries)
            stats = client.stats()

        references = clustered_points(
            args.references, clusters=24, spread=0.05, seed=args.seed
        )
        with QueryService(references, ServiceConfig()) as oracle_service:
            oracle = oracle_service.execute_serial(queries)

        mismatches = sum(
            1 for got, want in zip(results, oracle) if got != want
        )
        batcher = stats["batcher"]
        print(
            f"serve smoke: shards={args.shards} framing={args.framing} "
            f"queries={len(queries)} mismatches={mismatches} "
            f"dedup_folded={batcher['dedup_folded']} "
            f"executed={batcher['executed']}"
        )
        if mismatches:
            print("FAILED: answers diverge from the serial oracle")
            return 1
        if stats["shards"]["count"] != args.shards:
            print(
                f"FAILED: server reports {stats['shards']['count']} "
                f"shard(s), expected {args.shards}"
            )
            return 1
        if args.duplicates > 0 and batcher["dedup_folded"] == 0:
            # Pipelined duplicates may still straddle tick boundaries,
            # but a workload ending in 30 exact repeats folding nothing
            # means dedup is off or broken.
            print("FAILED: no duplicate queries were folded")
            return 1
        print("OK: bit-identical to the serial oracle")
        return 0
    finally:
        try:
            with ServeClient("127.0.0.1", port, timeout=10) as client:
                client.shutdown()
            process.wait(timeout=30)
        except Exception:
            process.kill()
            process.wait()


if __name__ == "__main__":
    sys.exit(main())

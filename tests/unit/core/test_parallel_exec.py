"""Unit tests for the real multi-worker runtime (Section 7.3 on hardware)."""

import os

import pytest

from repro.core import NestedRecursionSpec
from repro.core.backend_select import (
    PARALLEL_SPACE_POINTS,
    choose_backend,
)
from repro.core.parallel import run_task_parallel
from repro.core.parallel_exec import (
    ParallelExecReport,
    ParallelPlan,
    check_outer_independence,
    run_parallel,
)
from repro.core.schedules import BACKENDS, ORIGINAL, TWIST
from repro.errors import ParallelWorkerError, ScheduleError
from repro.kernels import TreeJoin
from repro.spaces import paper_inner_tree, paper_outer_tree


def shm_entries():
    try:
        return set(os.listdir("/dev/shm"))
    except FileNotFoundError:  # pragma: no cover - non-Linux hosts
        return set()


def serial_result(case):
    ORIGINAL.run(case.make_spec(), backend="recursive")
    return repr(case.result())


class TestSixBenchmarksRoundTrip:
    """Every benchmark, both engines, bit-identical to serial."""

    @pytest.fixture(scope="class")
    def cases(self):
        from repro.bench.workloads import all_cases

        return all_cases(0.02)

    @pytest.mark.parametrize("engine", ["process", "thread"])
    def test_bit_identical_to_serial(self, cases, engine):
        before = shm_entries()
        for case in cases:
            expected = serial_result(case)
            spec = case.make_spec()
            report = run_parallel(
                spec, schedule=ORIGINAL, engine=engine, max_workers=2
            )
            assert isinstance(report, ParallelExecReport)
            assert repr(case.result()) == expected, (case.name, engine)
        assert shm_entries() == before

    def test_twist_schedule_process_engine(self, cases):
        case = cases[0]  # TJ
        expected = serial_result(case)
        run_parallel(
            case.make_spec(), schedule=TWIST, engine="process", max_workers=2
        )
        assert repr(case.result()) == expected


class TestIndependenceGate:
    def test_spec_without_plan_is_refused(self):
        spec = NestedRecursionSpec(paper_outer_tree(), paper_inner_tree())
        with pytest.raises(ScheduleError, match="plan"):
            run_parallel(spec, max_workers=2)

    def test_unproven_plan_is_refused_citing_tw030(self):
        tj = TreeJoin(63, 63)
        spec = tj.make_spec()
        # Opaque side effects keep the TW21x static pass from proving
        # independence, so the gate falls back to the (absent) witness.
        shared: dict = {}

        def opaque_work(o, i):
            shared[id(o)] = i

        spec.work = opaque_work
        plan = spec.parallel_plan
        spec.parallel_plan = ParallelPlan(
            factory=plan.factory,
            arrays=plan.arrays,
            params=plan.params,
            results=plan.results,
            apply=plan.apply,
            make_probe=None,  # no witness: independence unproven
            witness_key="test-unproven",
        )
        with pytest.raises(ScheduleError, match="TW030"):
            run_parallel(spec, engine="thread", max_workers=2)

    def test_allow_unproven_overrides_the_gate(self):
        tj = TreeJoin(63, 63)
        expected = tj.expected_total()
        spec = tj.make_spec()
        plan = spec.parallel_plan
        spec.parallel_plan = ParallelPlan(
            factory=plan.factory,
            arrays=plan.arrays,
            params=plan.params,
            results=plan.results,
            apply=plan.apply,
            make_probe=None,
            witness_key="test-unproven-override",
        )
        run_parallel(
            spec, engine="thread", max_workers=2, allow_unproven=True
        )
        assert tj.result == expected

    def test_treejoin_witness_is_proven(self):
        spec = TreeJoin(63, 63).make_spec()
        proven, why = check_outer_independence(spec.parallel_plan)
        assert proven
        assert "proven parallel" in why


class TestBackendSelection:
    def test_parallel_chosen_on_big_space_multicore_host(self, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: 8)
        spec = TreeJoin(1023, 1023).make_spec()
        choice = choose_backend(spec)
        assert (
            spec.outer_root.size * spec.inner_root.size
            >= PARALLEL_SPACE_POINTS
        )
        assert choice.backend == "parallel"
        assert choice.order == "veb"
        assert "proven-parallel plan" in choice.reason

    def test_parallel_never_chosen_on_single_core(self, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: 1)
        choice = choose_backend(TreeJoin(1023, 1023).make_spec())
        # Serial fallback: TJ is lowerable, so the fused backend wins.
        assert choice.backend == "compiled"

    def test_small_space_stays_serial_with_veb_recommendation(
        self, monkeypatch
    ):
        monkeypatch.setattr(os, "cpu_count", lambda: 8)
        choice = choose_backend(TreeJoin(255, 255).make_spec())
        assert choice.backend == "compiled"
        assert choice.order == "veb"
        assert "lowerable" in choice.reason

    def test_unproven_plan_refused_by_selector(self, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: 8)
        # Defeat the TW21x static proof so the selector needs the
        # (removed) dynamic witness — and must refuse parallelism.
        import repro.core.parallel_exec as parallel_exec

        monkeypatch.setattr(
            parallel_exec, "_static_independence_proof", lambda spec: None
        )
        tj = TreeJoin(1023, 1023)
        spec = tj.make_spec()
        plan = spec.parallel_plan
        spec.parallel_plan = ParallelPlan(
            factory=plan.factory,
            arrays=plan.arrays,
            params=plan.params,
            results=plan.results,
            apply=plan.apply,
            make_probe=None,
            witness_key="test-selector-unproven",
        )
        choice = choose_backend(spec)
        # Refused parallelism falls through to the serial rules, where
        # TJ's lowerable kernel lands on the fused backend.
        assert choice.backend == "compiled"


class TestScheduleRunParallel:
    def test_backend_registered(self):
        assert "parallel" in BACKENDS

    def test_schedule_run_dispatches_to_the_runtime(self):
        tj = TreeJoin(63, 63)
        expected = tj.expected_total()
        ORIGINAL.run(tj.make_spec(), backend="parallel")
        assert tj.result == expected

    def test_instruments_rejected(self):
        from repro.core.instruments import OpCounter

        with pytest.raises(ScheduleError, match="instrument"):
            ORIGINAL.run(
                TreeJoin(63, 63).make_spec(),
                instrument=OpCounter(),
                backend="parallel",
            )

    def test_run_task_parallel_real_engine_round_trip(self):
        tj = TreeJoin(63, 63)
        expected = tj.expected_total()
        report = run_task_parallel(
            tj.make_spec(), num_workers=2, spawn_depth=2, engine="thread"
        )
        assert isinstance(report, ParallelExecReport)
        assert tj.result == expected

    def test_simulated_engine_unchanged(self):
        spec = NestedRecursionSpec(paper_outer_tree(), paper_inner_tree())
        report = run_task_parallel(
            spec, num_workers=2, spawn_depth=2, engine="simulated"
        )
        # The historical modeled-cycle report, bit for bit.
        assert report.total_cycles == 49
        assert not isinstance(report, ParallelExecReport)


class TestWorkerFailure:
    """Satellite 6: original tracebacks surface, no segment leaks."""

    @pytest.mark.parametrize("engine", ["process", "thread"])
    def test_fault_surfaces_original_traceback(self, engine):
        before = shm_entries()
        tj = TreeJoin(63, 63)
        spec = tj.make_spec()
        spec.parallel_plan.params["inject_fault"] = True
        with pytest.raises(ParallelWorkerError) as excinfo:
            run_parallel(spec, engine=engine, max_workers=2)
        message = str(excinfo.value)
        assert "injected worker fault" in message
        assert "original worker traceback" in message
        assert "RuntimeError" in excinfo.value.worker_traceback
        assert shm_entries() == before


class TestReport:
    def test_speedup_arithmetic(self):
        report = ParallelExecReport(
            engine="process",
            num_workers=2,
            spawn_depth=3,
            schedule="original",
            task_counts=[3, 2],
            worker_seconds=[2.0, 1.0],
            wall_seconds=2.5,
        )
        assert report.num_tasks == 5
        assert report.makespan == 2.0
        assert report.total_seconds == 3.0
        assert report.parallel_speedup == 1.5

"""Tree Join (TJ) — the paper's first synthetic benchmark.

"A cross product of two trees where a pair of nodes contribute to a
computation (this benchmark corresponds to Figure 1(a))" — for every
node ``o`` of the outer tree and every node ``i`` of the inner tree,
``join(o.data, i.data)`` feeds an accumulator.  TJ has no dependences
between iterations (the accumulation is a commutative reduction) and no
irregular truncation, which makes it the cleanest showcase of the
locality effects: ``O(m + n)`` data, ``O(mn)`` work (Section 1.1).

TJ is also the workload behind Figure 5's reuse-distance CDF (trees of
1024 nodes).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.spec import NestedRecursionSpec
from repro.spaces.node import TreeNode
from repro.spaces.soa import soa_arrays, soa_from_arrays, soa_view
from repro.spaces.trees import balanced_tree


@dataclass
class JoinAccumulator:
    """State updated by every join; schedule-independent by design.

    ``total`` is a plain sum, so any execution order yields the same
    value — the unit tests use this to confirm that all schedules
    compute the same answer.  ``pairs`` counts work invocations.
    """

    total: int = 0
    pairs: int = 0

    def join(self, outer_value: int, inner_value: int) -> None:
        """The ``join(o.data, i.data)`` of Figure 1(a), line 10."""
        self.total += outer_value * inner_value
        self.pairs += 1

    def join_batch(
        self, outer_values: np.ndarray, inner_values: np.ndarray
    ) -> None:
        """Accumulate a whole block of joins with one dot product.

        Exactly equivalent to calling :meth:`join` per pair: the
        payloads are small integers, so the int64 dot is exact and the
        running total stays a Python int.
        """
        self.total += int(outer_values @ inner_values)
        self.pairs += len(outer_values)


#: Expected TW2xx verdicts for this benchmark's spec (the output of
#: ``python -m repro.transform lint-lower --benchmark TJ``).  TJ is the
#: canonical fully-certified spec: its SoA kernel is typed end to end
#: (``lowerable``) and its only shared-state writes are commutative
#: reductions the runtime privatizes (``independent``, TW213).  A
#: regression below either verdict fails tests and CI.
LOWER_VERDICT = {"lower": "lowerable", "independence": "independent"}

#: Expected TW30x locality verdicts at the benchmark's default size
#: (1200-node trees, scale 1.0) under the paper's Xeon cache model —
#: the output of ``python -m repro.transform lint-locality``.  TJ's
#: inner working set (~48 KB: 1200 nodes of struct + int payload)
#: exceeds L1 but fits L2 with full reuse (regular truncation), so
#: every blocking transformation is predicted to pay off.
LOCALITY_VERDICT = {
    "interchange": "profitable",
    "twist": "profitable",
    "layout:veb": "profitable",
    "layout:bfs": "neutral",
}


@dataclass
class TreeJoin:
    """A runnable Tree Join instance.

    Builds two independent balanced trees with integer payloads and
    exposes a fresh :class:`~repro.core.spec.NestedRecursionSpec` per
    run (the accumulator is reset by :meth:`make_spec`, so repeated
    runs under different schedules are comparable).
    """

    outer_nodes: int
    inner_nodes: int
    outer_root: TreeNode = field(init=False)
    inner_root: TreeNode = field(init=False)
    accumulator: JoinAccumulator = field(init=False)

    def __post_init__(self) -> None:
        if self.outer_nodes < 1 or self.inner_nodes < 1:
            raise ValueError("TreeJoin requires at least one node per tree")
        # Payload k+1 keeps every node's contribution non-zero, so a
        # skipped iteration always perturbs the checksum.
        self.outer_root = balanced_tree(self.outer_nodes, data=lambda k: k + 1)
        self.inner_root = balanced_tree(self.inner_nodes, data=lambda k: k + 1)
        self.accumulator = JoinAccumulator()

    def make_spec(self) -> NestedRecursionSpec:
        """A fresh spec with a reset accumulator."""
        self.accumulator = JoinAccumulator()
        spec = _join_spec(
            self.outer_root,
            self.inner_root,
            self.accumulator,
            f"TJ({self.outer_nodes}x{self.inner_nodes})",
        )
        spec.parallel_plan = self._parallel_plan()
        return spec

    def _parallel_plan(self):
        """The real task-parallel runtime's view of this instance.

        Both trees travel as packed SoA columns (payloads are small
        ints, so every column is numeric); workers rebuild linked trees
        with :func:`~repro.spaces.soa.soa_from_arrays` and accumulate
        into private sum columns that the parent reduces exactly
        (integer dtype, commutative sum).
        """
        from repro.core.parallel_exec import ParallelPlan
        from repro.spaces.soa import ResultColumn

        arrays = {}
        for prefix, root in (("outer.", self.outer_root), ("inner.", self.inner_root)):
            for name, column in soa_arrays(soa_view(root)).items():
                arrays[prefix + name] = column

        def apply(results: dict) -> None:
            self.accumulator.total = int(results["total"][0])
            self.accumulator.pairs = int(results["pairs"][0])

        def make_probe():
            probe = TreeJoin(31, 31)
            return probe.make_spec(), tree_join_footprint

        return ParallelPlan(
            factory="repro.kernels.treejoin:parallel_worker",
            arrays=arrays,
            params={"name": f"TJ({self.outer_nodes}x{self.inner_nodes})"},
            results=(
                ResultColumn("total", (1,), "int64", "sum"),
                ResultColumn("pairs", (1,), "int64", "sum"),
            ),
            apply=apply,
            make_probe=make_probe,
            witness_key="treejoin",
        )

    def expected_total(self) -> int:
        """Closed-form checksum: (sum of outer data) * (sum of inner data)."""
        outer_sum = sum(n.data for n in self.outer_root.iter_preorder())
        inner_sum = sum(n.data for n in self.inner_root.iter_preorder())
        return outer_sum * inner_sum

    @property
    def result(self) -> int:
        """Checksum accumulated by the most recent run."""
        return self.accumulator.total


def _join_spec(
    outer_root: TreeNode,
    inner_root: TreeNode,
    accumulator: JoinAccumulator,
    name: str,
) -> NestedRecursionSpec:
    """The TJ spec over given trees and accumulator.

    Shared by :meth:`TreeJoin.make_spec` (parent-side, original trees)
    and :func:`parallel_worker` (worker-side, trees rebuilt from shared
    SoA columns) so both execute the identical work functions.
    """

    def work(o: TreeNode, i: TreeNode) -> None:
        accumulator.join(o.data, i.data)

    def work_batch(os: list, is_: list) -> None:
        accumulator.join_batch(
            np.array([o.data for o in os], dtype=np.int64),
            np.array([i.data for i in is_], dtype=np.int64),
        )

    def work_batch_soa(o_view, i_view, o_positions, i_positions) -> None:
        # The packed payload columns turn the per-node attribute
        # walk above into two typed gathers.  asarray keeps the
        # position-list staging zero-copy when the caller (the
        # compiled backend) already passes np.intp arrays.
        rows = np.asarray(o_positions, dtype=np.intp)
        cols = np.asarray(i_positions, dtype=np.intp)
        accumulator.join_batch(
            o_view.column("data")[rows], i_view.column("data")[cols]
        )

    return NestedRecursionSpec(
        outer_root=outer_root,
        inner_root=inner_root,
        work=work,
        work_batch=work_batch,
        work_batch_soa=work_batch_soa,
        name=name,
    )


def _strip_prefix(arrays: dict, prefix: str) -> dict:
    return {
        name[len(prefix):]: column
        for name, column in arrays.items()
        if name.startswith(prefix)
    }


def parallel_worker(arrays: dict, params: dict, results: dict):
    """Worker factory for TJ (see ``ParallelPlan.factory``).

    Rebuilds both trees zero-copy from the shared SoA columns, joins
    into a worker-local accumulator, and flushes it into this worker's
    private sum columns when the chunk finishes.  ``inject_fault`` is a
    test hook: it replaces ``work`` with an unconditional raise so the
    failure-hardening tests can watch a real worker die.
    """
    outer = soa_from_arrays(_strip_prefix(arrays, "outer."))
    inner = soa_from_arrays(_strip_prefix(arrays, "inner."))
    accumulator = JoinAccumulator()
    spec = _join_spec(
        outer.nodes[outer.root],
        inner.nodes[inner.root],
        accumulator,
        str(params.get("name", "TJ")),
    )
    if params.get("inject_fault"):

        def _fault(o: TreeNode, i: TreeNode) -> None:
            raise RuntimeError("injected worker fault (test hook)")

        spec.work = _fault
        spec.work_batch = None
        spec.work_batch_soa = None

    def finish(ran: list) -> None:
        results["total"][0] += accumulator.total
        results["pairs"][0] += accumulator.pairs

    return spec, finish


def tree_join_footprint(o: TreeNode, i: TreeNode):
    """Soundness footprint for TJ: reads only.

    The accumulation is a reduction (commutative and associative), so —
    like the paper, which classifies TJ as having "no dependences
    between iterations" — the accumulator is not modeled as a written
    location.  Each iteration reads its two tree nodes.
    """
    return ((("outer", o.number), False), (("inner", i.number), False))

"""Index nodes: the abstract "loop indices" of recursive iteration spaces.

The nested recursion template of the paper (Figure 2) is written over
binary trees, but the paper is explicit that the tree nodes are really
*abstract positions* in a recursive iteration space — the equivalent of
loop indices.  This module defines :class:`IndexNode`, the minimal
protocol every recursion index must satisfy, and :class:`TreeNode`, the
concrete labeled node used by the synthetic kernels and the worked
examples of the paper.

The schedule executors in :mod:`repro.core` rely on exactly three pieces
of state on a node:

``children``
    The ordered child positions ("increment operations" in the loop
    analogy).  An empty tuple marks a position with no successors.

``size``
    The number of positions in the subtree rooted at this node,
    *including* the node itself.  Recursion twisting (Figure 4a) bases
    its twist-or-not decision entirely on comparing these sizes.

truncation scratch state (``trunc``, ``trunc_counter``, ``number``)
    Used only by the irregular-truncation machinery of Section 4; see
    :mod:`repro.core.truncation`.  ``number`` is the pre-order number of
    the node within its tree, and also serves as a stable integer
    identity for address mapping in :mod:`repro.memory.layout`.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional, Sequence


class IndexNode:
    """A position in a recursive iteration space.

    Subclasses add domain payloads (tree data, bounding volumes, point
    sets); the schedule executors only ever touch the attributes defined
    here.  ``__slots__`` keeps node objects small so that large spaces
    (hundreds of thousands of nodes) stay cheap to allocate.
    """

    __slots__ = (
        "children",
        "size",
        "trunc",
        "trunc_counter",
        "number",
        # Per-root table of packed SoA views ({order: SoATree}), set
        # lazily by repro.spaces.soa.soa_view on roots only.  It lives
        # on the node rather than in a module-level cache because a
        # SoATree references every node of its tree: any global table
        # (even weak-keyed) would pin dead trees through its own
        # values, while here views + tree form one collectable cycle.
        "_soa_views",
        # Weak referencability lets long-lived caches (e.g. the
        # backend selector's probe-once memo) key on roots without
        # keeping dead trees alive.
        "__weakref__",
    )

    def __init__(self) -> None:
        self.children: tuple["IndexNode", ...] = ()
        self.size: int = 1
        #: Truncation flag of Figure 6(b); managed by the executors.
        self.trunc: bool = False
        #: Counter of the Section 4.3 optimization; ``-1`` = untruncated.
        self.trunc_counter: int = -1
        #: Pre-order number within the node's tree (set by builders).
        self.number: int = -1

    @property
    def is_leaf(self) -> bool:
        """True when the node has no child positions."""
        return not self.children

    def iter_preorder(self) -> Iterator["IndexNode"]:
        """Yield the subtree rooted here in depth-first pre-order.

        Implemented with an explicit stack so it works on degenerate
        (list-shaped) trees far deeper than Python's recursion limit.
        """
        stack: list[IndexNode] = [self]
        while stack:
            node = stack.pop()
            yield node
            # Reversed so children come off the stack in declared order.
            stack.extend(reversed(node.children))

    def reset_truncation_state(self) -> None:
        """Clear truncation scratch state in the whole subtree."""
        for node in self.iter_preorder():
            node.trunc = False
            node.trunc_counter = -1


class TreeNode(IndexNode):
    """A labeled binary-or-wider tree node with an optional payload.

    This is the concrete node used by the Tree Join and Matrix
    Multiplication kernels and by all unit tests.  ``label`` is any
    hashable value (the paper labels the outer tree ``A..G`` and the
    inner tree ``1..7``); ``data`` is the payload read by ``work``.
    """

    __slots__ = ("label", "data")

    def __init__(self, label: Any, data: Any = None) -> None:
        super().__init__()
        self.label = label
        self.data = data

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TreeNode({self.label!r}, size={self.size})"

    @property
    def left(self) -> Optional["TreeNode"]:
        """First child or ``None`` (binary-tree convenience accessor)."""
        return self.children[0] if len(self.children) >= 1 else None  # type: ignore[return-value]

    @property
    def right(self) -> Optional["TreeNode"]:
        """Second child or ``None`` (binary-tree convenience accessor)."""
        return self.children[1] if len(self.children) >= 2 else None  # type: ignore[return-value]


def finalize_tree(root: IndexNode) -> IndexNode:
    """Compute ``size`` and pre-order ``number`` for a built tree.

    Builders call this once after linking children.  Returns ``root``
    for chaining.  One explicit-stack walk assigns pre-order numbers on
    the way down and post-order sizes on the way back up, so
    arbitrarily deep (e.g. million-node list) trees finalize without
    ``RecursionError`` and without a second full traversal.
    """
    count = 0
    # Frames: (node, False) = first visit (number it, schedule the
    # close frame below its children); (node, True) = children done
    # (their sizes are final), total the subtree size.
    stack: list[tuple[IndexNode, bool]] = [(root, False)]
    while stack:
        node, closing = stack.pop()
        if closing:
            size = 1
            for child in node.children:
                size += child.size
            node.size = size
        else:
            node.number = count
            count += 1
            stack.append((node, True))
            stack.extend((child, False) for child in reversed(node.children))
    return root


def tree_nodes(root: Optional[IndexNode]) -> list[IndexNode]:
    """All nodes of the (sub)tree rooted at ``root``, pre-order.

    Accepts ``None`` for convenience (returns an empty list), matching
    the template's use of ``null`` as the truncation sentinel.
    """
    if root is None:
        return []
    return list(root.iter_preorder())


def tree_depth(root: Optional[IndexNode]) -> int:
    """Height of the tree in nodes (0 for an empty tree)."""
    if root is None:
        return 0
    depth = 0
    frontier: Sequence[IndexNode] = [root]
    while frontier:
        depth += 1
        frontier = [child for node in frontier for child in node.children]
    return depth


def validate_index_node(node: Any) -> None:
    """Raise :class:`~repro.errors.SpecError` unless ``node`` is usable.

    The executors assume the index-node protocol; validating the roots
    up front turns attribute errors deep inside a recursion into a clear
    configuration error at spec construction time.
    """
    from repro.errors import SpecError

    from repro.spaces.soa import SoATree

    if isinstance(node, SoATree):
        raise SpecError(
            "got a structure-of-arrays tree handle (SoATree) where a "
            "linked index node was expected. SoA trees run through the "
            "soa-native executors — pass the original linked root to the "
            "spec and select backend='soa' (repro.core.soa_exec), or "
            "convert back with repro.spaces.soa.to_linked(soa)."
        )
    for attr in ("children", "size", "trunc", "trunc_counter", "number"):
        if not hasattr(node, attr):
            raise SpecError(
                f"{node!r} does not implement the index-node protocol: "
                f"missing attribute {attr!r}. Build nodes with "
                f"repro.spaces (or subclass IndexNode) and call "
                f"finalize_tree on the root."
            )
    if hasattr(node.number, "__len__"):
        # A column-valued ``number`` means someone handed us SoA-style
        # storage: the repro.memory.layout address mapping keys nodes by
        # their scalar pre-order ``number``, so array-valued numbers
        # would fail deep inside an executor instead of here.
        raise SpecError(
            f"{type(node).__name__}.number is array-valued, not a scalar "
            "pre-order number (repro.memory.layout maps addresses via "
            "node.number). This looks like SoA storage: use the "
            "soa-native executors (backend='soa') or rebuild linked "
            "nodes with repro.spaces.soa.to_linked first."
        )

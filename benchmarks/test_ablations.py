"""Bench targets: the DESIGN.md ablation studies.

Not paper figures, but isolations of the design choices the paper
motivates: the Section 4.3 counter optimization (vs Figure 6(b)
flags), and the layout-robustness of the purely temporal transformation.
"""

from benchmarks.conftest import register_report
from repro.bench.experiments import run_layout_ablation, run_truncation_ablation
from repro.memory.counters import speedup


def test_ablation_truncation_machinery(benchmark, bench_scale):
    num_points = max(512, int(4096 * bench_scale))
    report, runs = benchmark.pedantic(
        run_truncation_ablation,
        kwargs={"num_points": num_points},
        rounds=1,
        iterations=1,
    )
    register_report(report, "ablation_truncation.txt")

    flags = runs["twist (flags)"]
    counters = runs["twist (counters)"]
    # Counters remove the unset loops entirely...
    assert counters.op_counts.get("flag_unset", 0) == 0
    assert flags.op_counts.get("flag_unset", 0) > 0
    # ...and therefore never cost more instructions than flags.
    assert counters.instructions <= flags.instructions
    # All variants still beat the baseline at full scale.
    if bench_scale >= 1.0:
        baseline = runs["original"]
        for name, run in runs.items():
            if name != "original":
                assert speedup(baseline, run) > 1.0, name


def test_ablation_layout_robustness(benchmark, bench_scale):
    num_nodes = max(300, int(1000 * bench_scale))
    report, data = benchmark.pedantic(
        run_layout_ablation,
        kwargs={"num_nodes": num_nodes},
        rounds=1,
        iterations=1,
    )
    register_report(report, "ablation_layout.txt")

    gains = {policy: speedup(b, t) for policy, (b, t) in data.items()}
    # The temporal-locality win survives every layout...
    for policy, gain in gains.items():
        assert gain > 1.5, policy
    # ...and is layout-insensitive (within a modest band).
    assert max(gains.values()) / min(gains.values()) < 1.5

"""The TW30x cache-capacity model: parsing, probing, provenance."""

import os

import pytest

from repro.errors import MemorySimError
from repro.memory import (
    PAPER_L1_BYTES,
    PAPER_L2_BYTES,
    PAPER_L3_BYTES,
    CacheModel,
    parse_cache_size,
)


class TestParseCacheSize:
    @pytest.mark.parametrize(
        "text, expected",
        [
            ("32K", 32 * 1024),
            ("32k", 32 * 1024),
            ("  256 KB ", 256 * 1024),
            ("8M", 8 * 1024 * 1024),
            ("1G", 1024**3),
            ("20480K", 20 * 1024 * 1024),
            ("512", 512),
        ],
    )
    def test_sysfs_style_sizes(self, text, expected):
        assert parse_cache_size(text) == expected

    @pytest.mark.parametrize("junk", ["", "banana", "K32", "-4K", "3.5M"])
    def test_junk_raises_memory_sim_error(self, junk):
        with pytest.raises(MemorySimError):
            parse_cache_size(junk)


class TestCacheModel:
    def test_paper_default_matches_the_section_61_xeon(self):
        model = CacheModel.paper_default()
        assert model.levels() == (
            ("L1", 32 * 1024),
            ("L2", 256 * 1024),
            ("L3", 20 * 1024 * 1024),
        )
        assert model.source == "paper-xeon"

    def test_fitting_level_picks_the_smallest_holding_level(self):
        model = CacheModel.paper_default()
        assert model.fitting_level(0) == "L1"
        assert model.fitting_level(PAPER_L1_BYTES) == "L1"
        assert model.fitting_level(PAPER_L1_BYTES + 1) == "L2"
        assert model.fitting_level(PAPER_L2_BYTES + 1) == "L3"
        assert model.fitting_level(PAPER_L3_BYTES + 1) is None

    def test_is_frozen_and_hashable(self):
        model = CacheModel.paper_default()
        assert model == CacheModel.paper_default()
        assert hash(model) == hash(CacheModel.paper_default())
        with pytest.raises(Exception):
            model.l1_bytes = 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"l1_bytes": 0},
            {"l1_bytes": -1},
            {"l1_bytes": 1024 * 1024},  # L1 > L2 inverts the hierarchy
            {"line_bytes": 0},
        ],
    )
    def test_invalid_capacities_raise(self, kwargs):
        with pytest.raises(MemorySimError):
            CacheModel(**kwargs)

    def test_to_json_has_stable_keys(self):
        payload = CacheModel.paper_default().to_json()
        assert payload == {
            "l1_bytes": PAPER_L1_BYTES,
            "l2_bytes": PAPER_L2_BYTES,
            "l3_bytes": PAPER_L3_BYTES,
            "line_bytes": 64,
            "source": "paper-xeon",
        }


def write_index(root, index, level, size, kind="Data"):
    index_dir = os.path.join(
        root, "devices/system/cpu/cpu0/cache", f"index{index}"
    )
    os.makedirs(index_dir, exist_ok=True)
    for name, value in (("level", str(level)), ("size", size), ("type", kind)):
        with open(os.path.join(index_dir, name), "w") as handle:
            handle.write(value + "\n")


class TestProbeHost:
    def test_full_probe_reads_data_and_unified_levels(self, tmp_path):
        root = str(tmp_path)
        write_index(root, 0, 1, "48K", "Data")
        write_index(root, 1, 1, "32K", "Instruction")  # ignored
        write_index(root, 2, 2, "1M", "Unified")
        write_index(root, 3, 3, "16M", "Unified")
        model = CacheModel.probe_host(sysfs_root=root)
        assert model.l1_bytes == 48 * 1024
        assert model.l2_bytes == 1024 * 1024
        assert model.l3_bytes == 16 * 1024 * 1024
        assert model.source == "host-probe"

    def test_partial_probe_falls_back_per_level_and_stays_monotone(
        self, tmp_path
    ):
        root = str(tmp_path)
        # Only an enormous L1: the paper L2/L3 must be clamped up so
        # the hierarchy cannot invert.
        write_index(root, 0, 1, "64M", "Data")
        model = CacheModel.probe_host(sysfs_root=root)
        assert model.l1_bytes == 64 * 1024 * 1024
        assert model.l1_bytes <= model.l2_bytes <= model.l3_bytes

    def test_empty_probe_returns_the_paper_default(self, tmp_path):
        model = CacheModel.probe_host(sysfs_root=str(tmp_path))
        assert model == CacheModel.paper_default()
        assert model.source == "paper-xeon"

"""Unit tests for three-level matrix-matrix multiplication."""

import numpy as np
import pytest

from repro.core import run_original_n, run_twisted_n
from repro.kernels import MatMul3, MatMul3CacheProbe
from repro.memory.hierarchy import CacheHierarchy, LevelSpec


class TestCorrectness:
    def test_original_computes_product(self):
        mmm = MatMul3(n=6, m=5, p=4)
        run_original_n(mmm.make_spec())
        assert mmm.max_error() < 1e-12

    def test_twisted_computes_product(self):
        mmm = MatMul3(n=6, m=5, p=4)
        run_twisted_n(mmm.make_spec())
        assert mmm.max_error() < 1e-12

    def test_square_larger(self):
        mmm = MatMul3(n=16, m=16, p=16)
        run_twisted_n(mmm.make_spec())
        assert mmm.max_error() < 1e-12

    def test_make_spec_resets_output(self):
        mmm = MatMul3(n=4, m=4, p=4)
        run_original_n(mmm.make_spec())
        run_twisted_n(mmm.make_spec())  # second run must not double C
        assert mmm.max_error() < 1e-12

    def test_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            MatMul3(n=0, m=3, p=3)


class TestCacheProbe:
    def machine(self):
        return CacheHierarchy(
            [
                LevelSpec("L1", 8, ways=8).build(),
                LevelSpec("L2", 64, ways=8).build(),
            ]
        )

    def test_three_accesses_per_point(self):
        mmm = MatMul3(n=4, m=4, p=4)
        probe = MatMul3CacheProbe(mmm, self.machine())
        run_original_n(mmm.make_spec(), instrument=probe)
        assert probe.accesses == 3 * 4 * 4 * 4

    def test_arrays_in_disjoint_regions(self):
        mmm = MatMul3(n=8, m=8, p=8)
        probe = MatMul3CacheProbe(mmm, self.machine())
        assert probe._a_base < probe._b_base < probe._c_base

    def test_twisting_reduces_misses(self):
        # The Section 7.2 motivation: three-level twisting blocks MMM
        # for cache, parameter-free.
        mmm = MatMul3(n=24, m=24, p=24)

        def misses(run):
            machine = self.machine()
            probe = MatMul3CacheProbe(mmm, machine)
            run(mmm.make_spec(), instrument=probe)
            assert mmm.max_error() < 1e-12
            return machine.levels[1].stats.misses

        baseline = misses(run_original_n)
        twisted = misses(run_twisted_n)
        assert twisted < baseline / 2

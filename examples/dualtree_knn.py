#!/usr/bin/env python
"""Dual-tree k-nearest neighbors with recursion twisting.

The paper's flagship application class: dual-tree n-body algorithms
(Curtin et al.).  This example runs dual-tree 5-NN over kd-trees under
the original and twisted schedules, verifies both against a brute-force
oracle, and reports the modeled locality win.  It also demonstrates the
Section 3.3 soundness story: the outer recursion is parallel (per-query
state only), which is what licenses the transformation despite the
algorithm's inner-carried dependences and data-dependent pruning.

Run:  python examples/dualtree_knn.py
"""

import numpy as np

from repro.bench import bench_hierarchy, make_knn, run_case
from repro.core import FootprintRecorder, is_outer_parallel, run_original
from repro.core.schedules import ORIGINAL, TWIST
from repro.dualtree import KNearestNeighbors, brute_knn
from repro.dualtree.traverser import dual_tree_footprint
from repro.memory import speedup
from repro.spaces import clustered_points


def verify_against_brute_force() -> None:
    """Twisted dual-tree k-NN returns exactly the brute-force answer."""
    queries = clustered_points(500, seed=42)
    references = clustered_points(600, seed=43)
    knn = KNearestNeighbors(queries, references, k=5)

    from repro.core import run_twisted

    run_twisted(knn.make_spec())
    ids, dists = knn.result
    brute_ids, brute_dists = brute_knn(queries, references, k=5)

    assert np.allclose(dists, brute_dists), "distances diverge from oracle"
    assert np.array_equal(ids, brute_ids), "neighbor ids diverge from oracle"
    print("twisted dual-tree 5-NN == brute force on 500x600 points: OK")


def check_outer_parallelism() -> None:
    """Dynamically confirm the Section 3.3 soundness criterion."""
    queries = clustered_points(200, seed=7)
    references = clustered_points(200, seed=8)
    knn = KNearestNeighbors(queries, references, k=3)
    recorder = FootprintRecorder(dual_tree_footprint(knn.rules))
    run_original(knn.make_spec(), instrument=recorder)
    print(f"outer recursion parallel (Section 3.3 criterion): "
          f"{is_outer_parallel(recorder)}")


def measure_locality() -> None:
    """Benchmark-scale run on the simulated machine."""
    case = make_knn(2048)
    baseline = run_case(case, ORIGINAL, bench_hierarchy)
    twisted = run_case(case, TWIST, bench_hierarchy)
    print("\n--- dual-tree 5-NN, 2048 queries, simulated machine ---")
    print(baseline.summary())
    print(twisted.summary())
    print(f"modeled speedup: {speedup(baseline, twisted):.2f}x "
          f"(paper reports 2.41x-ish mid-range for KNN)")


if __name__ == "__main__":
    verify_against_brute_force()
    check_outer_parallelism()
    measure_locality()

"""Error-path tests: every recognizer/analysis TransformError.

Each raise site is pinned down by its stable diagnostic code *and* a
message substring, so refactors cannot silently reroute a failure into
a vaguer message or the wrong exit-code class (the CLI maps TW001 to
exit 3 and everything else here to exit 1).
"""

import pytest

from repro.errors import LintError, TransformError
from repro.transform import analyze_truncation, recognize
from repro.transform.tool import find_annotated_pair

VALID_OUTER = '''
def outer(o, i):
    if o is None:
        return
    inner(o, i)
    outer(o.left, i)
    outer(o.right, i)
'''

VALID_INNER = '''
def inner(o, i):
    if i is None:
        return
    work(o, i)
    inner(o, i.left)
    inner(o, i.right)
'''


def expect(source, match, code="TW002", outer="outer", inner="inner"):
    with pytest.raises(TransformError, match=match) as excinfo:
        recognize(source, outer, inner)
    assert excinfo.value.code == code
    return excinfo.value


class TestRecognizerErrors:
    def test_unparsable_source_tw001(self):
        error = expect("def broken(:\n", "does not parse", code="TW001")
        assert error.code == "TW001"

    def test_missing_function(self):
        expect(VALID_OUTER, "no top-level function named 'inner'")

    def test_wrong_arity(self):
        source = "def outer(o):\n    pass\n" + VALID_INNER
        expect(source, "exactly two positional parameters")

    def test_missing_guard(self):
        source = "def outer(o, i):\n    inner(o, i)\n" + VALID_INNER
        expect(source, "must start with a truncation check")

    def test_guard_with_else(self):
        source = '''
def outer(o, i):
    if o is None:
        return
    else:
        pass
    inner(o, i)
    outer(o.left, i)
''' + VALID_INNER
        expect(source, "no else branch")

    def test_keyword_recursive_call(self):
        source = '''
def outer(o, i):
    if o is None:
        return
    inner(o, i)
    outer(o=o.left, i=i)
''' + VALID_INNER
        expect(source, "positional arguments only")

    def test_mismatched_parameter_names(self):
        source = VALID_OUTER + '''
def inner(a, b):
    if b is None:
        return
    work(a, b)
    inner(a, b.left)
'''
        expect(source, "same parameter names")

    def test_outer_guard_reads_inner_index(self):
        source = '''
def outer(o, i):
    if o is None or i is None:
        return
    inner(o, i)
    outer(o.left, i)
''' + VALID_INNER
        expect(source, "may only depend on 'o'")

    def test_outer_missing_inner_launch(self):
        source = '''
def outer(o, i):
    if o is None:
        return
    outer(o.left, i)
''' + VALID_INNER
        expect(source, "immediately after its truncation check")

    def test_inner_launch_wrong_arguments(self):
        source = '''
def outer(o, i):
    if o is None:
        return
    inner(o.left, i)
    outer(o.left, i)
''' + VALID_INNER
        expect(source, "launch the inner recursion on exactly")

    def test_outer_body_with_stray_statement(self):
        source = '''
def outer(o, i):
    if o is None:
        return
    inner(o, i)
    helper(o)
    outer(o.left, i)
''' + VALID_INNER
        expect(source, "only recursive calls to itself")

    def test_outer_call_varies_inner_index(self):
        source = '''
def outer(o, i):
    if o is None:
        return
    inner(o, i)
    outer(o.left, i.left)
''' + VALID_INNER
        expect(source, "keep the inner index fixed")

    def test_outer_call_does_not_advance(self):
        source = '''
def outer(o, i):
    if o is None:
        return
    inner(o, i)
    outer(None, i)
''' + VALID_INNER
        expect(source, "advance the outer index")

    def test_outer_without_recursive_calls(self):
        source = '''
def outer(o, i):
    if o is None:
        return
    inner(o, i)
''' + VALID_INNER
        expect(source, "makes no recursive calls")

    def test_inner_call_varies_outer_index(self):
        source = VALID_OUTER + '''
def inner(o, i):
    if i is None:
        return
    work(o, i)
    inner(o.left, i.left)
'''
        expect(source, "keep the outer index fixed")

    def test_inner_call_does_not_advance(self):
        source = VALID_OUTER + '''
def inner(o, i):
    if i is None:
        return
    work(o, i)
    inner(o, None)
'''
        expect(source, "advance the inner index")

    def test_work_after_recursive_call(self):
        source = VALID_OUTER + '''
def inner(o, i):
    if i is None:
        return
    inner(o, i.left)
    work(o, i)
'''
        expect(source, "work statements must precede")

    def test_work_invoking_recursive_function(self):
        source = VALID_OUTER + '''
def inner(o, i):
    if i is None:
        return
    log(inner(o, i.left))
    inner(o, i.left)
'''
        expect(source, "must not invoke the recursive functions")

    def test_inner_without_recursive_calls(self):
        source = VALID_OUTER + '''
def inner(o, i):
    if i is None:
        return
    work(o, i)
'''
        expect(source, "makes no recursive calls")

    def test_inner_without_work(self):
        source = VALID_OUTER + '''
def inner(o, i):
    if i is None:
        return
    inner(o, i.left)
'''
        expect(source, "no work statements")

    def test_recursive_call_wrong_argument_count(self):
        source = VALID_OUTER + '''
def inner(o, i):
    if i is None:
        return
    work(o, i)
    inner(o, i.left, 1)
'''
        expect(source, "exactly the two indices")


class TestAnnotationErrors:
    def test_unparsable_annotated_source_tw001(self):
        with pytest.raises(TransformError, match="does not parse") as excinfo:
            find_annotated_pair("def broken(:\n")
        assert excinfo.value.code == "TW001"

    def test_missing_annotations(self):
        with pytest.raises(TransformError, match="annotated pair") as excinfo:
            find_annotated_pair("def f(o, i):\n    pass\n")
        assert excinfo.value.code == "TW002"

    def test_mismatched_inner_declaration(self):
        source = '''
from repro.transform import outer_recursion, inner_recursion

@outer_recursion(inner="other")
def outer(o, i):
    pass

@inner_recursion
def inner(o, i):
    pass
'''
        with pytest.raises(TransformError, match="inner='other'") as excinfo:
            find_annotated_pair(source)
        assert excinfo.value.code == "TW002"


class TestAnalysisErrors:
    def template_with_guard(self, guard):
        source = f'''
def outer(o, i):
    if o is None:
        return
    inner(o, i)
    outer(o.left, i)

def inner(o, i):
    if {guard}:
        return
    work(o, i)
    inner(o, i.left)
'''
        return recognize(source, "outer", "inner")

    def test_outer_only_disjunct_tw003(self):
        with pytest.raises(
            TransformError, match="depends only on the outer index"
        ) as excinfo:
            analyze_truncation(self.template_with_guard("i is None or o.skip"))
        assert excinfo.value.code == "TW003"

    def test_cross_bucket_alias_rejected(self):
        # The walrus defining ``ii`` lands in the regular part (inner
        # index only); the irregular disjunct reads it, but the two
        # parts are emitted into *different* generated functions, so
        # the alias would be an unbound name there.
        guard = "(ii := i) is None or far(o, ii)"
        with pytest.raises(TransformError, match="leave it unbound"):
            analyze_truncation(self.template_with_guard(guard))


class TestErrorHierarchy:
    def test_default_code_is_template_violation(self):
        assert TransformError("boom").code == "TW002"

    def test_lint_error_is_transform_error(self):
        error = LintError("refuted", code="TW010")
        assert isinstance(error, TransformError)
        assert error.code == "TW010"
        assert error.report is None

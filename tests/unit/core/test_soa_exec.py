"""Parity and unit tests for the SoA index-based executors.

Same contract as the batched suite (``test_batched.py``): for every
schedule configuration the instrument event stream and the computed
results must be bit-identical to the recursive executors — on top of
which the SoA engine must be *layout-independent* (every storage
linearization produces the same events) and expose the
``backend="soa"`` / ``backend="auto"`` surface through the schedule
registry.
"""

import pytest

from repro.core import (
    NestedRecursionSpec,
    run_interchanged,
    run_interchanged_soa,
    run_original,
    run_original_soa,
    run_twisted,
    run_twisted_soa,
)
from repro.core.backend_select import choose_backend, resolve_backend
from repro.core.batched import DEFAULT_BATCH_SIZE
from repro.core.instruments import Instrument
from repro.core.schedules import BY_NAME, get_schedule, twist_with_cutoff
from repro.core.soa_exec import PositionDispatcher
from repro.errors import ScheduleError, SpecError
from repro.spaces import balanced_tree, soa_view
from repro.spaces.soa import LINEARIZATIONS


class EventRecorder(Instrument):
    """Records every instrument event, in order."""

    def __init__(self):
        self.events = []

    def op(self, kind):
        self.events.append(("op", kind))

    def access(self, tree, node):
        self.events.append(("access", tree, node.number))

    def work(self, o, i):
        self.events.append(("work", o.number, i.number))


#: (label, recursive runner, soa runner, kwargs) for every schedule
#: configuration under test.
VARIANTS = [
    ("original", run_original, run_original_soa, {}),
    ("interchange", run_interchanged, run_interchanged_soa, {}),
    (
        "interchange+counters+subtree",
        run_interchanged,
        run_interchanged_soa,
        {"use_counters": True, "subtree_truncation": True},
    ),
    ("twist", run_twisted, run_twisted_soa, {}),
    ("twist+counters", run_twisted, run_twisted_soa, {"use_counters": True}),
    (
        "twist(cutoff=16)-subtree",
        run_twisted,
        run_twisted_soa,
        {"cutoff": 16, "subtree_truncation": False},
    ),
]


def make_cases():
    """Small instances of the six benchmarks, plus KDE."""
    from repro.bench.workloads import (
        make_knn,
        make_mm,
        make_nn,
        make_pc,
        make_tj,
        make_vp,
    )
    from repro.dualtree import KernelDensity
    from repro.spaces.points import clustered_points

    cases = [
        make_tj(120),
        make_mm(48),
        make_pc(512),
        make_nn(384),
        make_knn(256),
        make_vp(256),
    ]
    kde = KernelDensity(
        clustered_points(300, clusters=8, spread=0.05, seed=3),
        clustered_points(300, clusters=8, spread=0.05, seed=4),
        bandwidth=0.1,
        epsilon=1e-4,
    )

    class KdeCase:
        """Adapter giving KDE the BenchmarkCase result/spec surface."""

        name = "KDE"
        make_spec = staticmethod(kde.make_spec)

        @staticmethod
        def result():
            return kde.result.tobytes()

    cases.append(KdeCase)
    return cases


CASES = make_cases()


@pytest.mark.parametrize("case", CASES, ids=lambda c: c.name)
@pytest.mark.parametrize(
    "variant", VARIANTS, ids=[label for label, *_ in VARIANTS]
)
def test_instrumented_parity(case, variant):
    """Events and results are bit-identical to the recursive executor."""
    _label, recursive_run, soa_run, kwargs = variant

    spec = case.make_spec()
    recorder = EventRecorder()
    recursive_run(spec, recorder, **kwargs)
    recursive_events, recursive_result = recorder.events, case.result()

    spec = case.make_spec()
    recorder = EventRecorder()
    soa_run(spec, recorder, **kwargs)

    assert recorder.events == recursive_events
    assert repr(case.result()) == repr(recursive_result)


@pytest.mark.parametrize("case", CASES, ids=lambda c: c.name)
@pytest.mark.parametrize(
    "variant", VARIANTS, ids=[label for label, *_ in VARIANTS]
)
def test_uninstrumented_parity(case, variant):
    """The bulk/block fast paths (only reachable uninstrumented)
    produce bit-identical results."""
    _label, recursive_run, soa_run, kwargs = variant

    spec = case.make_spec()
    recursive_run(spec, None, **kwargs)
    recursive_result = case.result()

    spec = case.make_spec()
    soa_run(spec, None, **kwargs)

    assert repr(case.result()) == repr(recursive_result)


@pytest.mark.parametrize("order", LINEARIZATIONS)
@pytest.mark.parametrize(
    "case", CASES[:1] + CASES[3:4] + CASES[-1:], ids=lambda c: c.name
)
def test_layout_independence(case, order):
    """Every storage linearization yields identical events and results.

    Exercised on TJ (positions mode), NN (inline mode), and KDE
    (stateful Score) under the twist schedule — the traversal runs in
    rank space, so the layout may only change memory order, never
    observable behavior.
    """
    spec = case.make_spec()
    recorder = EventRecorder()
    run_twisted(spec, recorder)
    expected_events, expected_result = recorder.events, case.result()

    spec = case.make_spec()
    recorder = EventRecorder()
    run_twisted_soa(spec, recorder, order=order)
    assert recorder.events == expected_events
    assert repr(case.result()) == repr(expected_result)

    spec = case.make_spec()
    run_twisted_soa(spec, None, order=order)
    assert repr(case.result()) == repr(expected_result)


@pytest.mark.parametrize("batch_size", [1, 3, 64, DEFAULT_BATCH_SIZE])
def test_batch_size_invariance(batch_size):
    """Any flush granularity yields the same results (both the node
    dispatcher on PC and the position dispatcher on TJ)."""
    from repro.bench.workloads import make_pc, make_tj

    for case in (make_pc(256), make_tj(63)):
        spec = case.make_spec()
        run_original(spec, None)
        expected = case.result()
        spec = case.make_spec()
        run_original_soa(spec, None, batch_size=batch_size)
        assert case.result() == expected, case.name


def test_bulk_twist_preserves_work_order():
    """The collapsed bulk twist engine must emit work in the exact
    order of the recursive twist (the dispatch decisions it resolves
    at push time are static, so only the order could go wrong)."""
    for cutoff in (None, 4):
        recursive_points, soa_points = [], []
        outer, inner = balanced_tree(31), balanced_tree(57)
        run_twisted(
            NestedRecursionSpec(
                outer,
                inner,
                work=lambda o, i: recursive_points.append(
                    (o.number, i.number)
                ),
            ),
            cutoff=cutoff,
        )
        run_twisted_soa(
            NestedRecursionSpec(
                outer,
                inner,
                work=lambda o, i: soa_points.append((o.number, i.number)),
            ),
            cutoff=cutoff,
        )
        assert soa_points == recursive_points


class TestPositionDispatcher:
    def _views(self):
        return soa_view(balanced_tree(7)), soa_view(balanced_tree(7))

    def test_flush_preserves_order_and_clears(self):
        seen = []
        outer, inner = self._views()
        dispatcher = PositionDispatcher(
            lambda o_view, i_view, os, is_: seen.extend(
                zip(list(os), list(is_))
            ),
            outer,
            inner,
        )
        dispatcher.add(0, 1)
        dispatcher.add(2, 3)
        dispatcher.flush()
        assert seen == [(0, 1), (2, 3)]
        dispatcher.flush()  # idempotent on empty
        assert len(seen) == 2

    def test_auto_flush_at_batch_size(self):
        blocks = []
        outer, inner = self._views()
        dispatcher = PositionDispatcher(
            lambda o_view, i_view, os, is_: blocks.append(len(os)),
            outer,
            inner,
            batch_size=2,
        )
        for k in range(5):
            dispatcher.add(k, k)
        assert blocks == [2, 2]
        dispatcher.flush()
        assert blocks == [2, 2, 1]

    def test_flush_passes_the_packed_views(self):
        captured = {}
        outer, inner = self._views()
        dispatcher = PositionDispatcher(
            lambda o_view, i_view, os, is_: captured.update(
                outer=o_view, inner=i_view
            ),
            outer,
            inner,
        )
        dispatcher.add(0, 0)
        dispatcher.flush()
        assert captured["outer"] is outer
        assert captured["inner"] is inner


class TestScheduleBackends:
    def test_all_named_schedules_offer_soa_backend(self):
        from repro.kernels import TreeJoin

        for name in sorted(BY_NAME) + ["twist(cutoff=4)"]:
            for order in LINEARIZATIONS:
                tj = TreeJoin(31, 31)
                spec = tj.make_spec()
                get_schedule(name).run(spec, backend="soa", order=order)
                assert tj.result == tj.expected_total(), (name, order)

    def test_backends_agree_under_instrumentation(self):
        schedule = twist_with_cutoff(8)
        spec = NestedRecursionSpec(balanced_tree(31), balanced_tree(31))
        recursive, soa = EventRecorder(), EventRecorder()
        schedule.run(spec, instrument=recursive, backend="recursive")
        schedule.run(spec, instrument=soa, backend="soa")
        assert recursive.events == soa.events

    def test_auto_backend_runs_and_matches(self):
        from repro.kernels import TreeJoin

        tj = TreeJoin(200, 200)
        spec = tj.make_spec()
        get_schedule("twist").run(spec, backend="auto")
        assert tj.result == tj.expected_total()

    def test_unknown_backend_rejected(self):
        spec = NestedRecursionSpec(balanced_tree(3), balanced_tree(3))
        with pytest.raises(ScheduleError):
            BY_NAME["original"].run(spec, backend="recursiv")

    def test_unknown_order_rejected(self):
        spec = NestedRecursionSpec(balanced_tree(3), balanced_tree(3))
        with pytest.raises(SpecError, match="unknown linearization"):
            BY_NAME["original"].run(spec, backend="soa", order="zorder")


class TestChooseBackend:
    def test_tiny_spaces_stay_recursive(self):
        spec = NestedRecursionSpec(balanced_tree(15), balanced_tree(15))
        choice = choose_backend(spec)
        assert choice.backend == "recursive"
        assert choice.features["points"] == 225

    def test_stateful_truncation_picks_soa(self):
        from repro.bench.workloads import make_nn

        choice = choose_backend(make_nn(512).make_spec())
        assert choice.backend == "soa"
        assert choice.features["observes_work"]

    def test_soa_native_lowerable_work_picks_compiled(self):
        from repro.bench.workloads import make_tj

        choice = choose_backend(make_tj(200).make_spec())
        assert choice.backend == "compiled"
        assert choice.features["has_work_batch_soa"]
        assert choice.features["lowerable"]
        assert choice.order == "veb"

    def test_unlowerable_soa_native_work_falls_back_to_soa(self, monkeypatch):
        from repro.bench.workloads import make_tj
        from repro.core import backend_select

        monkeypatch.setattr(
            backend_select,
            "_compiled_eligible",
            lambda spec: (False, "forced refusal (test)", ("TW208",)),
        )
        choice = choose_backend(make_tj(200).make_spec())
        assert choice.backend == "soa"
        assert choice.order == "veb"
        assert "compiled refused" in choice.reason
        # The refusing analyzer's codes land in the evidence trail.
        assert "TW208" in choice.evidence

    def test_stateless_irregular_defaults_to_batched(self):
        from repro.bench.workloads import make_pc

        choice = choose_backend(make_pc(512).make_spec())
        assert choice.backend == "batched"
        assert choice.features["truncation_density"] is not None

    def test_probe_never_calls_work_or_stateful_predicates(self):
        calls = []
        spec = NestedRecursionSpec(
            balanced_tree(127),
            balanced_tree(127),
            work=lambda o, i: calls.append("work"),
            truncate_inner2=lambda o, i: calls.append("t2") or False,
            truncation_observes_work=True,
        )
        choose_backend(spec)
        assert calls == []

    def test_resolve_backend(self):
        spec = NestedRecursionSpec(balanced_tree(3), balanced_tree(3))
        assert resolve_backend(spec, "original", "soa") == "soa"
        assert resolve_backend(spec, "original", "auto") == "recursive"
        with pytest.raises(ScheduleError):
            resolve_backend(spec, "original", "fastest")

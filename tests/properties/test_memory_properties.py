"""Property-based tests for the memory substrate.

The reuse-distance analyzer and the LRU cache are the measurement
instruments of the whole reproduction — these properties check them
against independent oracles on arbitrary traces.
"""

from collections import OrderedDict

from hypothesis import given, strategies as st

from repro.memory import (
    ReuseDistanceAnalyzer,
    fully_associative,
    naive_reuse_distances,
)
from repro.memory.cache import SetAssociativeCache

traces = st.lists(st.integers(min_value=0, max_value=30), max_size=200)


class TestReuseAnalyzer:
    @given(trace=traces)
    def test_matches_naive_oracle(self, trace):
        analyzer = ReuseDistanceAnalyzer()
        assert analyzer.process(trace) == naive_reuse_distances(trace)

    @given(trace=traces)
    def test_histogram_counts_finite_accesses(self, trace):
        analyzer = ReuseDistanceAnalyzer()
        distances = analyzer.process(trace)
        finite = [d for d in distances if d is not None]
        assert sum(analyzer.histogram.values()) == len(finite)
        assert analyzer.cold_accesses == len(trace) - len(finite)

    @given(trace=traces)
    def test_distance_bounded_by_alphabet(self, trace):
        analyzer = ReuseDistanceAnalyzer()
        for distance in analyzer.process(trace):
            if distance is not None:
                assert 0 <= distance < len(set(trace))


class TestLruCacheAgainstReuseDistance:
    @given(trace=traces, capacity=st.integers(min_value=1, max_value=16))
    def test_fully_associative_hit_iff_distance_below_capacity(
        self, trace, capacity
    ):
        # The textbook stack-distance theorem: under fully associative
        # LRU, an access hits iff its reuse distance < capacity.
        cache = fully_associative(capacity)
        distances = naive_reuse_distances(trace)
        for key, distance in zip(trace, distances):
            hit = cache.access(key)
            expected = distance is not None and distance < capacity
            assert hit == expected

    @given(
        trace=traces,
        num_sets=st.integers(min_value=1, max_value=4),
        ways=st.integers(min_value=1, max_value=4),
    )
    def test_set_associative_matches_per_set_model(self, trace, num_sets, ways):
        # Each set behaves as an independent fully associative LRU over
        # the addresses mapping to it.
        cache = SetAssociativeCache(num_sets=num_sets, ways=ways)
        models = [OrderedDict() for _ in range(num_sets)]
        for address in trace:
            model = models[address % num_sets]
            expected_hit = address in model
            if expected_hit:
                model.move_to_end(address)
            else:
                if len(model) >= ways:
                    model.popitem(last=False)
                model[address] = None
            assert cache.access(address) == expected_hit

    @given(trace=traces)
    def test_stats_are_consistent(self, trace):
        cache = fully_associative(8)
        for address in trace:
            cache.access(address)
        stats = cache.stats
        assert stats.hits + stats.misses == stats.accesses == len(trace)

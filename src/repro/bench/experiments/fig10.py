"""Figure 10: twisting with a cutoff vs parameterless twisting (§7.1).

"The twisting code will only switch from the original recursion order
to the interchanged order if the inner tree size is greater than the
cutoff parameter."  Expected shapes, quoted from the paper:

* 10(a): "implementing cutoff reduces instruction overhead ...
  instruction overhead is higher for smaller cutoff parameters";
* 10(b): "If the cutoff value is too large, we get less locality
  improvement so ... speedup is worse than the parameterless version.
  Smaller cutoff values can produce better speedup, but the smallest
  cutoff value does not yield the best speedup ... the parameterless
  version is not too far off from the best cutoff version."

Like the paper, the study uses a smaller PC input than Figure 7 ("Note
that we use a smaller input for PC than in the experiments of Section
6, so the speedup of the baseline parameterless version is lower").
Cutoffs are in inner-tree *nodes* (our size measure).
"""

from __future__ import annotations

from typing import Sequence

from repro.bench.machine import bench_hierarchy
from repro.bench.reporting import ExperimentReport, percent
from repro.bench.runner import run_case
from repro.bench.workloads import make_pc
from repro.core.schedules import ORIGINAL, TWIST, twist_with_cutoff
from repro.memory.counters import PerfReport, instruction_overhead, speedup

DEFAULT_CUTOFFS = (4, 16, 64, 256, 1024)


def run_fig10(
    num_points: int = 2048,
    cutoffs: Sequence[int] = DEFAULT_CUTOFFS,
    radius: float = 0.35,
    leaf_size: int = 8,
) -> tuple[ExperimentReport, dict[str, PerfReport]]:
    """Sweep cutoff values on a smaller PC input."""
    case = make_pc(num_points=num_points, radius=radius, leaf_size=leaf_size)
    reports: dict[str, PerfReport] = {}
    reports["original"] = run_case(case, ORIGINAL, bench_hierarchy)
    reports["parameterless"] = run_case(case, TWIST, bench_hierarchy)
    for cutoff in cutoffs:
        schedule = twist_with_cutoff(cutoff)
        reports[schedule.name] = run_case(case, schedule, bench_hierarchy)

    # The Section 7.1 open problem, answered by the cache-aware
    # estimator: include its pick alongside the sweep.
    from repro.core.cutoff import cutoff_for_machine
    from repro.memory.layout import AddressMap

    address_map = AddressMap()
    case.register_layout(address_map)
    num_nodes = case.make_spec().outer_root.size * 2  # both trees
    lines_per_node = address_map.total_lines / max(num_nodes, 1)
    estimated = cutoff_for_machine(
        bench_hierarchy(), lines_per_node=lines_per_node
    )
    reports[f"auto(cutoff={estimated})"] = run_case(
        case, twist_with_cutoff(estimated), bench_hierarchy
    )

    baseline = reports["original"]
    report = ExperimentReport(
        title=f"Figure 10: cutoff study on PC ({num_points} points)",
        columns=["configuration", "instr overhead", "speedup", "L3 miss"],
    )
    for name, run in reports.items():
        if name == "original":
            continue
        report.add_row(
            name,
            percent(instruction_overhead(baseline, run)),
            f"{speedup(baseline, run):.2f}x",
            percent(run.miss_rate("L3")),
        )
    report.add_note(
        "paper shape: cutoff lowers instruction overhead (more for larger "
        "cutoffs); too-large cutoffs lose locality; the smallest cutoff is "
        "not the best; parameterless is close to the best cutoff"
    )
    return report, reports

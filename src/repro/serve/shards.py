"""Reference-set sharding: scatter one tick, gather exact answers.

The serving data plane can hold the reference set as ``N`` independent
kd-trees over contiguous slices of the published point array.  A tick's
batched outer tree is *scattered* — the identical admitted-point batch
runs against every shard — and the per-shard result columns are
*gathered* back into exactly the columns the single-tree run would have
produced.  Both gathers reuse reductions this repo has already proven:

* **NN / k-NN** answers are *set states*: the final ``(dists, ids)``
  rows are the k lexicographically smallest ``(distance, id)`` pairs
  over the whole candidate set, an outcome independent of merge order
  and batch shape (the ``ServeKnnRules`` invariant).  Each shard's
  conservative pruning keeps every candidate that could be in *its*
  top-``min(k, shard_n)`` — a superset of the global top-k members
  that live in that shard — and a point's distance to the query is a
  function of the two coordinate tuples alone, so it is bit-identical
  no matter which tree holds the point.  Concatenating the shard rows
  (local ids rebased to global), lexicographically sorting, and taking
  the first ``k`` therefore reproduces the full-tree answer bit for
  bit, padding (``inf``/:data:`~repro.serve.rules.PAD_ID`) sorting
  last by construction.
* **count** answers are order-independent integer sums over disjoint
  reference subsets; the gather is an exact ``sum`` of the per-shard
  count columns.

Shard boundaries are plain ``(start, stop)`` slices of the reference
array, so a shard-local id ``i`` is global id ``start + i`` — the same
identity ``build_kdtree`` relies on (it permutes *indices*, never the
point array).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.dualtree.spatial import SpatialTree
from repro.errors import SpecError
from repro.serve.rules import PAD_ID, SubtreeVerdictCache
from repro.spaces.soa import SharedPublication


def shard_slices(num_points: int, shards: int) -> list[tuple[int, int]]:
    """Contiguous, non-empty, balanced ``(start, stop)`` slices."""
    if shards < 1:
        raise SpecError(f"shards must be >= 1, got {shards}")
    if shards > num_points:
        raise SpecError(
            f"cannot cut {num_points} reference points into {shards} "
            "non-empty shards"
        )
    bounds = [round(i * num_points / shards) for i in range(shards + 1)]
    return [(bounds[i], bounds[i + 1]) for i in range(shards)]


@dataclass
class ReferenceShard:
    """One slice of the reference set, finalized and published."""

    #: shard position in the scatter order
    index: int
    #: global id of this shard's local id 0
    id_base: int
    #: the shard's own finalized kd-tree
    tree: SpatialTree
    #: resident shared-memory publication pool workers attach to
    publication: SharedPublication
    #: per-shard verdict rows (rows index *this* tree's node numbers,
    #: so caches are never shared across trees)
    verdict_cache: SubtreeVerdictCache

    @property
    def num_points(self) -> int:
        return self.tree.num_points


def rebase_ids(ids: np.ndarray, id_base: int) -> np.ndarray:
    """Shard-local result ids -> global ids; padding stays padding."""
    if id_base == 0:
        return ids
    rebased = ids.copy()
    rebased[rebased != PAD_ID] += id_base
    return rebased


def _pad_neighbor_columns(
    columns: dict[str, np.ndarray], k: int
) -> tuple[np.ndarray, np.ndarray]:
    """Widen one shard's (dists, ids) to ``k`` columns with padding.

    A shard smaller than ``k`` legitimately answers with fewer
    neighbors; the pad values are the same sentinels a single
    undersized tree would produce.
    """
    dists, ids = columns["dists"], columns["ids"]
    width = dists.shape[1]
    if width == k:
        return dists, ids
    batch = dists.shape[0]
    wide_d = np.full((batch, k), np.inf)
    wide_i = np.full((batch, k), PAD_ID, dtype=np.int64)
    wide_d[:, :width] = dists
    wide_i[:, :width] = ids
    return wide_d, wide_i


def gather_neighbor_columns(
    shard_columns: Sequence[dict[str, np.ndarray]],
    id_bases: Sequence[int],
    k: int,
) -> dict[str, np.ndarray]:
    """Exact NN/k-NN gather: rebase, concatenate, lexsort, take k.

    The sort key is ``(distance, global id)`` — the identical
    tie-breaking ``ServeKnnRules`` applies inside a single tree — so
    the gathered rows are the rows the full tree would have written.
    """
    if len(shard_columns) != len(id_bases):
        raise SpecError(
            f"{len(shard_columns)} shard results for {len(id_bases)} shards"
        )
    if len(shard_columns) == 1:
        return dict(shard_columns[0])
    dist_parts, id_parts = [], []
    for columns, id_base in zip(shard_columns, id_bases):
        dists, ids = _pad_neighbor_columns(columns, k)
        dist_parts.append(dists)
        id_parts.append(rebase_ids(ids, id_base))
    all_d = np.concatenate(dist_parts, axis=1)
    all_i = np.concatenate(id_parts, axis=1)
    order = np.lexsort((all_i, all_d), axis=1)[:, :k]
    return {
        "dists": np.take_along_axis(all_d, order, axis=1),
        "ids": np.take_along_axis(all_i, order, axis=1),
    }


def gather_count_columns(
    shard_columns: Sequence[dict[str, np.ndarray]],
) -> dict[str, np.ndarray]:
    """Exact count gather: integer sum over disjoint reference slices."""
    if len(shard_columns) == 1:
        return dict(shard_columns[0])
    total: Optional[np.ndarray] = None
    for columns in shard_columns:
        counts = columns["counts"]
        total = counts.copy() if total is None else total + counts
    assert total is not None
    return {"counts": total}


def gather_columns(
    kind: str,
    shard_columns: Sequence[dict[str, np.ndarray]],
    id_bases: Sequence[int],
    k: int,
) -> dict[str, np.ndarray]:
    """Dispatch the exact gather for one query kind."""
    if kind == "count":
        return gather_count_columns(shard_columns)
    return gather_neighbor_columns(shard_columns, id_bases, k)

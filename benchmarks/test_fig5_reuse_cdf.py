"""Bench target: Figure 5 — TJ reuse-distance CDF at 1024 nodes.

Paper shape asserted: the original CDF is bimodal (about half the
accesses at O(1) distances, the rest at O(n)); the twisted CDF
dominates at small and medium distances, reflecting the nested tiles.
"""

from benchmarks.conftest import register_report
from repro.bench.experiments import run_fig5


def test_fig5_reuse_cdf(benchmark, bench_scale):
    num_nodes = max(64, int(1024 * bench_scale))
    report, data = benchmark.pedantic(
        run_fig5, kwargs={"num_nodes": num_nodes}, rounds=1, iterations=1
    )
    register_report(report, "fig5_reuse_cdf.txt")

    original, twisted = data["original"], data["twisted"]
    # Bimodal original: ~half the accesses have tiny distances, and
    # essentially nothing lands between O(1) and O(n).
    assert 0.4 < original.fraction_at_most(4) < 0.6
    assert original.fraction_at_most(num_nodes // 2) == original.fraction_at_most(4)
    # Twisting dominates at mid-range distances (sampled relative to
    # the tree size so the shape check holds at any scale).
    for r in (num_nodes // 32, num_nodes // 8, num_nodes // 2):
        assert twisted.fraction_at_most(r) > original.fraction_at_most(r), r
    # Mean finite reuse distance collapses.
    assert twisted.mean_finite_distance() < original.mean_finite_distance() / 5

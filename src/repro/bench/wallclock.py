"""Wall-clock comparison of the executor backends.

The simulated-machine experiments measure *locality*; this module
measures *real time*: for each benchmark (the Section 6.1 six plus
KDE) and schedule it runs the same spec through every backend —
``recursive`` (the paper-faithful executors), ``batched``
(:mod:`repro.core.batched`), ``soa`` (:mod:`repro.core.soa_exec`,
optionally swept across its storage linearizations), ``compiled``
(:mod:`repro.core.compiled` — refusals on non-``lowerable`` specs are
recorded as null timings with the refusal reason under ``refused``),
and ``auto`` (:mod:`repro.core.backend_select`) — timing each with
:func:`time.perf_counter` and checking that all results are
bit-identical.  The payload also carries a ``host`` key
(``cpu_count``, ``numba``) so the perf-floor gates can self-skip on
undersized hosts.

The driver emits a machine-readable ``BENCH_soa.json`` next to the
rendered table.  Its schema::

    {
      "experiment": "wallclock_backends",
      "scale": 1.0,              # workload scale factor
      "repeats": 3,              # best-of-N timing
      "backends": ["recursive", "batched", "soa", "auto"],
      "results": [
        {
          "benchmark": "TJ",
          "schedule": "original",
          "timings": {             # best-of-N wall-clock seconds
            "recursive": 0.65,
            "batched": 0.12,
            "soa": 0.08,
            "auto": 0.08
          },
          "speedups": {            # recursive_s / backend_s
            "batched": 5.4, "soa": 8.1, "auto": 8.1
          },
          "soa_orders": {          # soa timed per linearization
            "preorder": 0.08, "bfs": 0.09, "veb": 0.08
          },
          "auto_choice": "soa",    # what the selector picked
          "best_backend": "soa",   # fastest single backend
          "auto_vs_best": 1.0,     # best_s / auto_s (>= 0.9 required)
          "results_match": true    # repr-identical results, all backends
        },
        ...
      ]
    }

``auto_vs_best`` is the number the CI perf floor
(:mod:`repro.bench.perf_floor`) guards: ``auto`` must stay within 10%
of the best single backend on every (benchmark, schedule) pair.

Run it from the CLI as ``python -m repro.bench wallclock``; see
``--benchmark``/``--schedule``/``--backend``/``--repeats`` there for
slicing the sweep.
"""

from __future__ import annotations

import json
import os
import time
from typing import Optional, Sequence

from repro.bench.reporting import ExperimentReport
from repro.bench.workloads import BenchmarkCase, wallclock_cases
from repro.core.backend_select import choose_backend
from repro.core.schedules import Schedule, get_schedule
from repro.errors import ScheduleError
from repro.spaces.soa import LINEARIZATIONS

#: Schedules timed by default: the untransformed baseline plus the
#: paper's headline transformation.
DEFAULT_SCHEDULES = ("original", "twist")

#: Backends timed by default (single backends first, then the selector).
DEFAULT_BACKENDS = ("recursive", "batched", "soa", "auto")

#: Backends eligible as "best single" references.  ``compiled`` only
#: counts on the benchmarks it accepts (it refuses specs without a
#: TW20x ``lowerable`` verdict; refused entries time as null).
SINGLE_BACKENDS = ("recursive", "batched", "soa", "compiled")


def _host_info() -> dict:
    """Host facts the perf-floor gates need to be host-aware."""
    from repro.transform.lower_codegen import _import_numba

    return {
        "cpu_count": os.cpu_count() or 1,
        "numba": _import_numba() is not None,
    }


def time_backend(
    case: BenchmarkCase,
    schedule: Schedule,
    backend: str,
    repeats: int = 3,
    order: str = "preorder",
) -> tuple[float, object]:
    """Best-of-``repeats`` wall-clock seconds for one configuration.

    Each repeat rebuilds the spec via ``case.make_spec()`` (which
    resets benchmark state), so accumulated results never compound.
    Returns ``(seconds, result)`` where ``result`` is the benchmark's
    result probe after the final repeat.
    """
    best = float("inf")
    for _ in range(max(1, repeats)):
        spec = case.make_spec()
        start = time.perf_counter()
        schedule.run(spec, backend=backend, order=order)
        best = min(best, time.perf_counter() - start)
    return best, case.result()


def run_wallclock(
    scale: float = 1.0,
    schedule_names: Sequence[str] = DEFAULT_SCHEDULES,
    backends: Sequence[str] = DEFAULT_BACKENDS,
    repeats: int = 3,
    cases: Optional[list[BenchmarkCase]] = None,
    sweep_orders: bool = True,
) -> tuple[ExperimentReport, dict]:
    """Time the backends on the wall-clock benchmark inventory.

    ``sweep_orders`` additionally times the SoA backend under each
    storage linearization (only when ``"soa"`` is among ``backends``).
    Returns ``(report, payload)``: the rendered ASCII table and the
    JSON-serializable payload written to ``BENCH_soa.json``.
    """
    cases = wallclock_cases(scale) if cases is None else cases
    backends = list(backends)
    report = ExperimentReport(
        title="Wall-clock: executor backends",
        columns=["benchmark", "schedule"]
        + [f"{backend} (s)" for backend in backends]
        + ["auto picks", "best", "auto/best", "match"],
    )
    entries = []
    for case in cases:
        for name in schedule_names:
            schedule = get_schedule(name)
            timings: dict[str, Optional[float]] = {}
            results: dict[str, object] = {}
            refused: dict[str, str] = {}
            for backend in backends:
                try:
                    timings[backend], results[backend] = time_backend(
                        case, schedule, backend, repeats
                    )
                except ScheduleError as exc:
                    # The proof-gated compiled backend refuses specs
                    # without a TW20x 'lowerable' verdict; record the
                    # refusal instead of aborting the sweep.
                    timings[backend] = None
                    refused[backend] = str(exc)
            reference = next(iter(results.values()))
            match = all(
                repr(result) == repr(reference)
                for result in results.values()
            )
            entry: dict = {
                "benchmark": case.name,
                "schedule": name,
                "timings": {
                    backend: None if seconds is None else round(seconds, 6)
                    for backend, seconds in timings.items()
                },
                "results_match": match,
            }
            if refused:
                entry["refused"] = refused
            recursive_s = timings.get("recursive")
            if recursive_s is not None:
                entry["speedups"] = {
                    backend: round(recursive_s / timings[backend], 3)
                    for backend in backends
                    if backend != "recursive"
                    and timings[backend] is not None
                    and timings[backend] > 0
                }
            if sweep_orders and "soa" in backends:
                entry["soa_orders"] = {
                    order: round(
                        time_backend(
                            case, schedule, "soa", repeats, order=order
                        )[0],
                        6,
                    )
                    for order in LINEARIZATIONS
                }
            if (
                sweep_orders
                and "compiled" in backends
                and "compiled" not in refused
            ):
                entry["compiled_orders"] = {
                    order: round(
                        time_backend(
                            case, schedule, "compiled", repeats, order=order
                        )[0],
                        6,
                    )
                    for order in LINEARIZATIONS
                }
            singles = [
                b
                for b in backends
                if b in SINGLE_BACKENDS and timings[b] is not None
            ]
            best_backend = min(singles, key=timings.get) if singles else None
            auto_choice = best_note = ""
            auto_vs_best = None
            if best_backend is not None:
                entry["best_backend"] = best_backend
                best_note = best_backend
            if "auto" in backends:
                choice = choose_backend(case.make_spec(), name)
                auto_choice = choice.backend
                entry["auto_choice"] = choice.backend
                entry["auto_reason"] = choice.reason
                if best_backend is not None and timings["auto"] > 0:
                    auto_vs_best = round(
                        timings[best_backend] / timings["auto"], 3
                    )
                    entry["auto_vs_best"] = auto_vs_best
            report.add_row(
                case.name,
                name,
                *(
                    "-" if timings[backend] is None else timings[backend]
                    for backend in backends
                ),
                auto_choice,
                best_note,
                "" if auto_vs_best is None else f"{auto_vs_best:.2f}",
                "yes" if match else "NO",
            )
            entries.append(entry)
    report.add_note(
        f"best-of-{repeats} wall-clock timings at scale {scale:g}; "
        "'match' checks bit-identical benchmark results across backends; "
        "'auto/best' is best-single-backend time over auto time "
        "(1.0 = auto matched the best backend)"
    )
    payload = {
        "experiment": "wallclock_backends",
        "scale": scale,
        "repeats": repeats,
        "backends": backends,
        "host": _host_info(),
        "results": entries,
    }
    return report, payload


def write_bench_json(payload: dict, path: str = "BENCH_soa.json") -> str:
    """Write the wall-clock payload as indented JSON; returns the path."""
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    return path

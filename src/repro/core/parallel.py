"""Task-parallel nested recursion (Section 7.3), simulated.

"Adding parallelism to nested recursion is completely straightforward.
Recall from Section 3.3 that a sufficient condition for the soundness
of recursion twisting is if each outer recursive step is independent of
the rest.  This independence means that the outer recursions can be
executed in a task-parallel manner ... At any point in the process,
recursion twisting can be applied to a spawned task to improve its
locality.  Note, however, that once recursion twisting is applied, it
is no longer sound to treat outer recursions as independent of one
another ... so twisting should only be applied once enough parallelism
has been generated."

This module realizes that recipe on the simulated machine:

1. :func:`spawn_tasks` splits the outer recursion at a *spawn depth*
   into independent tasks (one per outer subtree), exactly the Cilk
   ``spawn`` decomposition the paper sketches — and, per the quote,
   twisting happens only *inside* tasks, never across them;
2. :func:`run_task_parallel` assigns tasks to simulated workers (greedy
   longest-processing-time on an O(size-product) cost estimate), runs
   each task under the chosen schedule on the worker's own private
   cache hierarchy, and reports the makespan.

Because the workers' caches are private, each task's locality is
whatever its schedule earns — running the twisted schedule per task
composes the Section 3 locality benefits with outer parallelism, which
is the point of Section 7.3.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.core.instruments import Instrument, NULL_INSTRUMENT, combine
from repro.core.schedules import ORIGINAL, Schedule
from repro.core.spec import NestedRecursionSpec, _never
from repro.errors import ScheduleError
from repro.spaces.node import IndexNode, tree_depth

#: Engines accepted by :func:`run_task_parallel`.
ENGINES = ("simulated", "process", "thread")


@dataclass
class Task:
    """One spawned unit: an outer subtree crossed with the inner tree."""

    #: root of the outer subtree this task owns
    outer_root: IndexNode
    #: the spec the task executes (shares work/state with its siblings)
    spec: NestedRecursionSpec
    #: memoized scheduling weight (computed on first use)
    _cost: Optional[int] = field(default=None, init=False, repr=False, compare=False)

    @property
    def cost_estimate(self) -> int:
        """Scheduling weight for LPT assignment.

        Without further information this is the task's iteration-space
        upper bound, ``|outer subtree| * |inner tree|``.  When the spec
        declares ``outer_launches_work``, only outer positions that can
        launch a real inner traversal are charged the inner-tree cost;
        the rest cost one visit each.  This is what keeps dual-tree
        estimates honest: a single-node task over an *internal* query
        node executes almost nothing, and charging it a full inner
        traversal used to skew LPT toward placing real work badly.
        """
        if self._cost is None:
            inner_size = self.spec.inner_root.size
            launches = self.spec.outer_launches_work
            if launches is None:
                self._cost = self.outer_root.size * inner_size
            else:
                launching = sum(
                    1
                    for node in self.outer_root.iter_preorder()
                    if launches(_real_node(node))
                )
                self._cost = launching * inner_size + self.outer_root.size
        return self._cost


def spawn_tasks(spec: NestedRecursionSpec, spawn_depth: int) -> list[Task]:
    """Split the outer recursion into independent tasks.

    Descends ``spawn_depth`` levels of the outer tree; every node *at*
    that depth roots one task's subtree, and every node *above* it
    (which the template would have visited on the way down) becomes a
    single-node task of its own, so the union of task iteration spaces
    is exactly the original space.

    Only sound when the outer recursion is parallel — the caller can
    verify that with :func:`repro.core.soundness.is_outer_parallel`.

    ``spawn_depth`` must lie in ``0..tree_depth(outer) - 1``: depth 0
    is the whole space as one task, the maximum is one task per node.
    Depths beyond the deepest level used to be accepted silently and
    only re-derived the maximum decomposition (every task degenerate);
    now they raise with the valid range spelled out.
    """
    max_depth = tree_depth(spec.outer_root) - 1
    if spawn_depth < 0 or spawn_depth > max_depth:
        raise ScheduleError(
            f"spawn_depth {spawn_depth} is out of range for the outer tree: "
            f"valid depths are 0..{max_depth} (0 = one task for the whole "
            f"space, {max_depth} = one task per outer node); deeper spawns "
            "cannot create more tasks"
        )
    tasks: list[Task] = []

    def descend(node: IndexNode, depth: int) -> None:
        if depth == spawn_depth or node.is_leaf:
            tasks.append(Task(outer_root=node, spec=spec))
            return
        # The node itself still owes one inner traversal: emit it as a
        # single-node task (its subtree minus its children's subtrees).
        tasks.append(Task(outer_root=_single_node_view(node), spec=spec))
        for child in node.children:
            descend(child, depth + 1)

    descend(spec.outer_root, 0)
    return tasks


class _SingleNodeView(IndexNode):
    """A childless facade over one outer node.

    Lets a spawned parent node run its own inner traversal without
    re-running its children's (they have their own tasks).  Mirrors how
    a Cilk version would execute the node's body before spawning the
    child calls.

    The facade controls *traversal structure only*.  Spec callables
    that inspect the node's identity (``children``, ``size``) to make
    semantic decisions — dual-tree truncation asking "is this query
    node a leaf?" — must see the real node, or an internal node
    masquerades as a leaf and executes iterations the sequential
    schedule truncates.  :func:`_task_spec` therefore rewires those
    predicates through :func:`_real_node`; data attributes (payloads,
    bounds, point ids) delegate to the base node transparently.
    """

    __slots__ = ("base",)

    def __init__(self, base: IndexNode) -> None:
        super().__init__()
        self.base = base
        self.size = 1
        self.number = base.number
        self.children = ()

    def __getattr__(self, name):  # pragma: no cover - delegation shim
        return getattr(self.base, name)


def _single_node_view(node: IndexNode) -> IndexNode:
    return _SingleNodeView(node)


def _real_node(node: IndexNode) -> IndexNode:
    """The underlying tree node behind a (possible) single-node view."""
    return node.base if isinstance(node, _SingleNodeView) else node


def lpt_assign(tasks: Sequence[Task], num_workers: int) -> list[list[Task]]:
    """Greedy longest-processing-time placement onto workers.

    Largest estimated cost first, each to the least-loaded worker
    (lowest index on ties).  This is the single placement policy shared
    by the simulated runtime and the real engines in
    :mod:`repro.core.parallel_exec`, so a measured run executes exactly
    the task layout the simulation modeled.
    """
    if num_workers < 1:
        raise ScheduleError(f"num_workers must be >= 1, got {num_workers}")
    chunks: list[list[Task]] = [[] for _ in range(num_workers)]
    loads = [0 for _ in range(num_workers)]
    for task in sorted(tasks, key=lambda t: t.cost_estimate, reverse=True):
        target = loads.index(min(loads))
        chunks[target].append(task)
        loads[target] += task.cost_estimate
    return chunks


def lpt_imbalance(tasks: Sequence[Task], num_workers: int) -> float:
    """Makespan over ideal (total/workers) for the LPT placement.

    1.0 is a perfect balance; the spawn-depth autotuner stops deepening
    once this is close enough to 1.
    """
    loads = [
        sum(task.cost_estimate for task in chunk)
        for chunk in lpt_assign(tasks, num_workers)
    ]
    total = sum(loads)
    if total == 0:
        return 1.0
    ideal = total / num_workers
    return max(loads) / ideal


def auto_spawn_depth(
    spec: NestedRecursionSpec,
    num_workers: int,
    target_tasks_per_worker: float = 4.0,
    balance_slack: float = 1.10,
) -> int:
    """Pick a spawn depth for a worker count (the §7.3 tuning knob).

    Grows the depth until there are at least ``target_tasks_per_worker
    * num_workers`` tasks (enough slack for LPT to smooth task-cost
    variance), then keeps growing only while the LPT imbalance still
    exceeds ``balance_slack`` — deeper spawns past a balanced
    decomposition just add per-task overhead.  Bounded by the outer
    tree's valid depth range.
    """
    if num_workers < 1:
        raise ScheduleError(f"num_workers must be >= 1, got {num_workers}")
    max_depth = tree_depth(spec.outer_root) - 1
    if max_depth <= 0:
        return 0
    depth = 1
    for depth in range(1, max_depth + 1):
        tasks = spawn_tasks(spec, depth)
        if len(tasks) < target_tasks_per_worker * num_workers:
            continue
        if lpt_imbalance(tasks, num_workers) <= balance_slack:
            break
    return depth


@dataclass
class WorkerTrace:
    """What one simulated worker executed."""

    worker_id: int
    tasks: list[Task] = field(default_factory=list)
    cycles: float = 0.0


@dataclass
class ParallelReport:
    """Outcome of a simulated task-parallel execution."""

    workers: list[WorkerTrace]
    #: sum of all workers' cycles (the sequential-equivalent total)
    total_cycles: float
    #: slowest worker's cycles — the modeled parallel run time
    makespan: float

    @property
    def parallel_speedup(self) -> float:
        """total work / makespan: the load-balance-limited speedup."""
        if self.makespan == 0:
            return float("inf")
        return self.total_cycles / self.makespan


TaskRunner = Callable[[Task, Instrument], float]


def run_task_parallel(
    spec: NestedRecursionSpec,
    num_workers: int,
    spawn_depth: Optional[int] = 3,
    schedule: Schedule = ORIGINAL,
    task_cycles: Optional[TaskRunner] = None,
    instruments: Optional[Sequence[Instrument]] = None,
    backend: str = "recursive",
    engine: str = "simulated",
    max_workers: Optional[int] = None,
):
    """Execute a spec as spawn-depth-bounded parallel tasks.

    ``engine`` picks the runtime:

    * ``"simulated"`` (default) — the historical behavior: tasks are
      assigned to pretend workers and executed serially, one at a time,
      and the returned :class:`ParallelReport` carries modeled cycles
      and the LPT makespan.  Unchanged semantics, bit-for-bit.
    * ``"process"`` / ``"thread"`` — the real multi-core runtime of
      :mod:`repro.core.parallel_exec`: the same spawn decomposition and
      LPT placement, executed on hardware workers.  Requires the spec
      to carry a :class:`~repro.core.parallel_exec.ParallelPlan`;
      returns a :class:`~repro.core.parallel_exec.ParallelExecReport`
      (same ``makespan``/``parallel_speedup`` vocabulary, measured in
      wall seconds).  ``task_cycles``/``instruments`` are
      simulated-only and rejected here.

    ``spawn_depth=None`` engages the autotuner
    (:func:`auto_spawn_depth`) on every engine.  ``max_workers`` caps
    the real engines' pool size (defaults to ``num_workers``).

    Tasks are assigned greedily (largest estimated cost first, to the
    least loaded worker) and, under the simulated engine, executed in
    worker order — which is a *valid* serialization because spawning
    requires outer-parallelism.  ``task_cycles`` measures one task's
    cost; the default counts executed work points (callers wanting
    cache-accurate costs pass a closure over
    :func:`repro.bench.runner`-style probes).  ``instruments[w]``
    observes worker ``w``'s execution.  ``backend`` selects each task's
    executor; task specs always carry per-task isolated truncation
    state, so any backend may simulate sibling tasks concurrently.
    """
    if engine not in ENGINES:
        raise ScheduleError(
            f"unknown engine {engine!r}; known: {list(ENGINES)}"
        )
    if num_workers < 1:
        raise ScheduleError(f"num_workers must be >= 1, got {num_workers}")
    if engine != "simulated":
        if task_cycles is not None or instruments is not None:
            raise ScheduleError(
                "task_cycles/instruments only apply to the simulated "
                "engine; the real engines measure wall-clock time and "
                "cannot ship instruments across workers"
            )
        from repro.core.parallel_exec import run_parallel

        return run_parallel(
            spec,
            schedule=schedule,
            engine=engine,
            max_workers=max_workers if max_workers is not None else num_workers,
            spawn_depth=spawn_depth,
            task_backend=backend,
        )
    if instruments is not None and len(instruments) != num_workers:
        raise ScheduleError("need exactly one instrument per worker")

    if spawn_depth is None:
        spawn_depth = auto_spawn_depth(spec, num_workers)
    tasks = spawn_tasks(spec, spawn_depth)
    # Greedy LPT assignment on the static cost estimate.
    workers = [WorkerTrace(worker_id=w) for w in range(num_workers)]
    for worker, chunk in zip(workers, lpt_assign(tasks, num_workers)):
        worker.tasks.extend(chunk)

    def default_task_cycles(task: Task, instrument: Instrument) -> float:
        from repro.core.instruments import OpCounter

        ops = OpCounter()
        task_spec = _task_spec(task)
        schedule.run(task_spec, instrument=combine(ops, instrument), backend=backend)
        return float(ops.work_points)

    measure = task_cycles or default_task_cycles
    for worker in workers:
        probe = instruments[worker.worker_id] if instruments else NULL_INSTRUMENT
        for task in worker.tasks:
            worker.cycles += measure(task, probe)

    total = sum(worker.cycles for worker in workers)
    makespan = max((worker.cycles for worker in workers), default=0.0)
    return ParallelReport(workers=workers, total_cycles=total, makespan=makespan)


def _task_spec(task: Task) -> NestedRecursionSpec:
    """The task's restriction of the spec to its outer subtree.

    Carries every execution-relevant field of the parent spec, with two
    adjustments:

    * ``isolated_truncation`` is forced on, so each task's Section 4
      flag/counter state lives in its own policy-local storage instead
      of on the shared trees — concurrently simulated sibling tasks can
      no longer leak truncation state to one another;
    * when the task's outer root is a single-node view, predicates that
      make decisions from outer-node *identity* (``truncate_outer``,
      ``truncate_inner2`` and its block form, ``outer_launches_work``)
      are rewired to see the real node, so an internal node never
      masquerades as a leaf (see :class:`_SingleNodeView`).
    """
    spec = task.spec
    truncate_outer = spec.truncate_outer
    truncate_inner2 = spec.truncate_inner2
    truncate_inner2_batch = spec.truncate_inner2_batch
    outer_launches_work = spec.outer_launches_work
    work_batch_soa = spec.work_batch_soa
    if isinstance(task.outer_root, _SingleNodeView):
        # A view node is not the payload-bearing node type the SoA
        # packer infers columns from, so the SoA-native kernel path is
        # unavailable for single-node tasks; the SoA executor falls
        # back to scalar work, which is fine — a view task runs exactly
        # one inner traversal.
        work_batch_soa = None
        if truncate_outer is not _never:
            base_truncate_outer = truncate_outer
            truncate_outer = lambda o: base_truncate_outer(_real_node(o))  # noqa: E731
        if truncate_inner2 is not None:
            base_truncate_inner2 = truncate_inner2
            truncate_inner2 = lambda o, i: base_truncate_inner2(  # noqa: E731
                _real_node(o), i
            )
        if truncate_inner2_batch is not None:
            base_t2_batch = truncate_inner2_batch
            truncate_inner2_batch = lambda o: base_t2_batch(_real_node(o))  # noqa: E731
        if outer_launches_work is not None:
            base_launches = outer_launches_work
            outer_launches_work = lambda o: base_launches(_real_node(o))  # noqa: E731
    return NestedRecursionSpec(
        outer_root=task.outer_root,
        inner_root=spec.inner_root,
        work=spec.work,
        truncate_outer=truncate_outer,
        truncate_inner1=spec.truncate_inner1,
        truncate_inner2=truncate_inner2,
        truncate_inner2_batch=truncate_inner2_batch,
        work_batch=spec.work_batch,
        work_batch_soa=work_batch_soa,
        truncation_observes_work=spec.truncation_observes_work,
        isolated_truncation=True,
        outer_launches_work=outer_launches_work,
        name=f"{spec.name}-task",
    )


def task_spec(task: Task) -> NestedRecursionSpec:
    """Public accessor for a task's restricted spec."""
    return _task_spec(task)

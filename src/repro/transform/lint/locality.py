"""Locality profitability pass (TW30x): is a transformation *worth it*?

Every other family in this package answers a legality question; this
one answers the paper's economic question (Sections 1.1/3.2): the
locality transformations pay off only when the inner structure's
working set fits some cache level *and* is actually revisited across
outer points.  The pass infers, per spec, without running the kernels:

**Footprint** — the bytes one inner-subtree working set occupies, from
the typed kernel IR of every kernel role: per-inner-node structural
bytes, plus the live sizes of each node payload the kernels read along
the inner axis (``attr_reads``/SoA columns), plus the per-inner-element
slices of environment arrays indexed by an inner-axis dimension
(e.g. matmul's ``b[:, cols]``).  Writes are excluded — a streamed
store does not need to stay resident to be cheap.

**Reuse** — the fraction of the inner tree a typical outer point
revisits.  Regular truncation means full reuse (factor 1.0).  An
irregular spec that declares pre-evaluation legal
(``truncate_inner2_batch``) gets a sampled truncation-density discount
(the same read-only probe ``choose_backend`` uses); a stateful
truncation cannot be pre-evaluated, so reuse — and with it the
interchange/twist verdicts — stays ``unknown``.

**Verdicts** — ``profitable`` / ``neutral`` / ``regressive`` /
``unknown`` per transformation (``interchange``, ``twist``,
``layout:veb``, ``layout:bfs``), by comparing the effective footprint
(footprint x reuse) against a :class:`~repro.memory.cachemodel.
CacheModel`.  A working set already inside L1 makes blocking *neutral*
(nothing to win); one beyond the last-level cache makes point blocking
(interchange) *regressive* (tiling overhead with no hits to show for
it) while twisting — parameterless, every-level-at-once — degrades to
neutral-or-better, never regressive (Section 3.2).

The default cache model is the paper's evaluation Xeon, **not** a host
probe: verdicts pinned in fixtures and CI must not depend on the
machine running the analyzer.  ``lint-locality --probe-host`` opts in
to real capacities.

These verdicts never gate legality.  ``choose_backend`` cites them as
evidence (``BackendChoice.evidence``) for its order/layout and
interchange-vs-twist tie-breaks, and ``repro.bench cost-validate``
replays checked-in BENCH payloads to keep the model honest.
"""

from __future__ import annotations

import enum
import json
import types
import weakref
from dataclasses import dataclass, field
from typing import Any, Optional

import numpy as np

from repro.core.spec import NestedRecursionSpec
from repro.memory.cachemodel import CacheModel
from repro.transform.lint.diagnostics import Diagnostic, DiagnosticSink
from repro.transform.lint.kernel_ir import (
    AFFINE,
    GATHER,
    KernelIR,
    extract_kernel_ir,
)

__all__ = [
    "LocalityReport",
    "LocalityVerdict",
    "TRANSFORMS",
    "clear_cache",
    "lint_locality",
]

#: JSON payload schema (shared family with the other lint reports).
SCHEMA_VERSION = 2

#: The transformations the pass predicts profitability for.
TRANSFORMS = ("interchange", "twist", "layout:veb", "layout:bfs")

#: Modeled resident bytes per inner node for the traversal structure
#: itself (rank/extent words plus child links in the packed layouts).
STRUCT_BYTES = 32

#: Below this reuse fraction there is effectively nothing to revisit,
#: so blocking for reuse cannot pay for its own bookkeeping.
MIN_REUSE = 0.05

#: kernel roles whose reads count toward the inner working set
_FOOTPRINT_ROLES = (
    "work",
    "work_batch",
    "work_batch_soa",
    "truncate_inner2",
    "truncate_inner2_batch",
)

_MISSING = object()


class LocalityVerdict(enum.Enum):
    """Predicted payoff of one locality transformation."""

    PROFITABLE = "profitable"
    NEUTRAL = "neutral"
    REGRESSIVE = "regressive"
    UNKNOWN = "unknown"

    def __str__(self) -> str:
        return self.value


@dataclass
class LocalityReport:
    """Everything one ``lint-locality`` run concluded about a spec."""

    spec_name: str
    cache_model: CacheModel
    #: inner working set in bytes, ``None`` when not derivable
    footprint_bytes: Optional[int]
    footprint_detail: str
    #: fraction of the inner tree an outer point revisits, ``None``
    #: when the truncation cannot be statically pre-evaluated
    reuse_factor: Optional[float]
    reuse_detail: str
    verdicts: dict[str, LocalityVerdict] = field(default_factory=dict)
    reasons: dict[str, str] = field(default_factory=dict)
    diagnostics: list[Diagnostic] = field(default_factory=list)

    @property
    def effective_footprint_bytes(self) -> Optional[float]:
        """Footprint discounted by reuse — what blocking must keep hot."""
        if self.footprint_bytes is None:
            return None
        if self.reuse_factor is None:
            return float(self.footprint_bytes)
        return self.footprint_bytes * self.reuse_factor

    @property
    def fitting_level(self) -> Optional[str]:
        """Smallest cache level holding the effective footprint."""
        effective = self.effective_footprint_bytes
        if effective is None:
            return None
        return self.cache_model.fitting_level(effective)

    @property
    def errors(self) -> list[Diagnostic]:
        from repro.transform.lint.diagnostics import Severity

        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> list[Diagnostic]:
        from repro.transform.lint.diagnostics import Severity

        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    def codes(self) -> set[str]:
        """The distinct TW codes this report carries."""
        return {d.code for d in self.diagnostics}

    def has_unknown(self) -> bool:
        """True when any transformation's payoff stayed unresolved."""
        return any(
            verdict is LocalityVerdict.UNKNOWN
            for verdict in self.verdicts.values()
        )

    def render(self) -> str:
        """Human-readable multi-line report (the CLI's default output)."""
        lines = [
            diagnostic.format(self.spec_name)
            for diagnostic in sorted(
                self.diagnostics, key=lambda d: (d.line, d.col, d.code)
            )
        ]
        footprint = (
            f"{self.footprint_bytes} B"
            if self.footprint_bytes is not None
            else "unknown"
        )
        reuse = (
            f"{self.reuse_factor:.3f}"
            if self.reuse_factor is not None
            else "unknown"
        )
        lines.append(
            f"{self.spec_name}: footprint: {footprint} "
            f"({self.footprint_detail}); reuse: {reuse} "
            f"({self.reuse_detail}); cache model: "
            f"{self.cache_model.source}"
        )
        for transform in TRANSFORMS:
            verdict = self.verdicts.get(transform, LocalityVerdict.UNKNOWN)
            reason = self.reasons.get(transform, "")
            lines.append(
                f"{self.spec_name}: {transform}: {verdict} ({reason})"
            )
        return "\n".join(lines)

    def to_json(self) -> dict:
        """JSON-ready dict with stable keys (the ``--json`` payload)."""
        effective = self.effective_footprint_bytes
        return {
            "schema_version": SCHEMA_VERSION,
            "kind": "locality",
            "spec": self.spec_name,
            "cache_model": self.cache_model.to_json(),
            "footprint_bytes": self.footprint_bytes,
            "footprint_detail": self.footprint_detail,
            "reuse_factor": self.reuse_factor,
            "reuse_detail": self.reuse_detail,
            "effective_footprint_bytes": effective,
            "fitting_level": self.fitting_level,
            "verdicts": {
                transform: str(verdict)
                for transform, verdict in self.verdicts.items()
            },
            "reasons": dict(self.reasons),
            "diagnostics": [d.to_json() for d in self.diagnostics],
            "counts": {
                "errors": len(self.errors),
                "warnings": len(self.warnings),
                "suppressed": 0,
            },
        }

    def dumps(self) -> str:
        """Serialized JSON text of :meth:`to_json`."""
        return json.dumps(self.to_json(), indent=2, sort_keys=True)


# --------------------------------------------------------------------
# Footprint inference
# --------------------------------------------------------------------


def _resolve_live_value(fn: Any, label: str) -> Any:
    """Best-effort: the live object an IR array label refers to.

    Resolves the label's first segment through the kernel's closure,
    then its globals; for bound-method kernels a first segment matching
    the receiver's lowercased type name resolves to the receiver (the
    IR labels ``self``-reached state that way).  Remaining dotted
    segments are plain attribute hops.  Returns ``None`` whenever any
    hop fails — the caller treats that as "cannot size this array".
    """
    target = fn
    self_obj = None
    if isinstance(fn, types.MethodType):
        self_obj = fn.__self__
        target = fn.__func__
    if not isinstance(target, types.FunctionType):
        return None
    head, _, rest = label.partition(".")
    value = _MISSING
    for var, cell in zip(
        target.__code__.co_freevars, target.__closure__ or ()
    ):
        if var == head:
            try:
                value = cell.cell_contents
            except ValueError:
                return None
            break
    if value is _MISSING:
        value = target.__globals__.get(head, _MISSING)
    if (
        value is _MISSING
        and self_obj is not None
        and head == type(self_obj).__name__.lower()
    ):
        value = self_obj
    if value is _MISSING:
        return None
    for part in rest.split(".") if rest else ():
        value = getattr(value, part, _MISSING)
        if value is _MISSING:
            return None
    return value


def _inner_payload_bytes(
    spec: NestedRecursionSpec, attrs: set[str]
) -> tuple[int, list[str]]:
    """Bytes of the read inner-node payloads, summed over the live tree.

    One O(n) preorder scan; per node, numeric fields count their
    itemsize, ndarray fields their ``nbytes``, and structural or
    non-numeric fields (children tuples, labels, ``None`` holes)
    nothing — the struct term already covers the traversal skeleton.
    """
    per_attr: dict[str, int] = {attr: 0 for attr in attrs}
    for node in spec.inner_root.iter_preorder():
        for attr in attrs:
            value = getattr(node, attr, None)
            if value is None:
                continue
            if isinstance(value, np.ndarray):
                per_attr[attr] += value.nbytes
            elif isinstance(value, np.generic):
                per_attr[attr] += value.dtype.itemsize
            elif isinstance(value, (bool, int, float)):
                per_attr[attr] += 8
    counted = sorted(attr for attr in attrs if per_attr[attr] > 0)
    return sum(per_attr.values()), counted


def _inner_dim_index(access) -> Optional[int]:
    """Position of the first inner-axis index dimension, if any."""
    for position, dim in enumerate(access.dims):
        if dim.axis == "inner" and dim.kind in (GATHER, AFFINE):
            return position
    return None


def _infer_footprint(
    spec: NestedRecursionSpec,
    irs: dict[str, tuple[Any, KernelIR]],
    sink: DiagnosticSink,
) -> tuple[Optional[int], str]:
    """The inner working set in bytes, or ``None`` with a TW300 trail."""
    if not irs:
        sink.emit(
            "TW300",
            "spec carries no analyzable kernels, so the inner working "
            "set cannot be sized",
        )
        return None, "no kernels to analyze"
    inner_size = max(1, spec.inner_root.size)
    attrs: set[str] = set()
    #: environment-array label -> per-inner-element contribution cap
    env_arrays: dict[str, int] = {}
    unresolved: list[str] = []
    any_analyzable = False
    for role, (fn, ir) in irs.items():
        if not ir.analyzable:
            sink.emit(
                "TW300",
                f"{role}: kernel source unavailable; its inner reads "
                "are unknown",
            )
            continue
        any_analyzable = True
        attrs.update(attr for axis, attr in ir.attr_reads if axis == "inner")
        for access in ir.reads():
            if access.array.startswith("inner."):
                attrs.add(access.array.split(".", 1)[1])
                continue
            if access.array.startswith(("outer.", "<fresh")):
                continue
            position = _inner_dim_index(access)
            if position is None:
                continue
            value = _resolve_live_value(fn, access.array)
            if not isinstance(value, np.ndarray):
                if access.array not in unresolved:
                    unresolved.append(access.array)
                continue
            if position >= value.ndim or value.shape[position] == 0:
                continue
            per_element = value.nbytes // value.shape[position]
            contribution = min(per_element * inner_size, value.nbytes)
            env_arrays[access.array] = max(
                env_arrays.get(access.array, 0), contribution
            )
    if not any_analyzable:
        return None, "no kernel source was analyzable"
    if unresolved:
        names = ", ".join(sorted(unresolved))
        sink.emit(
            "TW300",
            f"arrays read along the inner axis could not be resolved "
            f"to live ndarrays ({names}); the working set is "
            "underestimated by an unknown amount",
        )
        return None, f"unsized inner-axis arrays: {names}"
    payload_bytes, counted = _inner_payload_bytes(spec, attrs)
    struct_bytes = STRUCT_BYTES * inner_size
    total = struct_bytes + payload_bytes + sum(env_arrays.values())
    parts = [f"{inner_size} inner nodes x {STRUCT_BYTES} B struct"]
    if counted:
        parts.append(
            f"payload fields {', '.join(counted)} ({payload_bytes} B)"
        )
    for label in sorted(env_arrays):
        parts.append(f"array {label} ({env_arrays[label]} B)")
    return total, "; ".join(parts)


# --------------------------------------------------------------------
# Reuse inference
# --------------------------------------------------------------------


def _infer_reuse(
    spec: NestedRecursionSpec, sink: DiagnosticSink
) -> tuple[Optional[float], str]:
    """Fraction of the inner tree an outer point revisits."""
    if not spec.is_irregular:
        return 1.0, (
            "regular truncation: every outer point traverses the whole "
            "inner tree"
        )
    if spec.truncation_observes_work:
        sink.emit(
            "TW303",
            "truncate_inner2 observes work state, so the visited "
            "fraction of the inner tree cannot be pre-evaluated "
            "statically",
            hint="the dynamic schedule decides reuse at run time; "
            "interchange/twist profitability stays unknown",
        )
        return None, "stateful truncation: reuse decided at run time"
    if spec.truncate_inner2_batch is None:
        sink.emit(
            "TW303",
            "irregular truncation without a block form: pre-evaluating "
            "truncate_inner2 is not declared side-effect free, so the "
            "reuse fraction cannot be sampled",
            hint="provide truncate_inner2_batch to enable the "
            "read-only density probe",
        )
        return None, "no legally pre-evaluable truncation form"
    from repro.core.backend_select import _sample_truncation_density

    density = _sample_truncation_density(spec)
    if density is None:
        sink.emit(
            "TW303",
            "the block truncation form declined every sampled outer "
            "leaf, so the reuse fraction could not be measured",
        )
        return None, "block truncation produced no sampled decisions"
    reuse = max(0.0, min(1.0, 1.0 - density))
    sink.emit(
        "TW304",
        f"sampled truncation density {density:.3f} over outer leaves "
        f"discounts the effective working set to a {reuse:.3f} "
        "fraction of the inner tree",
    )
    return reuse, (
        f"1 - sampled truncation density {density:.3f} (read-only "
        "probe over outer leaves)"
    )


# --------------------------------------------------------------------
# Verdicts
# --------------------------------------------------------------------


def _judge(
    report_footprint: Optional[int],
    reuse: Optional[float],
    model: CacheModel,
    sink: DiagnosticSink,
) -> tuple[dict[str, LocalityVerdict], dict[str, str]]:
    """The per-transformation verdict table (see module docstring)."""
    verdicts: dict[str, LocalityVerdict] = {}
    reasons: dict[str, str] = {}

    def all_unknown(reason: str) -> None:
        for transform in TRANSFORMS:
            verdicts[transform] = LocalityVerdict.UNKNOWN
            reasons[transform] = reason

    if report_footprint is None:
        all_unknown("footprint not derivable (TW300)")
        return verdicts, reasons

    effective = (
        report_footprint * reuse if reuse is not None else report_footprint
    )
    level = model.fitting_level(effective)
    if level == "L1":
        sink.emit(
            "TW301",
            f"effective inner working set ({effective:.0f} B) already "
            f"fits L1 ({model.l1_bytes} B); blocking transformations "
            "have nothing left to win",
        )
    elif level is not None:
        sink.emit(
            "TW302",
            f"effective inner working set ({effective:.0f} B) exceeds "
            f"L1 ({model.l1_bytes} B) but fits {level}; point blocking "
            "can keep it resident",
        )

    # Layout verdicts depend on the *full* footprint (a layout change
    # helps every traversal of the inner tree, truncated or not).
    if report_footprint <= model.l1_bytes:
        verdicts["layout:veb"] = LocalityVerdict.NEUTRAL
        reasons["layout:veb"] = (
            f"inner tree ({report_footprint} B) fits L1; any "
            "linearization stays resident"
        )
    else:
        verdicts["layout:veb"] = LocalityVerdict.PROFITABLE
        reasons["layout:veb"] = (
            f"inner tree ({report_footprint} B) spans cache levels; "
            "van Emde Boas blocking keeps subtrees on shared lines"
        )
    verdicts["layout:bfs"] = LocalityVerdict.NEUTRAL
    reasons["layout:bfs"] = (
        "breadth-first packing helps only shallow frontiers; no "
        "predicted gain or loss over preorder"
    )

    if reuse is None:
        for transform in ("interchange", "twist"):
            verdicts[transform] = LocalityVerdict.UNKNOWN
            reasons[transform] = "outer-point reuse unknown (TW303)"
        return verdicts, reasons

    if level == "L1":
        for transform in ("interchange", "twist"):
            verdicts[transform] = LocalityVerdict.NEUTRAL
            reasons[transform] = (
                "working set already L1-resident (TW301); reordering "
                "outer points cannot add hits"
            )
        return verdicts, reasons

    if level is None:
        verdicts["interchange"] = LocalityVerdict.REGRESSIVE
        reasons["interchange"] = (
            f"effective working set ({effective:.0f} B) exceeds the "
            f"last-level cache ({model.l3_bytes} B); point blocking "
            "pays its overhead without producing hits"
        )
        sink.emit(
            "TW306",
            f"effective inner working set ({effective:.0f} B) exceeds "
            f"the last-level cache ({model.l3_bytes} B); interchange "
            "is predicted regressive",
        )
        verdicts["twist"] = (
            LocalityVerdict.PROFITABLE
            if reuse >= MIN_REUSE
            else LocalityVerdict.NEUTRAL
        )
        reasons["twist"] = (
            "twisting tiles every cache level at once; subtree blocks "
            "still fit even when the whole working set does not"
            if reuse >= MIN_REUSE
            else f"reuse fraction {reuse:.3f} leaves nothing to revisit"
        )
        return verdicts, reasons

    if reuse < MIN_REUSE:
        for transform in ("interchange", "twist"):
            verdicts[transform] = LocalityVerdict.NEUTRAL
            reasons[transform] = (
                f"reuse fraction {reuse:.3f} is below {MIN_REUSE}; "
                "blocking cannot recoup its bookkeeping"
            )
        return verdicts, reasons

    for transform in ("interchange", "twist"):
        verdicts[transform] = LocalityVerdict.PROFITABLE
        reasons[transform] = (
            f"effective working set ({effective:.0f} B) fits {level} "
            f"with reuse fraction {reuse:.3f}; blocked outer points "
            "hit where the original schedule misses"
        )
    return verdicts, reasons


# --------------------------------------------------------------------
# Entry point + cache
# --------------------------------------------------------------------

#: cache key -> (weakref to the outer root, report).  Keyed on kernel
#: code objects, live-tree identity, *and* the cache model — the same
#: spec under a different machine model is a different judgement.
_REPORT_CACHE: dict[tuple, tuple[Any, LocalityReport]] = {}


def clear_cache() -> None:
    """Drop memoized locality reports (tests, mutation harnesses)."""
    _REPORT_CACHE.clear()


def _cache_key(spec: NestedRecursionSpec, model: CacheModel) -> tuple:
    from repro.transform.lint.backend import _spec_cache_key

    return (
        _spec_cache_key(spec),
        id(spec.outer_root),
        id(spec.inner_root),
        model,
    )


def lint_locality(
    spec: NestedRecursionSpec,
    cache_model: Optional[CacheModel] = None,
    use_cache: bool = True,
) -> LocalityReport:
    """Run the TW30x locality pass over one spec.

    ``cache_model`` defaults to the paper's Xeon
    (:meth:`CacheModel.paper_default`) so verdicts are deterministic
    across hosts; pass :meth:`CacheModel.probe_host` (or an explicit
    model) to judge against other capacities.  Reports are cached on
    the kernels' code objects, the live trees' identity, and the model
    — the footprint is a property of the *data*, so a new tree means a
    new measurement even under identical kernel code.
    """
    model = cache_model if cache_model is not None else CacheModel.paper_default()
    key = _cache_key(spec, model) if use_cache else None
    if key is not None and key in _REPORT_CACHE:
        root_ref, cached = _REPORT_CACHE[key]
        if root_ref is None or root_ref() is spec.outer_root:
            return cached
    irs: dict[str, tuple[Any, KernelIR]] = {}
    for role in _FOOTPRINT_ROLES:
        fn = getattr(spec, role, None)
        if fn is not None:
            irs[role] = (fn, extract_kernel_ir(fn, role))
    sink = DiagnosticSink()
    footprint, footprint_detail = _infer_footprint(spec, irs, sink)
    reuse, reuse_detail = _infer_reuse(spec, sink)
    verdicts, reasons = _judge(footprint, reuse, model, sink)
    sink.emit(
        "TW305",
        f"profitability judged against the {model.source} cache model "
        f"(L1 {model.l1_bytes} B / L2 {model.l2_bytes} B / L3 "
        f"{model.l3_bytes} B)",
    )
    report = LocalityReport(
        spec_name=spec.name or "<spec>",
        cache_model=model,
        footprint_bytes=footprint,
        footprint_detail=footprint_detail,
        reuse_factor=reuse,
        reuse_detail=reuse_detail,
        verdicts=verdicts,
        reasons=reasons,
        diagnostics=list(sink.diagnostics),
    )
    if key is not None:
        try:
            root_ref = (
                weakref.ref(spec.outer_root)
                if spec.outer_root is not None
                else None
            )
        except TypeError:  # pragma: no cover - non-weakrefable root
            root_ref = None
        _REPORT_CACHE[key] = (root_ref, report)
    return report

"""Unit tests for recursion-limit management."""

import sys

import pytest

from repro.core import (
    MAX_SAFE_RECURSION_LIMIT,
    exceeds_safe_depth,
    recursion_guard,
    required_limit,
    run_interchanged,
    run_original,
    run_twisted,
)
from repro.core.spec import NestedRecursionSpec
from repro.errors import ScheduleError
from repro.spaces import balanced_tree, list_tree


class TestRequiredLimit:
    def test_scales_with_depth(self):
        shallow = required_limit(balanced_tree(7), balanced_tree(7))
        deep = required_limit(list_tree(500), list_tree(500))
        assert deep > shallow
        assert deep >= 1000 * 4  # both depths, 4 frames per level

    def test_includes_headroom(self):
        assert required_limit(balanced_tree(1), balanced_tree(1)) > 200


class TestGuard:
    def test_raises_limit_temporarily(self):
        before = sys.getrecursionlimit()
        with recursion_guard(list_tree(1000), list_tree(1000)):
            assert sys.getrecursionlimit() >= 4000
        assert sys.getrecursionlimit() == before

    def test_never_lowers_limit(self):
        before = sys.getrecursionlimit()
        with recursion_guard(balanced_tree(1), balanced_tree(1)):
            assert sys.getrecursionlimit() >= before
        assert sys.getrecursionlimit() == before

    def test_minimum_override(self):
        with recursion_guard(balanced_tree(1), balanced_tree(1), minimum=9999):
            assert sys.getrecursionlimit() >= 9999

    def test_restores_on_exception(self):
        before = sys.getrecursionlimit()
        try:
            with recursion_guard(list_tree(1000), list_tree(1000)):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert sys.getrecursionlimit() == before


class TestSafeDepthCeiling:
    """The guard refuses unsafe limits; executors route around them."""

    def test_guard_refuses_past_ceiling(self):
        before = sys.getrecursionlimit()
        with pytest.raises(ScheduleError, match="batched"):
            with recursion_guard(list_tree(5000), list_tree(5000)):
                pass  # pragma: no cover - never entered
        assert sys.getrecursionlimit() == before

    def test_guard_refuses_excessive_minimum(self):
        with pytest.raises(ScheduleError):
            with recursion_guard(
                balanced_tree(1),
                balanced_tree(1),
                minimum=MAX_SAFE_RECURSION_LIMIT + 1,
            ):
                pass  # pragma: no cover - never entered

    def test_exceeds_safe_depth(self):
        assert not exceeds_safe_depth(balanced_tree(1023), balanced_tree(1023))
        assert exceeds_safe_depth(list_tree(5000), list_tree(5000))


class TestDeepTreeRouting:
    """Regression: deep (list-shaped) trees used to die with
    RecursionError (or worse, a C-stack crash) inside the recursive
    executors; they now route through the explicit-stack batched
    executors and produce the same results."""

    @staticmethod
    def _deep_spec(collected):
        outer = list_tree(4000)
        inner = balanced_tree(3)
        return NestedRecursionSpec(
            outer_root=outer,
            inner_root=inner,
            work=lambda o, i: collected.append((o.number, i.number)),
        )

    def test_original_runs_deep_tree(self):
        collected = []
        run_original(self._deep_spec(collected))
        assert len(collected) == 4000 * 3

    def test_interchanged_runs_deep_tree(self):
        collected = []
        run_interchanged(self._deep_spec(collected))
        assert len(collected) == 4000 * 3

    def test_twisted_runs_deep_tree(self):
        collected = []
        run_twisted(self._deep_spec(collected))
        assert len(collected) == 4000 * 3

    def test_deep_routing_matches_shallow_semantics(self):
        # The same spec shape below the ceiling, run recursively,
        # produces the same work sequence the routed executor yields at
        # depth: compare against the batched executor directly.
        from repro.core import run_original_batched

        deep, routed = [], []
        spec = self._deep_spec(deep)
        run_original(spec)
        spec = NestedRecursionSpec(
            outer_root=spec.outer_root,
            inner_root=spec.inner_root,
            work=lambda o, i: routed.append((o.number, i.number)),
        )
        run_original_batched(spec)
        assert deep == routed

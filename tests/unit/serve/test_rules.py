"""Serving rule sets: batch-shape robustness and the verdict cache.

The load-bearing claim is the module docstring proof in
``repro.serve.rules``: demuxed per-query answers are bit-identical to
per-query serial execution no matter how admission slices queries into
batches, what the query-tree leaf size is, how big the k-NN merge
buffer is, or whether cached truncation verdicts short-circuit the
count prune.  These tests sweep exactly those axes.
"""

import numpy as np
import pytest

from repro.core.schedules import ORIGINAL
from repro.dualtree.kdtree import build_kdtree
from repro.dualtree.traverser import dual_tree_spec
from repro.errors import SpecError
from repro.serve.rules import (
    PAD_ID,
    ServeCountRules,
    ServeKnnRules,
    SubtreeVerdictCache,
)
from repro.spaces.points import clustered_points

REFERENCES = clustered_points(512, clusters=8, spread=0.08, seed=3)
QUERIES = clustered_points(96, clusters=8, spread=0.08, seed=4)


@pytest.fixture(scope="module")
def reference_tree():
    return build_kdtree(REFERENCES, 8)


def run_count(
    points, reference_tree, radius=0.3, leaf_size=16, cache=None,
    backend="auto",
):
    query_tree = build_kdtree(np.array(points, copy=True), leaf_size)
    rules = ServeCountRules(
        query_tree, reference_tree, radius, verdict_cache=cache
    )
    spec = dual_tree_spec(query_tree, reference_tree, rules, name="SERVE-COUNT")
    ORIGINAL.run(spec, backend=backend)
    return rules.counts.copy()


def run_knn(points, reference_tree, k=5, leaf_size=16, flush=128):
    query_tree = build_kdtree(np.array(points, copy=True), leaf_size)
    rules = ServeKnnRules(
        query_tree, reference_tree, k, flush_candidates=flush
    )
    spec = dual_tree_spec(query_tree, reference_tree, rules, name="SERVE-KNN")
    ORIGINAL.run(spec, backend="auto")
    rules.finalize()
    return rules.ids.copy(), rules.dists.copy()


def serial_counts(reference_tree, radius=0.3):
    return np.concatenate(
        [
            run_count([point], reference_tree, radius, leaf_size=1)
            for point in QUERIES
        ]
    )


class TestCountBatchRobustness:
    def test_batched_counts_match_serial_oracle(self, reference_tree):
        oracle = serial_counts(reference_tree)
        for leaf_size in (1, 4, 16, 96):
            counts = run_count(
                QUERIES, reference_tree, leaf_size=leaf_size
            )
            assert np.array_equal(counts, oracle), leaf_size

    def test_cached_prune_is_count_exact(self, reference_tree):
        oracle = serial_counts(reference_tree)
        cache = SubtreeVerdictCache()
        # Twice through the same cache: the second pass decides from
        # hot rows only, and both must still match the oracle exactly.
        first = run_count(QUERIES, reference_tree, cache=cache)
        second = run_count(QUERIES, reference_tree, cache=cache)
        assert np.array_equal(first, oracle)
        assert np.array_equal(second, oracle)
        assert cache.hits > 0

    def test_scalar_and_block_score_agree_with_cache(self, reference_tree):
        cache = SubtreeVerdictCache()
        batched = run_count(
            QUERIES, reference_tree, cache=cache, backend="batched"
        )
        recursive = run_count(
            QUERIES, reference_tree, cache=cache, backend="recursive"
        )
        assert np.array_equal(batched, recursive)

    def test_negative_radius_rejected(self, reference_tree):
        query_tree = build_kdtree(np.array(QUERIES, copy=True), 16)
        with pytest.raises(SpecError, match="negative radius"):
            ServeCountRules(query_tree, reference_tree, -0.1)


class TestVerdictCacheKeying:
    def test_hot_points_hit_across_differently_shaped_batches(
        self, reference_tree
    ):
        # The same hot points arrive inside two very different batches
        # (different companions, different tree shapes).  Bound-keyed
        # caching would miss; point-keyed caching must hit.
        cache = SubtreeVerdictCache()
        hot = QUERIES[:16]
        rng = np.random.default_rng(9)
        batch_a = np.concatenate([hot, QUERIES[16:48]])
        batch_b = np.concatenate([hot, QUERIES[48:96]])
        rng.shuffle(batch_b)
        run_count(batch_a, reference_tree, cache=cache)
        misses_after_first = cache.misses
        run_count(batch_b, reference_tree, cache=cache)
        assert cache.hits >= len(hot)
        # Only batch_b's genuinely new points missed on the second run.
        assert cache.misses - misses_after_first <= 48

    def test_rows_are_read_only(self):
        cache = SubtreeVerdictCache()
        stored = cache.store(((0.0,), 0.3), np.array([True, False]))
        with pytest.raises(ValueError):
            stored[0] = False

    def test_lru_eviction_at_capacity(self):
        cache = SubtreeVerdictCache(max_entries=2)
        row = np.array([True])
        cache.store(("a", 0.3), row)
        cache.store(("b", 0.3), row)
        assert cache.lookup(("a", 0.3)) is not None  # refresh a
        cache.store(("c", 0.3), row)  # evicts b, the stalest
        assert cache.lookup(("b", 0.3)) is None
        assert cache.lookup(("a", 0.3)) is not None
        assert cache.lookup(("c", 0.3)) is not None

    def test_stats_and_clear(self):
        cache = SubtreeVerdictCache()
        cache.store(("a", 0.3), np.array([True]))
        cache.lookup(("a", 0.3))
        cache.lookup(("gone", 0.3))
        stats = cache.stats()
        assert stats == {
            "entries": 1, "max_entries": 1024, "hits": 1, "misses": 1
        }
        cache.clear()
        assert cache.stats()["entries"] == 0

    def test_bad_capacity_rejected(self):
        with pytest.raises(SpecError, match="max_entries"):
            SubtreeVerdictCache(max_entries=0)


class TestKnnBatchRobustness:
    def test_every_flush_chunking_gives_identical_results(
        self, reference_tree
    ):
        # flush_candidates only changes when buffered candidates merge
        # (and thus how stale the pruning bound runs) — never the
        # answer.  flush=1 merges per leaf pair; flush=10**6 merges
        # once at finalize.
        baseline = run_knn(QUERIES, reference_tree, flush=128)
        for flush in (1, 7, 1000000):
            ids, dists = run_knn(QUERIES, reference_tree, flush=flush)
            assert np.array_equal(ids, baseline[0]), flush
            assert np.array_equal(dists, baseline[1]), flush

    def test_batched_knn_matches_serial_oracle(self, reference_tree):
        serial_ids = []
        serial_dists = []
        for point in QUERIES:
            ids, dists = run_knn([point], reference_tree, leaf_size=1)
            serial_ids.append(ids[0])
            serial_dists.append(dists[0])
        for leaf_size in (4, 16, 96):
            ids, dists = run_knn(QUERIES, reference_tree, leaf_size=leaf_size)
            assert np.array_equal(ids, np.array(serial_ids)), leaf_size
            assert np.array_equal(dists, np.array(serial_dists)), leaf_size

    def test_k_one_serves_nn(self, reference_tree):
        ids, dists = run_knn(QUERIES, reference_tree, k=1)
        assert ids.shape == (len(QUERIES), 1)
        assert not np.any(ids == PAD_ID)
        assert np.all(np.isfinite(dists))

    def test_k_larger_than_reference_set_rejected(self, reference_tree):
        query_tree = build_kdtree(np.array(QUERIES, copy=True), 16)
        with pytest.raises(SpecError, match="exceeds"):
            ServeKnnRules(query_tree, reference_tree, len(REFERENCES) + 1)
        with pytest.raises(SpecError, match="k must be >= 1"):
            ServeKnnRules(query_tree, reference_tree, 0)

    def test_ties_break_by_id(self, reference_tree):
        # Duplicate reference points at identical distance: the kept
        # candidate set must prefer smaller ids deterministically.
        points = np.array([[0.5, 0.5]] * 4 + [[0.9, 0.9]])
        tree = build_kdtree(points, 2)
        ids, dists = run_knn([np.array([0.5, 0.5])], tree, k=3, leaf_size=1)
        assert list(ids[0]) == [0, 1, 2]
        assert np.all(dists[0] == 0.0)

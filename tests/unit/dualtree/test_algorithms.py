"""Unit tests for the runnable dual-tree algorithm objects."""

import numpy as np
import pytest

from repro.core import run_original, run_twisted
from repro.dualtree import (
    KNearestNeighbors,
    NearestNeighbor,
    PointCorrelation,
    VPNearestNeighbors,
    brute_knn,
    brute_nearest_neighbor,
    brute_point_correlation,
)
from repro.spaces import clustered_points


@pytest.fixture
def queries():
    return clustered_points(150, seed=20)


@pytest.fixture
def references():
    return clustered_points(180, seed=21)


class TestPointCorrelation:
    def test_matches_brute_force(self, queries):
        pc = PointCorrelation(queries, radius=0.08)
        run_original(pc.make_spec())
        assert pc.result == brute_point_correlation(queries, queries, 0.08)

    def test_make_spec_resets_count(self, queries):
        pc = PointCorrelation(queries, radius=0.08)
        run_original(pc.make_spec())
        first = pc.result
        run_original(pc.make_spec())
        assert pc.result == first  # not doubled


class TestNearestNeighbor:
    def test_matches_brute_force(self, queries, references):
        nn = NearestNeighbor(queries, references)
        run_twisted(nn.make_spec())
        ids, dists = nn.result
        brute_ids, brute_dists = brute_nearest_neighbor(queries, references)
        assert np.array_equal(ids, brute_ids)
        assert np.allclose(dists, brute_dists)


class TestKnnAndVp:
    @pytest.mark.parametrize("cls,k", [(KNearestNeighbors, 4), (VPNearestNeighbors, 6)])
    def test_matches_brute_force(self, cls, k, queries, references):
        algorithm = cls(queries, references, k=k)
        run_twisted(algorithm.make_spec())
        ids, dists = algorithm.result
        brute_ids, brute_dists = brute_knn(queries, references, k)
        assert np.allclose(dists, brute_dists)
        assert np.array_equal(ids, brute_ids)

    def test_vp_uses_vp_trees(self, queries, references):
        from repro.dualtree.boxes import Ball

        vp = VPNearestNeighbors(queries, references, k=2)
        assert isinstance(vp.query_tree.root.bound, Ball)

    def test_knn_uses_kd_trees(self, queries, references):
        from repro.dualtree.boxes import HRect

        knn = KNearestNeighbors(queries, references, k=2)
        assert isinstance(knn.query_tree.root.bound, HRect)

    def test_default_ks_match_paper(self, queries, references):
        assert KNearestNeighbors(queries, references).k == 5
        assert VPNearestNeighbors(queries, references).k == 10

#!/usr/bin/env python
"""Loop nests -> twisted recursion: the Section 7.2 connection.

"We can take a doubly-nested loop program — say matrix-vector
multiplication — and translate both loops into this divide-and-conquer
form.  Applying recursion twisting to [the] resulting nested recursion
automatically yields something similar to the cache-oblivious
implementation!"

This example does exactly that: matvec as (1) a plain loop nest over
list trees and (2) a divide-and-conquer range-tree recursion, then
compares their locality under the simulated machine.  Twisting the
divide-and-conquer form produces the recursive blocking of
cache-oblivious algorithms — without a single tile-size parameter.

Run:  python examples/loops_to_recursion.py
"""

import numpy as np

from repro.core import OpCounter, combine, run_original, run_twisted
from repro.core.instruments import CacheProbe, WorkRecorder
from repro.kernels import divide_and_conquer_spec, loop_nest_spec, unit_work_points
from repro.memory import AddressMap, CacheHierarchy
from repro.memory.hierarchy import LevelSpec


def tiny_machine() -> CacheHierarchy:
    return CacheHierarchy(
        [
            LevelSpec("L1", 8, ways=8).build(),
            LevelSpec("L2", 32, ways=8).build(),
        ]
    )


def matvec_specs(n: int, m: int):
    """y = A @ x as loop-nest and divide-and-conquer specs."""
    rng = np.random.default_rng(0)
    a = rng.random((n, m))
    x = rng.random(m)
    y = np.zeros(n)

    def body(row: int, col: int) -> None:
        y[row] += a[row, col] * x[col]

    return a, x, y, body


def register_index_layout(spec, address_map: AddressMap) -> None:
    """One line per index node: the row entry / vector element."""
    from repro.memory import layout_tree

    layout_tree(address_map, spec.outer_root, "outer")
    layout_tree(address_map, spec.inner_root, "inner")


def main() -> None:
    n = m = 64

    # 1. The plain loop nest: correctness baseline.
    a, x, y, body = matvec_specs(n, m)
    run_original(loop_nest_spec(n, m, body))
    assert np.allclose(y, a @ x), "loop-nest matvec is wrong"
    print(f"loop-nest matvec ({n}x{m}): correct")

    # 2. Divide-and-conquer recursion, original order == loop order.
    a, x, y, body = matvec_specs(n, m)
    dnc = divide_and_conquer_spec(n, m, body)
    recorder = WorkRecorder()
    run_original(dnc, instrument=recorder)
    assert np.allclose(y, a @ x)
    order = unit_work_points(recorder.points)
    assert order == [(i, j) for i in range(n) for j in range(m)]
    print("divide-and-conquer original order == row-major loop order")

    # 3. Twisting the divide-and-conquer form: recursive blocking.
    a, x, y, body = matvec_specs(n, m)
    dnc = divide_and_conquer_spec(n, m, body)
    recorder = WorkRecorder()
    run_twisted(dnc, instrument=recorder)
    assert np.allclose(y, a @ x), "twisted matvec is wrong"
    blocked = unit_work_points(recorder.points)
    print(f"twisted body order, first 16 points: {blocked[:16]}")
    print("  ^ note the recursive tiles instead of full rows")

    # 4. Locality on a tiny machine: x is the reused vector.
    results = {}
    for name, runner in [("loops", run_original), ("twisted", run_twisted)]:
        a, x, y, body = matvec_specs(n, m)
        spec = divide_and_conquer_spec(n, m, body)
        address_map = AddressMap()
        register_index_layout(spec, address_map)
        machine = tiny_machine()
        probe = CacheProbe(address_map, machine)
        runner(spec, instrument=probe)
        results[name] = machine.stats_by_name()
        l2 = results[name]["L2"]
        print(f"{name:>8s}: L2 miss rate {l2.miss_rate:6.2%} "
              f"({l2.misses:,d} misses / {l2.accesses:,d} accesses)")
    assert (
        results["twisted"]["L2"].misses < results["loops"]["L2"].misses
    ), "twisting should reduce L2 misses on the reused vector"
    print("twisting the loop nest reduced cache misses, parameter-free")


if __name__ == "__main__":
    main()

"""Property-based monotonicity of the TW30x locality cost model.

The contract under test: under a *fixed* cache model, making the inner
working set strictly larger can only push a blocking transformation's
verdict toward "worse" — a spec judged ``regressive`` must never flip
back to ``profitable`` (or ``neutral``) just because the tree grew,
and the inferred footprint itself must grow with the tree.  Without
this, the analyzer's verdicts would be unstable exactly where the
paper's profitability argument (Section 3.2) is monotone: more data
per outer point never improves cache behavior.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.spec import NestedRecursionSpec
from repro.memory import CacheModel
from repro.spaces.trees import balanced_tree
from repro.transform.lint import locality
from repro.transform.lint.locality import LocalityVerdict, lint_locality

#: Fixed small model so hypothesis-sized trees cross every boundary.
MODEL = CacheModel(l1_bytes=1024, l2_bytes=2048, l3_bytes=4096)

#: How "bad for blocking" each interchange verdict is, in order.  The
#: regular specs below always resolve reuse, so UNKNOWN cannot occur.
SEVERITY = {
    LocalityVerdict.NEUTRAL: 0,
    LocalityVerdict.PROFITABLE: 1,
    LocalityVerdict.REGRESSIVE: 2,
}


def regular_spec(num_nodes: int) -> NestedRecursionSpec:
    acc = np.zeros(1)

    def work(o, i):
        acc[0] += i.data

    return NestedRecursionSpec(
        outer_root=balanced_tree(7, data=lambda k: k),
        inner_root=balanced_tree(num_nodes, data=lambda k: k),
        work=work,
        name=f"prop-{num_nodes}",
    )


@settings(max_examples=60, deadline=None)
@given(
    smaller=st.integers(min_value=1, max_value=300),
    growth=st.integers(min_value=1, max_value=300),
)
def test_growing_the_inner_tree_never_improves_interchange(smaller, growth):
    locality.clear_cache()
    small = lint_locality(
        regular_spec(smaller), cache_model=MODEL, use_cache=False
    )
    large = lint_locality(
        regular_spec(smaller + growth), cache_model=MODEL, use_cache=False
    )
    assert small.footprint_bytes < large.footprint_bytes
    assert (
        SEVERITY[large.verdicts["interchange"]]
        >= SEVERITY[small.verdicts["interchange"]]
    )
    # The sharp end of the property: once regressive, growth can never
    # buy the verdict back.
    if small.verdicts["interchange"] is LocalityVerdict.REGRESSIVE:
        assert large.verdicts["interchange"] is LocalityVerdict.REGRESSIVE


@settings(max_examples=40, deadline=None)
@given(num_nodes=st.integers(min_value=1, max_value=300))
def test_twist_is_never_regressive_on_regular_specs(num_nodes):
    locality.clear_cache()
    report = lint_locality(
        regular_spec(num_nodes), cache_model=MODEL, use_cache=False
    )
    assert report.verdicts["twist"] is not LocalityVerdict.REGRESSIVE

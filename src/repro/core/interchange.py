"""Recursion interchange — Figure 3, with the Section 4 machinery.

``run_interchanged`` executes a spec "row-by-row": the outer recursion
traverses the *inner* tree and the inner recursion traverses the
*outer* tree.  On a rectangular space this is precisely the transposed
enumeration of Figure 1(c).

When the spec carries an irregular ``truncateInner2?``, the
interchanged code cannot cut off recursion the way the original could
— it must visit the full cross product and use truncation state
(flags, Figure 6(b), or counters, Section 4.3) to suppress exactly the
iterations the original skips.  This is the *work explosion* the paper
quantifies in Section 4.2 (PC: 1.25 G iterations originally, 5.61 G
interchanged), and why plain interchange is a stepping stone rather
than an optimization: twisting inherits this machinery but mostly runs
in the original order, so it pays only a few percent.

``subtree_truncation=True`` enables the Section 4.2 optimization:
when an entire outer subtree is truncated for the current inner node,
the swapped recursion over the inner tree is cut off early too.
"""

from __future__ import annotations

from typing import Optional

from repro.core.instruments import NULL_INSTRUMENT, Instrument
from repro.core.recursion import exceeds_safe_depth, recursion_guard
from repro.core.spec import INNER_TREE, OUTER_TREE, NestedRecursionSpec
from repro.core.truncation import make_policy


def run_interchanged(
    spec: NestedRecursionSpec,
    instrument: Optional[Instrument] = None,
    use_counters: bool = False,
    subtree_truncation: bool = False,
) -> None:
    """Execute the spec in the interchanged (row-by-row) order.

    Parameters
    ----------
    instrument:
        Probe receiving ops/accesses/work events (see
        :mod:`repro.core.instruments`).
    use_counters:
        Use the Section 4.3 counter optimization instead of Figure
        6(b) flags (irregular specs only; ignored otherwise).
    subtree_truncation:
        Enable the Section 4.2 early cut-off when a whole outer
        subtree is truncated for the current inner node.

    Iteration spaces too deep for safe Python recursion are routed
    through the explicit-stack batched executor, which emits the exact
    same instrumentation event sequence.
    """
    if exceeds_safe_depth(spec.outer_root, spec.inner_root):
        from repro.core.batched import run_interchanged_batched

        run_interchanged_batched(
            spec,
            instrument,
            use_counters=use_counters,
            subtree_truncation=subtree_truncation,
        )
        return
    ins = instrument or NULL_INSTRUMENT
    policy = make_policy(spec, use_counters)
    irregular = spec.is_irregular
    truncate_outer = spec.truncate_outer
    truncate_inner1 = spec.truncate_inner1
    work = spec.work
    ins_op = ins.op
    ins_access = ins.access
    ins_work = ins.work

    def recurse_outer_swapped(o, i):
        # The outer recursion of the interchanged code: traverses the
        # inner tree (Figure 3, lines 1-8), opening one truncation
        # phase per visited inner node.
        ins_op("call")
        ins_op("trunc_check")
        if truncate_inner1(i):
            return
        frame = policy.open_phase()
        all_truncated = recurse_inner_swapped(o, i, frame)
        if not (subtree_truncation and all_truncated):
            for child in i.children:
                recurse_outer_swapped(o, child)
        policy.close_phase(frame, ins)

    def recurse_inner_swapped(o, i, frame):
        # The inner recursion of the interchanged code: traverses the
        # outer tree for a fixed inner node (Figure 3, lines 10-17,
        # plus the Figure 6(b) flag handling).  Returns True when every
        # live outer node in this subtree is truncated for ``i`` — the
        # signal consumed by subtree truncation.
        ins_op("call")
        ins_op("trunc_check")
        if truncate_outer(o):
            return True  # outside the iteration space: vacuously truncated
        ins_op("visit")
        if irregular:
            skipped = policy.check_and_mark(o, i, frame, ins)
        else:
            skipped = False
        if not skipped:
            ins_access(INNER_TREE, i)
            ins_access(OUTER_TREE, o)
            ins_work(o, i)
            if work is not None:
                work(o, i)
        all_truncated = skipped
        for child in o.children:
            child_truncated = recurse_inner_swapped(child, i, frame)
            all_truncated = all_truncated and child_truncated
        return all_truncated

    spec.reset_truncation_state()
    with recursion_guard(spec.outer_root, spec.inner_root):
        recurse_outer_swapped(spec.outer_root, spec.inner_root)

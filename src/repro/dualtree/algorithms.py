"""The four dual-tree benchmarks as runnable algorithm objects.

Each class bundles: point data, spatial trees, a rule set, and a
``make_spec()`` factory that resets the rule state — so one algorithm
instance can be executed repeatedly under different schedules with
comparable, independent results.  These are the PC, NN, KNN, and VP
benchmarks of Section 6.1:

* :class:`PointCorrelation` — "a 2-point correlation algorithm that
  determines how clustered a data set is";
* :class:`NearestNeighbor` — "find the nearest neighbor of each of a
  set of query points in a set of data points";
* :class:`KNearestNeighbors` — "like nearest neighbor but finds the k
  nearest neighbors of each query point" (kd-trees);
* :class:`VPNearestNeighbors` — "a k-nearest neighbor algorithm that
  uses a vantage point tree instead of a kd-tree".
"""

from __future__ import annotations

from dataclasses import dataclass, field
import numpy as np

from repro.core.spec import NestedRecursionSpec
from repro.dualtree.kdtree import build_kdtree
from repro.dualtree.parallel import knn_plan, nn_plan, pc_plan
from repro.dualtree.rules import (
    KNearestNeighborRules,
    NearestNeighborRules,
    PointCorrelationRules,
)
from repro.dualtree.spatial import SpatialTree
from repro.dualtree.traverser import dual_tree_spec
from repro.dualtree.vptree import build_vptree


#: Expected TW2xx verdicts for the dual-tree benchmarks (the output of
#: ``python -m repro.transform lint-lower``).  None of them provides a
#: ``work_batch_soa`` kernel, so lowerability stops at TW208; their
#: rules objects update per-query state through data-dependent indices
#: and staging helpers, so static independence stops at TW211/TW214
#: and the dynamic TW030 witness stays in charge.  These fixtures pin
#: the *expected* gap — closing it (an SoA-native dual-tree kernel)
#: should consciously update them.
LOWER_VERDICTS = {
    "PC": {
        "lower": "needs-runtime-check",
        "independence": "needs-runtime-check",
    },
    "NN": {
        "lower": "needs-runtime-check",
        "independence": "needs-runtime-check",
    },
    "KNN": {
        "lower": "needs-runtime-check",
        "independence": "needs-runtime-check",
    },
    "VP": {
        "lower": "needs-runtime-check",
        "independence": "needs-runtime-check",
    },
}

#: Expected TW30x locality verdicts at the benchmarks' default sizes
#: (scale 1.0) under the paper's Xeon cache model.  PC's stateless
#: block truncation lets the analyzer sample the pruning density: the
#: effective working set collapses into L1, so reordering outer points
#: is predicted *neutral* — matching BENCH_soa, where the PC twist rows
#: show no win.  The guided traversals (NN/KNN/VP) truncate through
#: work state, so their reuse — and with it interchange/twist payoff —
#: is statically ``unknown`` (TW303); layout verdicts still follow
#: from the raw footprint.  Closing the gap (a stateless bound form)
#: should consciously update these.
LOCALITY_VERDICTS = {
    "PC": {
        "interchange": "neutral",
        "twist": "neutral",
        "layout:veb": "profitable",
        "layout:bfs": "neutral",
    },
    "NN": {
        "interchange": "unknown",
        "twist": "unknown",
        "layout:veb": "profitable",
        "layout:bfs": "neutral",
    },
    "KNN": {
        "interchange": "unknown",
        "twist": "unknown",
        "layout:veb": "profitable",
        "layout:bfs": "neutral",
    },
    "VP": {
        "interchange": "unknown",
        "twist": "unknown",
        "layout:veb": "profitable",
        "layout:bfs": "neutral",
    },
}


@dataclass
class PointCorrelation:
    """Dual-tree 2-point correlation over one point set.

    The point set is indexed twice — a query tree and a reference tree
    over the same points, the paper's "the inner and outer recursions
    may traverse the same tree" setting made concrete with two
    independently built trees.
    """

    points: np.ndarray
    radius: float
    leaf_size: int = 8
    query_tree: SpatialTree = field(init=False)
    reference_tree: SpatialTree = field(init=False)
    rules: PointCorrelationRules = field(init=False)

    def __post_init__(self) -> None:
        self.points = np.asarray(self.points, dtype=float)
        self.query_tree = build_kdtree(self.points, self.leaf_size)
        self.reference_tree = build_kdtree(self.points, self.leaf_size)
        self.rules = PointCorrelationRules(
            self.query_tree, self.reference_tree, self.radius
        )

    def make_spec(self) -> NestedRecursionSpec:
        """Fresh spec with a zeroed pair count."""
        self.rules = PointCorrelationRules(
            self.query_tree, self.reference_tree, self.radius
        )
        spec = dual_tree_spec(
            self.query_tree, self.reference_tree, self.rules, name="PC"
        )
        spec.parallel_plan = pc_plan(self)
        return spec

    @property
    def result(self) -> int:
        """Pair count from the most recent run."""
        return self.rules.count


@dataclass
class NearestNeighbor:
    """Dual-tree nearest neighbor: queries against a reference set.

    ``exclude_self=True`` supports the same-set variant (each point's
    nearest *other* point), matching the oracle's flag.
    """

    queries: np.ndarray
    references: np.ndarray
    leaf_size: int = 8
    exclude_self: bool = False
    query_tree: SpatialTree = field(init=False)
    reference_tree: SpatialTree = field(init=False)
    rules: NearestNeighborRules = field(init=False)

    def __post_init__(self) -> None:
        self.queries = np.asarray(self.queries, dtype=float)
        self.references = np.asarray(self.references, dtype=float)
        self.query_tree = build_kdtree(self.queries, self.leaf_size)
        self.reference_tree = build_kdtree(self.references, self.leaf_size)
        self.rules = NearestNeighborRules(
            self.query_tree, self.reference_tree, exclude_self=self.exclude_self
        )

    def make_spec(self) -> NestedRecursionSpec:
        """Fresh spec with reset best-distance state."""
        self.rules = NearestNeighborRules(
            self.query_tree, self.reference_tree, exclude_self=self.exclude_self
        )
        spec = dual_tree_spec(
            self.query_tree, self.reference_tree, self.rules, name="NN"
        )
        spec.parallel_plan = nn_plan(self)
        return spec

    @property
    def result(self) -> tuple[np.ndarray, np.ndarray]:
        """(neighbor ids, distances) from the most recent run."""
        return self.rules.best_id, self.rules.best_dist


@dataclass
class KNearestNeighbors:
    """Dual-tree k-NN over kd-trees (the KNN benchmark, k=5 in §6.1)."""

    queries: np.ndarray
    references: np.ndarray
    k: int = 5
    leaf_size: int = 8
    exclude_self: bool = False
    query_tree: SpatialTree = field(init=False)
    reference_tree: SpatialTree = field(init=False)
    rules: KNearestNeighborRules = field(init=False)

    def __post_init__(self) -> None:
        self.queries = np.asarray(self.queries, dtype=float)
        self.references = np.asarray(self.references, dtype=float)
        self.query_tree = self._build(self.queries)
        self.reference_tree = self._build(self.references)
        self.rules = KNearestNeighborRules(
            self.query_tree, self.reference_tree, self.k,
            exclude_self=self.exclude_self,
        )

    def _build(self, points: np.ndarray) -> SpatialTree:
        return build_kdtree(points, self.leaf_size)

    def make_spec(self) -> NestedRecursionSpec:
        """Fresh spec with reset candidate lists."""
        self.rules = KNearestNeighborRules(
            self.query_tree, self.reference_tree, self.k,
            exclude_self=self.exclude_self,
        )
        spec = dual_tree_spec(
            self.query_tree, self.reference_tree, self.rules, name=self._name()
        )
        spec.parallel_plan = knn_plan(self, self._name().lower())
        return spec

    def _name(self) -> str:
        return "KNN"

    @property
    def result(self) -> tuple[np.ndarray, np.ndarray]:
        """(neighbor ids, distances), nearest first, from the last run."""
        return self.rules.neighbor_ids(), self.rules.neighbor_dists()


@dataclass
class VPNearestNeighbors(KNearestNeighbors):
    """Dual-tree k-NN over vantage-point trees (the VP benchmark, k=10)."""

    k: int = 10

    def _build(self, points: np.ndarray) -> SpatialTree:
        return build_vptree(points, self.leaf_size)

    def _name(self) -> str:
        return "VP"

"""Dual-tree range search: a fourth rule set for the framework.

Not one of the paper's evaluated benchmarks, but the canonical "next"
dual-tree algorithm in Curtin et al.'s catalogue, included to
demonstrate that the lowering of :mod:`repro.dualtree.traverser` is
genuinely rule-generic: range search reports, per query point, *which*
reference points lie within the radius (point correlation only counts
them).  Because it materializes per-query result lists, it also
exercises a subtly different dependence pattern — per-query append
order — which the intra-traversal order preservation of every schedule
keeps deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.spec import NestedRecursionSpec
from repro.dualtree.kdtree import build_kdtree
from repro.dualtree.rules import DualTreeRules, _pairwise_distances
from repro.dualtree.spatial import SpatialNode, SpatialTree
from repro.dualtree.traverser import dual_tree_spec


class RangeSearchRules(DualTreeRules):
    """Report all (query, reference) pairs within ``radius``.

    Per-query state: the ordered list of in-range reference ids.  The
    append order for a query is its inner-traversal order, which every
    schedule preserves, so result lists are identical across schedules
    (asserted by the tests — a stronger property than set equality).
    """

    def __init__(
        self,
        query_tree: SpatialTree,
        reference_tree: SpatialTree,
        radius: float,
    ) -> None:
        if radius < 0.0:
            raise ValueError(f"negative radius {radius}")
        self.query_tree = query_tree
        self.reference_tree = reference_tree
        self.radius = radius
        self.results: list[list[int]] = [
            [] for _ in range(query_tree.num_points)
        ]

    def score(self, q: SpatialNode, r: SpatialNode) -> bool:
        return q.bound.min_dist(r.bound) > self.radius

    def base_case(self, q: SpatialNode, r: SpatialNode) -> None:
        q_ids = self.query_tree.indices[q.start : q.end]
        r_ids = self.reference_tree.indices[r.start : r.end]
        distances = _pairwise_distances(
            self.query_tree.points[q_ids], self.reference_tree.points[r_ids]
        )
        within = distances <= self.radius
        for row, query in enumerate(q_ids):
            hits = np.asarray(r_ids)[within[row]]
            if hits.size:
                self.results[query].extend(int(h) for h in hits)


@dataclass
class RangeSearch:
    """Runnable dual-tree range search over kd-trees."""

    queries: np.ndarray
    references: np.ndarray
    radius: float
    leaf_size: int = 8
    query_tree: SpatialTree = field(init=False)
    reference_tree: SpatialTree = field(init=False)
    rules: RangeSearchRules = field(init=False)

    def __post_init__(self) -> None:
        self.queries = np.asarray(self.queries, dtype=float)
        self.references = np.asarray(self.references, dtype=float)
        self.query_tree = build_kdtree(self.queries, self.leaf_size)
        self.reference_tree = build_kdtree(self.references, self.leaf_size)
        self.rules = RangeSearchRules(
            self.query_tree, self.reference_tree, self.radius
        )

    def make_spec(self) -> NestedRecursionSpec:
        """Fresh spec with empty result lists."""
        self.rules = RangeSearchRules(
            self.query_tree, self.reference_tree, self.radius
        )
        return dual_tree_spec(
            self.query_tree, self.reference_tree, self.rules, name="RS"
        )

    @property
    def result(self) -> list[list[int]]:
        """Per-query in-range reference ids, in traversal order."""
        return self.rules.results


def brute_range_search(
    queries: np.ndarray, references: np.ndarray, radius: float
) -> list[set[int]]:
    """Oracle: per-query sets of in-range reference ids."""
    diff = queries[:, None, :] - references[None, :, :]
    distances = np.sqrt((diff * diff).sum(axis=2))
    return [
        set(np.nonzero(distances[q] <= radius)[0].tolist())
        for q in range(queries.shape[0])
    ]

"""Verdicts and the lint report: aggregation, rendering, JSON.

The verdict lattice, from strongest to weakest:

``interchange-safe``
    every write is keyed by the outer index, all decision expressions
    are pure, truncation is regular — the §3.3 sufficient criterion
    holds outright, so interchange *and* twisting are sound;
``twist-safe``
    the same proof with irregular truncation: sound via the Section 4
    flag machinery the generated code already includes;
``needs-dynamic-check``
    no refutation, but the proof has holes (unknown helper calls,
    adaptive pruning, unresolved write targets) — run
    :func:`repro.core.soundness.check_transformation` on concrete
    inputs;
``unsafe``
    a finding refutes the criterion (inner-keyed or global write,
    side-effecting decision, structural mutation, template violation).
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Optional

from repro.transform.lint.diagnostics import (
    CATALOG,
    Diagnostic,
    DiagnosticSink,
    Severity,
)
from repro.transform.lint.footprints import WorkFootprint


class Verdict(enum.Enum):
    """Overall schedule-safety classification of an annotated pair."""

    INTERCHANGE_SAFE = "interchange-safe"
    TWIST_SAFE = "twist-safe"
    NEEDS_DYNAMIC_CHECK = "needs-dynamic-check"
    UNSAFE = "unsafe"

    def __str__(self) -> str:
        return self.value

    @property
    def is_statically_safe(self) -> bool:
        """True when the §3.3 proof went through with no holes."""
        return self in (Verdict.INTERCHANGE_SAFE, Verdict.TWIST_SAFE)


def derive_verdict(sink: DiagnosticSink, irregular: bool) -> Verdict:
    """Fold the collected diagnostics into one verdict.

    Parallel-only findings (``affects == "parallel"``) do not demote
    the sequential verdict; they surface through ``parallel_safe``.
    """
    schedule_relevant = [
        d for d in sink.diagnostics if CATALOG[d.code].affects != "parallel"
    ]
    if any(d.severity is Severity.ERROR for d in schedule_relevant):
        return Verdict.UNSAFE
    if any(d.severity is Severity.WARNING for d in schedule_relevant):
        return Verdict.NEEDS_DYNAMIC_CHECK
    return Verdict.TWIST_SAFE if irregular else Verdict.INTERCHANGE_SAFE


@dataclass
class LintReport:
    """Everything one lint run concluded about an annotated pair."""

    verdict: Verdict
    diagnostics: list[Diagnostic] = field(default_factory=list)
    #: findings dropped by ``# lint: ignore[...]`` pragmas
    suppressed: list[Diagnostic] = field(default_factory=list)
    #: False when a cross-task race (TW030) or unknown write exists
    parallel_safe: bool = True
    #: whether the pair uses irregular (§4) truncation; None = unknown
    irregular: Optional[bool] = None
    #: the inferred work footprint (None when recognition failed)
    footprint: Optional[WorkFootprint] = None
    #: names of the annotated pair, when recognition got that far
    outer_name: Optional[str] = None
    inner_name: Optional[str] = None
    filename: str = "<source>"

    @property
    def errors(self) -> list[Diagnostic]:
        """Findings that refute the safety proof."""
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> list[Diagnostic]:
        """Findings that leave a hole in the safety proof."""
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    @property
    def has_errors(self) -> bool:
        """True when the verdict is backed by at least one error."""
        return bool(self.errors)

    def codes(self) -> set[str]:
        """The set of diagnostic codes present in the report."""
        return {d.code for d in self.diagnostics}

    def render(self) -> str:
        """Human-readable multi-line report (the CLI's default output)."""
        lines: list[str] = []
        for diagnostic in sorted(
            self.diagnostics, key=lambda d: (d.line, d.col, d.code)
        ):
            lines.append(diagnostic.format(self.filename))
        pair = (
            f"{self.outer_name}/{self.inner_name}"
            if self.outer_name and self.inner_name
            else "<unrecognized>"
        )
        summary = (
            f"{pair}: verdict: {self.verdict} "
            f"({len(self.errors)} error(s), {len(self.warnings)} "
            f"warning(s))"
        )
        if self.irregular is not None:
            summary += f"; truncation: {'irregular' if self.irregular else 'regular'}"
        summary += f"; task-parallel: {'safe' if self.parallel_safe else 'UNSAFE'}"
        if self.suppressed:
            summary += f"; {len(self.suppressed)} finding(s) suppressed"
        lines.append(summary)
        return "\n".join(lines)

    def to_json(self) -> dict:
        """JSON-ready dict with stable keys (the ``--json`` payload).

        ``schema_version`` 2 added the version field itself, the
        ``kind`` discriminator (``"schedule-safety"`` here vs
        ``"spec-conformance"`` for
        :class:`~repro.transform.lint.backend.SpecConformanceReport`),
        and ``counts.suppressed`` — one schema family for both report
        kinds.
        """
        from repro.transform.lint.backend import SCHEMA_VERSION

        return {
            "schema_version": SCHEMA_VERSION,
            "kind": "schedule-safety",
            "verdict": str(self.verdict),
            "parallel_safe": self.parallel_safe,
            "irregular": self.irregular,
            "outer": self.outer_name,
            "inner": self.inner_name,
            "diagnostics": [d.to_json() for d in self.diagnostics],
            "suppressed": [d.to_json() for d in self.suppressed],
            "writes": self.footprint.to_json() if self.footprint else [],
            "counts": {
                "errors": len(self.errors),
                "warnings": len(self.warnings),
                "suppressed": len(self.suppressed),
            },
        }

    def dumps(self) -> str:
        """Serialized JSON text of :meth:`to_json`."""
        return json.dumps(self.to_json(), indent=2, sort_keys=True)

"""Static read/write footprint inference for work statements.

The §3.3 soundness criterion — "if the outer recursion is parallel,
recursion interchange is sound, and therefore recursion twisting is
sound" — is a statement about the *footprint* of ``work(o, i)``: every
location involved in a write must be touched by work points of a single
outer index.  :mod:`repro.core.soundness` checks this dynamically by
recording concrete accesses; this module decides it from the AST.

The abstraction is the :class:`AccessPath`: a base *region* (rooted at
the outer index, the inner index, module/global state, a fresh local,
or unknown) plus a chain of attribute/subscript steps, annotated with
the index parameters that *key* it.  A write is provably outer-keyed
when ``"outer"`` is among its keys — ``o.count = ...``,
``table[o.number] = ...``, ``t = o.left; t.data = ...`` all qualify —
and the analyzer resolves simple local aliases, loop targets, augmented
assigns, known-mutating method calls, ``setattr``, and ``global``
declarations to get there.

Two standing assumptions, recorded as INFO diagnostics where relevant:
distinct index nodes are distinct objects (attribute paths rooted at
different outer nodes do not alias), and subscript keys derived from an
index node (``o.number``) are injective across nodes.  Both match how
the executors and the paper's prototype use the template.
"""

from __future__ import annotations

import ast
import enum
from dataclasses import dataclass, field
from typing import Iterable

from repro.transform.lint.diagnostics import DiagnosticSink
from repro.transform.recognizer import RecursionTemplate


class Region(enum.Enum):
    """Where an access path is rooted."""

    OUTER = "outer"
    INNER = "inner"
    GLOBAL = "global"
    LOCAL = "local"
    UNKNOWN = "unknown"


#: Fields the traversal machinery itself reads: the twist decision
#: compares ``size``, child expressions walk ``children``/``left``/
#: ``right``, and the Section 4 flag code owns the truncation scratch.
STRUCTURAL_FIELDS = frozenset(
    {"size", "children", "left", "right", "trunc", "trunc_counter", "number"}
)

#: Builtins that neither mutate their arguments nor touch shared state.
PURE_BUILTINS = frozenset(
    {
        "abs", "all", "any", "bool", "divmod", "enumerate", "float",
        "frozenset", "getattr", "hasattr", "hash", "int", "isinstance",
        "issubclass", "len", "max", "min", "pow", "range", "repr",
        "reversed", "round", "sorted", "str", "sum", "tuple", "zip",
    }
)

#: Constructors returning a fresh object (safe alias target: LOCAL).
FRESH_CONSTRUCTORS = frozenset({"list", "dict", "set", "bytearray"})

#: Modules whose attribute calls are assumed pure.
PURE_MODULES = frozenset({"math", "np", "numpy", "operator", "itertools"})

#: Method names that mutate their receiver.
KNOWN_MUTATING_METHODS = frozenset(
    {
        "add", "append", "clear", "discard", "extend", "insert", "pop",
        "popitem", "push", "remove", "reverse", "setdefault", "sort",
        "update", "write", "writelines",
    }
)

#: Method names that are pure queries of their receiver.
KNOWN_PURE_METHODS = frozenset(
    {
        "copy", "count", "endswith", "format", "get", "index", "items",
        "join", "keys", "lower", "split", "startswith", "strip", "upper",
        "values",
    }
)

#: Calls with ambient side effects (I/O, dynamic code, mutation).
IMPURE_CALLS = frozenset(
    {"print", "input", "open", "exec", "eval", "compile", "next", "__import__"}
)


@dataclass(frozen=True)
class AccessPath:
    """A resolved heap path: region + root name + normalized steps.

    ``steps`` holds attribute names verbatim and ``"[]"`` for
    subscripts; ``keyed_by`` collects which index parameters key the
    path (via its root or any subscript key expression).
    """

    region: Region
    root: str
    steps: tuple[str, ...] = ()
    keyed_by: frozenset[str] = frozenset()

    def child(self, step: str, extra_keys: Iterable[str] = ()) -> "AccessPath":
        """Extend the path by one attribute/subscript step."""
        return AccessPath(
            region=self.region,
            root=self.root,
            steps=self.steps + (step,),
            keyed_by=self.keyed_by | frozenset(extra_keys),
        )

    @property
    def display(self) -> str:
        """Human-readable rendering, e.g. ``o.best`` or ``table[...]``."""
        text = self.root
        for step in self.steps:
            text += "[...]" if step == "[]" else f".{step}"
        return text

    @property
    def attribute_depth(self) -> int:
        """Number of attribute (non-subscript) hops in the path."""
        return sum(1 for step in self.steps if step != "[]")

    def overlaps(self, other: "AccessPath") -> bool:
        """Conservative may-alias test between two resolved paths.

        Paths overlap when they share a root region (same global root
        for module state) and one's step chain is a prefix of the
        other's.  Zero-step reads of an index *parameter* are identity
        uses (``i is None``) and never overlap a heap write, so both
        sides must carry at least one step when rooted at an index.
        """
        if self.region is not other.region:
            return False
        if self.region in (Region.LOCAL, Region.UNKNOWN):
            return False
        if self.region is Region.GLOBAL and self.root != other.root:
            return False
        if self.region in (Region.OUTER, Region.INNER):
            if not self.steps or not other.steps:
                return False
        shorter, longer = sorted((self.steps, other.steps), key=len)
        return longer[: len(shorter)] == shorter


@dataclass(frozen=True)
class Access:
    """One inferred read or write of an :class:`AccessPath`."""

    path: AccessPath
    is_write: bool
    line: int = 0
    col: int = 0


@dataclass
class WorkFootprint:
    """Everything the work statements were inferred to touch."""

    writes: list[Access] = field(default_factory=list)
    reads: list[Access] = field(default_factory=list)

    @property
    def outer_keyed_writes(self) -> list[Access]:
        """Writes provably private to one outer index (§3.3-safe)."""
        return [w for w in self.writes if "outer" in w.path.keyed_by]

    @property
    def shared_writes(self) -> list[Access]:
        """Writes visible across outer indices (inner-keyed or global)."""
        return [
            w
            for w in self.writes
            if "outer" not in w.path.keyed_by
            and w.path.region not in (Region.LOCAL, Region.UNKNOWN)
        ]

    def to_json(self) -> list[dict]:
        """JSON-ready write summary (used by ``--json`` reporting)."""
        return [
            {
                "path": access.path.display,
                "region": access.path.region.value,
                "keyed_by": sorted(access.path.keyed_by),
                "line": access.line,
            }
            for access in self.writes
        ]


_LOCAL = AccessPath(Region.LOCAL, "<local>")
_UNKNOWN = AccessPath(Region.UNKNOWN, "<unknown>")


class FootprintAnalyzer:
    """AST walker that infers the footprint of a statement list.

    One instance analyzes one context (the work statements, or a guard
    or child expression via :meth:`scan_expression`); ``context`` is
    ``"work"``, ``"guard"``, or ``"child"`` and selects which
    diagnostic codes misbehaviour maps to (an unknown call is a
    footprint hole in work, a purity hole in a guard).
    """

    def __init__(
        self,
        template: RecursionTemplate,
        sink: DiagnosticSink,
        assume_pure: Iterable[str] = (),
        context: str = "work",
    ) -> None:
        self.template = template
        self.sink = sink
        self.assume_pure = frozenset(assume_pure)
        self.context = context
        self.footprint = WorkFootprint()
        #: local name -> resolved alias target
        self.aliases: dict[str, AccessPath] = {}
        self.globals_declared: set[str] = set()

    # --- name/path resolution ---------------------------------------

    def resolve_name(self, name: str) -> AccessPath:
        """Resolve a bare name to its region under the current env."""
        if name == self.template.o_param:
            return AccessPath(Region.OUTER, name, (), frozenset({"outer"}))
        if name == self.template.i_param:
            return AccessPath(Region.INNER, name, (), frozenset({"inner"}))
        if name in self.aliases:
            return self.aliases[name]
        return AccessPath(Region.GLOBAL, name)

    def resolve_chain(self, expr: ast.expr) -> AccessPath:
        """Resolve a Name/Attribute/Subscript chain to an access path."""
        if isinstance(expr, ast.Name):
            return self.resolve_name(expr.id)
        if isinstance(expr, ast.Attribute):
            return self.resolve_chain(expr.value).child(expr.attr)
        if isinstance(expr, ast.Subscript):
            base = self.resolve_chain(expr.value)
            keys = self._index_params_in(expr.slice)
            self.scan_expression(expr.slice)
            return base.child("[]", keys)
        return _UNKNOWN

    def _index_params_in(self, expr: ast.expr) -> set[str]:
        """Which index parameters a subscript key mentions (alias-aware)."""
        keys: set[str] = set()
        for node in ast.walk(expr):
            if isinstance(node, ast.Name):
                resolved = self.resolve_name(node.id)
                if resolved.region is Region.OUTER:
                    keys.add("outer")
                elif resolved.region is Region.INNER:
                    keys.add("inner")
        return keys

    def _value_alias(self, value: ast.expr) -> AccessPath:
        """What an assignment's RHS binds the target name to."""
        if isinstance(value, (ast.Name, ast.Attribute, ast.Subscript)):
            return self.resolve_chain(value)
        if isinstance(value, ast.Constant):
            return _LOCAL
        if isinstance(value, (ast.List, ast.Tuple, ast.Set)):
            element_paths = [self._value_alias(elt) for elt in value.elts]
            if all(p.region is Region.LOCAL for p in element_paths):
                return _LOCAL
            return _UNKNOWN  # container literal capturing shared refs
        if isinstance(value, ast.Dict):
            parts = list(value.keys) + list(value.values)
            paths = [self._value_alias(p) for p in parts if p is not None]
            if all(p.region is Region.LOCAL for p in paths):
                return _LOCAL
            return _UNKNOWN
        if isinstance(value, (ast.BinOp, ast.UnaryOp, ast.Compare, ast.BoolOp)):
            return _LOCAL  # operators yield fresh values
        if isinstance(value, ast.Call):
            func = value.func
            if isinstance(func, ast.Name) and func.id in FRESH_CONSTRUCTORS:
                return _LOCAL
            return _UNKNOWN
        return _UNKNOWN

    # --- recording ----------------------------------------------------

    def record_read(self, path: AccessPath, node: ast.AST) -> None:
        """Record one read access (LOCAL reads carry no dependence)."""
        if path.region is Region.LOCAL:
            return
        self.footprint.reads.append(
            Access(path, False, getattr(node, "lineno", 0), getattr(node, "col_offset", 0))
        )

    def record_write(self, path: AccessPath, node: ast.AST) -> None:
        """Record one write and emit its safety classification."""
        if path.region is Region.LOCAL:
            return  # function-local scratch: reset every invocation
        self.footprint.writes.append(
            Access(path, True, getattr(node, "lineno", 0), getattr(node, "col_offset", 0))
        )
        if self.context != "work":
            code = "TW020" if self.context == "guard" else "TW022"
            self.sink.emit(
                code,
                f"{self.context} expression writes {path.display!r}; "
                f"truncation and child selection must be pure — a "
                f"side-effecting decision silently changes which "
                f"schedule the generated code executes",
                node,
            )
            return
        if path.region is Region.UNKNOWN:
            self.sink.emit(
                "TW012",
                f"cannot resolve the target of this write "
                f"({path.display!r}); the inferred footprint is "
                f"incomplete",
                node,
                hint="assign through a simple alias of an index "
                "parameter, or verify dynamically with "
                "repro.core.soundness",
            )
            return
        final = path.steps[-1] if path.steps else ""
        structural = final in STRUCTURAL_FIELDS or (
            final == "[]" and len(path.steps) >= 2 and path.steps[-2] == "children"
        )
        if path.region in (Region.OUTER, Region.INNER) and structural:
            self.sink.emit(
                "TW024",
                f"work writes {path.display!r}, a field the traversal "
                f"machinery reads (twist decisions compare 'size', "
                f"child expressions walk the tree, Section 4 owns the "
                f"truncation flags); mutating it changes the schedule "
                f"itself",
                node,
            )
            return
        if "outer" in path.keyed_by:
            if path.attribute_depth >= 2:
                self.sink.emit(
                    "TW015",
                    f"write {path.display!r} is outer-keyed only under "
                    f"the assumption that each outer node owns the "
                    f"object behind this multi-hop path",
                    node,
                )
            return  # provably private to one outer index
        if "inner" in path.keyed_by:
            self.sink.emit(
                "TW010",
                f"write {path.display!r} is keyed by the inner index "
                f"{self.template.i_param!r}: two different outer "
                f"iterations write the same location, so the outer "
                f"recursion is not parallel and the §3.3 criterion "
                f"fails",
                node,
            )
            return
        self.sink.emit(
            "TW011",
            f"write {path.display!r} targets shared state keyed by "
            f"neither index; every work point touches the same "
            f"location, so no reordering of the iteration space "
            f"preserves its dependences",
            node,
        )

    # --- statement walking -------------------------------------------

    def analyze_statements(self, statements: Iterable[ast.stmt]) -> WorkFootprint:
        """Walk the work statements, populating the footprint and sink."""
        for stmt in statements:
            self._visit_stmt(stmt)
        return self.footprint

    def _visit_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            self.scan_expression(stmt.value)
            for target in stmt.targets:
                self._assign_target(target, stmt.value)
        elif isinstance(stmt, ast.AugAssign):
            self.scan_expression(stmt.value)
            if isinstance(stmt.target, ast.Name):
                self._assign_target(stmt.target, stmt.value, augmented=True)
            else:
                path = self.resolve_chain(stmt.target)
                self.record_read(path, stmt.target)
                self.record_write(path, stmt.target)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self.scan_expression(stmt.value)
                self._assign_target(stmt.target, stmt.value)
        elif isinstance(stmt, ast.Expr):
            self.scan_expression(stmt.value)
        elif isinstance(stmt, ast.If):
            self.scan_expression(stmt.test)
            for child in stmt.body + stmt.orelse:
                self._visit_stmt(child)
        elif isinstance(stmt, ast.While):
            self.scan_expression(stmt.test)
            for child in stmt.body + stmt.orelse:
                self._visit_stmt(child)
        elif isinstance(stmt, ast.For):
            self._visit_for(stmt)
        elif isinstance(stmt, ast.With):
            for item in stmt.items:
                self.scan_expression(item.context_expr)
                if item.optional_vars is not None:
                    self._assign_target(item.optional_vars, item.context_expr)
            for child in stmt.body:
                self._visit_stmt(child)
        elif isinstance(stmt, (ast.Global, ast.Nonlocal)):
            self.globals_declared.update(stmt.names)
            for name in stmt.names:
                self.aliases.pop(name, None)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                self.record_write(self.resolve_chain(target), target)
        elif isinstance(stmt, (ast.Return, ast.Raise)):
            for value in ast.iter_child_nodes(stmt):
                if isinstance(value, ast.expr):
                    self.scan_expression(value)
        elif isinstance(stmt, ast.Assert):
            self.scan_expression(stmt.test)
            if stmt.msg is not None:
                self.scan_expression(stmt.msg)
        elif isinstance(stmt, ast.Pass):
            pass
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            self.sink.emit(
                "TW012",
                f"nested {type(stmt).__name__} {stmt.name!r} is not "
                f"analyzed; its effects are invisible to the footprint",
                stmt,
            )
        else:
            self.sink.emit(
                "TW012",
                f"statement form {type(stmt).__name__} is not modeled; "
                f"the inferred footprint is incomplete",
                stmt,
            )

    def _visit_for(self, stmt: ast.For) -> None:
        self.scan_expression(stmt.iter)
        iter_path = (
            self.resolve_chain(stmt.iter)
            if isinstance(stmt.iter, (ast.Name, ast.Attribute, ast.Subscript))
            else _UNKNOWN
        )
        if isinstance(stmt.target, ast.Name):
            if iter_path.region in (Region.OUTER, Region.INNER, Region.GLOBAL):
                # Items of a resolved container inherit its keying:
                # ``for c in o.children`` binds outer-keyed nodes.
                self.aliases[stmt.target.id] = iter_path.child("[]")
            elif iter_path.region is Region.LOCAL:
                self.aliases[stmt.target.id] = _LOCAL
            else:
                self.aliases[stmt.target.id] = _UNKNOWN
        else:
            for node in ast.walk(stmt.target):
                if isinstance(node, ast.Name):
                    self.aliases[node.id] = _UNKNOWN
        for child in stmt.body + stmt.orelse:
            self._visit_stmt(child)

    def _assign_target(
        self, target: ast.expr, value: ast.expr, augmented: bool = False
    ) -> None:
        if isinstance(target, ast.Name):
            name = target.id
            if name in (self.template.o_param, self.template.i_param):
                self.sink.emit(
                    "TW024",
                    f"work rebinds the index parameter {name!r}; the "
                    f"recursive calls that follow would advance a "
                    f"different position than the schedule analysis "
                    f"assumes",
                    target,
                )
                return
            if name in self.globals_declared:
                path = AccessPath(Region.GLOBAL, name)
                if augmented:
                    self.record_read(path, target)
                self.record_write(path, target)
                return
            if augmented:
                # Augmented assignment reads the prior local binding.
                self.aliases.setdefault(name, _LOCAL)
                return
            self.aliases[name] = self._value_alias(value)
        elif isinstance(target, (ast.Attribute, ast.Subscript)):
            path = self.resolve_chain(target)
            if augmented:
                self.record_read(path, target)
            self.record_write(path, target)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                inner = element.value if isinstance(element, ast.Starred) else element
                self._assign_target(inner, ast.Constant(value=None))
        else:
            self.sink.emit(
                "TW012",
                f"assignment target {ast.unparse(target)!r} is not "
                f"modeled; the inferred footprint is incomplete",
                target,
            )

    # --- expression walking ------------------------------------------

    def scan_expression(self, expr: ast.expr) -> None:
        """Record reads and classify calls within one expression."""
        if isinstance(expr, ast.Name):
            if isinstance(expr.ctx, ast.Load):
                self.record_read(self.resolve_name(expr.id), expr)
            return
        if isinstance(expr, (ast.Attribute, ast.Subscript)):
            self.record_read(self.resolve_chain(expr), expr)
            return
        if isinstance(expr, ast.Call):
            self._handle_call(expr)
            return
        if isinstance(expr, ast.NamedExpr):
            self.scan_expression(expr.value)
            if isinstance(expr.target, ast.Name):
                name = expr.target.id
                if name in (self.template.o_param, self.template.i_param):
                    code = "TW020" if self.context == "guard" else "TW024"
                    self.sink.emit(
                        code,
                        f"walrus assignment rebinds the index parameter "
                        f"{name!r}",
                        expr,
                    )
                else:
                    self.aliases[name] = self._value_alias(expr.value)
            return
        if isinstance(expr, (ast.Lambda, ast.GeneratorExp)):
            self.sink.emit(
                "TW013" if self.context == "work" else "TW021",
                f"{type(expr).__name__} is not analyzed; treat its "
                f"body's effects as unknown",
                expr,
            )
            return
        for child in ast.iter_child_nodes(expr):
            if isinstance(child, ast.expr):
                self.scan_expression(child)
            elif isinstance(child, ast.comprehension):
                self.scan_expression(child.iter)
                for condition in child.ifs:
                    self.scan_expression(condition)

    def _handle_call(self, call: ast.Call) -> None:
        for arg in call.args:
            value = arg.value if isinstance(arg, ast.Starred) else arg
            self.scan_expression(value)
        for keyword in call.keywords:
            self.scan_expression(keyword.value)
        func = call.func
        if isinstance(func, ast.Name):
            name = func.id
            if name in self.assume_pure or name in PURE_BUILTINS:
                return
            if name in FRESH_CONSTRUCTORS:
                return
            if name in ("setattr", "delattr") and call.args:
                path = self.resolve_chain(call.args[0])
                attr = (
                    call.args[1].value
                    if name == "setattr"
                    and len(call.args) >= 2
                    and isinstance(call.args[1], ast.Constant)
                    and isinstance(call.args[1].value, str)
                    else "[]"
                )
                self.record_write(path.child(str(attr)), call)
                return
            if name in IMPURE_CALLS:
                self.record_write(AccessPath(Region.GLOBAL, f"<{name}>"), call)
                return
            self._unknown_call(call, name)
            return
        if isinstance(func, ast.Attribute):
            base = func.value
            if isinstance(base, ast.Name):
                resolved = self.resolve_name(base.id)
                if resolved.region is Region.GLOBAL and base.id in PURE_MODULES:
                    return
            method = func.attr
            if method in KNOWN_MUTATING_METHODS:
                self.record_write(self.resolve_chain(base), call)
                return
            if method in KNOWN_PURE_METHODS:
                self.scan_expression(base)
                return
            self.scan_expression(base)
            self._unknown_call(call, f"{ast.unparse(base)}.{method}")
            return
        self.scan_expression(func)
        self._unknown_call(call, ast.unparse(func))

    def _unknown_call(self, call: ast.Call, name: str) -> None:
        if self.context == "work":
            self.sink.emit(
                "TW013",
                f"call to unknown helper {name!r}: its effects are "
                f"invisible, so the inferred footprint is incomplete",
                call,
                hint=f"declare it with '# lint: assume-pure: {name}' "
                f"or --assume-pure if it only reads its arguments",
            )
        else:
            self.sink.emit(
                "TW021",
                f"call to unknown helper {name!r} in a "
                f"{self.context} expression: cannot prove the "
                f"truncation/child decision is pure",
                call,
                hint=f"declare it with '# lint: assume-pure: {name}' "
                f"or --assume-pure if it is side-effect free",
            )


def analyze_work(
    template: RecursionTemplate,
    sink: DiagnosticSink,
    assume_pure: Iterable[str] = (),
) -> WorkFootprint:
    """Infer the footprint of a template's work statements."""
    analyzer = FootprintAnalyzer(template, sink, assume_pure, context="work")
    return analyzer.analyze_statements(template.work_statements)


def analyze_expression(
    template: RecursionTemplate,
    expr: ast.expr,
    sink: DiagnosticSink,
    assume_pure: Iterable[str] = (),
    context: str = "guard",
) -> WorkFootprint:
    """Infer the footprint of a guard or child expression."""
    analyzer = FootprintAnalyzer(template, sink, assume_pure, context=context)
    analyzer.scan_expression(expr)
    return analyzer.footprint

"""Static schedule-safety analysis for the transformation tool.

The paper's §5 prototype performs only a syntactic template check and
"relies on the programmer to only annotate nested recursive functions
that can be safely transformed"; :mod:`repro.core.soundness` verifies
§3.3 soundness *dynamically*, per concrete input.  This subpackage
closes the gap with a static verdict decided from the code itself:

* :mod:`~repro.transform.lint.footprints` infers the read/write
  footprint of the work statements (stores, augmented assigns,
  known-mutating calls, aliases, globals);
* :mod:`~repro.transform.lint.purity` checks that guards and child
  expressions are pure and detects adaptive (NN/KNN/VP-style) pruning;
* :mod:`~repro.transform.lint.parallel_safety` intersects footprints
  across spawnable outer subtrees for the §7.3 executor;
* :mod:`~repro.transform.lint.diagnostics` and
  :mod:`~repro.transform.lint.report` carry the findings as stable
  ``TW0xx`` diagnostics folded into a per-pair verdict;
* :mod:`~repro.transform.lint.backend` extends the analysis to the
  spec/kernel layer (``TW1xx``): it proves — or refuses to prove —
  that a spec's vectorized ``work_batch``/``work_batch_soa``/
  ``truncate_inner2_batch`` kernels conform to their scalar
  counterparts, gating which executors ``backend="auto"`` may pick;
* :mod:`~repro.transform.lint.kernel_ir` and
  :mod:`~repro.transform.lint.lower` lift the kernels into a typed IR
  and certify them (``TW2xx``): *lowerability* for the fused/compiled
  backend and *static outer-task independence* for the parallel one —
  the static proof that lets ``check_outer_independence`` skip its
  dynamic warm-up probe.

Two in-source pragmas steer the analysis::

    # lint: assume-pure: dist, count_pairs    (helpers that only read)
    some_statement()  # lint: ignore[TW013]   (suppress on this line)

Entry points: :func:`lint_source` for source text (annotated or with
explicit names) and :func:`lint_template` when recognition already
happened.
"""

from __future__ import annotations

import re
from typing import Iterable, Optional

from repro.errors import TransformError
from repro.transform.analysis import TruncationAnalysis, analyze_truncation
from repro.transform.lint.diagnostics import (
    CATALOG,
    CodeInfo,
    Diagnostic,
    DiagnosticSink,
    Severity,
    make_diagnostic,
)
from repro.transform.lint.footprints import (
    Access,
    AccessPath,
    FootprintAnalyzer,
    Region,
    WorkFootprint,
    analyze_work,
)
from repro.transform.lint.parallel_safety import check_parallel_safety
from repro.transform.lint.purity import (
    check_adaptive_truncation,
    check_child_purity,
    check_guard_purity,
)
from repro.transform.lint.backend import (
    KernelFootprint,
    SpecConformanceReport,
    SpecVerdict,
    analyze_kernel,
    lint_spec,
)
from repro.transform.lint.kernel_ir import KernelIR, extract_kernel_ir
from repro.transform.lint.locality import (
    LocalityReport,
    LocalityVerdict,
    lint_locality,
)
from repro.transform.lint.lower import (
    IndependenceVerdict,
    LowerReport,
    LowerVerdict,
    lint_lower,
    static_independence,
)
from repro.transform.lint.report import LintReport, Verdict, derive_verdict
from repro.transform.recognizer import RecursionTemplate, recognize

__all__ = [
    "CATALOG",
    "Access",
    "AccessPath",
    "CodeInfo",
    "Diagnostic",
    "DiagnosticSink",
    "FootprintAnalyzer",
    "IndependenceVerdict",
    "KernelFootprint",
    "KernelIR",
    "LintReport",
    "LocalityReport",
    "LocalityVerdict",
    "LowerReport",
    "LowerVerdict",
    "Region",
    "Severity",
    "SpecConformanceReport",
    "SpecVerdict",
    "Verdict",
    "WorkFootprint",
    "analyze_kernel",
    "analyze_work",
    "check_adaptive_truncation",
    "check_child_purity",
    "check_guard_purity",
    "check_parallel_safety",
    "collect_pragmas",
    "derive_verdict",
    "extract_kernel_ir",
    "lint_locality",
    "lint_lower",
    "lint_source",
    "lint_spec",
    "lint_template",
    "make_diagnostic",
    "static_independence",
]

_ASSUME_PURE_RE = re.compile(r"#\s*lint:\s*assume-pure:\s*([\w\s,.]+)")
_IGNORE_RE = re.compile(r"#\s*lint:\s*ignore\[([A-Z0-9,\s]+)\]")


def collect_pragmas(source: str) -> tuple[frozenset[str], dict[int, set[str]]]:
    """Extract lint pragmas from source text.

    Returns ``(assume_pure_names, suppressions)`` where suppressions
    maps a 1-based line number to the codes ignored on that line.
    """
    assume_pure: set[str] = set()
    suppressions: dict[int, set[str]] = {}
    for number, line in enumerate(source.splitlines(), start=1):
        pure_match = _ASSUME_PURE_RE.search(line)
        if pure_match:
            assume_pure.update(
                name.strip()
                for name in pure_match.group(1).split(",")
                if name.strip()
            )
        ignore_match = _IGNORE_RE.search(line)
        if ignore_match:
            codes = {
                code.strip()
                for code in ignore_match.group(1).split(",")
                if code.strip()
            }
            suppressions.setdefault(number, set()).update(codes)
    return frozenset(assume_pure), suppressions


def lint_template(
    template: RecursionTemplate,
    analysis: Optional[TruncationAnalysis] = None,
    *,
    assume_pure: Iterable[str] = (),
    suppressions: Optional[dict[int, set[str]]] = None,
    filename: str = "<source>",
) -> LintReport:
    """Lint an already-recognized pair (the analysis core).

    ``analysis`` may be omitted; it is recomputed, and a failure there
    (an outer-only disjunct, TW003) becomes a diagnostic rather than an
    exception.
    """
    sink = DiagnosticSink(suppressions=dict(suppressions or {}))
    irregular: Optional[bool] = None
    if analysis is None:
        try:
            analysis = analyze_truncation(template)
        except TransformError as error:
            sink.emit(error.code, str(error))
    if analysis is not None:
        irregular = analysis.is_irregular

    work = analyze_work(template, sink, assume_pure)
    guard_reads = check_guard_purity(template, sink, assume_pure)
    check_child_purity(template, sink, assume_pure)
    check_adaptive_truncation(template, guard_reads, work, sink)
    parallel_safe = check_parallel_safety(template, work, sink)

    return LintReport(
        verdict=derive_verdict(sink, bool(irregular)),
        diagnostics=sink.diagnostics,
        suppressed=sink.suppressed,
        parallel_safe=parallel_safe,
        irregular=irregular,
        footprint=work,
        outer_name=template.outer_name,
        inner_name=template.inner_name,
        filename=filename,
    )


def lint_source(
    source: str,
    outer_name: Optional[str] = None,
    inner_name: Optional[str] = None,
    *,
    assume_pure: Iterable[str] = (),
    filename: str = "<source>",
) -> LintReport:
    """Lint module source text; never raises on bad input.

    When ``outer_name``/``inner_name`` are omitted the pair is located
    via the ``@outer_recursion``/``@inner_recursion`` annotations.
    Recognition failures (unparsable source, template violations) are
    reported as TW001/TW002/TW003 diagnostics with an *unsafe* verdict
    instead of propagating :class:`~repro.errors.TransformError`.
    """
    pragma_pure, suppressions = collect_pragmas(source)
    combined_pure = frozenset(assume_pure) | pragma_pure
    try:
        if outer_name is None or inner_name is None:
            # Imported lazily: tool imports lint for gating.
            from repro.transform.tool import find_annotated_pair

            outer_name, inner_name = find_annotated_pair(source)
        template = recognize(source, outer_name, inner_name)
    except TransformError as error:
        return LintReport(
            verdict=Verdict.UNSAFE,
            diagnostics=[make_diagnostic(error.code, str(error))],
            parallel_safe=False,
            filename=filename,
        )
    return lint_template(
        template,
        assume_pure=combined_pure,
        suppressions=suppressions,
        filename=filename,
    )

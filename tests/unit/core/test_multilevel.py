"""Unit tests for N-level nested recursion and generalized twisting."""

import pytest

from repro.core import (
    MultiLevelSpec,
    NestedRecursionSpec,
    OpCounterN,
    PointRecorder,
    WorkRecorder,
    cross_product_size,
    run_original,
    run_original_n,
    run_twisted,
    run_twisted_n,
)
from repro.errors import SpecError
from repro.spaces import balanced_tree, paper_inner_tree, paper_outer_tree, random_tree


class TestSpecValidation:
    def test_needs_dimensions(self):
        with pytest.raises(SpecError):
            MultiLevelSpec(roots=[])

    def test_truncate_arity_checked(self):
        with pytest.raises(SpecError, match="truncation predicates"):
            MultiLevelSpec(
                roots=[balanced_tree(3), balanced_tree(3)],
                truncates=[lambda n: False],
            )

    def test_cross_product_size(self):
        spec = MultiLevelSpec(roots=[balanced_tree(3), balanced_tree(5)])
        assert cross_product_size(spec) == 15


class TestTwoLevelEquivalence:
    """At N == 2, both N-level executors must match the Figure 2/4
    executors schedule-for-schedule, including tie behaviour."""

    def two_level_points(self, run, outer, inner):
        spec = NestedRecursionSpec(outer, inner)
        recorder = WorkRecorder()
        run(spec, instrument=recorder)
        return recorder.points

    def n_level_points(self, run, outer, inner):
        spec = MultiLevelSpec(roots=[outer, inner])
        recorder = PointRecorder()
        run(spec, instrument=recorder)
        return recorder.points

    def test_original_matches_on_paper_trees(self):
        outer, inner = paper_outer_tree(), paper_inner_tree()
        assert self.n_level_points(run_original_n, outer, inner) == (
            self.two_level_points(run_original, outer, inner)
        )

    def test_twisted_matches_on_paper_trees(self):
        outer, inner = paper_outer_tree(), paper_inner_tree()
        assert self.n_level_points(run_twisted_n, outer, inner) == (
            self.two_level_points(run_twisted, outer, inner)
        )

    @pytest.mark.parametrize("seed", range(8))
    def test_twisted_matches_on_random_trees(self, seed):
        outer = random_tree(17, seed=seed)
        inner = random_tree(23, seed=seed + 100)
        assert self.n_level_points(run_twisted_n, outer, inner) == (
            self.two_level_points(run_twisted, outer, inner)
        )


class TestThreeLevels:
    def spec(self, sizes=(5, 4, 3)):
        return MultiLevelSpec(roots=[balanced_tree(s) for s in sizes])

    def test_original_covers_cross_product(self):
        recorder = PointRecorder()
        run_original_n(self.spec(), instrument=recorder)
        assert len(recorder.points) == 60
        assert len(set(recorder.points)) == 60

    def test_original_is_lexicographic(self):
        recorder = PointRecorder()
        run_original_n(self.spec((2, 2, 2)), instrument=recorder)
        # Dimension 0 outermost, each dimension in pre-order.
        assert recorder.points[0] == (0, 0, 0)
        assert recorder.points[1] == (0, 0, 1)
        assert recorder.points[2] == (0, 1, 0)

    def test_twisted_covers_cross_product(self):
        original, twisted = PointRecorder(), PointRecorder()
        spec = self.spec((7, 7, 7))
        run_original_n(spec, instrument=original)
        run_twisted_n(spec, instrument=twisted)
        assert sorted(twisted.points) == sorted(original.points)
        assert twisted.points != original.points  # it really reorders

    def test_per_dimension_order_preserved(self):
        # For any fixed setting of the other dims, each dimension's
        # positions appear in pre-order (the soundness invariant).
        spec = self.spec((5, 4, 3))
        original, twisted = PointRecorder(), PointRecorder()
        run_original_n(spec, instrument=original)
        run_twisted_n(spec, instrument=twisted)
        for dim in range(3):
            groups_o, groups_t = {}, {}
            for point in original.points:
                key = point[:dim] + point[dim + 1 :]
                groups_o.setdefault(key, []).append(point[dim])
            for point in twisted.points:
                key = point[:dim] + point[dim + 1 :]
                groups_t.setdefault(key, []).append(point[dim])
            assert groups_o == groups_t

    def test_truncation_per_dimension(self):
        spec = MultiLevelSpec(
            roots=[balanced_tree(7), balanced_tree(7), balanced_tree(7)],
            truncates=[
                lambda n: False,
                lambda n: n.label == 1,  # prune subtree of node 1 in dim 1
                lambda n: False,
            ],
        )
        original, twisted = PointRecorder(), PointRecorder()
        run_original_n(spec, instrument=original)
        run_twisted_n(spec, instrument=twisted)
        assert sorted(original.points) == sorted(twisted.points)
        pruned_dim1 = {p[1] for p in original.points}
        assert 1 not in pruned_dim1
        assert 3 not in pruned_dim1  # descendant implicitly pruned

    def test_single_dimension_degenerates_to_walk(self):
        spec = MultiLevelSpec(roots=[balanced_tree(7)])
        for run in (run_original_n, run_twisted_n):
            recorder = PointRecorder()
            run(spec, instrument=recorder)
            assert recorder.points == [(k,) for k in [0, 1, 3, 4, 2, 5, 6]]

    def test_four_dimensions(self):
        spec = MultiLevelSpec(roots=[balanced_tree(3)] * 4)
        original, twisted = PointRecorder(), PointRecorder()
        run_original_n(spec, instrument=original)
        run_twisted_n(spec, instrument=twisted)
        assert sorted(original.points) == sorted(twisted.points)
        assert len(original.points) == 81

    def test_op_counter(self):
        ops = OpCounterN()
        run_twisted_n(self.spec((3, 3, 3)), instrument=ops)
        assert ops.work_points == 27
        assert ops.counts["size_compare"] > 0

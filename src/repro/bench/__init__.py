"""Benchmark harness: workloads, runner, reporting, experiment drivers.

* :mod:`repro.bench.workloads` — the six Section 6.1 benchmarks as
  :class:`BenchmarkCase` objects (scaled inputs);
* :mod:`repro.bench.machine` — the simulated evaluation machine;
* :mod:`repro.bench.runner` — instrumented execution → perf reports;
* :mod:`repro.bench.reporting` — ASCII experiment tables;
* :mod:`repro.bench.experiments` — one driver per paper figure/table;
* :mod:`repro.bench.wallclock` — real-time recursive vs batched
  backend comparison (emits ``BENCH_batched.json``).
"""

from repro.bench.machine import bench_hierarchy
from repro.bench.reporting import ExperimentReport, ascii_bar, percent
from repro.bench.runner import run_case, run_pair
from repro.bench.wallclock import run_wallclock, time_backend, write_bench_json
from repro.bench.workloads import (
    BenchmarkCase,
    all_cases,
    make_knn,
    make_mm,
    make_nn,
    make_pc,
    make_tj,
    make_vp,
    register_spatial_layout,
)

__all__ = [
    "BenchmarkCase",
    "ExperimentReport",
    "all_cases",
    "ascii_bar",
    "bench_hierarchy",
    "make_knn",
    "make_mm",
    "make_nn",
    "make_pc",
    "make_tj",
    "make_vp",
    "percent",
    "register_spatial_layout",
    "run_case",
    "run_pair",
    "run_wallclock",
    "time_backend",
    "write_bench_json",
]

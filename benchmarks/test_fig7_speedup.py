"""Bench target: Figure 7 — speedup of twisting on all six benchmarks.

Paper: 1.77x (VP) to 10.88x (PC), geomean 3.94x.  Shape asserted here:
every benchmark speeds up; VP is the smallest win (compute-bound, CPI
0.93); the dual-tree maximum is PC (memory-bound, CPI 6.7); the
geometric mean lands in the paper's band.
"""

import pytest

from benchmarks.conftest import register_report
from repro.bench.experiments import fig7_report, run_fig7
from repro.memory.counters import geomean_speedup, speedup


def test_fig7_speedup(benchmark, bench_scale, shared_store):
    data = benchmark.pedantic(
        run_fig7, kwargs={"scale": bench_scale}, rounds=1, iterations=1
    )
    shared_store["fig7"] = data
    register_report(fig7_report(data), "fig7_speedup.txt")

    speedups = {name: speedup(b, t) for name, (b, t) in data.items()}
    # Everybody wins.
    for name, value in speedups.items():
        assert value > 1.0, (name, value)
    if bench_scale >= 1.0:
        # Paper ordering: VP is the smallest dual-tree win (compute
        # bound); PC the largest (memory bound).
        assert speedups["VP"] == min(
            speedups[n] for n in ("PC", "NN", "KNN", "VP")
        )
        assert speedups["PC"] == max(
            speedups[n] for n in ("PC", "NN", "KNN", "VP")
        )
        # Geomean in the paper's band (paper: 3.94x).
        gm = geomean_speedup(list(data.values()))
        assert 2.0 < gm < 8.0
    # Results identical across schedules.
    for name, (baseline, twisted) in data.items():
        if isinstance(baseline.result, float):
            assert baseline.result == pytest.approx(twisted.result), name
        else:
            assert baseline.result == twisted.result, name

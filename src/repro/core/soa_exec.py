"""Index-based executors over structure-of-arrays tree storage.

The batched executors (:mod:`repro.core.batched`) removed the
per-``work``-call interpreter overhead but still *traverse* linked
Python objects — every visit chases ``node.children`` and reads
``node.size``/``node.number`` attributes, and every stateful-truncation
barrier degrades the deferred blocks of pruning-heavy traversals
(NN/KNN/VP) to a handful of pairs, which is why those benchmarks
regress under ``backend="batched"``.

These executors traverse *integers* instead: a packed
:class:`~repro.spaces.soa.SoATree` view (built once per root and
cached) gives each run

* pre-order **rank** space, where a subtree is always the contiguous
  run ``[rank, rank + span[rank])`` — whole-subtree dispatch and
  subtree skips are slices and additions, independent of the storage
  linearization;
* plain-list accelerators (sizes, stored numbers, pre-reversed child
  rank lists) that replace attribute chasing in the hot loops;
* layout **positions** (``rank -> position`` under ``preorder``/
  ``bfs``/``veb``), so specs that provide a SoA-native ``work_batch_soa``
  receive gathered *column indices* instead of node objects and can
  vectorize the payload gather itself.

Work dispatch picks one of three modes per run:

``inline``
    ``truncation_observes_work`` specs (dual-tree NN/KNN/VP, KDE)
    execute scalar ``work`` calls at their schedule position.  The
    batched engine must barrier-flush before every stateful
    ``truncateInner2?``, which shreds its blocks; executing inline
    costs nothing extra and keeps the explicit-stack traversal savings
    — this is what removes the NN/KNN/VP regressions.

``positions``
    Specs with ``work_batch_soa`` (and stateless truncation) defer
    layout positions into two integer lists and flush blocks through
    the SoA kernel — no node objects on the hot path at all.

``nodes``
    Everything else reuses :class:`~repro.core.batched.BatchDispatcher`
    (deferred node pairs, ``work_batch`` flushes, per-outer barriers),
    gaining only the cheaper traversal.

The Section 4 flag/counter machinery runs on per-run arrays indexed by
outer rank (a ``bytearray`` of flags, a list of counters) instead of
policy objects over node scratch state — same decisions, same
instrument events, no writes to shared trees (so SoA runs are always
truncation-isolated in the :mod:`repro.core.parallel` sense).

Exactness contract: identical to the batched executors — instrument
event streams are bit-identical to the recursive executors', work
order is preserved, and stateful truncation never observes deferred
state.  The parity suite in ``tests/unit/core/test_soa_exec.py``
asserts event-for-event equality for all benchmarks under flags and
counters, instrumented and not.
"""

from __future__ import annotations

from typing import Optional

from repro.core.batched import (
    DEFAULT_BATCH_SIZE,
    BatchDispatcher,
    _as_prune_list,
    _block_truncation,
)
from repro.core.instruments import NULL_INSTRUMENT, Instrument
from repro.core.spec import INNER_TREE, OUTER_TREE, NestedRecursionSpec, _never
from repro.errors import ScheduleError
from repro.spaces.soa import SoATree, soa_view

#: Work-dispatch modes (documented above); chosen once per run.
_INLINE = "inline"
_POSITIONS = "positions"
_NODES = "nodes"


def _dispatch_mode(spec: NestedRecursionSpec) -> str:
    """Pick the work-dispatch mode for one run (see module docstring)."""
    if (
        spec.truncation_observes_work
        and spec.truncate_inner2 is not None
        and spec.work is not None
    ):
        return _INLINE
    if spec.work_batch_soa is not None and not spec.truncation_observes_work:
        return _POSITIONS
    return _NODES


def dispatch_mode(spec: NestedRecursionSpec) -> str:
    """Public view of the per-run work-dispatch mode.

    The backend-conformance analyzer
    (:mod:`repro.transform.lint.backend`) keys its ``soa`` verdict on
    this: ``inline`` runs the scalar kernel itself (nothing to prove),
    ``positions`` stands or falls with ``work_batch_soa``, and
    ``nodes`` inherits the batched dispatcher's verdict.
    """
    return _dispatch_mode(spec)


def _bulk_eligible(spec: NestedRecursionSpec, ins: Instrument) -> bool:
    """Same fast-path test as the batched engine, SoA kernels included."""
    return (
        ins is NULL_INSTRUMENT
        and spec.truncate_inner2 is None
        and spec.truncate_inner1 is _never
        and spec.truncate_outer is _never
        and (
            spec.work is not None
            or spec.work_batch is not None
            or spec.work_batch_soa is not None
        )
    )


class PositionDispatcher:
    """Deferred (outer, inner) layout positions, flushed as blocks.

    The SoA analog of :class:`~repro.core.batched.BatchDispatcher`:
    pending pairs are two parallel ``int`` lists; a flush hands them —
    with the two packed views — to the spec's ``work_batch_soa``, which
    must be semantically equivalent to calling ``work`` on each
    positioned pair in order.  Only used for stateless-truncation
    specs, so there is no barrier machinery.
    """

    __slots__ = ("fn", "outer", "inner", "batch_size", "_os", "_is")

    def __init__(
        self,
        fn,
        outer: SoATree,
        inner: SoATree,
        batch_size: int = DEFAULT_BATCH_SIZE,
    ) -> None:
        self.fn = fn
        self.outer = outer
        self.inner = inner
        self.batch_size = batch_size
        self._os: list[int] = []
        self._is: list[int] = []

    def add(self, o_position: int, i_position: int) -> None:
        """Defer one positioned pair."""
        self._os.append(o_position)
        self._is.append(i_position)
        if len(self._os) >= self.batch_size:
            self.flush()

    def flush(self) -> None:
        """Dispatch pending pairs in order; clears the lists in place."""
        if not self._os:
            return
        self.fn(self.outer, self.inner, self._os, self._is)
        del self._os[:]
        del self._is[:]


def run_original_soa(
    spec: NestedRecursionSpec,
    instrument: Optional[Instrument] = None,
    batch_size: int = DEFAULT_BATCH_SIZE,
    order: str = "preorder",
) -> None:
    """SoA counterpart of :func:`repro.core.executors.run_original`.

    ``order`` selects the storage linearization of the packed views;
    the traversal itself runs in rank space and is layout-independent,
    so every order produces identical results and events — only the
    memory-access pattern of the payload gathers changes.
    """
    ins = instrument or NULL_INSTRUMENT
    instrumented = ins is not NULL_INSTRUMENT
    outer = soa_view(spec.outer_root, order)
    inner = soa_view(spec.inner_root, order)
    o_nodes = outer.rank_nodes
    o_kids = outer.rank_children_rev
    i_nodes = inner.rank_nodes
    i_kids = inner.rank_children_rev
    i_number = inner.rank_number
    o_positions = outer.rank_pos_list
    i_positions = inner.rank_pos_list
    truncate_outer = spec.truncate_outer
    truncate_inner1 = spec.truncate_inner1
    truncate_inner2 = spec.truncate_inner2
    work = spec.work
    ins_op = ins.op
    ins_access = ins.access
    ins_work = ins.work

    mode = _dispatch_mode(spec)
    inline = mode is _INLINE
    by_position = mode is _POSITIONS
    if inline:
        dispatcher = None
        needs_barrier = False
    elif by_position:
        dispatcher = PositionDispatcher(
            spec.work_batch_soa, outer, inner, batch_size
        )
        needs_barrier = False
    else:
        dispatcher = BatchDispatcher(spec, batch_size)
        needs_barrier = dispatcher.track_outers and truncate_inner2 is not None
    bulk = _bulk_eligible(spec, ins)
    block_t2 = None if inline else _block_truncation(spec, instrumented)
    inner_count = inner.num_nodes

    outer_stack = [0]
    while outer_stack:
        orank = outer_stack.pop()
        o = o_nodes[orank]
        if instrumented:
            ins_op("call")
            ins_op("trunc_check")
        if truncate_outer(o):
            continue
        if bulk:
            # Whole inner pre-order in one deferred block.
            if by_position:
                pending_os, pending_is = dispatcher._os, dispatcher._is
                pending_os.extend([o_positions[orank]] * inner_count)
                pending_is.extend(i_positions)
                if len(pending_os) >= batch_size:
                    dispatcher.flush()
            else:
                dispatcher.add_many([o] * inner_count, i_nodes)
        elif (
            block_t2 is not None
            and (prune := _as_prune_list(block_t2(o))) is not None
        ):
            _emit_pruned_subtree(
                dispatcher,
                by_position,
                o_positions[orank] if by_position else o,
                0,
                inner,
                prune,
                batch_size,
            )
        else:
            inner_stack = [0]
            while inner_stack:
                irank = inner_stack.pop()
                i = i_nodes[irank]
                if instrumented:
                    ins_op("call")
                    ins_op("trunc_check")
                if truncate_inner1(i):
                    continue
                if instrumented:
                    ins_op("visit")
                if truncate_inner2 is not None:
                    if needs_barrier:
                        dispatcher.barrier(o)
                    if instrumented:
                        ins_op("trunc_check")
                    if truncate_inner2(o, i):
                        continue
                if instrumented:
                    ins_access(INNER_TREE, i)
                    ins_access(OUTER_TREE, o)
                    ins_work(o, i)
                if inline:
                    work(o, i)
                elif by_position:
                    dispatcher.add(o_positions[orank], i_positions[irank])
                else:
                    dispatcher.add(o, i)
                kids = i_kids[irank]
                if kids:
                    inner_stack.extend(kids)
        kids = o_kids[orank]
        if kids:
            outer_stack.extend(kids)
    if dispatcher is not None:
        dispatcher.flush()


def _emit_pruned_subtree(
    dispatcher,
    by_position: bool,
    o,
    irank: int,
    inner: SoATree,
    prune,
    batch_size: int,
) -> None:
    """Emit the inner subtree at ``irank`` under a pre-evaluated prune.

    ``prune`` is the normalized block-truncation result: ``True`` (all
    pruned — nothing to emit), ``False`` (nothing pruned — the whole
    subtree collapses to one contiguous rank-span block, since the
    generic traversal visits it in exactly pre-order), or a list
    indexed by stored inner ``number``.  Appends straight into the
    dispatcher's pending lists, exactly like the batched fast path.
    """
    if prune is True:
        return
    span = inner.rank_span
    end = irank + span[irank]
    if by_position:
        pending_os, pending_is = dispatcher._os, dispatcher._is
        o_key = o
        if prune is False:
            segment = inner.rank_pos_list[irank:end]
            pending_os.extend([o_key] * len(segment))
            pending_is.extend(segment)
        else:
            i_number = inner.rank_number
            i_positions = inner.rank_pos_list
            append_o = pending_os.append
            append_i = pending_is.append
            kids_of = inner.rank_children_rev
            stack = [irank]
            while stack:
                rank = stack.pop()
                if prune[i_number[rank]]:
                    continue
                append_o(o_key)
                append_i(i_positions[rank])
                kids = kids_of[rank]
                if kids:
                    stack.extend(kids)
    else:
        pending_os, pending_is = dispatcher._os, dispatcher._is
        if prune is False:
            segment = inner.rank_nodes[irank:end]
            pending_os.extend([o] * len(segment))
            pending_is.extend(segment)
        else:
            i_number = inner.rank_number
            i_nodes = inner.rank_nodes
            append_o = pending_os.append
            append_i = pending_is.append
            kids_of = inner.rank_children_rev
            stack = [irank]
            while stack:
                rank = stack.pop()
                if prune[i_number[rank]]:
                    continue
                append_o(o)
                append_i(i_nodes[rank])
                kids = kids_of[rank]
                if kids:
                    stack.extend(kids)
    if len(pending_os) >= batch_size:
        dispatcher.flush()


#: Work-stack tags, matching :mod:`repro.core.batched`.
_CLOSE_PHASE = 0
_VISIT_SWAPPED = 1
_VISIT_REGULAR = 2
_DISPATCH_REGULAR = 3
_DISPATCH_SWAPPED = 4


def _run_twisted_bulk(
    dispatcher,
    by_position: bool,
    outer: SoATree,
    inner: SoATree,
    cutoff: Optional[int],
    batch_size: int,
) -> None:
    """Uninstrumented regular-spec twist, collapsed to emits and pushes.

    Bulk eligibility means no instrument, no truncation predicates, and
    work to dispatch — so the Figure 4(a) state machine loses its
    phases, frames, and per-node predicate calls, and (because subtree
    sizes are static) each child's twist-or-not decision can be
    resolved at *push* time instead of via a dispatch entry popped
    later: the executed (o, i) sequence is identical, only the
    now-unobservable ``size_compare`` timing moves.  This is the hot
    loop behind the TJ/MM twist wall-clock numbers.

    The per-rank value lists double as the emit payload: layout
    positions when dispatching through ``work_batch_soa``, the original
    nodes when dispatching through the node-block engine — the loop
    body is identical either way.
    """
    o_vals = outer.rank_pos_list if by_position else outer.rank_nodes
    i_vals = inner.rank_pos_list if by_position else inner.rank_nodes
    o_size = outer.rank_size
    i_size = inner.rank_size
    o_span = outer.rank_span
    i_span = inner.rank_span
    o_kids = outer.rank_children_rev
    i_kids = inner.rank_children_rev
    pending_os, pending_is = dispatcher._os, dispatcher._is
    append_o = pending_os.append
    append_i = pending_is.append
    extend_o = pending_os.extend
    extend_i = pending_is.extend
    flush = dispatcher.flush
    no_cutoff = cutoff is None

    # Entries: (regular?, outer rank, inner rank); the root tile always
    # starts in regular order.
    stack: list[tuple] = [(True, 0, 0)]
    while stack:
        regular, orank, irank = stack.pop()
        if regular:
            end = irank + i_span[irank]
            if end - irank == 1:
                append_o(o_vals[orank])
                append_i(i_vals[irank])
            else:
                extend_o([o_vals[orank]] * (end - irank))
                extend_i(i_vals[irank:end])
            if len(pending_os) >= batch_size:
                flush()
            size = i_size[irank]
            swap = no_cutoff or size > cutoff
            for child in o_kids[orank]:
                stack.append(
                    (not (swap and o_size[child] <= size), child, irank)
                )
        else:
            end = orank + o_span[orank]
            if end - orank == 1:
                append_o(o_vals[orank])
                append_i(i_vals[irank])
            else:
                extend_o(o_vals[orank:end])
                extend_i([i_vals[irank]] * (end - orank))
            if len(pending_os) >= batch_size:
                flush()
            size = o_size[orank]
            for child in i_kids[irank]:
                stack.append((i_size[child] <= size, orank, child))
    flush()


def run_interchanged_soa(
    spec: NestedRecursionSpec,
    instrument: Optional[Instrument] = None,
    use_counters: bool = False,
    subtree_truncation: bool = False,
    batch_size: int = DEFAULT_BATCH_SIZE,
    order: str = "preorder",
) -> None:
    """SoA counterpart of :func:`repro.core.interchange.run_interchanged`."""
    ins = instrument or NULL_INSTRUMENT
    instrumented = ins is not NULL_INSTRUMENT
    outer = soa_view(spec.outer_root, order)
    inner = soa_view(spec.inner_root, order)
    o_nodes = outer.rank_nodes
    o_kids = outer.rank_children_rev
    i_nodes = inner.rank_nodes
    i_kids = inner.rank_children_rev
    i_number = inner.rank_number
    i_size = inner.rank_size
    o_positions = outer.rank_pos_list
    i_positions = inner.rank_pos_list
    irregular = spec.is_irregular
    truncate_outer = spec.truncate_outer
    truncate_inner1 = spec.truncate_inner1
    truncate_inner2 = spec.truncate_inner2
    work = spec.work
    ins_op = ins.op
    ins_access = ins.access
    ins_work = ins.work

    mode = _dispatch_mode(spec)
    inline = mode is _INLINE
    by_position = mode is _POSITIONS
    if inline:
        dispatcher = None
        needs_barrier = False
    elif by_position:
        dispatcher = PositionDispatcher(
            spec.work_batch_soa, outer, inner, batch_size
        )
        needs_barrier = False
    else:
        dispatcher = BatchDispatcher(spec, batch_size)
        needs_barrier = dispatcher.track_outers and irregular
    use_flags = irregular and not use_counters
    flags = bytearray(outer.num_nodes) if use_flags else None
    counters = [-1] * outer.num_nodes if irregular and use_counters else None
    bulk = _bulk_eligible(spec, ins)
    outer_count = outer.num_nodes

    # Entries: (tag, inner rank, phase frame of flagged outer ranks).
    stack: list[tuple] = [(_VISIT_SWAPPED, 0, None)]
    while stack:
        tag, irank, frame = stack.pop()
        if tag == _CLOSE_PHASE:
            if frame:
                for flagged in frame:
                    if instrumented:
                        ins_op("flag_unset")
                    flags[flagged] = 0
            continue
        i = i_nodes[irank]
        if instrumented:
            ins_op("call")
            ins_op("trunc_check")
        if truncate_inner1(i):
            continue
        frame = [] if use_flags else None
        if counters is not None:
            number = i_number[irank]
            if number < 0:
                raise ScheduleError(
                    "counter truncation requires pre-order numbering on the "
                    "inner tree; build trees via repro.spaces (finalize_tree)"
                )
            boundary = number + i_size[irank]
        if bulk:
            if by_position:
                pending_os, pending_is = dispatcher._os, dispatcher._is
                pending_os.extend(o_positions)
                pending_is.extend([i_positions[irank]] * outer_count)
                if len(pending_os) >= batch_size:
                    dispatcher.flush()
            else:
                dispatcher.add_many(o_nodes, [i] * outer_count)
            all_truncated = False
        else:
            all_truncated = True
            outer_stack = [0]
            while outer_stack:
                orank = outer_stack.pop()
                o = o_nodes[orank]
                if instrumented:
                    ins_op("call")
                    ins_op("trunc_check")
                if truncate_outer(o):
                    continue
                if instrumented:
                    ins_op("visit")
                if irregular:
                    if needs_barrier:
                        dispatcher.barrier(o)
                    # check_and_mark, inlined over rank-indexed state.
                    if use_flags:
                        if instrumented:
                            ins_op("flag_check")
                        if flags[orank]:
                            skipped = True
                        else:
                            if instrumented:
                                ins_op("trunc_check")
                            if truncate_inner2(o, i):
                                if instrumented:
                                    ins_op("flag_set")
                                flags[orank] = 1
                                frame.append(orank)
                                skipped = True
                            else:
                                skipped = False
                    else:
                        if instrumented:
                            ins_op("counter_check")
                        if number < counters[orank]:
                            skipped = True
                        else:
                            if instrumented:
                                ins_op("trunc_check")
                            if truncate_inner2(o, i):
                                if instrumented:
                                    ins_op("counter_set")
                                counters[orank] = boundary
                                skipped = True
                            else:
                                skipped = False
                else:
                    skipped = False
                if not skipped:
                    if instrumented:
                        ins_access(INNER_TREE, i)
                        ins_access(OUTER_TREE, o)
                        ins_work(o, i)
                    if inline:
                        work(o, i)
                    elif by_position:
                        dispatcher.add(o_positions[orank], i_positions[irank])
                    else:
                        dispatcher.add(o, i)
                    all_truncated = False
                kids = o_kids[orank]
                if kids:
                    outer_stack.extend(kids)
        stack.append((_CLOSE_PHASE, -1, frame))
        if not (subtree_truncation and all_truncated):
            for child in i_kids[irank]:
                stack.append((_VISIT_SWAPPED, child, None))
    if dispatcher is not None:
        dispatcher.flush()


def run_twisted_soa(
    spec: NestedRecursionSpec,
    instrument: Optional[Instrument] = None,
    cutoff: Optional[int] = None,
    use_counters: bool = False,
    subtree_truncation: bool = True,
    batch_size: int = DEFAULT_BATCH_SIZE,
    order: str = "preorder",
) -> None:
    """SoA counterpart of :func:`repro.core.twisting.run_twisted`.

    The full Figure 4(a) state machine over ranks: size comparisons
    read the stored-size list, tile dispatch pushes integer ranks, and
    the Section 4 flag/counter machinery runs on per-run arrays.
    """
    ins = instrument or NULL_INSTRUMENT
    instrumented = ins is not NULL_INSTRUMENT
    outer = soa_view(spec.outer_root, order)
    inner = soa_view(spec.inner_root, order)
    o_nodes = outer.rank_nodes
    o_kids = outer.rank_children_rev
    o_size = outer.rank_size
    i_nodes = inner.rank_nodes
    i_kids = inner.rank_children_rev
    i_size = inner.rank_size
    i_number = inner.rank_number
    o_positions = outer.rank_pos_list
    i_positions = inner.rank_pos_list
    irregular = spec.is_irregular
    truncate_outer = spec.truncate_outer
    truncate_inner1 = spec.truncate_inner1
    truncate_inner2 = spec.truncate_inner2
    work = spec.work
    ins_op = ins.op
    ins_access = ins.access
    ins_work = ins.work

    mode = _dispatch_mode(spec)
    inline = mode is _INLINE
    by_position = mode is _POSITIONS
    if inline:
        dispatcher = None
        needs_barrier = False
    elif by_position:
        dispatcher = PositionDispatcher(
            spec.work_batch_soa, outer, inner, batch_size
        )
        needs_barrier = False
    else:
        dispatcher = BatchDispatcher(spec, batch_size)
        needs_barrier = dispatcher.track_outers and irregular
    use_flags = irregular and not use_counters
    flags = bytearray(outer.num_nodes) if use_flags else None
    counters = [-1] * outer.num_nodes if irregular and use_counters else None
    bulk = _bulk_eligible(spec, ins)
    if bulk:
        # Bulk eligibility rules out the inline mode (it needs a
        # ``truncateInner2?``), every predicate, and instrumentation —
        # the whole state machine below collapses to the tight loop.
        _run_twisted_bulk(
            dispatcher, by_position, outer, inner, cutoff, batch_size
        )
        return
    block_t2 = None if inline else _block_truncation(spec, instrumented)
    # Block decisions are memoized per outer rank: an outer node's
    # regular phases recur across many tiles.
    prune_cache: dict[int, object] = {}

    # Entries: (tag, outer rank, inner rank, phase frame).
    stack: list[tuple] = [(_VISIT_REGULAR, 0, 0, None)]
    while stack:
        tag, orank, irank, frame = stack.pop()
        if tag == _CLOSE_PHASE:
            if frame:
                for flagged in frame:
                    if instrumented:
                        ins_op("flag_unset")
                    flags[flagged] = 0
            continue
        if tag == _DISPATCH_REGULAR:
            if instrumented:
                ins_op("size_compare")
            if o_size[orank] <= i_size[irank] and (
                cutoff is None or i_size[irank] > cutoff
            ):
                if instrumented:
                    ins_op("twist")
                tag = _VISIT_SWAPPED
            else:
                tag = _VISIT_REGULAR
        elif tag == _DISPATCH_SWAPPED:
            if instrumented:
                ins_op("size_compare")
            if i_size[irank] <= o_size[orank]:
                if instrumented:
                    ins_op("twist")
                tag = _VISIT_REGULAR
            else:
                tag = _VISIT_SWAPPED
        if tag == _VISIT_REGULAR:
            o = o_nodes[orank]
            if instrumented:
                ins_op("call")
                ins_op("trunc_check")
            if truncate_outer(o):
                continue
            subtree_done = False
            if irregular:
                # subtree_truncated, inlined: a mark set by an
                # enclosing swapped phase covers this whole inner
                # subtree for ``o``.
                if use_flags:
                    if instrumented:
                        ins_op("flag_check")
                    subtree_done = bool(flags[orank])
                else:
                    if instrumented:
                        ins_op("counter_check")
                    subtree_done = i_number[irank] < counters[orank]
            if subtree_done:
                pass
            elif block_t2 is not None and (
                prune := (
                    prune_cache[orank]
                    if orank in prune_cache
                    else prune_cache.setdefault(
                        orank, _as_prune_list(block_t2(o))
                    )
                )
            ) is not None:
                _emit_pruned_subtree(
                    dispatcher,
                    by_position,
                    o_positions[orank] if by_position else o,
                    irank,
                    inner,
                    prune,
                    batch_size,
                )
            else:
                inner_stack = [irank]
                while inner_stack:
                    irank2 = inner_stack.pop()
                    i2 = i_nodes[irank2]
                    if instrumented:
                        ins_op("call")
                        ins_op("trunc_check")
                    if truncate_inner1(i2):
                        continue
                    if instrumented:
                        ins_op("visit")
                    if irregular:
                        if needs_barrier:
                            dispatcher.barrier(o)
                        if instrumented:
                            ins_op("trunc_check")
                        if truncate_inner2(o, i2):
                            continue
                    if instrumented:
                        ins_access(INNER_TREE, i2)
                        ins_access(OUTER_TREE, o)
                        ins_work(o, i2)
                    if inline:
                        work(o, i2)
                    elif by_position:
                        dispatcher.add(
                            o_positions[orank], i_positions[irank2]
                        )
                    else:
                        dispatcher.add(o, i2)
                    kids = i_kids[irank2]
                    if kids:
                        inner_stack.extend(kids)
            for child in o_kids[orank]:
                stack.append((_DISPATCH_REGULAR, child, irank, None))
        else:  # _VISIT_SWAPPED
            i = i_nodes[irank]
            if instrumented:
                ins_op("call")
                ins_op("trunc_check")
            if truncate_inner1(i):
                continue
            frame = [] if use_flags else None
            if counters is not None:
                number = i_number[irank]
                if number < 0:
                    raise ScheduleError(
                        "counter truncation requires pre-order numbering on "
                        "the inner tree; build trees via repro.spaces "
                        "(finalize_tree)"
                    )
                boundary = number + i_size[irank]
            all_truncated = True
            outer_stack = [orank]
            while outer_stack:
                orank2 = outer_stack.pop()
                o2 = o_nodes[orank2]
                if instrumented:
                    ins_op("call")
                    ins_op("trunc_check")
                if truncate_outer(o2):
                    continue
                if instrumented:
                    ins_op("visit")
                if irregular:
                    if needs_barrier:
                        dispatcher.barrier(o2)
                    if use_flags:
                        if instrumented:
                            ins_op("flag_check")
                        if flags[orank2]:
                            skipped = True
                        else:
                            if instrumented:
                                ins_op("trunc_check")
                            if truncate_inner2(o2, i):
                                if instrumented:
                                    ins_op("flag_set")
                                flags[orank2] = 1
                                frame.append(orank2)
                                skipped = True
                            else:
                                skipped = False
                    else:
                        if instrumented:
                            ins_op("counter_check")
                        if number < counters[orank2]:
                            skipped = True
                        else:
                            if instrumented:
                                ins_op("trunc_check")
                            if truncate_inner2(o2, i):
                                if instrumented:
                                    ins_op("counter_set")
                                counters[orank2] = boundary
                                skipped = True
                            else:
                                skipped = False
                else:
                    skipped = False
                if not skipped:
                    if instrumented:
                        ins_access(INNER_TREE, i)
                        ins_access(OUTER_TREE, o2)
                        ins_work(o2, i)
                    if inline:
                        work(o2, i)
                    elif by_position:
                        dispatcher.add(
                            o_positions[orank2], i_positions[irank]
                        )
                    else:
                        dispatcher.add(o2, i)
                    all_truncated = False
                kids = o_kids[orank2]
                if kids:
                    outer_stack.extend(kids)
            stack.append((_CLOSE_PHASE, -1, -1, frame))
            if not (subtree_truncation and all_truncated):
                for child in i_kids[irank]:
                    stack.append((_DISPATCH_SWAPPED, orank, child, None))
    if dispatcher is not None:
        dispatcher.flush()

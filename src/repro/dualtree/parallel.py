"""Parallel plans and the worker factory for the dual-tree benchmarks.

Spatial nodes carry bound objects (hyperrectangles, balls) that cannot
cross a process boundary as typed columns, so — unlike TJ/MM, which
ship packed SoA trees — the dual-tree plans share the *point arrays*
and have each worker rebuild its trees with the deterministic builders
(:func:`~repro.dualtree.kdtree.build_kdtree` median-by-argpartition,
:func:`~repro.dualtree.vptree.build_vptree` with a fixed seed): same
input bits in, bit-identical trees out, so task descriptors indexed by
outer pre-order rank resolve to the same query subtrees the parent
spawned.

Result write-back follows each algorithm's state shape:

* **PC** — the pair count is a commutative integer reduction: one
  private ``sum`` column per worker, reduced exactly in the parent;
* **NN** — ``best_dist``/``best_id`` are per-query slots: the worker's
  rules are pointed *at the shared columns directly* (each query leaf
  belongs to exactly one task, so writes and bound reads stay within
  one worker — the property the independence witness proves);
* **KNN/VP** — candidate lists are Python state, so each worker runs on
  private rules and its ``finish`` hook flushes exactly the query rows
  its tasks own into the shared ``ids``/``dists`` columns; the parent
  rebuilds lists and ``kth_dist`` from those columns, reproducing the
  serial state bit for bit.
"""

from __future__ import annotations

import numpy as np

from repro.dualtree.kdtree import build_kdtree
from repro.dualtree.rules import (
    KNearestNeighborRules,
    NearestNeighborRules,
    PointCorrelationRules,
)
from repro.dualtree.spatial import SpatialTree
from repro.dualtree.traverser import dual_tree_footprint, dual_tree_spec
from repro.dualtree.vptree import build_vptree
from repro.errors import ScheduleError

#: Probe sizes for the independence witnesses — big enough to exercise
#: real pruning, small enough that the one cached run per family is
#: negligible.
_PROBE_POINTS = 192


def _build(kind: str, points: np.ndarray, leaf_size: int) -> SpatialTree:
    if kind == "kd":
        return build_kdtree(points, leaf_size)
    if kind == "vp":
        return build_vptree(points, leaf_size)
    raise ScheduleError(f"unknown spatial tree kind {kind!r}")


def _owned_queries(tree: SpatialTree, ran: list) -> np.ndarray:
    """Query ids owned by a chunk's executed tasks.

    Single-node-view tasks are internal query nodes — they truncate at
    the reference root and own no per-query state; subtree tasks own
    the contiguous index slice of their root.
    """
    rows: list[int] = []
    for node, is_view in ran:
        if is_view:
            continue
        rows.extend(int(q) for q in tree.indices[node.start : node.end])
    return np.array(rows, dtype=np.intp)


def parallel_worker(arrays: dict, params: dict, results: dict):
    """Worker factory for PC/NN/KNN/VP (see ``ParallelPlan.factory``).

    ``params["algo"]`` discriminates the family; trees are rebuilt from
    the shared point arrays with the family's deterministic builder.
    """
    algo = params["algo"]
    leaf_size = params["leaf_size"]
    if algo == "pc":
        points = arrays["points"]
        query_tree = build_kdtree(points, leaf_size)
        reference_tree = build_kdtree(points, leaf_size)
        rules = PointCorrelationRules(query_tree, reference_tree, params["radius"])
        spec = dual_tree_spec(query_tree, reference_tree, rules, name="PC")

        def finish(ran: list) -> None:
            results["count"][0] += rules.count

        return spec, finish

    kind = "vp" if algo == "vp" else "kd"
    query_tree = _build(kind, arrays["queries"], leaf_size)
    reference_tree = _build(kind, arrays["references"], leaf_size)
    if algo == "nn":
        rules = NearestNeighborRules(
            query_tree, reference_tree, exclude_self=params["exclude_self"]
        )
        # Point the per-query state at the shared columns: every slot
        # is read and written only by the one task owning its query
        # leaf, so in-place writes are race-free and bit-identical.
        rules.best_dist = results["best_dist"]
        rules.best_id = results["best_id"]
        return dual_tree_spec(query_tree, reference_tree, rules, name="NN")

    if algo not in ("knn", "vp"):
        raise ScheduleError(f"unknown dual-tree parallel algo {algo!r}")
    rules = KNearestNeighborRules(
        query_tree,
        reference_tree,
        params["k"],
        exclude_self=params["exclude_self"],
    )
    spec = dual_tree_spec(
        query_tree, reference_tree, rules, name=algo.upper()
    )

    def finish(ran: list) -> None:
        owned = _owned_queries(query_tree, ran)
        if len(owned) == 0:
            return
        results["ids"][owned] = rules.neighbor_ids()[owned]
        results["dists"][owned] = rules.neighbor_dists()[owned]

    return spec, finish


def _probe_points(seed: int) -> np.ndarray:
    from repro.spaces.points import clustered_points

    return clustered_points(_PROBE_POINTS, clusters=6, spread=0.08, seed=seed)


def pc_plan(pc):
    """Parallel plan for a :class:`~repro.dualtree.algorithms.PointCorrelation`."""
    from repro.core.parallel_exec import ParallelPlan
    from repro.spaces.soa import ResultColumn

    def apply(results: dict) -> None:
        pc.rules.count = int(results["count"][0])

    def make_probe():
        points = _probe_points(seed=101)
        query_tree = build_kdtree(points, pc.leaf_size)
        reference_tree = build_kdtree(points, pc.leaf_size)
        rules = PointCorrelationRules(query_tree, reference_tree, pc.radius)
        spec = dual_tree_spec(query_tree, reference_tree, rules, name="PC-probe")
        return spec, dual_tree_footprint(rules)

    return ParallelPlan(
        factory="repro.dualtree.parallel:parallel_worker",
        arrays={"points": pc.points},
        params={"algo": "pc", "radius": pc.radius, "leaf_size": pc.leaf_size},
        results=(ResultColumn("count", (1,), "int64", "sum"),),
        apply=apply,
        make_probe=make_probe,
        witness_key="dualtree-pc",
    )


def nn_plan(nn):
    """Parallel plan for a :class:`~repro.dualtree.algorithms.NearestNeighbor`."""
    from repro.core.parallel_exec import ParallelPlan
    from repro.spaces.soa import ResultColumn

    num_queries = nn.query_tree.num_points

    def apply(results: dict) -> None:
        np.copyto(nn.rules.best_dist, results["best_dist"])
        np.copyto(nn.rules.best_id, results["best_id"])

    def make_probe():
        queries = _probe_points(seed=103)
        references = _probe_points(seed=104)
        query_tree = build_kdtree(queries, nn.leaf_size)
        reference_tree = build_kdtree(references, nn.leaf_size)
        rules = NearestNeighborRules(
            query_tree, reference_tree, exclude_self=nn.exclude_self
        )
        spec = dual_tree_spec(query_tree, reference_tree, rules, name="NN-probe")
        return spec, dual_tree_footprint(rules)

    return ParallelPlan(
        factory="repro.dualtree.parallel:parallel_worker",
        arrays={"queries": nn.queries, "references": nn.references},
        params={
            "algo": "nn",
            "leaf_size": nn.leaf_size,
            "exclude_self": nn.exclude_self,
        },
        results=(
            ResultColumn(
                "best_dist", (num_queries,), "float64", "shared", fill=np.inf
            ),
            ResultColumn("best_id", (num_queries,), "int64", "shared", fill=-1),
        ),
        apply=apply,
        make_probe=make_probe,
        witness_key="dualtree-nn",
    )


def knn_plan(knn, algo: str):
    """Parallel plan for KNN (``algo="knn"``, kd-trees) or VP (vp-trees)."""
    from repro.core.parallel_exec import ParallelPlan
    from repro.spaces.soa import ResultColumn

    num_queries = knn.query_tree.num_points
    k = knn.k
    kind = "vp" if algo == "vp" else "kd"

    def apply(results: dict) -> None:
        rules = knn.rules
        ids = results["ids"]
        dists = results["dists"]
        for query in range(num_queries):
            entries = []
            for position in range(k):
                reference = int(ids[query, position])
                if reference < 0:
                    break
                entries.append((float(dists[query, position]), reference))
            rules.neighbors[query] = entries
            rules.kth_dist[query] = (
                entries[-1][0] if len(entries) >= k else np.inf
            )

    def make_probe():
        queries = _probe_points(seed=105)
        references = _probe_points(seed=106)
        query_tree = _build(kind, queries, knn.leaf_size)
        reference_tree = _build(kind, references, knn.leaf_size)
        rules = KNearestNeighborRules(
            query_tree, reference_tree, k, exclude_self=knn.exclude_self
        )
        spec = dual_tree_spec(
            query_tree, reference_tree, rules, name=f"{algo.upper()}-probe"
        )
        return spec, dual_tree_footprint(rules)

    return ParallelPlan(
        factory="repro.dualtree.parallel:parallel_worker",
        arrays={"queries": knn.queries, "references": knn.references},
        params={
            "algo": algo,
            "k": k,
            "leaf_size": knn.leaf_size,
            "exclude_self": knn.exclude_self,
        },
        results=(
            ResultColumn("ids", (num_queries, k), "int64", "shared", fill=-1),
            ResultColumn(
                "dists", (num_queries, k), "float64", "shared", fill=np.inf
            ),
        ),
        apply=apply,
        make_probe=make_probe,
        witness_key=f"dualtree-{algo}",
    )

"""Bench target: the Section 7.3 parallelism extension.

The paper sketches but does not evaluate task-parallel twisting; this
target realizes the sketch.  Shape asserted: parallel speedup grows
with workers (bounded by the worker count), and the twisted tasks'
locality win holds at every worker count.
"""

from benchmarks.conftest import register_report
from repro.bench.experiments import run_sec73


def test_sec73_parallel(benchmark, bench_scale):
    num_nodes = max(200, int(500 * bench_scale))
    report, data = benchmark.pedantic(
        run_sec73, kwargs={"num_nodes": num_nodes}, rounds=1, iterations=1
    )
    register_report(report, "sec73_parallel.txt")

    worker_counts = sorted(data)
    # Parallel speedup grows with workers and respects the bound.
    previous = 0.0
    for workers in worker_counts:
        twisted = data[workers]["twisted"]
        assert twisted.parallel_speedup <= workers + 1e-9
        assert twisted.parallel_speedup >= previous * 0.95  # near-monotone
        previous = twisted.parallel_speedup
    # The locality win composes with parallelism at every width.
    for workers in worker_counts:
        original = data[workers]["original"]
        twisted = data[workers]["twisted"]
        assert original.makespan / twisted.makespan > 1.5, workers

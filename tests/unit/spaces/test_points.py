"""Unit tests for the synthetic point-set generators."""

import numpy as np
import pytest

from repro.spaces import annulus_points, clustered_points, grid_points, uniform_points


class TestUniform:
    def test_shape_and_range(self):
        pts = uniform_points(100, dim=3, seed=1)
        assert pts.shape == (100, 3)
        assert pts.min() >= 0.0 and pts.max() < 1.0

    def test_scale(self):
        pts = uniform_points(500, seed=1, scale=4.0)
        assert pts.max() > 1.5  # almost surely

    def test_deterministic(self):
        assert np.array_equal(uniform_points(10, seed=2), uniform_points(10, seed=2))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            uniform_points(0)


class TestClustered:
    def test_shape(self):
        pts = clustered_points(64, dim=2, clusters=4, seed=0)
        assert pts.shape == (64, 2)

    def test_clusters_are_tight(self):
        # With tiny spread, points concentrate near <=4 centers: the
        # mean nearest-neighbor distance is far below uniform's.
        pts = clustered_points(200, clusters=4, spread=0.001, seed=3)
        diffs = np.sqrt(((pts[:, None] - pts[None, :]) ** 2).sum(-1))
        np.fill_diagonal(diffs, np.inf)
        assert np.median(diffs.min(axis=1)) < 0.01

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            clustered_points(0)
        with pytest.raises(ValueError):
            clustered_points(10, clusters=0)


class TestGrid:
    def test_exact_grid(self):
        pts = grid_points(4, dim=2)
        assert pts.shape == (16, 2)
        assert sorted(set(pts[:, 0])) == [0.0, 0.25, 0.5, 0.75]

    def test_jitter_perturbs(self):
        flat = grid_points(3)
        noisy = grid_points(3, jitter=0.01, seed=1)
        assert not np.array_equal(flat, noisy)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            grid_points(0)


class TestAnnulus:
    def test_radii_within_band(self):
        pts = annulus_points(300, inner=0.2, outer=0.4, seed=2)
        radii = np.sqrt(((pts - 0.5) ** 2).sum(axis=1))
        assert radii.min() >= 0.2 - 1e-9
        assert radii.max() <= 0.4 + 1e-9

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            annulus_points(0)

"""The cost-model validation gate: direction checks per payload shape."""

import json

import pytest

from repro.bench import cost_validate
from repro.bench.cost_validate import (
    DIRECTION_FACTOR,
    main,
    validate_parallel,
    validate_payload,
    validate_wallclock,
)


def wallclock_payload(**entry_overrides):
    entry = {
        "benchmark": "TJ",
        "schedule": "original",
        "timings": {"recursive": 4.0, "soa": 1.0, "auto": 1.0},
    }
    entry.update(entry_overrides)
    return {"scale": 0.05, "results": [entry]}


@pytest.fixture
def predict_soa(monkeypatch):
    monkeypatch.setattr(
        cost_validate, "_predict_backend", lambda spec, schedule: "soa"
    )


class TestWallclockValidation:
    def test_correct_direction_passes(self, predict_soa):
        result = validate_wallclock(wallclock_payload(), "p.json")
        assert [row.correct for row in result.rows] == [True]
        assert result.rows[0].predicted == "soa"
        assert result.rows[0].measured_best == "soa"

    def test_wrong_direction_beyond_the_factor_is_a_miss(self, predict_soa):
        payload = wallclock_payload(
            timings={"recursive": 1.0, "soa": 2.0, "auto": 1.0}
        )
        result = validate_wallclock(payload, "p.json")
        row = result.rows[0]
        assert not row.correct
        assert row.ratio == 2.0

    def test_near_miss_within_the_factor_still_counts(self, predict_soa):
        payload = wallclock_payload(
            timings={"recursive": 1.0, "soa": DIRECTION_FACTOR - 0.1}
        )
        result = validate_wallclock(payload, "p.json")
        assert result.rows[0].correct

    def test_unmeasured_prediction_falls_back_down_the_chain(
        self, monkeypatch
    ):
        monkeypatch.setattr(
            cost_validate, "_predict_backend", lambda spec, schedule: "compiled"
        )
        result = validate_wallclock(wallclock_payload(), "p.json")
        row = result.rows[0]
        assert row.predicted == "compiled"
        assert row.mapped == "soa"
        assert row.correct

    def test_unknown_benchmark_is_skipped_not_crashed(self, predict_soa):
        payload = wallclock_payload(benchmark="WARP")
        result = validate_wallclock(payload, "p.json")
        assert result.rows == []
        assert any("WARP" in skip for skip in result.skips)

    def test_single_backend_rows_are_skipped(self, predict_soa):
        payload = wallclock_payload(timings={"soa": 1.0, "auto": 1.0})
        result = validate_wallclock(payload, "p.json")
        assert result.rows == []
        assert any("fewer than two" in skip for skip in result.skips)

    def test_scale_cap_is_applied_and_noted(self, predict_soa):
        payload = wallclock_payload()
        payload["scale"] = 1.0
        result = validate_wallclock(payload, "p.json", scale_cap=0.05)
        assert result.rows[0].correct
        assert any("scale-cap" in skip for skip in result.skips)

    def test_real_prediction_on_the_tj_spec(self):
        # No monkeypatching: the live selector predicts the soa family
        # on TJ, which maps onto the measured sweep's winner.
        result = validate_wallclock(wallclock_payload(), "p.json")
        assert result.rows[0].correct


class TestParallelValidation:
    def payload(self, cpu_count, speedup):
        return {
            "host": {"cpu_count": cpu_count},
            "results": [
                {
                    "benchmark": "TJ",
                    "schedule": "original",
                    "runs": [
                        {
                            "engine": "process",
                            "workers": 4,
                            "speedup_vs_serial_soa": speedup,
                        }
                    ],
                }
            ],
        }

    def test_single_core_host_predicting_no_win_is_correct(self):
        result = validate_parallel(self.payload(1, 0.5), "p.json")
        assert result.rows[0].correct

    def test_multicore_host_is_never_falsified_by_a_slow_run(self):
        # A capable host failing to win is a measurement fact, not a
        # model error.
        result = validate_parallel(self.payload(8, 0.5), "p.json")
        assert result.rows[0].correct

    def test_single_core_win_on_a_guarded_benchmark_is_a_miss(self):
        result = validate_parallel(self.payload(1, 2.0), "p.json")
        assert not result.rows[0].correct

    def test_irregular_benchmarks_and_single_worker_runs_are_ignored(self):
        payload = self.payload(1, 0.5)
        payload["results"].append(
            {
                "benchmark": "NN",  # not a floor benchmark
                "schedule": "original",
                "runs": [
                    {"engine": "thread", "workers": 4,
                     "speedup_vs_serial_soa": 3.0}
                ],
            }
        )
        payload["results"][0]["runs"].append(
            {"engine": "process", "workers": 1,
             "speedup_vs_serial_soa": 3.0}  # dispatch noise
        )
        result = validate_parallel(payload, "p.json")
        assert result.rows[0].correct


class TestDispatchAndMain:
    def test_serve_shaped_payloads_are_skipped_with_a_note(self):
        result = validate_payload({"speedup": 6.5}, "BENCH_serve.json")
        assert result.rows == []
        assert any("serve" in skip for skip in result.skips)

    def test_main_passes_within_tolerance(self, tmp_path, predict_soa, capsys):
        path = tmp_path / "BENCH_soa.json"
        path.write_text(json.dumps(wallclock_payload()))
        assert main(["--json", str(path)]) == 0
        assert "passed" in capsys.readouterr().out

    def test_main_fails_beyond_tolerance(self, tmp_path, predict_soa, capsys):
        payload = wallclock_payload(
            timings={"recursive": 1.0, "soa": 9.0}
        )
        path = tmp_path / "BENCH_soa.json"
        path.write_text(json.dumps(payload))
        assert main(["--json", str(path), "--tolerance", "0.25"]) == 1
        assert "FAILED" in capsys.readouterr().out

    def test_main_errors_on_an_explicit_missing_path(self, tmp_path):
        assert main(["--json", str(tmp_path / "absent.json")]) == 2

    def test_main_with_no_payloads_anywhere_passes_vacuously(
        self, tmp_path, monkeypatch, capsys
    ):
        monkeypatch.chdir(tmp_path)
        assert main([]) == 0
        assert "no rows" in capsys.readouterr().out

    def test_emit_json_writes_row_verdicts(self, tmp_path, predict_soa):
        path = tmp_path / "BENCH_soa.json"
        path.write_text(json.dumps(wallclock_payload()))
        out = tmp_path / "COST.json"
        assert main(["--json", str(path), "--emit-json", str(out)]) == 0
        payload = json.loads(out.read_text())
        assert payload["kind"] == "cost-validate"
        assert payload["payloads"][0]["rows"][0]["correct"] is True

    def test_checked_in_payloads_validate_end_to_end(self, capsys):
        """The acceptance bar: the real BENCH_*.json files pass at the
        smoke scale."""
        import os

        assert os.path.exists("BENCH_soa.json"), "run from the repo root"
        assert main(["--scale-cap", "0.1"]) == 0
        assert "passed" in capsys.readouterr().out

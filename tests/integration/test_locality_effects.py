"""Integration tests: the paper's locality claims hold on the simulator.

Qualitative shape assertions — who wins and in which regime — from
Sections 2.2, 3.2, and 6.2.  These run at reduced scale so the full
suite stays fast; the bench harness reruns them at full scale.
"""

import pytest

from repro.bench import bench_hierarchy, make_pc, make_tj, run_case
from repro.core import (
    NestedRecursionSpec,
    ReuseDistanceProbe,
    run_interchanged,
    run_original,
    run_twisted,
)
from repro.core.schedules import INTERCHANGE, ORIGINAL, TWIST
from repro.kernels import TreeJoin
from repro.memory import instruction_overhead, speedup
from repro.spaces import balanced_tree


class TestSection22InterchangeAsymmetry:
    def test_interchange_helps_iff_outer_tree_is_smaller(self):
        # "if the trees are sized so that the outer tree can fit in
        # cache while the inner tree cannot ... the interchanged code
        # ... will have good locality while the original code will not."
        small, large = 40, 600  # vs L3 = 512 lines

        def counters(outer_nodes, inner_nodes, schedule):
            case = make_tj(1)  # placeholder; build TJ manually
            tj = TreeJoin(outer_nodes, inner_nodes)
            from repro.bench.workloads import BenchmarkCase
            from repro.memory import AddressMap, layout_tree
            from repro.memory.costmodel import WorkCost

            def register(amap):
                layout_tree(amap, tj.outer_root, "outer")
                layout_tree(amap, tj.inner_root, "inner")

            case = BenchmarkCase(
                name="TJ*", make_spec=tj.make_spec, register_layout=register,
                work_cost=WorkCost(2.0), result=lambda: tj.result,
            )
            return run_case(case, schedule, bench_hierarchy)

        # Absolute L3 miss counts: local rates are misleading at small
        # scale (an idle L3 sees only compulsory misses, rate ~1.0 —
        # the paper notes the same artifact in Figure 9).
        # Small outer, large inner: interchange wins.
        base = counters(small, large, ORIGINAL)
        swapped = counters(small, large, INTERCHANGE)
        assert swapped.levels["L3"].misses < base.levels["L3"].misses / 4
        # Large outer, small inner: original already good; interchange hurts.
        base2 = counters(large, small, ORIGINAL)
        swapped2 = counters(large, small, INTERCHANGE)
        assert swapped2.levels["L3"].misses > 4 * base2.levels["L3"].misses


class TestSection32TwistingLocality:
    def test_twisting_beats_both_on_equal_large_trees(self):
        case = make_tj(700)  # both trees exceed L3
        base = run_case(case, ORIGINAL, bench_hierarchy)
        swapped = run_case(case, INTERCHANGE, bench_hierarchy)
        twisted = run_case(case, TWIST, bench_hierarchy)
        # Interchange is ineffective on equal trees...
        assert abs(swapped.cycles - base.cycles) / base.cycles < 0.25
        # ...but twisting wins decisively.
        assert speedup(base, twisted) > 2.0
        assert twisted.miss_rate("L3") < base.miss_rate("L3") / 2

    def test_mean_reuse_distance_drops(self):
        tj = TreeJoin(256, 256)
        original, twisted = ReuseDistanceProbe(), ReuseDistanceProbe()
        run_original(tj.make_spec(), instrument=original)
        run_twisted(tj.make_spec(), instrument=twisted)
        assert (
            twisted.analyzer.mean_finite_distance()
            < original.analyzer.mean_finite_distance() / 3
        )

    def test_twisting_targets_all_cache_levels(self):
        # The parameterless claim: L1, L2 AND L3 miss rates all improve.
        case = make_tj(700)
        base = run_case(case, ORIGINAL, bench_hierarchy)
        twisted = run_case(case, TWIST, bench_hierarchy)
        for level in ("L1", "L2", "L3"):
            assert twisted.miss_rate(level) < base.miss_rate(level), level


class TestSection62OverheadStory:
    def test_twisting_adds_instruction_overhead(self):
        case = make_pc(512)
        base = run_case(case, ORIGINAL, bench_hierarchy)
        twisted = run_case(case, TWIST, bench_hierarchy)
        overhead = instruction_overhead(base, twisted)
        assert overhead > 0.0  # twisting is never free

    def test_small_inputs_see_no_speedup(self):
        # The Figure 9 left edge: everything fits in cache, so the
        # overhead dominates and twisting loses.
        case = make_pc(128)
        base = run_case(case, ORIGINAL, bench_hierarchy)
        twisted = run_case(case, TWIST, bench_hierarchy)
        # Fits in cache: almost no accesses reach memory...
        assert base.memory_accesses < 0.1 * base.accesses
        # ...so twisting has nothing to win and its overhead dominates.
        assert speedup(base, twisted) < 1.1

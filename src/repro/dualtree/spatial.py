"""Common machinery for spatial trees (kd and vantage-point).

A :class:`SpatialNode` is an :class:`~repro.spaces.node.IndexNode` (so
every schedule executor applies unchanged) that additionally carries a
bounding volume and — at leaves — the indices of the points it owns.
A :class:`SpatialTree` bundles the node structure with the point array
and the permutation the build produced.

Both tree builders follow the same conventions:

* points are never copied — nodes store index slices into one permuted
  index array;
* leaves own at most ``leaf_size`` points;
* ``finalize_tree`` runs on the root, so sizes (node counts, the
  quantity recursion twisting compares) and pre-order numbers (the
  Section 4.3 counters' requirement) are always available.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.spaces.node import IndexNode, finalize_tree


class SpatialNode(IndexNode):
    """A node of a spatial tree.

    ``bound`` is an :class:`~repro.dualtree.boxes.HRect` or
    :class:`~repro.dualtree.boxes.Ball`.  ``start``/``end`` delimit the
    node's points inside the tree's permuted index array; ``point_ids``
    caches the owned indices as a plain list on leaves (the base-case
    hot path).
    """

    __slots__ = ("bound", "start", "end", "point_ids")

    def __init__(self, bound, start: int, end: int) -> None:
        super().__init__()
        self.bound = bound
        self.start = start
        self.end = end
        self.point_ids: Optional[list[int]] = None

    @property
    def count(self) -> int:
        """Number of points in this node's subtree."""
        return self.end - self.start

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "leaf" if self.is_leaf else "node"
        return f"SpatialNode({kind}, points={self.count}, size={self.size})"


@dataclass
class SpatialTree:
    """A built spatial tree over a point set."""

    #: the (n, d) point array the tree indexes
    points: np.ndarray
    #: root node (sizes and pre-order numbers populated)
    root: SpatialNode
    #: permutation: ``indices[node.start:node.end]`` are the node's points
    indices: np.ndarray
    #: maximum points per leaf used by the build
    leaf_size: int

    @property
    def num_points(self) -> int:
        """Number of indexed points."""
        return int(self.points.shape[0])

    @property
    def num_nodes(self) -> int:
        """Number of tree nodes (the ``size`` of the root)."""
        return self.root.size

    def leaves(self) -> list[SpatialNode]:
        """All leaf nodes, pre-order."""
        return [
            node for node in self.root.iter_preorder() if node.is_leaf
        ]  # type: ignore[misc]

    def validate(self) -> None:
        """Structural invariants, used by tests and the builders.

        Every point appears in exactly one leaf; every node's bound
        contains its points; child slices partition the parent slice.
        """
        seen: list[int] = []
        for node in self.root.iter_preorder():
            assert isinstance(node, SpatialNode)
            owned = self.indices[node.start : node.end]
            for point in self.points[owned]:
                if not _bound_contains(node.bound, point):
                    raise AssertionError(
                        f"point {point} escapes bound {node.bound!r}"
                    )
            if node.is_leaf:
                seen.extend(int(index) for index in owned)
                if node.count > self.leaf_size:
                    raise AssertionError(
                        f"leaf holds {node.count} > leaf_size={self.leaf_size}"
                    )
            else:
                child_span = sum(child.end - child.start for child in node.children)
                if child_span != node.count:
                    raise AssertionError("children do not partition parent")
        if sorted(seen) != list(range(self.num_points)):
            raise AssertionError("leaves do not partition the point set")


def _bound_contains(bound, point) -> bool:
    """Containment check that works for both bound types."""
    from repro.dualtree.boxes import Ball, HRect, point_dist

    if isinstance(bound, HRect):
        # Tolerate floating fuzz at the boundary.
        return all(
            lo - 1e-9 <= coordinate <= hi + 1e-9
            for coordinate, lo, hi in zip(point, bound.mins, bound.maxs)
        )
    if isinstance(bound, Ball):
        return point_dist(point, bound.center) <= bound.radius + 1e-9
    raise TypeError(f"unknown bound type {type(bound)!r}")


def attach_leaf_ids(tree: SpatialTree) -> None:
    """Populate ``point_ids`` on every leaf (called by the builders)."""
    for leaf in tree.leaves():
        leaf.point_ids = [int(index) for index in tree.indices[leaf.start : leaf.end]]


def make_tree(points: np.ndarray, root: SpatialNode, indices: np.ndarray, leaf_size: int) -> SpatialTree:
    """Finalize a built node structure into a :class:`SpatialTree`."""
    finalize_tree(root)
    tree = SpatialTree(points=points, root=root, indices=indices, leaf_size=leaf_size)
    attach_leaf_ids(tree)
    return tree

"""Bench target: Section 4.2 in-text iteration counts on PC.

Paper (100K points): original 1.25G iterations; interchange 5.61G
(4.49x — "it cannot truncate any recursions"); twisting 1.31G (+4%);
twisting + subtree truncation 1.27G (+1.8%).  Shape asserted: the same
strict ordering, with interchange paying a multiple while twisting
pays a fraction, and subtree truncation recovering a further chunk.
"""

from benchmarks.conftest import register_report
from repro.bench.experiments import run_sec42


def test_sec42_workcounts(benchmark, bench_scale):
    num_points = max(256, int(4096 * bench_scale))
    report, counts = benchmark.pedantic(
        run_sec42, kwargs={"num_points": num_points}, rounds=1, iterations=1
    )
    register_report(report, "sec42_workcounts.txt")

    base = counts["original"]
    interchange = counts["interchange"]
    twist = counts["twist (no subtree trunc)"]
    twist_subtree = counts["twist + subtree trunc"]

    # Interchange is forced into (a large fraction of) the full cross
    # product: a multiple of the original.
    assert interchange > 3 * base
    # Twisting pays far less than interchange...
    assert twist < interchange / 2
    # ...and subtree truncation recovers more.
    assert base <= twist_subtree < twist
    # Counters don't change the visit set, only the bookkeeping.
    assert counts["twist + counters"] == twist_subtree

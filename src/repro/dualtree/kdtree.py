"""kd-trees (Bentley 1975), the spatial index of the PC/NN/KNN benchmarks.

The build is the standard median split: at each node, pick the widest
dimension of the node's tight bounding box and partition the points at
the median coordinate.  Nodes carry *tight* bounding hyperrectangles
(recomputed from the actual points, not inherited splits), which gives
``Score`` the strongest conservative pruning.

Splitting uses ``numpy.argpartition`` — O(n) per level, O(n log n)
total — and the recursion is balanced, so tree node sizes halve per
level: exactly the size hierarchy recursion twisting exploits.
"""

from __future__ import annotations

import numpy as np

from repro.dualtree.boxes import HRect
from repro.dualtree.spatial import SpatialNode, SpatialTree, make_tree


def build_kdtree(points: np.ndarray, leaf_size: int = 8) -> SpatialTree:
    """Build a kd-tree over an ``(n, d)`` point array.

    ``leaf_size`` bounds the points per leaf; the paper's dual-tree
    algorithms do their base-case work on leaf pairs, so this knob
    trades tree depth against base-case batch size.
    """
    points = np.asarray(points, dtype=float)
    if points.ndim != 2 or points.shape[0] < 1:
        raise ValueError("points must be a non-empty (n, d) array")
    if leaf_size < 1:
        raise ValueError("leaf_size must be >= 1")
    indices = np.arange(points.shape[0])

    def build(start: int, end: int) -> SpatialNode:
        slice_ids = indices[start:end]
        slice_points = points[slice_ids]
        bound = HRect.of_points(slice_points)
        node = SpatialNode(bound, start, end)
        count = end - start
        if count <= leaf_size:
            return node
        widths = slice_points.max(axis=0) - slice_points.min(axis=0)
        axis = int(np.argmax(widths))
        if widths[axis] == 0.0:
            # All points coincide on every axis; splitting cannot make
            # progress, so keep an oversized leaf (degenerate input).
            return node
        half = count // 2
        order = np.argpartition(slice_points[:, axis], half)
        indices[start:end] = slice_ids[order]
        node.children = (build(start, start + half), build(start + half, end))
        return node

    import sys

    # Builds recurse one level per tree level; generous guard for
    # adversarially unbalanced inputs.
    limit = sys.getrecursionlimit()
    needed = 4 * points.shape[0] + 256
    if needed > limit:
        sys.setrecursionlimit(needed)
    try:
        root = build(0, points.shape[0])
    finally:
        sys.setrecursionlimit(limit)
    return make_tree(points, root, indices, leaf_size)

"""Exception hierarchy for the ``repro`` package.

All library-raised exceptions derive from :class:`ReproError`, so callers
can catch everything the library raises with one ``except`` clause while
still being able to distinguish configuration mistakes from transformation
failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class SpecError(ReproError):
    """A :class:`~repro.core.spec.NestedRecursionSpec` is malformed.

    Raised, for example, when a spec is missing a work function or when a
    node used as a recursion index does not implement the index-node
    protocol (``children``/``size`` attributes).
    """


class ScheduleError(ReproError):
    """A schedule executor was asked to run an unsupported configuration.

    Raised, for example, when the counter optimization of Section 4.3 is
    requested but the inner tree has not been given a pre-order numbering.
    """


class SoundnessError(ReproError):
    """A transformed schedule violated a recorded dependence order."""


class TransformError(ReproError):
    """The source-to-source transformation tool rejected the input code.

    This is the Python analog of the "sanity check" failure in the
    paper's Clang prototype (Section 5): the annotated functions do not
    conform to the nested recursion template of Figure 2.
    """


class MemorySimError(ReproError):
    """A memory-hierarchy simulator component was misconfigured."""

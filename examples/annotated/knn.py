"""k-Nearest Neighbors (KNN, §6.1) as annotated user code for the lint pass.

Like NN but the pruning bound is the distance to the *k-th* best
neighbor found so far, kept on the query node.  Same adaptive shape:
writes are outer-keyed (each query node owns its ``kth`` bound and
neighbor heap), but the guard reads state the work updates, so the
verdict is *needs-dynamic-check* (TW023) rather than a static proof.
The ``o.heap.push(...)`` call is a known-mutating method on an
outer-keyed receiver — inferred as an outer-keyed write, not a hole.
"""

from repro.transform import inner_recursion, outer_recursion

# lint: assume-pure: mindist, kth_best, candidates


@outer_recursion(inner="knn_inner")
def knn_outer(o, i):
    """Outer recursion over the query tree."""
    if o is None:
        return
    knn_inner(o, i)
    knn_outer(o.left, i)
    knn_outer(o.right, i)


@inner_recursion
def knn_inner(o, i):
    """Inner recursion over the data tree, pruned by the k-th bound."""
    if i is None or mindist(o, i) > o.kth:
        return
    o.heap.push(candidates(o, i))
    o.kth = kth_best(o.heap)
    knn_inner(o, i.left)
    knn_inner(o, i.right)

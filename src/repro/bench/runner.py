"""Instrumented benchmark execution: one run → one perf report.

``run_case`` plays the role of one perf-counter-instrumented execution
in the paper's evaluation: it builds the address layout, instantiates a
fresh simulated cache hierarchy, executes the (benchmark, schedule)
pair with op and cache probes attached, and folds everything through
the cost model into a :class:`~repro.memory.counters.PerfReport`.
"""

from __future__ import annotations

from typing import Callable

from repro.bench.workloads import BenchmarkCase
from repro.core.instruments import CacheProbe, OpCounter, combine
from repro.core.schedules import Schedule
from repro.memory.costmodel import (
    DEFAULT_COST_MODEL,
    CostModel,
    weighted_instructions,
)
from repro.memory.counters import PerfReport
from repro.memory.hierarchy import CacheHierarchy, scaled_hierarchy
from repro.memory.layout import AddressMap

HierarchyFactory = Callable[[], CacheHierarchy]


def run_case(
    case: BenchmarkCase,
    schedule: Schedule,
    hierarchy_factory: HierarchyFactory = scaled_hierarchy,
    cost_model: CostModel = DEFAULT_COST_MODEL,
) -> PerfReport:
    """Execute one benchmark under one schedule on a fresh machine."""
    address_map = AddressMap()
    case.register_layout(address_map)
    hierarchy = hierarchy_factory()
    ops = OpCounter()
    cache = CacheProbe(address_map, hierarchy)

    spec = case.make_spec()
    schedule.run(spec, instrument=combine(ops, cache))

    op_counts = dict(ops.counts)
    # Line-level touches carry an addressing cost; logical accesses are
    # already implied by the work/visit structure.
    op_counts["access"] = cache.accesses
    instructions = weighted_instructions(op_counts, ops.work_points, case.work_cost)
    cycles = cost_model.cycles(
        instructions, cache.cache_level_hits, cache.memory_accesses
    )
    return PerfReport(
        benchmark=case.name,
        schedule=schedule.name,
        work_points=ops.counts.get("visit", ops.work_points),
        op_counts=op_counts,
        accesses=cache.accesses,
        levels=hierarchy.stats_by_name(),
        memory_accesses=cache.memory_accesses,
        instructions=instructions,
        cycles=cycles,
        result=case.result(),
    )


def run_pair(
    case_factory: Callable[[], BenchmarkCase],
    baseline: Schedule,
    transformed: Schedule,
    hierarchy_factory: HierarchyFactory = scaled_hierarchy,
    cost_model: CostModel = DEFAULT_COST_MODEL,
) -> tuple[PerfReport, PerfReport]:
    """Run a baseline/transformed pair on identical fresh workloads.

    ``case_factory`` rebuilds the case so the two runs share input data
    (same seeds) but not mutable rule state.  For cases whose
    ``make_spec`` already resets state, passing ``lambda: case`` works
    and avoids rebuilding trees.
    """
    case = case_factory()
    before = run_case(case, baseline, hierarchy_factory, cost_model)
    after = run_case(case, transformed, hierarchy_factory, cost_model)
    return before, after

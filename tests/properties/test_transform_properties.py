"""Property-based tests for the transformation tool.

The generated code must agree with the library executors on arbitrary
trees and truncation patterns: same executed set, same per-outer-node
order — and for the twisted entry point, the *exact* schedule of the
equivalent executor configuration (flags, no subtree truncation).
"""

from hypothesis import given, strategies as st

from repro.core import NestedRecursionSpec, WorkRecorder, run_twisted
from repro.spaces import random_tree
from repro.transform import transform_source

REGULAR_SOURCE = '''
def outer(o, i):
    if o is None:
        return
    inner(o, i)
    outer(o.left, i)
    outer(o.right, i)

def inner(o, i):
    if i is None:
        return
    work(o, i)
    inner(o, i.left)
    inner(o, i.right)
'''

IRREGULAR_SOURCE = REGULAR_SOURCE.replace(
    "if i is None:", "if i is None or blocked(o, i):"
)

trees = st.builds(
    random_tree,
    st.integers(min_value=1, max_value=20),
    seed=st.integers(min_value=0, max_value=2_000),
)

blocked_sets = st.frozensets(
    st.tuples(
        st.integers(min_value=0, max_value=19),
        st.integers(min_value=0, max_value=19),
    ),
    max_size=8,
)


def compile_namespace(source, helpers):
    return transform_source(source, "outer", "inner").compile(helpers)


class TestRegularEquivalence:
    @given(outer=trees, inner=trees)
    def test_generated_twisted_matches_executor_schedule(self, outer, inner):
        # Executor configured to mirror the generated code: flag policy,
        # no subtree truncation (a regular spec uses neither anyway).
        spec = NestedRecursionSpec(outer, inner)
        recorder = WorkRecorder()
        run_twisted(spec, instrument=recorder, subtree_truncation=False)

        generated_points = []
        ns = compile_namespace(
            REGULAR_SOURCE,
            {"work": lambda o, i: generated_points.append((o.label, i.label))},
        )
        ns.outer_twisted(outer, inner)
        assert generated_points == recorder.points

    @given(outer=trees, inner=trees)
    def test_generated_interchange_is_row_major(self, outer, inner):
        generated_points = []
        ns = compile_namespace(
            REGULAR_SOURCE,
            {"work": lambda o, i: generated_points.append((o.label, i.label))},
        )
        ns.outer_swapped(outer, inner)
        expected = [
            (o.label, i.label)
            for i in inner.iter_preorder()
            for o in outer.iter_preorder()
        ]
        assert generated_points == expected


class TestIrregularEquivalence:
    @given(outer=trees, inner=trees, blocked=blocked_sets)
    def test_generated_code_preserves_executed_set(self, outer, inner, blocked):
        def blocked_fn(o, i):
            return (o.label, i.label) in blocked

        spec = NestedRecursionSpec(
            outer, inner, truncate_inner2=blocked_fn
        )
        reference = WorkRecorder()
        run_twisted(spec, instrument=reference, subtree_truncation=False)

        for entry in ("outer", "outer_swapped", "outer_twisted"):
            generated_points = []
            ns = compile_namespace(
                IRREGULAR_SOURCE,
                {
                    "work": lambda o, i: generated_points.append(
                        (o.label, i.label)
                    ),
                    "blocked": blocked_fn,
                },
            )
            getattr(ns, entry)(outer, inner)
            assert set(generated_points) == set(reference.points), entry
            assert len(generated_points) == len(reference.points), entry

    @given(outer=trees, inner=trees, blocked=blocked_sets)
    def test_generated_twisted_exact_schedule(self, outer, inner, blocked):
        def blocked_fn(o, i):
            return (o.label, i.label) in blocked

        spec = NestedRecursionSpec(outer, inner, truncate_inner2=blocked_fn)
        reference = WorkRecorder()
        run_twisted(spec, instrument=reference, subtree_truncation=False)

        generated_points = []
        ns = compile_namespace(
            IRREGULAR_SOURCE,
            {
                "work": lambda o, i: generated_points.append((o.label, i.label)),
                "blocked": blocked_fn,
            },
        )
        ns.outer_twisted(outer, inner)
        assert generated_points == reference.points

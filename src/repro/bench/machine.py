"""The simulated evaluation machine used by all experiments.

The paper's Xeon has L1 : L2 : L3 = 512 : 4096 : 327680 lines and runs
benchmarks whose inner-traversal working sets exceed the LLC.  Our
workloads are scaled down ~100x (Python trace speed), so the bench
machine scales the hierarchy to match: **L1 = 16, L2 = 128, L3 = 512
lines**, all 8-way LRU, keeping every benchmark's baseline in the same
"inner traversal exceeds the LLC" regime the paper evaluates (their
Section 6.1 note: "we require large inputs for the working set to
exceed the LLC").

Latency parameters come from :data:`repro.memory.costmodel.DEFAULT_COST_MODEL`
(L1 4, L2 12, L3 40, memory 200 cycles).
"""

from __future__ import annotations

from repro.memory.hierarchy import CacheHierarchy, LevelSpec


def bench_hierarchy() -> CacheHierarchy:
    """A fresh instance of the benchmark machine (see module doc)."""
    return CacheHierarchy(
        [
            LevelSpec("L1", 16, ways=8).build(),
            LevelSpec("L2", 128, ways=8).build(),
            LevelSpec("L3", 512, ways=8).build(),
        ]
    )

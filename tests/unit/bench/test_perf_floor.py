"""Unit tests for the auto-backend perf-floor CI gate."""

import json

from repro.bench.perf_floor import DEFAULT_FLOOR, check_perf_floor, main


def entry(benchmark="TJ", schedule="twist", **overrides):
    base = {
        "benchmark": benchmark,
        "schedule": schedule,
        "results_match": True,
        "timings": {
            "recursive": 1.0,
            "batched": 0.5,
            "soa": 0.25,
            "auto": 0.26,
        },
    }
    base.update(overrides)
    return base


def payload(*entries):
    return {"experiment": "wallclock_backends", "results": list(entries)}


class TestCheckPerfFloor:
    def test_passes_when_auto_tracks_best(self):
        assert check_perf_floor(payload(entry())) == []

    def test_flags_auto_falling_below_floor(self):
        slow = entry(
            timings={"recursive": 1.0, "soa": 0.25, "auto": 0.5}
        )
        violations = check_perf_floor(payload(slow))
        assert len(violations) == 1
        assert "TJ/twist" in violations[0]
        assert "soa" in violations[0]

    def test_floor_is_a_ratio_of_the_best_single_backend(self):
        # auto at 80% of best passes a 0.75 floor but fails 0.9.
        borderline = entry(
            timings={"recursive": 1.0, "soa": 0.4, "auto": 0.5}
        )
        assert check_perf_floor(payload(borderline), floor=0.75) == []
        assert check_perf_floor(payload(borderline), floor=DEFAULT_FLOOR)

    def test_result_mismatch_always_violates(self):
        violations = check_perf_floor(payload(entry(results_match=False)))
        assert violations == ["TJ/twist: backend results mismatch"]

    def test_entries_without_auto_are_skipped(self):
        filtered = entry(timings={"recursive": 1.0, "soa": 0.25})
        assert check_perf_floor(payload(filtered)) == []

    def test_empty_payload_passes(self):
        assert check_perf_floor({}) == []


class TestMain:
    def _write(self, tmp_path, data):
        path = tmp_path / "bench.json"
        path.write_text(json.dumps(data))
        return str(path)

    def test_pass_exit_code_and_summary(self, tmp_path, capsys):
        path = self._write(tmp_path, payload(entry(), entry("MM")))
        assert main(["--json", path]) == 0
        out = capsys.readouterr().out
        assert "perf floor passed" in out
        assert "all 2 checked" in out

    def test_fail_exit_code_lists_violations(self, tmp_path, capsys):
        slow = entry(timings={"recursive": 1.0, "soa": 0.2, "auto": 1.0})
        path = self._write(tmp_path, payload(slow))
        assert main(["--json", path]) == 1
        out = capsys.readouterr().out
        assert "perf floor FAILED" in out
        assert "TJ/twist" in out

    def test_floor_flag_is_honored(self, tmp_path):
        slow = entry(timings={"recursive": 1.0, "soa": 0.2, "auto": 1.0})
        path = self._write(tmp_path, payload(slow))
        assert main(["--json", path, "--floor", "0.1"]) == 0

"""Bench target: Figures 1(c)/4(b) and the Section 3.2 worked example.

Regenerates the 7x7 schedules and the exact reuse distances the paper
prints.  Cheap, but kept in the benchmark suite so one run leaves the
complete set of paper artifacts behind.
"""

from benchmarks.conftest import register_report
from repro.bench.experiments import run_fig1_fig4
from repro.bench.experiments.fig1_fig4 import (
    PAPER_ORIGINAL_NODE5,
    PAPER_TWISTED_NODE5,
)


def test_fig1_fig4_schedules(benchmark):
    report, data = benchmark.pedantic(run_fig1_fig4, rounds=1, iterations=1)
    register_report(report, "fig1_fig4_schedules.txt")
    assert data["original_node5"] == PAPER_ORIGINAL_NODE5
    assert data["twisted_node5"] == PAPER_TWISTED_NODE5

"""Bench target: the Section 7.2 multi-level twisting extension.

Matrix-matrix multiplication under three-level generalized twisting.
Shape asserted: same 3-D iteration count, memory traffic cut by a
multiple, and both cache levels improved — the cache-oblivious MMM
blocking with no tile-size parameters.
"""

from benchmarks.conftest import register_report
from repro.bench.experiments import run_sec72


def test_sec72_multilevel(benchmark, bench_scale):
    n = max(24, int(48 * bench_scale))
    report, data = benchmark.pedantic(
        run_sec72, kwargs={"n": n}, rounds=1, iterations=1
    )
    register_report(report, "sec72_multilevel.txt")

    original = data["original"]
    twisted = data["twisted-3level"]
    # Same iteration space (regular truncation: the full n^3 product).
    assert original["points"] == twisted["points"] == float(n) ** 3
    # Memory traffic collapses (3.6x at the default 48^3).
    assert twisted["memory"] < original["memory"] / 2
    # Both cache levels improve (the parameterless multi-level claim).
    assert twisted["L1_miss"] < original["L1_miss"]
    assert twisted["L2_miss"] < original["L2_miss"]

"""Bench target: Figure 8 — instruction overhead and L2/L3 miss rates.

Produced from the same runs as Figure 7 (cached in the session store).
Paper shapes asserted: overhead positive but bounded (paper: 1%-72%);
baseline L3 miss rates at 80+% on the thrashing benchmarks collapsing
dramatically under twisting; L2 improves as well (twisting targets all
levels at once).
"""

from benchmarks.conftest import register_report
from repro.bench.experiments import fig8_reports, run_fig7
from repro.memory.counters import instruction_overhead


def test_fig8_counters(benchmark, bench_scale, shared_store):
    if "fig7" in shared_store:
        data = shared_store["fig7"]
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    else:  # standalone invocation of this file
        data = benchmark.pedantic(
            run_fig7, kwargs={"scale": bench_scale}, rounds=1, iterations=1
        )
    overhead_report, miss_report = fig8_reports(data)
    register_report(overhead_report, "fig8a_instruction_overhead.txt")
    register_report(miss_report, "fig8b_miss_rates.txt")

    for name, (baseline, twisted) in data.items():
        overhead = instruction_overhead(baseline, twisted)
        assert 0.0 < overhead < 1.2, (name, overhead)

    # The memory-bound benchmarks saturate L3 at full scale and
    # twisting collapses both cache levels' miss rates.
    if bench_scale >= 1.0:
        for name in ("TJ", "MM", "PC"):
            baseline, twisted = data[name]
            assert baseline.miss_rate("L3") > 0.8, name
            assert twisted.miss_rate("L3") < baseline.miss_rate("L3") / 2, name
            assert twisted.miss_rate("L2") < baseline.miss_rate("L2") / 2, name
        for name in ("NN", "KNN", "VP"):
            baseline, twisted = data[name]
            assert twisted.levels["L2"].misses < baseline.levels["L2"].misses, name

"""Property-based sanitize coverage: shadow execution never diverges.

The unit suite seeds known-bad kernels and demands divergence; here
hypothesis drives the opposite direction over *arbitrary* spaces: for
random tree shapes, random irregular truncation patterns, every
schedule and both vectorized backends, a conforming spec must complete
all sanitize phases with zero divergences — which is precisely the
statement that its instrument event stream and payload equal the
recursive reference's, since :func:`repro.core.sanitize.run_sanitized`
compares both in lockstep and raises on the first difference.
"""

from hypothesis import given, settings, strategies as st

from repro.core.sanitize import run_sanitized
from repro.core.spec import NestedRecursionSpec
from repro.spaces import random_tree

tree_shapes = st.tuples(
    st.integers(min_value=1, max_value=24),
    st.integers(min_value=0, max_value=10_000),
)

blocked_pairs = st.frozensets(
    st.tuples(
        st.integers(min_value=0, max_value=23),
        st.integers(min_value=0, max_value=23),
    ),
    max_size=12,
)


def make_factory(outer_shape, inner_shape, blocked):
    """Fresh-spec factory over the given shapes, plus a payload probe.

    The kernels conform by construction (per-pair replay of the scalar
    update); the payload folds node labels asymmetrically so that any
    dropped, duplicated, or re-paired work point changes it.
    """
    state = {}

    def factory():
        outer = random_tree(*outer_shape, data=float)
        inner = random_tree(*inner_shape, data=float)
        acc = {"total": 0.0, "pairs": 0}
        state["acc"] = acc

        def work(o, i):
            acc["total"] += o.data * 31.0 + i.data
            acc["pairs"] += 1

        def work_batch(os, is_):
            for o, i in zip(os, is_):
                acc["total"] += o.data * 31.0 + i.data
                acc["pairs"] += 1

        truncate = None
        if blocked:
            def truncate(o, i):
                return (o.label, i.label) in blocked

        return NestedRecursionSpec(
            outer_root=outer,
            inner_root=inner,
            name="property",
            work=work,
            work_batch=work_batch,
            truncate_inner2=truncate,
        )

    return factory, (lambda: (state["acc"]["total"], state["acc"]["pairs"]))


@settings(max_examples=40, deadline=None)
@given(tree_shapes, tree_shapes, blocked_pairs)
def test_batched_sanitize_never_diverges(outer_shape, inner_shape, blocked):
    factory, probe = make_factory(outer_shape, inner_shape, blocked)
    for schedule in ("original", "interchange", "twist"):
        report = run_sanitized(
            factory, schedule, backend="batched", probe=probe
        )
        assert report.phases == ["record", "lockstep", "fast-path"]


@settings(max_examples=40, deadline=None)
@given(tree_shapes, tree_shapes, blocked_pairs)
def test_soa_sanitize_never_diverges(outer_shape, inner_shape, blocked):
    factory, probe = make_factory(outer_shape, inner_shape, blocked)
    for schedule in ("original", "twist"):
        report = run_sanitized(factory, schedule, backend="soa", probe=probe)
        assert report.phases == ["record", "lockstep", "fast-path"]


@settings(max_examples=25, deadline=None)
@given(tree_shapes, tree_shapes)
def test_auto_resolution_is_sanitize_clean(outer_shape, inner_shape):
    """Whatever backend ``auto`` resolves to survives shadowing (the
    recursive resolution short-circuits after the record phase)."""
    factory, probe = make_factory(outer_shape, inner_shape, frozenset())
    report = run_sanitized(factory, "twist", backend="auto", probe=probe)
    assert report.phases[0] == "record"
    assert report.events > 0


def test_builtin_specs_sanitize_clean_smoke():
    """Every built-in benchmark spec survives shadowing under both
    vectorized backends at smoke scale (the property above cannot
    build these; the CI sweep runs them bigger)."""
    from repro.bench.sanitize_sweep import run_sanitize_sweep

    sweep = run_sanitize_sweep(scale=0.02)
    assert sweep.ok, sweep.render()
    assert len(sweep.runs) == 7 * 2 * 2

"""Access-trace persistence: record once, analyze many times.

Schedule executions are expensive (millions of instrumented events);
analyses are cheap.  This module serializes logical access traces —
the ``(tree, node_number)`` streams produced by
:class:`~repro.core.instruments.AccessTraceRecorder` — to a compact
``.npz`` container so a recorded run can be re-analyzed offline
(different cache geometries, different reuse questions) without
re-executing the schedule.

Format: two int64 arrays, ``spaces`` (interned ids of the tree/space
names) and ``keys`` (node numbers), plus the interning table.  A 10M
access trace is ~160 MB of numpy data instead of a multi-gigabyte
pickle of tuples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import MemorySimError

TraceEntry = tuple[str, int]


@dataclass
class Trace:
    """An in-memory logical access trace."""

    #: per-access space index into :attr:`space_names`
    spaces: np.ndarray
    #: per-access node number
    keys: np.ndarray
    #: interning table for space names
    space_names: list[str]

    def __len__(self) -> int:
        return int(self.spaces.shape[0])

    def __iter__(self):
        names = self.space_names
        for space, key in zip(self.spaces, self.keys):
            yield (names[int(space)], int(key))

    def as_tuples(self) -> list[TraceEntry]:
        """Materialize as the recorder's tuple format."""
        return list(self)

    def replay_reuse(self):
        """Feed the trace into a fresh reuse-distance analyzer."""
        from repro.memory.reuse import ReuseDistanceAnalyzer

        analyzer = ReuseDistanceAnalyzer()
        for entry in self:
            analyzer.access(entry)
        return analyzer


def from_tuples(entries: Sequence[TraceEntry]) -> Trace:
    """Build a :class:`Trace` from recorder output."""
    interning: dict[str, int] = {}
    spaces = np.empty(len(entries), dtype=np.int64)
    keys = np.empty(len(entries), dtype=np.int64)
    for position, (space, key) in enumerate(entries):
        index = interning.setdefault(space, len(interning))
        spaces[position] = index
        keys[position] = key
    return Trace(spaces=spaces, keys=keys, space_names=list(interning))


def save_trace(path: str, trace: Trace | Sequence[TraceEntry]) -> None:
    """Write a trace to an ``.npz`` file."""
    if not isinstance(trace, Trace):
        trace = from_tuples(trace)
    np.savez_compressed(
        path,
        spaces=trace.spaces,
        keys=trace.keys,
        space_names=np.array(trace.space_names, dtype=object),
    )


def load_trace(path: str) -> Trace:
    """Read a trace previously written by :func:`save_trace`."""
    try:
        data = np.load(path, allow_pickle=True)
    except OSError as error:
        raise MemorySimError(f"cannot read trace {path!r}: {error}") from error
    for field in ("spaces", "keys", "space_names"):
        if field not in data:
            raise MemorySimError(
                f"{path!r} is not a trace file (missing {field!r})"
            )
    return Trace(
        spaces=data["spaces"],
        keys=data["keys"],
        space_names=[str(name) for name in data["space_names"]],
    )

"""Unit tests for benchmark workload construction."""

import pytest

from repro.bench import all_cases, make_knn, make_mm, make_pc, make_tj, make_vp
from repro.core import run_original
from repro.memory import AddressMap


class TestCases:
    def test_all_cases_names(self):
        names = [case.name for case in all_cases(scale=0.05)]
        assert names == ["TJ", "MM", "PC", "NN", "KNN", "VP"]

    def test_scale_shrinks_inputs(self):
        small = make_tj(100)
        spec = small.make_spec()
        assert spec.outer_root.size == 100

    def test_layout_registers_both_trees(self):
        case = make_tj(50)
        amap = AddressMap()
        case.register_layout(amap)
        assert amap.total_lines == 100

    def test_spatial_layout_sizes_leaves_by_points(self):
        case = make_pc(128, leaf_size=8)
        amap = AddressMap()
        case.register_layout(amap)
        # 2-D points, 16 bytes each: an 8-point leaf needs 1 + 2 lines.
        from repro.dualtree import build_kdtree

        assert amap.total_lines > 2 * (2 * 128 / 8)  # more than node count

    def test_fresh_spec_per_run(self):
        case = make_pc(128)
        run_original(case.make_spec())
        first = case.result()
        run_original(case.make_spec())
        assert case.result() == first

    def test_work_costs_reflect_cpi_story(self):
        # VP is compute-bound (CPI 0.93): largest weight.  PC is
        # memory-bound (CPI 6.7): small weight.
        vp, pc, tj = make_vp(128), make_pc(128), make_tj(32)
        assert vp.work_cost.instructions > pc.work_cost.instructions
        assert pc.work_cost.instructions >= tj.work_cost.instructions

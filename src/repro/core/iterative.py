"""Explicit-stack executors for very deep iteration spaces.

The recursive executors mirror the paper's listings, but CPython
stack frames are expensive and bounded.  For degenerate trees (the
list trees that make the template equivalent to a loop nest) or very
large inputs, these stack-machine equivalents execute the *same
schedules* without native recursion.

Only the original and interchanged orders are provided iteratively —
they are what the huge-input stress tests need; the twisted schedule's
depth is bounded by the sum of the tree depths, which
:mod:`repro.core.recursion` already accommodates.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.core.instruments import NULL_INSTRUMENT, Instrument
from repro.core.spec import INNER_TREE, OUTER_TREE, NestedRecursionSpec
from repro.spaces.node import IndexNode


def run_original_iterative(
    spec: NestedRecursionSpec,
    instrument: Optional[Instrument] = None,
) -> None:
    """Original schedule via explicit stacks (no native recursion).

    Emits exactly the same instrumentation events in exactly the same
    order as :func:`repro.core.executors.run_original`; the unit tests
    assert trace equality between the two.
    """
    ins = instrument or NULL_INSTRUMENT
    truncate_outer = spec.truncate_outer
    truncate_inner1 = spec.truncate_inner1
    truncate_inner2 = spec.truncate_inner2
    work = spec.work
    ins_op = ins.op
    ins_access = ins.access
    ins_work = ins.work

    spec.reset_truncation_state()
    outer_stack: list[IndexNode] = [spec.outer_root]
    while outer_stack:
        o = outer_stack.pop()
        ins_op("call")
        ins_op("trunc_check")
        if truncate_outer(o):
            continue
        # Full inner traversal for this outer node.
        inner_stack: list[IndexNode] = [spec.inner_root]
        while inner_stack:
            i = inner_stack.pop()
            ins_op("call")
            ins_op("trunc_check")
            if truncate_inner1(i):
                continue
            ins_op("visit")
            if truncate_inner2 is not None:
                ins_op("trunc_check")
                if truncate_inner2(o, i):
                    continue
            ins_access(INNER_TREE, i)
            ins_access(OUTER_TREE, o)
            ins_work(o, i)
            if work is not None:
                work(o, i)
            inner_stack.extend(reversed(i.children))
        outer_stack.extend(reversed(o.children))


def iter_original_points(
    spec: NestedRecursionSpec,
) -> Iterator[tuple[IndexNode, IndexNode]]:
    """Yield the executed ``(o, i)`` node pairs of the original schedule.

    A generator form of :func:`run_original_iterative` that performs no
    instrumentation and does not call ``work`` — useful for oracles and
    quick iteration-space materialization.
    """
    truncate_outer = spec.truncate_outer
    truncate_inner1 = spec.truncate_inner1
    truncate_inner2 = spec.truncate_inner2
    spec.reset_truncation_state()
    outer_stack: list[IndexNode] = [spec.outer_root]
    while outer_stack:
        o = outer_stack.pop()
        if truncate_outer(o):
            continue
        inner_stack: list[IndexNode] = [spec.inner_root]
        while inner_stack:
            i = inner_stack.pop()
            if truncate_inner1(i):
                continue
            if truncate_inner2 is not None and truncate_inner2(o, i):
                continue
            yield (o, i)
            inner_stack.extend(reversed(i.children))
        outer_stack.extend(reversed(o.children))


def run_interchanged_iterative(
    spec: NestedRecursionSpec,
    instrument: Optional[Instrument] = None,
) -> None:
    """Interchanged schedule via explicit stacks — regular specs only.

    The flag machinery needs phase-structured unwinding that is much
    clearer recursively, so irregular specs must use
    :func:`repro.core.interchange.run_interchanged`.
    """
    from repro.errors import ScheduleError

    if spec.is_irregular:
        raise ScheduleError(
            "run_interchanged_iterative supports regular truncation only; "
            "use run_interchanged for specs with truncate_inner2"
        )
    ins = instrument or NULL_INSTRUMENT
    truncate_outer = spec.truncate_outer
    truncate_inner1 = spec.truncate_inner1
    work = spec.work
    ins_op = ins.op
    ins_access = ins.access
    ins_work = ins.work

    spec.reset_truncation_state()
    inner_tree_stack: list[IndexNode] = [spec.inner_root]
    while inner_tree_stack:
        i = inner_tree_stack.pop()
        ins_op("call")
        ins_op("trunc_check")
        if truncate_inner1(i):
            continue
        outer_tree_stack: list[IndexNode] = [spec.outer_root]
        while outer_tree_stack:
            o = outer_tree_stack.pop()
            ins_op("call")
            ins_op("trunc_check")
            if truncate_outer(o):
                continue
            ins_op("visit")
            ins_access(INNER_TREE, i)
            ins_access(OUTER_TREE, o)
            ins_work(o, i)
            if work is not None:
                work(o, i)
            outer_tree_stack.extend(reversed(o.children))
        inner_tree_stack.extend(reversed(i.children))

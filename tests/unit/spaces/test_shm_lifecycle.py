"""Shared-memory segment lifecycle under service-style reuse.

The serving layer keeps one :class:`SharedPublication` alive for the
process lifetime and lets pool workers attach through a per-process
cache.  These tests pin the lifecycle invariants that make that safe:
repeated publish/attach/close cycles, finalizer cleanup when an owner
forgets to close, idempotent closes, and worker crashes — none may
leave a ``/dev/shm`` entry behind.
"""

import gc
import os

import numpy as np
import pytest

from repro.core.parallel_exec import PersistentWorkerPool, run_parallel
from repro.core.schedules import ORIGINAL
from repro.errors import ParallelWorkerError, ScheduleError
from repro.kernels import TreeJoin
from repro.spaces.soa import (
    SharedPublication,
    attach_shared_arrays_cached,
    clear_attach_cache,
)


def shm_entries():
    try:
        return set(os.listdir("/dev/shm"))
    except FileNotFoundError:  # pragma: no cover - non-Linux hosts
        return set()


def sample_arrays():
    return {
        "points": np.arange(24, dtype=float).reshape(8, 3),
        "weights": np.ones(8),
    }


class TestPublicationLifecycle:
    def test_publish_arrays_close_cycle_leaks_nothing(self):
        before = shm_entries()
        for _ in range(5):
            publication = SharedPublication.publish(sample_arrays())
            views = publication.arrays()
            assert np.array_equal(views["points"], sample_arrays()["points"])
            publication.close()
            assert publication.closed
        assert shm_entries() == before

    def test_close_is_idempotent(self):
        publication = SharedPublication.publish(sample_arrays())
        publication.close()
        publication.close()
        assert publication.closed

    def test_finalizer_unlinks_on_garbage_collection(self):
        # An owner that forgets close(): dropping the last reference
        # must still unlink the segments (weakref.finalize), so a
        # crashed service cannot strand /dev/shm entries.
        before = shm_entries()
        publication = SharedPublication.publish(sample_arrays())
        assert shm_entries() != before
        del publication
        gc.collect()
        assert shm_entries() == before

    def test_context_manager_closes(self):
        before = shm_entries()
        with SharedPublication.publish(sample_arrays()) as publication:
            assert not publication.closed
        assert publication.closed
        assert shm_entries() == before

    def test_arrays_after_close_refused(self):
        publication = SharedPublication.publish(sample_arrays())
        publication.close()
        with pytest.raises(Exception):
            publication.arrays()


class TestAttachCache:
    def test_cached_attach_returns_the_same_views(self):
        clear_attach_cache()
        publication = SharedPublication.publish(sample_arrays())
        try:
            first = attach_shared_arrays_cached(publication.handles)
            second = attach_shared_arrays_cached(publication.handles)
            # Cache hit: the very same array objects, zero-copy.
            assert all(
                first[name] is second[name] for name in first
            )
            assert np.array_equal(
                first["points"], sample_arrays()["points"]
            )
        finally:
            clear_attach_cache()
            publication.close()

    def test_clear_attach_cache_detaches(self):
        before = shm_entries()
        publication = SharedPublication.publish(sample_arrays())
        attach_shared_arrays_cached(publication.handles)
        clear_attach_cache()
        publication.close()
        assert shm_entries() == before


class TestPoolLifecycle:
    def test_repeated_pooled_batches_reuse_one_publication(self):
        before = shm_entries()
        tj = TreeJoin(127, 127)
        expected = tj.expected_total()
        spec = tj.make_spec()
        with PersistentWorkerPool(
            spec.parallel_plan.arrays, max_workers=1
        ) as pool:
            for _ in range(2):
                # make_spec resets the accumulator; its plan arrays are
                # the same cached SoA columns, so the pool still matches.
                run_parallel(
                    tj.make_spec(),
                    schedule=ORIGINAL,
                    engine="process",
                    max_workers=1,
                    pool=pool,
                )
                assert tj.result == expected
        assert shm_entries() == before

    def test_pool_requires_the_process_engine(self):
        spec = TreeJoin(63, 63).make_spec()
        pool = PersistentWorkerPool(spec.parallel_plan.arrays, max_workers=1)
        try:
            with pytest.raises(ScheduleError, match="process"):
                run_parallel(spec, engine="thread", max_workers=1, pool=pool)
        finally:
            pool.close()

    def test_mismatched_arrays_refused(self):
        spec = TreeJoin(63, 63).make_spec()
        other = TreeJoin(63, 63).make_spec()
        pool = PersistentWorkerPool(other.parallel_plan.arrays, max_workers=1)
        try:
            with pytest.raises(ScheduleError, match="different arrays"):
                run_parallel(
                    spec, engine="process", max_workers=1, pool=pool
                )
        finally:
            pool.close()

    def test_worker_crash_resets_pool_and_leaks_nothing(self):
        # A real worker death (not an exception): the pool must surface
        # ParallelWorkerError, reset its executor, keep the resident
        # publication usable, and unlink everything on close.
        before = shm_entries()
        tj = TreeJoin(127, 127)
        expected = tj.expected_total()
        spec = tj.make_spec()
        pool = PersistentWorkerPool(spec.parallel_plan.arrays, max_workers=1)
        try:
            run_parallel(
                tj.make_spec(),
                schedule=ORIGINAL,
                engine="process",
                max_workers=1,
                pool=pool,
            )
            # Kill the resident worker processes out from under it.
            executor = pool._executor
            assert executor is not None
            for process in list(executor._processes.values()):
                process.kill()
            with pytest.raises(ParallelWorkerError, match="resubmit"):
                run_parallel(
                    tj.make_spec(),
                    schedule=ORIGINAL,
                    engine="process",
                    max_workers=1,
                    pool=pool,
                )
            # The reset left the publication intact: resubmission works.
            run_parallel(
                tj.make_spec(),
                schedule=ORIGINAL,
                engine="process",
                max_workers=1,
                pool=pool,
            )
            assert tj.result == expected
        finally:
            pool.close()
        assert shm_entries() == before

    def test_closed_pool_refuses_submissions(self):
        spec = TreeJoin(63, 63).make_spec()
        pool = PersistentWorkerPool(spec.parallel_plan.arrays, max_workers=1)
        pool.close()
        with pytest.raises(ScheduleError, match="closed"):
            pool.submit_chunk({})

"""Unit tests for same-set (exclude-self) dual-tree queries."""

import numpy as np
import pytest

from repro.core import run_original, run_twisted
from repro.dualtree import (
    KNearestNeighbors,
    NearestNeighbor,
    brute_knn,
    brute_nearest_neighbor,
)
from repro.spaces import clustered_points


@pytest.fixture
def points():
    return clustered_points(160, clusters=8, seed=60)


class TestSelfNearestNeighbor:
    def test_matches_brute_force(self, points):
        nn = NearestNeighbor(points, points, exclude_self=True)
        run_twisted(nn.make_spec())
        ids, dists = nn.result
        brute_ids, brute_dists = brute_nearest_neighbor(
            points, points, exclude_self=True
        )
        assert np.array_equal(ids, brute_ids)
        assert np.allclose(dists, brute_dists)

    def test_never_returns_self(self, points):
        nn = NearestNeighbor(points, points, exclude_self=True)
        run_original(nn.make_spec())
        ids, _ = nn.result
        assert (ids != np.arange(len(points))).all()

    def test_without_flag_self_wins(self, points):
        nn = NearestNeighbor(points, points)
        run_original(nn.make_spec())
        ids, dists = nn.result
        assert (ids == np.arange(len(points))).all()
        assert np.allclose(dists, 0.0)


class TestSelfKnn:
    def test_matches_brute_force(self, points):
        knn = KNearestNeighbors(points, points, k=3, exclude_self=True)
        run_twisted(knn.make_spec())
        ids, dists = knn.result
        brute_ids, brute_dists = brute_knn(points, points, 3, exclude_self=True)
        assert np.allclose(dists, brute_dists)
        assert np.array_equal(ids, brute_ids)

    def test_self_not_among_neighbors(self, points):
        knn = KNearestNeighbors(points, points, k=4, exclude_self=True)
        run_original(knn.make_spec())
        ids, _ = knn.result
        for query in range(len(points)):
            assert query not in ids[query]

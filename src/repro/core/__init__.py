"""The paper's contribution: schedules for nested recursive iteration spaces.

* :mod:`repro.core.spec` — the Figure 2 nested recursion template as a
  declarative :class:`NestedRecursionSpec`;
* :mod:`repro.core.executors` — the original schedule;
* :mod:`repro.core.interchange` — recursion interchange (Figure 3);
* :mod:`repro.core.twisting` — recursion twisting (Figure 4a), with
  the Section 7.1 cutoff variant;
* :mod:`repro.core.truncation` — the Section 4 irregular-truncation
  machinery (Figure 6(b) flags, Section 4.3 counters, Section 4.2
  subtree truncation);
* :mod:`repro.core.instruments` — probes for ops, accesses, and work;
* :mod:`repro.core.soundness` — dependence-order verification and the
  Section 3.3 outer-parallel criterion;
* :mod:`repro.core.iterative` — explicit-stack executors for deep
  spaces;
* :mod:`repro.core.batched` — frontier-batched explicit-stack
  executors dispatching vectorized leaf-work blocks, bit-identical to
  the recursive executors;
* :mod:`repro.core.soa_exec` — index-based executors over packed
  structure-of-arrays tree views (:mod:`repro.spaces.soa`), with an
  inline dispatch mode for stateful-truncation specs;
* :mod:`repro.core.backend_select` — the ``backend="auto"``
  calibration probe and decision table;
* :mod:`repro.core.schedules` — the named schedule registry used by
  benches and examples.
"""

from repro.core.backend_select import (
    BackendChoice,
    choose_backend,
    probe_features,
    resolve_backend,
)
from repro.core.batched import (
    DEFAULT_BATCH_SIZE,
    BatchDispatcher,
    run_interchanged_batched,
    run_original_batched,
    run_twisted_batched,
)
from repro.core.cutoff import (
    auto_cutoff_schedule,
    cutoff_for_machine,
    estimate_cutoff,
)
from repro.core.executors import run_original
from repro.core.instruments import (
    NULL_INSTRUMENT,
    AccessTraceRecorder,
    CacheProbe,
    Instrument,
    MultiInstrument,
    OpCounter,
    ReuseDistanceProbe,
    WorkCallback,
    WorkRecorder,
    combine,
)
from repro.core.interchange import run_interchanged
from repro.core.iterative import (
    iter_original_points,
    run_interchanged_iterative,
    run_original_iterative,
)
from repro.core.iterative_twist import run_twisted_iterative
from repro.core.multilevel import (
    MultiLevelInstrument,
    MultiLevelSpec,
    OpCounterN,
    PointRecorder,
    cross_product_size,
    run_original_n,
    run_twisted_n,
)
from repro.core.parallel import (
    ParallelReport,
    Task,
    WorkerTrace,
    run_task_parallel,
    spawn_tasks,
    task_spec,
)
from repro.core.parallel_exec import (
    ParallelExecReport,
    ParallelPlan,
    check_outer_independence,
    run_parallel,
)
from repro.core.recursion import (
    MAX_SAFE_RECURSION_LIMIT,
    exceeds_safe_depth,
    recursion_guard,
    required_limit,
)
from repro.core.schedules import (
    BACKENDS,
    BY_NAME,
    INTERCHANGE,
    INTERCHANGE_SUBTREE,
    ORIGINAL,
    TWIST,
    TWIST_COUNTERS,
    TWIST_NO_SUBTREE,
    Schedule,
    get_schedule,
    twist_with_cutoff,
)
from repro.core.soa_exec import (
    PositionDispatcher,
    run_interchanged_soa,
    run_original_soa,
    run_twisted_soa,
)
from repro.core.soundness import (
    FootprintRecorder,
    SoundnessReport,
    canonical_form,
    check_transformation,
    compare_recordings,
    is_outer_parallel,
    outer_parallel_violations,
)
from repro.core.spec import (
    INNER_TREE,
    OUTER_TREE,
    NestedRecursionSpec,
)
from repro.core.truncation import (
    CounterTruncation,
    FlagTruncation,
    NoTruncation,
    TruncationPolicy,
    make_policy,
)
from repro.core.twisting import run_twisted

__all__ = [
    "AccessTraceRecorder",
    "BACKENDS",
    "BY_NAME",
    "BackendChoice",
    "BatchDispatcher",
    "CacheProbe",
    "DEFAULT_BATCH_SIZE",
    "MAX_SAFE_RECURSION_LIMIT",
    "CounterTruncation",
    "FlagTruncation",
    "FootprintRecorder",
    "INNER_TREE",
    "INTERCHANGE",
    "INTERCHANGE_SUBTREE",
    "Instrument",
    "MultiInstrument",
    "MultiLevelInstrument",
    "MultiLevelSpec",
    "NULL_INSTRUMENT",
    "NestedRecursionSpec",
    "OpCounterN",
    "PointRecorder",
    "NoTruncation",
    "ORIGINAL",
    "OUTER_TREE",
    "OpCounter",
    "ParallelExecReport",
    "ParallelPlan",
    "ParallelReport",
    "PositionDispatcher",
    "ReuseDistanceProbe",
    "Schedule",
    "Task",
    "WorkerTrace",
    "SoundnessReport",
    "TWIST",
    "TWIST_COUNTERS",
    "TWIST_NO_SUBTREE",
    "TruncationPolicy",
    "WorkCallback",
    "WorkRecorder",
    "auto_cutoff_schedule",
    "canonical_form",
    "check_outer_independence",
    "choose_backend",
    "cutoff_for_machine",
    "estimate_cutoff",
    "check_transformation",
    "combine",
    "probe_features",
    "resolve_backend",
    "compare_recordings",
    "cross_product_size",
    "exceeds_safe_depth",
    "get_schedule",
    "is_outer_parallel",
    "outer_parallel_violations",
    "iter_original_points",
    "make_policy",
    "recursion_guard",
    "required_limit",
    "run_interchanged",
    "run_interchanged_batched",
    "run_interchanged_iterative",
    "run_interchanged_soa",
    "run_original",
    "run_original_batched",
    "run_original_iterative",
    "run_original_n",
    "run_original_soa",
    "run_parallel",
    "run_twisted_batched",
    "run_twisted_soa",
    "run_task_parallel",
    "run_twisted_n",
    "run_twisted",
    "run_twisted_iterative",
    "spawn_tasks",
    "task_spec",
    "twist_with_cutoff",
]

"""Property-based tests: schedule invariants over random spaces.

These pin down the paper's core semantic claims for *arbitrary* tree
shapes and truncation patterns, not just the worked examples:

1. every transformed schedule executes exactly the original set of
   iterations (bounds preservation, Section 4's goal);
2. every transformed schedule preserves each outer index's inner visit
   order (intra-traversal dependence preservation, Section 3.3);
3. interchange additionally enumerates row-by-row.
"""

from hypothesis import given, strategies as st

from repro.core import (
    NestedRecursionSpec,
    WorkRecorder,
    run_interchanged,
    run_original,
    run_twisted,
    run_twisted_iterative,
)
from repro.spaces import random_tree

trees = st.builds(
    random_tree,
    st.integers(min_value=1, max_value=28),
    seed=st.integers(min_value=0, max_value=10_000),
)


def blocked_pairs_strategy(max_nodes=28):
    """Random irregular truncation patterns as (o_label, i_label) sets."""
    pair = st.tuples(
        st.integers(min_value=0, max_value=max_nodes - 1),
        st.integers(min_value=0, max_value=max_nodes - 1),
    )
    return st.frozensets(pair, max_size=12)


def make_spec(outer, inner, blocked=frozenset()):
    if blocked:
        return NestedRecursionSpec(
            outer,
            inner,
            truncate_inner2=lambda o, i: (o.label, i.label) in blocked,
        )
    return NestedRecursionSpec(outer, inner)


def run_schedule(run, spec, **kwargs):
    recorder = WorkRecorder()
    run(spec, instrument=recorder, **kwargs)
    return recorder.points


def rows(points):
    by_outer = {}
    for o, i in points:
        by_outer.setdefault(o, []).append(i)
    return by_outer


class TestRegularSpaces:
    @given(outer=trees, inner=trees)
    def test_all_schedules_enumerate_full_rectangle(self, outer, inner):
        spec = make_spec(outer, inner)
        original = run_schedule(run_original, spec)
        assert len(original) == outer.size * inner.size
        for run, kwargs in [
            (run_interchanged, {}),
            (run_twisted, {}),
            (run_twisted, {"cutoff": 4}),
        ]:
            points = run_schedule(run, spec, **kwargs)
            assert sorted(points) == sorted(original), run.__name__

    @given(outer=trees, inner=trees)
    def test_intra_traversal_order_preserved(self, outer, inner):
        spec = make_spec(outer, inner)
        original_rows = rows(run_schedule(run_original, spec))
        for run in (run_interchanged, run_twisted):
            transformed_rows = rows(run_schedule(run, spec))
            assert transformed_rows == original_rows

    @given(outer=trees, inner=trees)
    def test_interchange_is_row_major(self, outer, inner):
        spec = make_spec(outer, inner)
        points = run_schedule(run_interchanged, spec)
        inner_sequence = [i for _o, i in points]
        # Row-major: the inner index is non-repeating blocks in the
        # inner tree's pre-order.
        expected = [
            i.label for i in inner.iter_preorder() for _ in range(outer.size)
        ]
        assert inner_sequence == expected


class TestIrregularSpaces:
    @given(outer=trees, inner=trees, blocked=blocked_pairs_strategy())
    def test_executed_sets_agree(self, outer, inner, blocked):
        spec = make_spec(outer, inner, blocked)
        original = set(run_schedule(run_original, spec))
        for run, kwargs in [
            (run_interchanged, {}),
            (run_interchanged, {"use_counters": True}),
            (run_interchanged, {"subtree_truncation": True}),
            (run_twisted, {}),
            (run_twisted, {"use_counters": True}),
            (run_twisted, {"subtree_truncation": False}),
            (run_twisted, {"cutoff": 3}),
        ]:
            points = run_schedule(run, spec, **kwargs)
            assert len(points) == len(set(points)), "duplicated iteration"
            assert set(points) == original, (run.__name__, kwargs)

    @given(outer=trees, inner=trees, blocked=blocked_pairs_strategy())
    def test_intra_traversal_order_preserved_irregular(
        self, outer, inner, blocked
    ):
        spec = make_spec(outer, inner, blocked)
        original_rows = rows(run_schedule(run_original, spec))
        for run in (run_interchanged, run_twisted):
            assert rows(run_schedule(run, spec)) == original_rows

    @given(outer=trees, inner=trees, blocked=blocked_pairs_strategy())
    def test_truncation_state_restored(self, outer, inner, blocked):
        spec = make_spec(outer, inner, blocked)
        run_twisted(spec)
        for node in outer.iter_preorder():
            assert node.trunc is False

    @given(tree=trees, blocked=blocked_pairs_strategy())
    def test_self_join_irregular_equivalence(self, tree, blocked):
        # Outer and inner may be the SAME tree (Section 3.2 allows it);
        # the flag/counter slots then live on shared nodes, and the
        # machinery must still reproduce the original's executed set.
        spec = make_spec(tree, tree, blocked)
        original = set(run_schedule(run_original, spec))
        for run, kwargs in [
            (run_interchanged, {}),
            (run_twisted, {}),
            (run_twisted, {"use_counters": True}),
        ]:
            points = run_schedule(run, spec, **kwargs)
            assert set(points) == original, (run.__name__, kwargs)
            assert len(points) == len(set(points))

    @given(outer=trees, inner=trees, blocked=blocked_pairs_strategy())
    def test_iterative_twist_exact_parity(self, outer, inner, blocked):
        # The explicit-stack executor is schedule-identical to the
        # recursive one on arbitrary shapes and truncation patterns.
        spec = make_spec(outer, inner, blocked)
        recursive = run_schedule(run_twisted, spec, subtree_truncation=False)
        iterative = run_schedule(run_twisted_iterative, spec)
        assert iterative == recursive

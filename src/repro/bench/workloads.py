"""Benchmark workload construction (the Section 6.1 inventory, scaled).

Each :class:`BenchmarkCase` packages one of the paper's six benchmarks:
a fresh-spec factory (state reset per run), an address-layout
registrar for the cache simulation, a per-work instruction weight
(calibrated from the paper's CPI discussion in Section 6.2), and a
result probe for cross-schedule correctness checks.

Input sizes are scaled versions of the paper's (DESIGN.md Section 2):
the paper needed 400K-1M points for working sets to exceed a 20 MB
LLC; we need a few thousand for working sets to exceed the scaled
simulated LLC, keeping the working-set : cache ratio in the same
regime.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

from repro.core.spec import NestedRecursionSpec
from repro.dualtree.algorithms import (
    KNearestNeighbors,
    NearestNeighbor,
    PointCorrelation,
    VPNearestNeighbors,
)
from repro.dualtree.kde import KernelDensity
from repro.dualtree.spatial import SpatialTree
from repro.kernels.matmul import MatrixMultiply
from repro.kernels.treejoin import TreeJoin
from repro.memory.costmodel import WorkCost
from repro.memory.layout import AddressMap, layout_tree
from repro.spaces.points import clustered_points


@dataclass
class BenchmarkCase:
    """One runnable (benchmark, input) configuration."""

    name: str
    make_spec: Callable[[], NestedRecursionSpec]
    register_layout: Callable[[AddressMap], None]
    work_cost: WorkCost
    result: Callable[[], object]
    description: str = ""


def register_spatial_layout(
    address_map: AddressMap,
    tree: SpatialTree,
    tree_id: str,
    point_bytes: int = 16,
    line_bytes: int = 64,
) -> None:
    """Register a spatial tree's nodes, sizing leaves by their points.

    Internal nodes are one line (the node struct with its bound);
    leaves additionally own their point data, so a leaf with 8 2-D
    points (16 bytes each) spans 1 + 2 = 3 lines.  Touching a leaf in
    a base case streams through all of its lines.
    """
    for node in tree.root.iter_preorder():
        lines = 1
        if node.is_leaf:
            lines += math.ceil(node.count * point_bytes / line_bytes)  # type: ignore[attr-defined]
        address_map.register((tree_id, node.number), lines)


def make_tj(num_nodes: int = 1200) -> BenchmarkCase:
    """Tree Join.  Paper input: 800K-node trees; scaled default 1200.

    TJ is memory-bound with almost no computation per iteration
    ("since TJ has low computational intensity, almost all of the time
    is spent fetching tree data"), so its work weight is minimal.
    """
    tj = TreeJoin(num_nodes, num_nodes)

    def register(address_map: AddressMap) -> None:
        layout_tree(address_map, tj.outer_root, "outer")
        layout_tree(address_map, tj.inner_root, "inner")

    return BenchmarkCase(
        name="TJ",
        make_spec=tj.make_spec,
        register_layout=register,
        work_cost=WorkCost(instructions=2.0),
        result=lambda: tj.result,
        description=f"tree join, two {num_nodes}-node balanced trees",
    )


def make_mm(n: int = 384, p: int = 8, lines_per_vector: int = 4) -> BenchmarkCase:
    """Matrix multiplication.  Paper input: 40000x40000; scaled n x n.

    The dot product of length ``p`` costs ~2p floating-point
    instructions per work point.
    """
    mm = MatrixMultiply(n=n, m=n, p=p, lines_per_vector=lines_per_vector)
    return BenchmarkCase(
        name="MM",
        make_spec=mm.make_spec,
        register_layout=mm.register_layout,
        work_cost=WorkCost(instructions=2.0 * p),
        result=lambda: float(mm.c.sum()),
        description=f"recursive matmul, {n}x{n} output, {p}-deep dot products",
    )


def make_pc(
    num_points: int = 8192,
    radius: float = 0.35,
    leaf_size: int = 8,
    seed: int = 7,
) -> BenchmarkCase:
    """Point correlation.  Paper input: 600K points; scaled default 4096.

    PC is the paper's most memory-bound benchmark (baseline CPI 6.7),
    so the per-iteration computation weight is small.  The paper input
    is 600K points; 8192 against the scaled machine sits in the same
    saturated-LLC regime (baseline L3 miss rate ~99%).
    """
    points = clustered_points(num_points, clusters=24, spread=0.05, seed=seed)
    pc = PointCorrelation(points, radius=radius, leaf_size=leaf_size)

    def register(address_map: AddressMap) -> None:
        register_spatial_layout(address_map, pc.query_tree, "outer")
        register_spatial_layout(address_map, pc.reference_tree, "inner")

    return BenchmarkCase(
        name="PC",
        make_spec=pc.make_spec,
        register_layout=register,
        work_cost=WorkCost(instructions=6.0),
        result=lambda: pc.result,
        description=f"2-point correlation, {num_points} points, r={radius}",
    )


def make_nn(
    num_points: int = 6144,
    leaf_size: int = 8,
    seed: int = 11,
) -> BenchmarkCase:
    """Nearest neighbor.  Paper input: 1M points; scaled default 4096."""
    queries = clustered_points(num_points, clusters=24, spread=0.05, seed=seed)
    references = clustered_points(num_points, clusters=24, spread=0.05, seed=seed + 1)
    nn = NearestNeighbor(queries, references, leaf_size=leaf_size)

    def register(address_map: AddressMap) -> None:
        register_spatial_layout(address_map, nn.query_tree, "outer")
        register_spatial_layout(address_map, nn.reference_tree, "inner")

    return BenchmarkCase(
        name="NN",
        make_spec=nn.make_spec,
        register_layout=register,
        work_cost=WorkCost(instructions=12.0),
        result=lambda: float(nn.rules.best_dist.sum()),
        description=f"dual-tree nearest neighbor, {num_points} queries",
    )


def make_knn(
    num_points: int = 3072,
    k: int = 5,
    leaf_size: int = 8,
    seed: int = 13,
) -> BenchmarkCase:
    """k-nearest neighbors (k=5, as in Section 6.1); kd-trees."""
    queries = clustered_points(num_points, clusters=24, spread=0.05, seed=seed)
    references = clustered_points(num_points, clusters=24, spread=0.05, seed=seed + 1)
    knn = KNearestNeighbors(queries, references, k=k, leaf_size=leaf_size)

    def register(address_map: AddressMap) -> None:
        register_spatial_layout(address_map, knn.query_tree, "outer")
        register_spatial_layout(address_map, knn.reference_tree, "inner")

    return BenchmarkCase(
        name="KNN",
        make_spec=knn.make_spec,
        register_layout=register,
        work_cost=WorkCost(instructions=30.0),
        result=lambda: float(knn.rules.kth_dist.sum()),
        description=f"dual-tree {k}-NN, {num_points} queries, kd-trees",
    )


def make_vp(
    num_points: int = 3072,
    k: int = 10,
    leaf_size: int = 8,
    seed: int = 17,
) -> BenchmarkCase:
    """k-NN over vantage-point trees (k=10, as in Section 6.1).

    VP is the paper's most compute-bound benchmark (baseline CPI 0.93:
    "there is enough computation to hide much of the effects of those
    cache misses"), hence the large work weight — this is what makes
    VP's speedup small despite a huge miss-rate reduction.
    """
    queries = clustered_points(num_points, clusters=24, spread=0.05, seed=seed)
    references = clustered_points(num_points, clusters=24, spread=0.05, seed=seed + 1)
    vp = VPNearestNeighbors(queries, references, k=k, leaf_size=leaf_size)

    def register(address_map: AddressMap) -> None:
        register_spatial_layout(address_map, vp.query_tree, "outer")
        register_spatial_layout(address_map, vp.reference_tree, "inner")

    return BenchmarkCase(
        name="VP",
        make_spec=vp.make_spec,
        register_layout=register,
        work_cost=WorkCost(instructions=220.0),
        result=lambda: float(vp.rules.kth_dist.sum()),
        description=f"dual-tree {k}-NN, {num_points} queries, vp-trees",
    )


def make_kde(
    num_points: int = 2048,
    bandwidth: float = 0.12,
    epsilon: float = 1e-3,
    leaf_size: int = 8,
    seed: int = 19,
) -> BenchmarkCase:
    """Approximate Gaussian KDE (the Section 7 dual-tree extension).

    KDE's ``Score`` is *stateful* — a pruned subtree contributes its
    center-estimate mass at prune time — which makes it the hardest
    case for deferred-work backends (every block truncation is a
    barrier) and the showcase for the SoA backend's inline mode.
    """
    queries = clustered_points(num_points, clusters=24, spread=0.05, seed=seed)
    references = clustered_points(
        num_points, clusters=24, spread=0.05, seed=seed + 1
    )
    kde = KernelDensity(
        queries,
        references,
        bandwidth=bandwidth,
        epsilon=epsilon,
        leaf_size=leaf_size,
    )

    def register(address_map: AddressMap) -> None:
        register_spatial_layout(address_map, kde.query_tree, "outer")
        register_spatial_layout(address_map, kde.reference_tree, "inner")

    return BenchmarkCase(
        name="KDE",
        make_spec=kde.make_spec,
        register_layout=register,
        work_cost=WorkCost(instructions=25.0),
        result=lambda: kde.result.tobytes(),
        description=f"dual-tree Gaussian KDE, {num_points} queries, "
        f"h={bandwidth}",
    )


def all_cases(scale: float = 1.0) -> list[BenchmarkCase]:
    """The six Section 6.1 benchmarks at a given size scale.

    ``scale`` multiplies the default input sizes; tests use small
    scales for speed, the benchmarks use 1.0.
    """

    def sized(default: int, minimum: int = 64) -> int:
        return max(minimum, int(default * scale))

    return [
        make_tj(sized(1200)),
        make_mm(sized(384)),
        make_pc(sized(8192)),
        make_nn(sized(6144)),
        make_knn(sized(3072)),
        make_vp(sized(3072)),
    ]


def wallclock_cases(scale: float = 1.0) -> list[BenchmarkCase]:
    """The wall-clock sweep's inventory: the six benchmarks plus KDE.

    The simulated-machine experiments stick to the paper's six
    (:func:`all_cases`); the backend comparison adds KDE because its
    stateful ``Score`` exercises the inline dispatch mode that the
    paper benchmarks never hit.
    """
    cases = all_cases(scale)
    cases.append(make_kde(max(64, int(2048 * scale))))
    return cases

"""The asyncio admission batcher (the service's front end).

Concurrent callers ``await submit(query)``; the batcher groups
pending queries by :func:`~repro.serve.protocol.group_key` and admits
a group as one service tick.  Execution is serialized **per group**
(at most one tick of a kind in flight), which makes the admission
policy self-tuning:

* while a group's tick is executing, newly admitted queries of that
  kind simply accumulate — the accumulation window is the tick's own
  execution time, so under load the next batch grows to (arrival rate
  x execution time) with no knob to tune;
* the moment a tick completes, the pending backlog is flushed as the
  next tick (in ``max_batch``-capped chunks) — the hold deadline is an
  *upper* bound on waiting, so admitting early is always allowed;
* an idle group (nothing in flight) flushes when either bound trips:
  ``max_batch`` queries pending (immediately), or ``max_hold_s``
  elapsed since the group's oldest pending query — a lone query on a
  quiet service never waits on traffic that may not come.

Without the per-group serialization the system has a degenerate
equilibrium under saturation: ticks execute for much longer than the
hold, completions arrive staggered, and each completion's resubmission
burst gets timer-flushed alone — tick sizes decay geometrically to ~1
and throughput collapses to per-query serial.  Flush-on-completion is
what removes that equilibrium; the load generator's tick-size
histogram is the regression witness.

A flush hands the chunk to ``run_batch`` (the service's
``execute_batch``) on an executor thread, then demuxes the returned
per-query results back onto the callers' futures.  NumPy holds the
interpreter only briefly inside the kernels, so the event loop keeps
admitting while a tick executes; different kinds still execute
concurrently.

The policy is deliberately the paper's Section 2 interchange worn as
an admission discipline: the "outer recursion" over user queries is
*materialized* per tick (a batch query tree) instead of executed one
query at a time, which is exactly the interchange the benchmarks
apply to nested traversals — see PAPER_MAP.md.
"""

from __future__ import annotations

import asyncio
from typing import Callable, Optional, Sequence

from repro.errors import SpecError
from repro.serve.protocol import Query, Result, group_key


class _PendingGroup:
    """One compatible kind: its backlog and in-flight state."""

    __slots__ = ("queries", "futures", "timer", "running")

    def __init__(self) -> None:
        self.queries: list[Query] = []
        self.futures: list[asyncio.Future] = []
        self.timer: Optional[asyncio.TimerHandle] = None
        self.running = 0


class AdmissionBatcher:
    """Group concurrent queries into service ticks.

    ``run_batch`` is a synchronous callable (queries -> results, in
    order); it runs on ``executor`` (``None`` = the loop's default
    thread pool).  Create the batcher *inside* the event loop that
    will use it.
    """

    def __init__(
        self,
        run_batch: Callable[[Sequence[Query]], list[Result]],
        max_batch: int = 256,
        max_hold_s: float = 0.002,
        executor=None,
    ) -> None:
        if max_batch < 1:
            raise SpecError(f"max_batch must be >= 1, got {max_batch}")
        if max_hold_s < 0:
            raise SpecError(f"max_hold_s must be >= 0, got {max_hold_s}")
        self.run_batch = run_batch
        self.max_batch = max_batch
        self.max_hold_s = max_hold_s
        self.executor = executor
        self._pending: dict[tuple, _PendingGroup] = {}
        self._inflight: set[asyncio.Task] = set()
        #: flush-size history counters
        self.ticks = 0
        self.queries = 0
        self.full_flushes = 0
        self.timer_flushes = 0
        self.completion_flushes = 0
        self.max_tick_size = 0

    async def submit(self, query: Query) -> Result:
        """Admit one query; resolves with its demuxed result."""
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        key = group_key(query)
        group = self._pending.get(key)
        if group is None:
            group = _PendingGroup()
            self._pending[key] = group
        group.queries.append(query)
        group.futures.append(future)
        if group.running == 0 and len(group.queries) >= self.max_batch:
            self.full_flushes += 1
            self._flush(key)
        elif group.timer is None:
            # Armed even while a tick is in flight: if the tick
            # outlives the hold, completion admits the backlog anyway
            # (earlier than the timer would); if the caller configured
            # a hold *longer* than the execution, the timer still
            # bounds the wait of a backlog the completion left behind.
            group.timer = loop.call_later(
                self.max_hold_s, self._timer_flush, key
            )
        return await future

    def _timer_flush(self, key: tuple) -> None:
        group = self._pending.get(key)
        if group is None:
            return
        group.timer = None
        if not group.queries or group.running > 0:
            # Busy backend: the hold deadline defers to the completion
            # flush, which cannot be further away than one tick.
            return
        self.timer_flushes += 1
        self._flush(key)

    def _flush(self, key: tuple) -> None:
        """Launch one ``max_batch``-capped chunk of the group's backlog."""
        group = self._pending.get(key)
        if group is None or not group.queries:
            return
        chunk_queries = group.queries[: self.max_batch]
        chunk_futures = group.futures[: self.max_batch]
        del group.queries[: self.max_batch]
        del group.futures[: self.max_batch]
        if group.timer is not None and not group.queries:
            group.timer.cancel()
            group.timer = None
        self.ticks += 1
        self.queries += len(chunk_queries)
        self.max_tick_size = max(self.max_tick_size, len(chunk_queries))
        group.running += 1
        task = asyncio.get_running_loop().create_task(
            self._execute(key, chunk_queries, chunk_futures)
        )
        self._inflight.add(task)
        task.add_done_callback(self._inflight.discard)

    async def _execute(
        self,
        key: tuple,
        queries: list[Query],
        futures: list[asyncio.Future],
    ) -> None:
        loop = asyncio.get_running_loop()
        try:
            try:
                results = await loop.run_in_executor(
                    self.executor, self.run_batch, queries
                )
                if len(results) != len(queries):
                    raise SpecError(
                        f"run_batch returned {len(results)} results for "
                        f"{len(queries)} queries"
                    )
            except BaseException as exc:
                for future in futures:
                    if not future.done():
                        future.set_exception(exc)
                return
            for future, result in zip(futures, results):
                if not future.done():
                    future.set_result(result)
        finally:
            self._on_complete(key)

    def _on_complete(self, key: tuple) -> None:
        group = self._pending.get(key)
        if group is None:
            return
        group.running -= 1
        if group.running == 0 and group.queries:
            # The backlog accumulated for the whole tick; admit it now
            # (the hold is a maximum, not a minimum).
            self.completion_flushes += 1
            self._flush(key)

    async def drain(self) -> None:
        """Flush everything pending and wait for in-flight ticks."""
        while True:
            for key in list(self._pending):
                group = self._pending[key]
                if group.running == 0 and group.queries:
                    self._flush(key)
            if not self._inflight:
                if any(g.queries for g in self._pending.values()):
                    continue
                return
            await asyncio.gather(
                *list(self._inflight), return_exceptions=True
            )

    def batcher_stats(self) -> dict:
        """Admission counters (ticks, sizes, flush causes)."""
        mean = self.queries / self.ticks if self.ticks else 0.0
        return {
            "ticks": self.ticks,
            "queries": self.queries,
            "mean_tick_size": round(mean, 2),
            "max_tick_size": self.max_tick_size,
            "full_flushes": self.full_flushes,
            "timer_flushes": self.timer_flushes,
            "completion_flushes": self.completion_flushes,
        }

"""Programmer annotations for the transformation tool.

The paper's prototype (Section 5) is annotation-driven: "Using
annotations, the programmer specifies the two nested recursive
functions."  In the Python tool the annotations are decorators that
attach marker metadata and return the function unchanged — the tool
reads them when scanning a module's source, and they are inert at run
time.

Example::

    from repro.transform import outer_recursion, inner_recursion

    @outer_recursion(inner="recurse_inner")
    def recurse_outer(o, i):
        if o is None:
            return
        recurse_inner(o, i)
        recurse_outer(o.left, i)
        recurse_outer(o.right, i)

    @inner_recursion
    def recurse_inner(o, i):
        if i is None:
            return
        join(o, i)
        recurse_inner(o, i.left)
        recurse_inner(o, i.right)
"""

from __future__ import annotations

from typing import Callable, TypeVar

F = TypeVar("F", bound=Callable)

#: Attribute name carrying the marker metadata.
ROLE_ATTR = "__twist_role__"


def outer_recursion(inner: str) -> Callable[[F], F]:
    """Mark a function as the outer recursion of a nested pair.

    ``inner`` names the inner recursive function the outer one calls.
    """
    if not isinstance(inner, str) or not inner:
        raise TypeError("outer_recursion requires the inner function's name")

    def mark(function: F) -> F:
        setattr(function, ROLE_ATTR, ("outer", inner))
        return function

    return mark


def inner_recursion(function: F) -> F:
    """Mark a function as the inner recursion of a nested pair."""
    setattr(function, ROLE_ATTR, ("inner", None))
    return function


def role_of(function: Callable) -> tuple[str, str | None] | None:
    """The marker metadata of a function, or ``None`` if unannotated."""
    return getattr(function, ROLE_ATTR, None)

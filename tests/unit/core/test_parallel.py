"""Unit tests for the Section 7.3 task-parallel extension."""

import pytest

from repro.core import (
    NestedRecursionSpec,
    WorkRecorder,
    run_original,
    run_task_parallel,
    spawn_tasks,
    task_spec,
)
from repro.core.schedules import ORIGINAL, TWIST
from repro.errors import ScheduleError
from repro.kernels import TreeJoin
from repro.spaces import balanced_tree, paper_inner_tree, paper_outer_tree


def paper_spec(**kwargs):
    return NestedRecursionSpec(paper_outer_tree(), paper_inner_tree(), **kwargs)


class TestSpawnTasks:
    def test_depth_zero_is_one_task(self):
        tasks = spawn_tasks(paper_spec(), 0)
        assert len(tasks) == 1
        assert tasks[0].outer_root.size == 7

    def test_depth_one_splits_root_and_children(self):
        tasks = spawn_tasks(paper_spec(), 1)
        # One single-node task for the root + one per child subtree.
        assert len(tasks) == 3
        assert sorted(task.outer_root.size for task in tasks) == [1, 3, 3]

    def test_tasks_partition_the_iteration_space(self):
        spec = paper_spec()
        reference = WorkRecorder()
        run_original(spec, instrument=reference)
        collected = []
        for task in spawn_tasks(spec, 2):
            recorder = WorkRecorder()
            run_original(task_spec(task), instrument=recorder)
            collected.extend(recorder.points)
        assert sorted(collected) == sorted(reference.points)

    def test_leaves_do_not_overspawn(self):
        tasks = spawn_tasks(paper_spec(), 10)  # deeper than the tree
        assert len(tasks) == 7  # one per outer node
        assert all(task.outer_root.size == 1 or task.outer_root.is_leaf
                   for task in tasks)

    def test_negative_depth_rejected(self):
        with pytest.raises(ScheduleError):
            spawn_tasks(paper_spec(), -1)

    def test_cost_estimate(self):
        tasks = spawn_tasks(paper_spec(), 1)
        assert {task.cost_estimate for task in tasks} == {7, 21}


class TestRunTaskParallel:
    def test_correct_result_under_twisting(self):
        tj = TreeJoin(63, 63)
        spec = tj.make_spec()
        run_task_parallel(spec, num_workers=4, spawn_depth=2, schedule=TWIST)
        assert tj.result == tj.expected_total()

    def test_makespan_at_most_total(self):
        report = run_task_parallel(paper_spec(), num_workers=3, spawn_depth=2)
        assert 0 < report.makespan <= report.total_cycles
        assert report.parallel_speedup >= 1.0

    def test_single_worker_equals_sequential_total(self):
        report = run_task_parallel(paper_spec(), num_workers=1, spawn_depth=2)
        assert report.makespan == report.total_cycles
        assert report.parallel_speedup == 1.0

    def test_more_workers_never_slower(self):
        spec_factory = lambda: NestedRecursionSpec(
            balanced_tree(127), balanced_tree(127)
        )
        one = run_task_parallel(spec_factory(), num_workers=1, spawn_depth=3)
        four = run_task_parallel(spec_factory(), num_workers=4, spawn_depth=3)
        assert four.makespan <= one.makespan
        assert four.parallel_speedup > 2.0  # decent load balance

    def test_work_conserved_across_workers(self):
        report = run_task_parallel(paper_spec(), num_workers=2, spawn_depth=2)
        assert report.total_cycles == 49  # default cost = work points

    def test_per_worker_instruments(self):
        recorders = [WorkRecorder(), WorkRecorder()]
        run_task_parallel(
            paper_spec(), num_workers=2, spawn_depth=2, instruments=recorders
        )
        merged = recorders[0].points + recorders[1].points
        assert len(merged) == 49
        assert len(recorders[0].points) > 0 and len(recorders[1].points) > 0

    def test_validation(self):
        with pytest.raises(ScheduleError):
            run_task_parallel(paper_spec(), num_workers=0)
        with pytest.raises(ScheduleError):
            run_task_parallel(paper_spec(), num_workers=2, instruments=[WorkRecorder()])

    def test_irregular_truncation_inside_tasks(self):
        spec = paper_spec(
            truncate_inner2=lambda o, i: o.label == "B" and i.label == 2
        )
        seen = []
        recorders = [WorkRecorder(), WorkRecorder(), WorkRecorder()]
        run_task_parallel(
            spec, num_workers=3, spawn_depth=2, schedule=TWIST,
            instruments=recorders,
        )
        for recorder in recorders:
            seen.extend(recorder.points)
        assert len(seen) == 46
        assert ("B", 2) not in set(seen)

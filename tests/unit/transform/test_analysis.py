"""Unit tests for irregular-truncation analysis."""

import pytest

from repro.errors import TransformError
from repro.transform import analyze_truncation, recognize


def template_with_guard(guard: str):
    source = f'''
def outer(o, i):
    if o is None:
        return
    inner(o, i)
    outer(o.left, i)

def inner(o, i):
    if {guard}:
        return
    work(o, i)
    inner(o, i.left)
'''
    return recognize(source, "outer", "inner")


class TestClassification:
    def test_pure_inner_guard_is_regular(self):
        analysis = analyze_truncation(template_with_guard("i is None"))
        assert not analysis.is_irregular
        assert analysis.inner1_source() == "i is None"
        assert analysis.inner2_source() == "False"

    def test_mixed_guard_is_irregular(self):
        analysis = analyze_truncation(
            template_with_guard("i is None or too_far(o, i)")
        )
        assert analysis.is_irregular
        assert analysis.inner1_source() == "i is None"
        assert analysis.inner2_source() == "too_far(o, i)"

    def test_multiple_disjuncts_grouped(self):
        analysis = analyze_truncation(
            template_with_guard(
                "i is None or i.depth > 5 or prune(o, i) or far(o, i)"
            )
        )
        assert analysis.inner1_source() == "i is None or i.depth > 5"
        assert analysis.inner2_source() == "prune(o, i) or far(o, i)"

    def test_index_free_disjunct_is_regular(self):
        analysis = analyze_truncation(
            template_with_guard("i is None or GLOBAL_DISABLE")
        )
        assert not analysis.is_irregular
        assert "GLOBAL_DISABLE" in analysis.inner1_source()

    def test_outer_only_disjunct_rejected(self):
        with pytest.raises(TransformError, match="depends only on the outer"):
            analyze_truncation(template_with_guard("i is None or o.skip"))

    def test_non_or_shapes_are_one_unit(self):
        # An 'and' at top level mentioning both indices: one irregular
        # unit, nothing split.
        analysis = analyze_truncation(
            template_with_guard("i is None or (bad(i) and bad2(o))")
        )
        assert analysis.is_irregular
        assert analysis.inner2_source() == "bad(i) and bad2(o)"


class TestGuardAliases:
    """Regression: walrus aliases of the index parameters (the old
    ``_mentions`` name-equality test was blind to them, silently
    misfiling irregular disjuncts into the regular bucket)."""

    def test_walrus_alias_of_outer_makes_disjunct_irregular(self):
        analysis = analyze_truncation(
            template_with_guard("i is None or ((oo := o) is not None and far(oo, i))")
        )
        assert analysis.is_irregular
        assert "far(oo, i)" in analysis.inner2_source()

    def test_walrus_alias_of_inner_stays_regular(self):
        analysis = analyze_truncation(
            template_with_guard("(ii := i) is None or ii.depth > 5")
        )
        assert not analysis.is_irregular

    def test_transitive_alias_chain_resolved(self):
        analysis = analyze_truncation(
            template_with_guard(
                "i is None or ((a := o) is not None and (b := a) is not None and far(b, i))"
            )
        )
        assert analysis.is_irregular

    def test_alias_of_outer_only_disjunct_still_rejected(self):
        # The alias must not launder an outer-only disjunct past TW003.
        with pytest.raises(TransformError, match="depends only on the outer"):
            analyze_truncation(
                template_with_guard(
                    "i is None or ((oo := o) is not None and oo.skip)"
                )
            )

    def test_guard_aliases_helper(self):
        import ast

        from repro.transform.analysis import guard_aliases

        expr = ast.parse("(a := o) and (b := a) and (c := other)", mode="eval").body
        aliases = guard_aliases(expr, ("o", "i"))
        assert aliases == {"a": "o", "b": "o"}

    def test_mentions_is_alias_aware(self):
        import ast

        from repro.transform.analysis import _mentions

        expr = ast.parse("far(oo, i)", mode="eval").body
        assert not _mentions(expr, "o")
        assert _mentions(expr, "o", {"oo": "o"})

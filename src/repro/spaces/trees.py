"""Tree builders for recursive iteration spaces.

The paper's evaluation uses several tree shapes:

* perfect binary trees (the worked examples of Figures 1 and 4 use
  7-node perfect trees labeled ``A..G`` and ``1..7``);
* roughly balanced binary trees of arbitrary node count (Tree Join runs
  on 800K-node trees; any node count must be supported, not just
  ``2^k - 1``);
* *list trees* — each node has exactly one child — under which the
  nested recursion template "devolves into a doubly-nested loop"
  (Section 2.1), used by the loop-conversion kernel of Section 7.2;
* random binary trees, used by the property-based tests to check that
  schedule equivalence does not secretly rely on balance.

All builders return a root whose ``size`` and pre-order ``number``
fields have been populated via :func:`~repro.spaces.node.finalize_tree`.
"""

from __future__ import annotations

import random
import string
from typing import Any, Callable, Optional, Sequence

from repro.spaces.node import TreeNode, finalize_tree


def perfect_tree(
    depth: int,
    labeler: Optional[Callable[[int], Any]] = None,
    data: Optional[Callable[[int], Any]] = None,
) -> TreeNode:
    """Build a perfect binary tree of the given depth (>= 1).

    Nodes are labeled in BFS (level) order starting from 0 unless a
    ``labeler`` is given; a perfect tree of depth ``d`` has ``2^d - 1``
    nodes.  ``data(label_index)`` supplies payloads.
    """
    if depth < 1:
        raise ValueError("perfect_tree requires depth >= 1")
    count = (1 << depth) - 1
    return balanced_tree(count, labeler=labeler, data=data)


def balanced_tree(
    num_nodes: int,
    labeler: Optional[Callable[[int], Any]] = None,
    data: Optional[Callable[[int], Any]] = None,
) -> TreeNode:
    """Build a complete (heap-shaped) binary tree with ``num_nodes`` nodes.

    Node ``k`` (BFS order, 0-based) has children ``2k+1`` and ``2k+2``
    where those indices are in range, giving the canonical "as balanced
    as possible" shape.  Labels default to the BFS index.
    """
    if num_nodes < 1:
        raise ValueError("balanced_tree requires num_nodes >= 1")
    labeler = labeler or (lambda k: k)
    data = data or (lambda k: None)
    nodes = [TreeNode(labeler(k), data(k)) for k in range(num_nodes)]
    for k, node in enumerate(nodes):
        children = []
        if 2 * k + 1 < num_nodes:
            children.append(nodes[2 * k + 1])
        if 2 * k + 2 < num_nodes:
            children.append(nodes[2 * k + 2])
        node.children = tuple(children)
    root = nodes[0]
    finalize_tree(root)
    return root


def list_tree(
    num_nodes: int,
    labeler: Optional[Callable[[int], Any]] = None,
    data: Optional[Callable[[int], Any]] = None,
) -> TreeNode:
    """Build a degenerate tree where every node has one child.

    Under a list tree the recursion template is exactly a ``for`` loop
    over ``num_nodes`` index values (Section 2.1's closing analogy),
    which makes these trees the bridge between loop nests and recursive
    iteration spaces (see :mod:`repro.kernels.loops`).
    """
    if num_nodes < 1:
        raise ValueError("list_tree requires num_nodes >= 1")
    labeler = labeler or (lambda k: k)
    data = data or (lambda k: None)
    nodes = [TreeNode(labeler(k), data(k)) for k in range(num_nodes)]
    for k in range(num_nodes - 1):
        nodes[k].children = (nodes[k + 1],)
    root = nodes[0]
    finalize_tree(root)
    return root


def random_tree(
    num_nodes: int,
    seed: int = 0,
    labeler: Optional[Callable[[int], Any]] = None,
    data: Optional[Callable[[int], Any]] = None,
) -> TreeNode:
    """Build a random binary tree by uniform random insertion order.

    Each new node is attached to a uniformly chosen free child slot of
    the existing tree, producing shapes between balanced and degenerate.
    Deterministic for a given ``seed``.
    """
    if num_nodes < 1:
        raise ValueError("random_tree requires num_nodes >= 1")
    rng = random.Random(seed)
    labeler = labeler or (lambda k: k)
    data = data or (lambda k: None)
    nodes = [TreeNode(labeler(k), data(k)) for k in range(num_nodes)]
    # children stored mutably during construction: [left, right]
    slots: list[list[Optional[TreeNode]]] = [[None, None] for _ in range(num_nodes)]
    # (node_index, child_position) pairs that are still free
    free: list[tuple[int, int]] = [(0, 0), (0, 1)]
    for k in range(1, num_nodes):
        pick = rng.randrange(len(free))
        free[pick], free[-1] = free[-1], free[pick]
        parent, position = free.pop()
        slots[parent][position] = nodes[k]
        free.append((k, 0))
        free.append((k, 1))
    for k, node in enumerate(nodes):
        node.children = tuple(child for child in slots[k] if child is not None)
    root = nodes[0]
    finalize_tree(root)
    return root


def tree_from_nested(spec: Any) -> TreeNode:
    """Build a tree from a nested ``(label, left, right)`` description.

    ``spec`` is either a bare label (leaf) or a tuple
    ``(label, left_spec_or_None, right_spec_or_None)``.  Convenient for
    writing the exact small trees used in the paper's figures::

        tree_from_nested(("A", ("B", "C", "D"), ("E", "F", "G")))
    """
    if not isinstance(spec, tuple):
        node = TreeNode(spec)
        finalize_tree(node)
        return node

    def build(item: Any) -> TreeNode:
        if not isinstance(item, tuple):
            return TreeNode(item)
        label, left, right = item
        node = TreeNode(label)
        children = []
        if left is not None:
            children.append(build(left))
        if right is not None:
            children.append(build(right))
        node.children = tuple(children)
        return node

    root = build(spec)
    finalize_tree(root)
    return root


def paper_outer_tree() -> TreeNode:
    """The 7-node outer tree of Figure 1(b), labeled ``A..G``.

    Shape: A is the root, B/E its children, with leaves C, D under B and
    F, G under E — the depth-first pre-order is A, B, C, D, E, F, G.
    """
    return tree_from_nested(("A", ("B", "C", "D"), ("E", "F", "G")))


def paper_inner_tree() -> TreeNode:
    """The 7-node inner tree of Figure 1(b), labeled ``1..7``.

    Pre-order traversal visits 1, 2, 3, 4, 5, 6, 7, matching the
    column order of the Figure 1(c) iteration space.
    """
    return tree_from_nested((1, (2, 3, 4), (5, 6, 7)))


def letter_labeler(index: int) -> str:
    """Spreadsheet-style labels: 0 -> 'A', 25 -> 'Z', 26 -> 'AA', ...

    Used by examples and tests that want paper-style alphabetic labels
    on trees larger than 26 nodes.
    """
    letters = []
    index += 1
    while index > 0:
        index, rem = divmod(index - 1, 26)
        letters.append(string.ascii_uppercase[rem])
    return "".join(reversed(letters))


def relabel_preorder(root: TreeNode, labels: Optional[Sequence[Any]] = None) -> TreeNode:
    """Overwrite node labels in pre-order (default: 0, 1, 2, ...).

    Useful when a test wants labels that coincide with the pre-order
    ``number`` field, e.g. to cross-check the Section 4.3 numbering.
    """
    for k, node in enumerate(root.iter_preorder()):
        node.label = labels[k] if labels is not None else k  # type: ignore[attr-defined]
    return root

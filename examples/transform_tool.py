#!/usr/bin/env python
"""The source-to-source transformation tool on annotated code (§5).

Write the nested recursion the natural way, annotate it, and let the
tool synthesize the interchanged and twisted versions — including the
Figure 6(b) truncation-flag code, because this example's inner guard
depends on the outer index (irregular truncation).

Run:  python examples/transform_tool.py
"""

from repro.spaces import paper_inner_tree, paper_outer_tree
from repro.transform import transform_annotated_source

# The programmer's code: the Figure 1(a) tree join, with the Section 4
# irregular truncation example wired in (skip inner subtree 2 for outer
# node B).  Annotations mark the nested pair for the tool.
USER_SOURCE = '''
from repro.transform import outer_recursion, inner_recursion

@outer_recursion(inner="recurse_inner")
def recurse_outer(o, i):
    if o is None:
        return
    recurse_inner(o, i)
    recurse_outer(o.left, i)
    recurse_outer(o.right, i)

@inner_recursion
def recurse_inner(o, i):
    if i is None or (o.label == "B" and i.label == 2):
        return
    join(o, i)
    recurse_inner(o, i.left)
    recurse_inner(o, i.right)
'''


def main() -> None:
    result = transform_annotated_source(USER_SOURCE)
    print(f"recognized pair: {result.template.outer_name} / "
          f"{result.template.inner_name}")
    print(f"irregular truncation detected: {result.is_irregular}")
    print(f"  truncateInner1? part: {result.analysis.inner1_source()}")
    print(f"  truncateInner2? part: {result.analysis.inner2_source()}")
    print("\n--- generated module ---")
    print(result.source)

    # Execute all three schedules and confirm they perform the same
    # iterations (46 points: the full 49 minus (B,2),(B,3),(B,4)).
    executed: list[tuple[str, int]] = []
    namespace = result.compile({"join": lambda o, i: executed.append((o.label, i.label))})

    outer, inner = paper_outer_tree(), paper_inner_tree()
    runs = {}
    for entry in ("recurse_outer", "recurse_outer_swapped", "recurse_outer_twisted"):
        executed.clear()
        getattr(namespace, entry)(outer, inner)
        runs[entry] = set(executed)
        print(f"{entry}: {len(executed)} iterations")
    assert runs["recurse_outer"] == runs["recurse_outer_swapped"] == runs[
        "recurse_outer_twisted"
    ], "schedules disagree on the executed iteration set"
    assert len(runs["recurse_outer"]) == 46
    print("\nall schedules execute the same 46-point irregular space: OK")


if __name__ == "__main__":
    main()

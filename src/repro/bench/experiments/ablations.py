"""Ablation studies for the design choices the paper motivates.

Three ablations, each isolating one mechanism:

* **Truncation machinery (Section 4.3)** — Figure 6(b) flags vs the
  counter optimization, on PC.  The paper's motivation: the flag
  version's unset loops cost instructions *and* touch outer nodes a
  second time; counters remove both.  Measured: bookkeeping op counts,
  weighted instructions, and modeled cycles.
* **Subtree truncation (Section 4.2)** — twisting with and without the
  early cut-off, measured in visits and cycles (the in-text numbers of
  Section 4.2 report visits only).
* **Layout robustness (Section 8 scoping)** — the paper claims
  twisting targets *temporal* locality, complementary to layout
  transformations.  If that is true, its win must survive any node
  layout: we run TJ under pre-order, BFS, and randomized layouts.
"""

from __future__ import annotations

from repro.bench.machine import bench_hierarchy
from repro.bench.reporting import ExperimentReport, percent
from repro.bench.runner import run_case
from repro.bench.workloads import BenchmarkCase, make_pc
from repro.core.schedules import (
    ORIGINAL,
    TWIST,
    TWIST_COUNTERS,
    TWIST_NO_SUBTREE,
)
from repro.kernels.treejoin import TreeJoin
from repro.memory.costmodel import WorkCost
from repro.memory.counters import PerfReport, instruction_overhead, speedup
from repro.memory.layout import AddressMap, layout_tree


def run_truncation_ablation(
    num_points: int = 4096,
) -> tuple[ExperimentReport, dict[str, PerfReport]]:
    """Flags vs counters vs no-subtree-truncation, on PC."""
    case = make_pc(num_points=num_points)
    runs = {
        "original": run_case(case, ORIGINAL, bench_hierarchy),
        "twist (flags)": run_case(case, TWIST, bench_hierarchy),
        "twist (counters)": run_case(case, TWIST_COUNTERS, bench_hierarchy),
        "twist (no subtree trunc)": run_case(
            case, TWIST_NO_SUBTREE, bench_hierarchy
        ),
    }
    baseline = runs["original"]
    report = ExperimentReport(
        title=f"Ablation (Section 4.3): truncation machinery on PC "
        f"({num_points} points)",
        columns=[
            "configuration",
            "flag/counter ops",
            "instr overhead",
            "speedup",
        ],
    )
    for name, run in runs.items():
        if name == "original":
            continue
        bookkeeping = sum(
            run.op_counts.get(kind, 0)
            for kind in (
                "flag_check",
                "flag_set",
                "flag_unset",
                "counter_check",
                "counter_set",
            )
        )
        report.add_row(
            name,
            bookkeeping,
            percent(instruction_overhead(baseline, run)),
            f"{speedup(baseline, run):.2f}x",
        )
    flags = runs["twist (flags)"]
    counters = runs["twist (counters)"]
    report.add_note(
        "Section 4.3's claim: counters eliminate the unset loops "
        f"(flag_unset: {flags.op_counts.get('flag_unset', 0):,d} -> "
        f"{counters.op_counts.get('flag_unset', 0):,d})"
    )
    return report, runs


def _tj_case_with_layout(num_nodes: int, policy: str, seed: int = 0) -> BenchmarkCase:
    """A Tree Join case whose trees use the given layout policy."""
    tj = TreeJoin(num_nodes, num_nodes)

    def register(address_map: AddressMap) -> None:
        layout_tree(address_map, tj.outer_root, "outer", policy=policy, seed=seed)
        layout_tree(address_map, tj.inner_root, "inner", policy=policy, seed=seed + 1)

    return BenchmarkCase(
        name=f"TJ/{policy}",
        make_spec=tj.make_spec,
        register_layout=register,
        work_cost=WorkCost(instructions=2.0),
        result=lambda: tj.result,
        description=f"tree join, {num_nodes}-node trees, {policy} layout",
    )


def run_layout_ablation(
    num_nodes: int = 1000,
) -> tuple[ExperimentReport, dict[str, tuple[PerfReport, PerfReport]]]:
    """Twisting speedup under pre-order, BFS, and random layouts."""
    report = ExperimentReport(
        title=f"Ablation: layout robustness of twisting (TJ, {num_nodes} nodes)",
        columns=["layout", "speedup", "L3 base", "L3 twist"],
    )
    data: dict[str, tuple[PerfReport, PerfReport]] = {}
    for policy in ("preorder", "bfs", "random"):
        case = _tj_case_with_layout(num_nodes, policy)
        baseline = run_case(case, ORIGINAL, bench_hierarchy)
        twisted = run_case(case, TWIST, bench_hierarchy)
        data[policy] = (baseline, twisted)
        report.add_row(
            policy,
            f"{speedup(baseline, twisted):.2f}x",
            percent(baseline.miss_rate("L3")),
            percent(twisted.miss_rate("L3")),
        )
    report.add_note(
        "twisting targets temporal locality: the win is layout-invariant "
        "(layout transformations are complementary, Section 8)"
    )
    return report, data

"""Explicit-stack recursion twisting for very deep iteration spaces.

The recursive :func:`~repro.core.twisting.run_twisted` mirrors the
paper's Figure 4(a) directly, but its call depth is the sum of the two
tree depths — for degenerate (list-shaped) trees, the Section 2.1
loop-equivalence case, that means tens of thousands of CPython frames
and a raised recursion limit flirting with C-stack exhaustion.  This
executor runs the *identical schedule* (same work order, same
instrumentation event stream — the tests assert byte-for-byte parity)
on an explicit work stack.

Supported configurations: flags or counters for irregular truncation,
optional cutoff.  The Section 4.2 *subtree truncation* optimization is
not supported here: it needs post-order aggregation of the
"all-truncated" signal through the traversal, which the recursive form
expresses naturally; deep-space users can simply leave it off (it only
affects visit counts, never results).
"""

from __future__ import annotations

from typing import Optional

from repro.core.instruments import NULL_INSTRUMENT, Instrument
from repro.core.spec import INNER_TREE, OUTER_TREE, NestedRecursionSpec
from repro.core.truncation import make_policy

# Work-stack entry tags.
_DISPATCH_REGULAR = 0  # decide regular-vs-swapped for an outer child
_DISPATCH_SWAPPED = 1  # decide swapped-vs-regular for an inner child
_RUN_REGULAR = 2  # execute a regular-order block
_RUN_SWAPPED = 3  # execute a swapped-order block
_CLOSE_PHASE = 4  # release a truncation phase's flags


def run_twisted_iterative(
    spec: NestedRecursionSpec,
    instrument: Optional[Instrument] = None,
    cutoff: Optional[int] = None,
    use_counters: bool = False,
) -> None:
    """Recursion twisting without native recursion.

    Produces exactly the event stream of ``run_twisted(spec,
    instrument, cutoff=cutoff, use_counters=use_counters,
    subtree_truncation=False)``.
    """
    ins = instrument or NULL_INSTRUMENT
    policy = make_policy(spec, use_counters)
    irregular = spec.is_irregular
    truncate_outer = spec.truncate_outer
    truncate_inner1 = spec.truncate_inner1
    truncate_inner2 = spec.truncate_inner2
    work = spec.work
    ins_op = ins.op
    ins_access = ins.access
    ins_work = ins.work

    def run_inner_regular(o, i_root) -> None:
        # The regular-order inner traversal (original semantics),
        # iteratively: identical event order to the recursive version.
        stack = [i_root]
        while stack:
            i = stack.pop()
            ins_op("call")
            ins_op("trunc_check")
            if truncate_inner1(i):
                continue
            ins_op("visit")
            if irregular:
                ins_op("trunc_check")
                if truncate_inner2(o, i):
                    continue
            ins_access(INNER_TREE, i)
            ins_access(OUTER_TREE, o)
            ins_work(o, i)
            if work is not None:
                work(o, i)
            stack.extend(reversed(i.children))

    def run_inner_swapped(o_root, i, frame) -> None:
        # The swapped-order inner traversal over the outer subtree,
        # with the flag/counter machinery.
        stack = [o_root]
        while stack:
            o = stack.pop()
            ins_op("call")
            ins_op("trunc_check")
            if truncate_outer(o):
                continue
            ins_op("visit")
            if irregular:
                skipped = policy.check_and_mark(o, i, frame, ins)
            else:
                skipped = False
            if not skipped:
                ins_access(INNER_TREE, i)
                ins_access(OUTER_TREE, o)
                ins_work(o, i)
                if work is not None:
                    work(o, i)
            stack.extend(reversed(o.children))

    spec.reset_truncation_state()
    stack: list[tuple] = [(_RUN_REGULAR, spec.outer_root, spec.inner_root)]
    while stack:
        entry = stack.pop()
        tag = entry[0]

        if tag == _RUN_REGULAR:
            _tag, o, i = entry
            ins_op("call")
            ins_op("trunc_check")
            if truncate_outer(o):
                continue
            if not (irregular and policy.subtree_truncated(o, i, ins)):
                run_inner_regular(o, i)
            for child in reversed(o.children):
                stack.append((_DISPATCH_REGULAR, child, i))

        elif tag == _DISPATCH_REGULAR:
            _tag, child, i = entry
            ins_op("size_compare")
            if child.size <= i.size and (cutoff is None or i.size > cutoff):
                ins_op("twist")
                stack.append((_RUN_SWAPPED, child, i))
            else:
                stack.append((_RUN_REGULAR, child, i))

        elif tag == _RUN_SWAPPED:
            _tag, o, i = entry
            ins_op("call")
            ins_op("trunc_check")
            if truncate_inner1(i):
                continue
            frame = policy.open_phase()
            run_inner_swapped(o, i, frame)
            # Close the phase after the children complete: push it
            # below the child dispatches.
            stack.append((_CLOSE_PHASE, frame))
            for child in reversed(i.children):
                stack.append((_DISPATCH_SWAPPED, o, child))

        elif tag == _DISPATCH_SWAPPED:
            _tag, o, child = entry
            ins_op("size_compare")
            if child.size <= o.size:
                ins_op("twist")
                stack.append((_RUN_REGULAR, o, child))
            else:
                stack.append((_RUN_SWAPPED, o, child))

        else:  # _CLOSE_PHASE
            policy.close_phase(entry[1], ins)

"""Unit tests for the auto-backend perf-floor CI gate."""

import json

from repro.bench.perf_floor import (
    DEFAULT_FLOOR,
    check_compiled_floor,
    check_parallel_floor,
    check_perf_floor,
    check_serve_floor,
    main,
)


def entry(benchmark="TJ", schedule="twist", **overrides):
    base = {
        "benchmark": benchmark,
        "schedule": schedule,
        "results_match": True,
        "timings": {
            "recursive": 1.0,
            "batched": 0.5,
            "soa": 0.25,
            "auto": 0.26,
        },
    }
    base.update(overrides)
    return base


def payload(*entries):
    return {"experiment": "wallclock_backends", "results": list(entries)}


class TestCheckPerfFloor:
    def test_passes_when_auto_tracks_best(self):
        assert check_perf_floor(payload(entry())) == []

    def test_flags_auto_falling_below_floor(self):
        slow = entry(
            timings={"recursive": 1.0, "soa": 0.25, "auto": 0.5}
        )
        violations = check_perf_floor(payload(slow))
        assert len(violations) == 1
        assert "TJ/twist" in violations[0]
        assert "soa" in violations[0]

    def test_floor_is_a_ratio_of_the_best_single_backend(self):
        # auto at 80% of best passes a 0.75 floor but fails 0.9.
        borderline = entry(
            timings={"recursive": 1.0, "soa": 0.4, "auto": 0.5}
        )
        assert check_perf_floor(payload(borderline), floor=0.75) == []
        assert check_perf_floor(payload(borderline), floor=DEFAULT_FLOOR)

    def test_result_mismatch_always_violates(self):
        violations = check_perf_floor(payload(entry(results_match=False)))
        assert violations == ["TJ/twist: backend results mismatch"]

    def test_entries_without_auto_are_skipped(self):
        filtered = entry(timings={"recursive": 1.0, "soa": 0.25})
        assert check_perf_floor(payload(filtered)) == []

    def test_empty_payload_passes(self):
        assert check_perf_floor({}) == []

    def test_refused_backend_timings_are_ignored(self):
        # A refused backend is recorded as None; the floor compares
        # auto against the backends that actually ran.
        refused = entry(
            timings={
                "recursive": 1.0,
                "soa": 0.25,
                "compiled": None,
                "auto": 0.26,
            },
            refused={"compiled": "not lowerable"},
        )
        assert check_perf_floor(payload(refused)) == []


def compiled_entry(benchmark="TJ", schedule="original", **overrides):
    base = {
        "benchmark": benchmark,
        "schedule": schedule,
        "results_match": True,
        "timings": {"recursive": 1.0, "soa": 0.25, "compiled": 0.1},
    }
    base.update(overrides)
    return base


def compiled_payload(*entries, cpu_count=8, numba=True):
    return {
        "experiment": "wallclock_backends",
        "host": {"cpu_count": cpu_count, "numba": numba},
        "results": list(entries),
    }


class TestCheckCompiledFloor:
    def test_passes_when_compiled_clears_the_floor(self):
        violations, skips = check_compiled_floor(
            compiled_payload(compiled_entry(), compiled_entry("MM"))
        )
        assert violations == []
        assert skips == []

    def test_slow_compiled_violates(self):
        violations, _ = check_compiled_floor(
            compiled_payload(
                compiled_entry(
                    timings={"recursive": 1.0, "soa": 0.25, "compiled": 0.24}
                )
            )
        )
        assert len(violations) == 1
        assert "1.04x" in violations[0]

    def test_refusal_on_a_floor_benchmark_always_violates(self):
        # Even on a starved host: TJ/MM regressing below 'lowerable'
        # is a correctness-of-gating failure, not a speed failure.
        violations, _ = check_compiled_floor(
            compiled_payload(
                compiled_entry(
                    timings={"recursive": 1.0, "soa": 0.25, "compiled": None},
                    refused={"compiled": "verdict regressed"},
                ),
                cpu_count=1,
                numba=False,
            )
        )
        assert len(violations) == 1
        assert "refused" in violations[0]

    def test_starved_host_skips_speed_but_not_correctness(self):
        slow = compiled_entry(
            timings={"recursive": 1.0, "soa": 0.25, "compiled": 0.3}
        )
        violations, skips = check_compiled_floor(
            compiled_payload(slow, cpu_count=1, numba=False)
        )
        assert violations == []
        assert len(skips) == 1 and "not importable" in skips[0]
        mismatch = compiled_entry(results_match=False)
        violations, _ = check_compiled_floor(
            compiled_payload(mismatch, cpu_count=1, numba=False)
        )
        assert violations == ["TJ/original: backend results mismatch"]

    def test_non_floor_benchmarks_carry_no_speed_number(self):
        slow_gram = compiled_entry(
            "KDE", timings={"recursive": 1.0, "soa": 0.2, "compiled": 0.4}
        )
        assert check_compiled_floor(compiled_payload(slow_gram)) == ([], [])

    def test_host_overrides_beat_the_payload(self):
        slow = compiled_entry(
            timings={"recursive": 1.0, "soa": 0.25, "compiled": 0.3}
        )
        violations, _ = check_compiled_floor(
            compiled_payload(slow, cpu_count=1, numba=False),
            host_cpu_count=8,
            host_numba=True,
        )
        assert len(violations) == 1


def parallel_run(engine="process", workers=4, speedup=2.1, match=True):
    return {
        "engine": engine,
        "workers": workers,
        "seconds": 0.05,
        "speedup_vs_serial_soa": speedup,
        "parallel_efficiency": round(speedup / workers, 3),
        "results_match": match,
    }


def parallel_entry(benchmark="TJ", schedule="original", runs=None):
    return {
        "benchmark": benchmark,
        "schedule": schedule,
        "serial_soa_s": 0.1,
        "runs": [parallel_run()] if runs is None else runs,
    }


def parallel_payload(*entries, cpu_count=8):
    return {
        "experiment": "wallclock_parallel",
        "host": {"cpu_count": cpu_count},
        "results": list(entries),
    }


class TestCheckParallelFloor:
    def test_passes_when_speedup_clears_the_floor(self):
        violations, skips = check_parallel_floor(
            parallel_payload(parallel_entry(), parallel_entry("MM"))
        )
        assert violations == []
        assert skips == []

    def test_slow_four_worker_process_row_violates(self):
        violations, _ = check_parallel_floor(
            parallel_payload(
                parallel_entry(runs=[parallel_run(speedup=1.1)])
            )
        )
        assert len(violations) == 1
        assert "1.10x" in violations[0]

    def test_undersized_host_skips_speed_but_not_correctness(self):
        payload = parallel_payload(
            parallel_entry(runs=[parallel_run(speedup=0.4)]),
            cpu_count=1,
        )
        violations, skips = check_parallel_floor(payload)
        assert violations == []
        assert len(skips) == 1 and "1 core" in skips[0]
        bad = parallel_payload(
            parallel_entry(
                runs=[parallel_run(speedup=0.4, match=False)]
            ),
            cpu_count=1,
        )
        violations, _ = check_parallel_floor(bad)
        assert len(violations) == 1
        assert "diverge" in violations[0]

    def test_result_mismatch_violates_on_every_benchmark(self):
        payload = parallel_payload(
            parallel_entry(
                "NN", runs=[parallel_run("thread", 2, 0.7, match=False)]
            )
        )
        violations, _ = check_parallel_floor(payload)
        assert len(violations) == 1
        assert "NN/original" in violations[0]

    def test_irregular_benchmarks_carry_no_speed_floor(self):
        payload = parallel_payload(
            parallel_entry("PC", runs=[parallel_run(speedup=0.5)])
        )
        assert check_parallel_floor(payload) == ([], [])

    def test_twist_entries_only_gate_correctness(self):
        payload = parallel_payload(
            parallel_entry(schedule="twist", runs=[parallel_run(speedup=0.5)])
        )
        assert check_parallel_floor(payload) == ([], [])


def serve_run(
    qps=1000.0, p99=5.0, dedup=True, hit_rate=0.4, identical=True, shards=1
):
    return {
        "config": {"shards": shards, "dedup": dedup},
        "qps": qps,
        "latency_ms": {"p50": 1.0, "p99": p99},
        "dedup_hit_rate": hit_rate,
        "bit_identical": identical,
    }


def serve_payload(cpu_count=8, **runs):
    if not runs:
        runs = {
            "baseline-pr8": serve_run(
                qps=800.0, p99=8.0, dedup=False, hit_rate=0.0
            ),
            "dedup-2shards": serve_run(qps=1200.0, p99=5.0, shards=2),
        }
    names = list(runs)
    return {
        "experiment": "serve_suite",
        "host": {"cpu_count": cpu_count},
        "runs": runs,
        "comparison": {"baseline": names[0], "candidate": names[-1]},
    }


class TestCheckServeFloor:
    def test_passes_when_candidate_beats_baseline(self):
        assert check_serve_floor(serve_payload()) == ([], [])

    def test_empty_payload_violates(self):
        violations, _ = check_serve_floor({"runs": {}})
        assert violations == ["serve payload carries no runs"]

    def test_bit_identity_always_gates(self):
        payload = serve_payload(
            cpu_count=1,
            baseline=serve_run(dedup=False, hit_rate=0.0),
            candidate=serve_run(identical=False),
        )
        violations, _ = check_serve_floor(payload)
        assert len(violations) == 1
        assert "bit-identical" in violations[0]

    def test_zero_dedup_hit_rate_always_gates(self):
        payload = serve_payload(
            cpu_count=1,
            baseline=serve_run(dedup=False, hit_rate=0.0),
            candidate=serve_run(hit_rate=0.0),
        )
        violations, _ = check_serve_floor(payload)
        assert len(violations) == 1
        assert "hit rate is zero" in violations[0]

    def test_single_core_host_skips_speed_only(self):
        payload = serve_payload(
            cpu_count=1,
            baseline=serve_run(qps=2000.0, p99=1.0, dedup=False, hit_rate=0.0),
            candidate=serve_run(qps=100.0, p99=50.0),
        )
        violations, skips = check_serve_floor(payload)
        assert violations == []
        assert len(skips) == 1 and "1 core" in skips[0]

    def test_slow_candidate_violates_on_a_capable_host(self):
        payload = serve_payload(
            baseline=serve_run(qps=2000.0, p99=1.0, dedup=False, hit_rate=0.0),
            candidate=serve_run(qps=100.0, p99=50.0),
        )
        violations, skips = check_serve_floor(payload)
        assert skips == []
        assert len(violations) == 2
        assert "does not beat" in violations[0]
        assert "regresses" in violations[1]

    def test_comparison_must_name_present_runs(self):
        payload = serve_payload()
        payload["comparison"]["candidate"] = "warp-drive"
        violations, _ = check_serve_floor(payload)
        assert any("two present runs" in v for v in violations)

    def test_host_override_beats_the_payload(self):
        payload = serve_payload(
            cpu_count=1,
            baseline=serve_run(qps=2000.0, p99=1.0, dedup=False, hit_rate=0.0),
            candidate=serve_run(qps=100.0, p99=50.0),
        )
        violations, _ = check_serve_floor(payload, host_cpu_count=8)
        assert len(violations) == 2


class TestMain:
    def _write(self, tmp_path, data):
        path = tmp_path / "bench.json"
        path.write_text(json.dumps(data))
        return str(path)

    def test_pass_exit_code_and_summary(self, tmp_path, capsys):
        path = self._write(tmp_path, payload(entry(), entry("MM")))
        assert main(["--json", path]) == 0
        out = capsys.readouterr().out
        assert "perf floor passed" in out
        assert "all 2 checked" in out

    def test_fail_exit_code_lists_violations(self, tmp_path, capsys):
        slow = entry(timings={"recursive": 1.0, "soa": 0.2, "auto": 1.0})
        path = self._write(tmp_path, payload(slow))
        assert main(["--json", path]) == 1
        out = capsys.readouterr().out
        assert "perf floor FAILED" in out
        assert "TJ/twist" in out

    def test_floor_flag_is_honored(self, tmp_path):
        slow = entry(timings={"recursive": 1.0, "soa": 0.2, "auto": 1.0})
        path = self._write(tmp_path, payload(slow))
        assert main(["--json", path, "--floor", "0.1"]) == 0

    def test_parallel_json_is_gated_too(self, tmp_path, capsys):
        soa_path = self._write(tmp_path, payload(entry()))
        parallel_path = tmp_path / "parallel.json"
        parallel_path.write_text(
            json.dumps(
                parallel_payload(
                    parallel_entry(runs=[parallel_run(speedup=1.1)])
                )
            )
        )
        assert (
            main(
                ["--json", soa_path, "--parallel-json", str(parallel_path)]
            )
            == 1
        )
        assert "1.10x" in capsys.readouterr().out

    def test_compiled_json_is_gated_too(self, tmp_path, capsys):
        soa_path = self._write(tmp_path, payload(entry()))
        compiled_path = tmp_path / "compiled.json"
        compiled_path.write_text(
            json.dumps(
                compiled_payload(
                    compiled_entry(
                        timings={
                            "recursive": 1.0,
                            "soa": 0.25,
                            "compiled": 0.24,
                        }
                    )
                )
            )
        )
        assert (
            main(
                ["--json", soa_path, "--compiled-json", str(compiled_path)]
            )
            == 1
        )
        assert "1.04x" in capsys.readouterr().out

    def test_compiled_json_starved_host_skips(self, tmp_path, capsys):
        soa_path = self._write(tmp_path, payload(entry()))
        compiled_path = tmp_path / "compiled.json"
        compiled_path.write_text(
            json.dumps(
                compiled_payload(
                    compiled_entry(
                        timings={
                            "recursive": 1.0,
                            "soa": 0.25,
                            "compiled": 0.3,
                        }
                    ),
                    cpu_count=1,
                    numba=False,
                )
            )
        )
        assert (
            main(
                ["--json", soa_path, "--compiled-json", str(compiled_path)]
            )
            == 0
        )
        assert "skip" in capsys.readouterr().out

    def test_serve_json_is_gated_too(self, tmp_path, capsys):
        soa_path = self._write(tmp_path, payload(entry()))
        serve_path = tmp_path / "serve.json"
        serve_path.write_text(
            json.dumps(
                serve_payload(
                    baseline=serve_run(
                        qps=2000.0, p99=1.0, dedup=False, hit_rate=0.0
                    ),
                    candidate=serve_run(qps=100.0, p99=50.0),
                )
            )
        )
        assert (
            main(["--json", soa_path, "--serve-json", str(serve_path)]) == 1
        )
        assert "does not beat" in capsys.readouterr().out

    def test_serve_json_pass_reports_run_count(self, tmp_path, capsys):
        soa_path = self._write(tmp_path, payload(entry()))
        serve_path = tmp_path / "serve.json"
        serve_path.write_text(json.dumps(serve_payload()))
        assert (
            main(["--json", soa_path, "--serve-json", str(serve_path)]) == 0
        )
        assert "serve floor checked 2 run(s)" in capsys.readouterr().out

    def test_parallel_json_host_aware_pass(self, tmp_path, capsys):
        soa_path = self._write(tmp_path, payload(entry()))
        parallel_path = tmp_path / "parallel.json"
        parallel_path.write_text(
            json.dumps(
                parallel_payload(
                    parallel_entry(runs=[parallel_run(speedup=0.5)]),
                    cpu_count=2,
                )
            )
        )
        assert (
            main(
                ["--json", soa_path, "--parallel-json", str(parallel_path)]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "host-aware skip" in out

"""Unit tests for the instrumented benchmark runner."""

import pytest

from repro.bench import bench_hierarchy, make_tj, run_case, run_pair
from repro.core.schedules import ORIGINAL, TWIST
from repro.memory import speedup


@pytest.fixture(scope="module")
def reports():
    case = make_tj(100)
    baseline = run_case(case, ORIGINAL, bench_hierarchy)
    twisted = run_case(case, TWIST, bench_hierarchy)
    return baseline, twisted


class TestRunCase:
    def test_report_identity(self, reports):
        baseline, twisted = reports
        assert baseline.benchmark == "TJ"
        assert baseline.schedule == "original"
        assert twisted.schedule == "twist"

    def test_counts_positive(self, reports):
        baseline, _ = reports
        assert baseline.work_points == 100 * 100
        assert baseline.accesses == 2 * 100 * 100
        assert baseline.instructions > 0
        assert baseline.cycles > baseline.instructions

    def test_levels_reported(self, reports):
        baseline, _ = reports
        assert set(baseline.levels) == {"L1", "L2", "L3"}
        assert 0.0 <= baseline.miss_rate("L3") <= 1.0

    def test_results_comparable(self, reports):
        baseline, twisted = reports
        assert baseline.result == twisted.result

    def test_access_ops_folded_into_instructions(self, reports):
        baseline, _ = reports
        assert baseline.op_counts["access"] == baseline.accesses


class TestRunPair:
    def test_shared_workload(self):
        baseline, twisted = run_pair(lambda: make_tj(64), ORIGINAL, TWIST,
                                     bench_hierarchy)
        assert baseline.result == twisted.result
        assert speedup(baseline, twisted) > 0

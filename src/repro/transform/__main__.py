"""Command-line interface of the transformation tool.

The Python counterpart of running the paper's Clang tool over a source
file::

    python -m repro.transform INPUT.py [-o OUTPUT.py]
        [--outer NAME --inner NAME]      # or rely on annotations
        [--cutoff N]                     # Section 7.1 cutoff
        [--print-analysis]               # report template + truncation info

Reads a Python module containing a nested recursive pair (annotated
with ``@outer_recursion``/``@inner_recursion``, or named explicitly),
sanity-checks it against the Figure 2 template, and writes a module
with the interchanged and twisted versions appended.
"""

from __future__ import annotations

import argparse
import sys

from repro.errors import TransformError
from repro.transform.tool import transform_annotated_source, transform_source


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.transform",
        description="Synthesize interchanged and twisted versions of an "
        "annotated nested recursive pair (ASPLOS'17 recursion twisting).",
    )
    parser.add_argument("input", help="Python source file to transform")
    parser.add_argument(
        "-o",
        "--output",
        help="write the generated module here (default: stdout)",
    )
    parser.add_argument("--outer", help="outer recursive function name")
    parser.add_argument("--inner", help="inner recursive function name")
    parser.add_argument(
        "--cutoff",
        type=int,
        default=None,
        help="Section 7.1 cutoff: twist only while the inner tree has "
        "more than CUTOFF nodes (default: parameterless)",
    )
    parser.add_argument(
        "--print-analysis",
        action="store_true",
        help="print the recognized template and truncation analysis "
        "to stderr",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if bool(args.outer) != bool(args.inner):
        print("error: --outer and --inner must be given together", file=sys.stderr)
        return 2

    try:
        with open(args.input) as handle:
            source = handle.read()
    except OSError as error:
        print(f"error: cannot read {args.input}: {error}", file=sys.stderr)
        return 2

    try:
        if args.outer:
            result = transform_source(
                source, args.outer, args.inner, cutoff=args.cutoff
            )
        else:
            result = transform_annotated_source(source, cutoff=args.cutoff)
    except TransformError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1

    if args.print_analysis:
        template = result.template
        print(
            f"recognized: {template.outer_name}({template.o_param}, "
            f"{template.i_param}) / {template.inner_name}",
            file=sys.stderr,
        )
        print(
            f"truncation: inner1 = {result.analysis.inner1_source()}; "
            f"inner2 = {result.analysis.inner2_source()} "
            f"({'irregular' if result.is_irregular else 'regular'})",
            file=sys.stderr,
        )
        print(
            f"entry points: {result.interchanged_entry}, {result.twisted_entry}",
            file=sys.stderr,
        )

    if args.output:
        with open(args.output, "w") as handle:
            handle.write(result.source)
    else:
        sys.stdout.write(result.source)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())

"""End-to-end serving: real server process, TCP clients, bit-identity.

Starts ``python -m repro.serve`` as a subprocess on an ephemeral port,
drives it with the blocking JSON-lines client, and checks the answers
against a local :class:`QueryService` oracle over the same
(deterministic, seed-pinned) synthetic reference set.
"""

import os
import socket
import subprocess
import sys

import pytest

from repro.serve.client import ServeClient, wait_for_server
from repro.serve.protocol import CountQuery, KNNQuery, NNQuery
from repro.serve.service import QueryService, ServiceConfig
from repro.spaces.points import clustered_points

REFERENCES = 1024
SEED = 1


def free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def sample_queries(n=45):
    points = clustered_points(n, clusters=6, spread=0.07, seed=17)
    queries = []
    for index in range(n):
        point = tuple(float(value) for value in points[index])
        kind = index % 3
        if kind == 0:
            queries.append(NNQuery(point))
        elif kind == 1:
            queries.append(KNNQuery(point, 5))
        else:
            queries.append(CountQuery(point, 0.3))
    return queries


@pytest.fixture(scope="module")
def server():
    port = free_port()
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src)
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.serve",
            "--port",
            str(port),
            "--references",
            str(REFERENCES),
            "--seed",
            str(SEED),
            "--max-hold-ms",
            "2",
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    client = wait_for_server("127.0.0.1", port, timeout=60)
    if client is None:  # pragma: no cover - startup failure diagnostics
        process.kill()
        raise RuntimeError(f"server never came up:\n{process.communicate()[0]}")
    client.close()
    yield port
    try:
        with ServeClient("127.0.0.1", port, timeout=10) as client:
            client.shutdown()
        process.wait(timeout=30)
    except Exception:
        process.kill()
        process.wait()


@pytest.fixture(scope="module")
def oracle():
    references = clustered_points(
        REFERENCES, clusters=24, spread=0.05, seed=SEED
    )
    with QueryService(references, ServiceConfig()) as service:
        yield service.execute_serial(sample_queries())


class TestServerRoundTrip:
    def test_ping_and_stats(self, server):
        with ServeClient("127.0.0.1", server) as client:
            assert client.ping()
            stats = client.stats()
        assert stats["references"] == REFERENCES
        assert "batcher" in stats

    def test_pipelined_mixed_queries_match_the_oracle(self, server, oracle):
        queries = sample_queries()
        with ServeClient("127.0.0.1", server) as client:
            results = client.query_many(queries)
        assert results == oracle

    def test_concurrent_clients_share_admission_ticks(self, server, oracle):
        import threading

        queries = sample_queries()
        outcomes = {}

        def drive(name):
            with ServeClient("127.0.0.1", server) as client:
                outcomes[name] = client.query_many(queries)

        threads = [
            threading.Thread(target=drive, args=(index,)) for index in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(outcomes) == 4
        for results in outcomes.values():
            assert results == oracle
        # Cross-client batching actually happened: with four clients
        # pipelining 45 queries each, at least one admitted tick must
        # exceed a single client's largest kind group (15).
        with ServeClient("127.0.0.1", server) as client:
            stats = client.stats()
        assert stats["batcher"]["max_tick_size"] > 15
        # ...and the identical 45-query sets folded: every duplicate
        # that shared a tick executed once and fanned out.
        assert stats["batcher"]["dedup_folded"] > 0
        assert stats["batcher"]["executed"] < stats["batcher"]["queries"]

    def test_binary_framing_matches_json_bit_for_bit(self, server, oracle):
        queries = sample_queries()
        with ServeClient(
            "127.0.0.1", server, framing="binary"
        ) as client:
            assert client.framing == "binary"
            results = client.query_many(queries)
            stats = client.stats()
        assert results == oracle
        assert stats["references"] == REFERENCES

    def test_unknown_framing_refused_and_connection_survives(self, server):
        import json as json_module

        with socket.create_connection(("127.0.0.1", server), timeout=30) as sock:
            handle = sock.makefile("rwb")
            handle.write(
                json_module.dumps(
                    {"id": 1, "op": "hello", "framing": "carrier-pigeon"}
                ).encode()
                + b"\n"
            )
            handle.write(
                json_module.dumps({"id": 2, "op": "ping"}).encode() + b"\n"
            )
            handle.flush()
            refusal = json_module.loads(handle.readline())
            ping = json_module.loads(handle.readline())
        assert refusal["ok"] is False
        assert "unknown framing" in refusal["error"]
        assert ping["ok"] is True

    def test_malformed_and_unknown_requests_answer_errors(self, server):
        import json as json_module

        with socket.create_connection(("127.0.0.1", server), timeout=30) as sock:
            handle = sock.makefile("rwb")
            handle.write(b"this is not json\n")
            handle.write(
                json_module.dumps({"id": 7, "op": "dance"}).encode() + b"\n"
            )
            handle.flush()
            first = json_module.loads(handle.readline())
            second = json_module.loads(handle.readline())
        assert first["ok"] is False
        assert second["ok"] is False
        assert "unknown op" in second["error"]

    def test_query_validation_error_reported_per_request(self, server):
        import json as json_module

        with socket.create_connection(("127.0.0.1", server), timeout=30) as sock:
            handle = sock.makefile("rwb")
            request = {
                "id": 1,
                "op": "query",
                "query": {"kind": "knn", "point": [0.5, 0.5], "k": 0},
            }
            handle.write(json_module.dumps(request).encode() + b"\n")
            handle.flush()
            response = json_module.loads(handle.readline())
        assert response["ok"] is False
        assert "k >= 1" in response["error"]

"""Registry-wide invariants over every TW diagnostic code.

The satellite contract: collect every code across the TW0xx / TW10x /
TW2xx families and assert they are unique, documented, and carry a
stable ``affects`` field — so a new family can never silently collide
with or shadow an existing code.
"""

import re
from pathlib import Path

from repro.transform.lint.diagnostics import (
    AFFECTS_DOMAINS,
    ALL_CODES,
    CATALOG,
    Severity,
)

REPO = Path(__file__).resolve().parents[4]
DOCS = (REPO / "docs" / "DIAGNOSTICS.md").read_text()
LINT_SRC = REPO / "src" / "repro" / "transform" / "lint"


class TestRegistry:
    def test_codes_are_unique_across_all_families(self):
        assert len(ALL_CODES) == len(set(ALL_CODES))

    def test_codes_follow_the_tw_naming_scheme(self):
        for code in ALL_CODES:
            assert re.fullmatch(r"TW\d{3}", code), code

    def test_every_family_is_populated(self):
        families = {code[:3] + code[3] for code in ALL_CODES}
        assert {"TW0", "TW1", "TW2"} <= {code[:3] for code in ALL_CODES}
        assert families  # at least one concrete family per prefix

    def test_affects_is_a_stable_domain(self):
        for info in CATALOG.values():
            assert info.affects in AFFECTS_DOMAINS, info.code

    def test_tw2xx_affects_split_by_pass(self):
        for code, info in CATALOG.items():
            if code.startswith("TW20"):
                assert info.affects == "lower", code
            elif code.startswith("TW21"):
                assert info.affects == "independence", code

    def test_every_code_has_a_severity_and_title(self):
        for info in CATALOG.values():
            assert isinstance(info.severity, Severity), info.code
            assert info.title.strip(), info.code


class TestDocumentation:
    def test_every_code_is_documented(self):
        for code in ALL_CODES:
            assert f"### {code}" in DOCS, f"{code} missing from DIAGNOSTICS.md"

    def test_documented_titles_match_the_catalog(self):
        for code, info in CATALOG.items():
            assert f"### {code} — {info.title}" in DOCS, code

    def test_docs_do_not_invent_codes(self):
        documented = set(re.findall(r"^### (TW\d{3})", DOCS, flags=re.M))
        assert documented <= set(ALL_CODES)


class TestEmittedCodesAreRegistered:
    def test_every_code_emitted_by_the_analyzers_is_in_the_catalog(self):
        emitted = set()
        for path in LINT_SRC.glob("*.py"):
            if path.name == "diagnostics.py":
                continue
            emitted |= set(re.findall(r'"(TW\d{3})"', path.read_text()))
        assert emitted, "expected the analyzers to emit TW codes"
        unregistered = emitted - set(ALL_CODES)
        assert not unregistered, f"emitted but not in CATALOG: {unregistered}"

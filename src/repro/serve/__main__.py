"""``python -m repro.serve`` — the JSON-lines TCP query server.

Wire protocol (one JSON object per line, newline-terminated)::

    -> {"id": 1, "op": "query", "query": {"kind": "nn", "point": [..]}}
    <- {"id": 1, "ok": true, "result": {"kind": "nn", ...}}
    -> {"id": 2, "op": "stats"}      # service + batcher counters
    -> {"id": 3, "op": "ping"}       # liveness
    -> {"id": 4, "op": "shutdown"}   # drain and exit

Responses may arrive out of order (each admission tick resolves
independently); match on ``id``.  A connection may opt into binary
framing with one JSON hello (``{"op": "hello", "framing": "binary"}``)
before switching — see :mod:`repro.serve.framing`; JSON stays the
default.  The reference set is synthetic — clustered points,
deterministic in ``--seed`` — or loaded from an ``.npy`` file via
``--references-file``.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys

import numpy as np

from repro.serve import framing as fr
from repro.serve.batcher import AdmissionBatcher
from repro.serve.protocol import decode_query, encode_result
from repro.serve.service import QueryService, ServiceConfig


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Persistent dual-tree query service (JSON lines over TCP).",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8642)
    parser.add_argument(
        "--references",
        type=int,
        default=65536,
        help="synthetic reference-set size (default 65536)",
    )
    parser.add_argument(
        "--references-file",
        default=None,
        help="load the reference set from an .npy file instead",
    )
    parser.add_argument("--clusters", type=int, default=24)
    parser.add_argument("--spread", type=float, default=0.05)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--leaf-size", type=int, default=ServiceConfig.leaf_size
    )
    parser.add_argument(
        "--query-leaf-size", type=int, default=ServiceConfig.query_leaf_size
    )
    parser.add_argument(
        "--max-batch", type=int, default=ServiceConfig.max_batch
    )
    parser.add_argument(
        "--max-hold-ms",
        type=float,
        default=ServiceConfig.max_hold_s * 1000.0,
        help="admission hold latency cap, milliseconds",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        help="process-pool workers (0 = in-process execution)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=ServiceConfig.shards,
        help="reference-set shards a tick is scattered across",
    )
    parser.add_argument(
        "--static-hold",
        action="store_true",
        help="disable the adaptive hold controller (fixed --max-hold-ms)",
    )
    parser.add_argument(
        "--no-dedup",
        action="store_true",
        help="disable intra-tick duplicate-query folding",
    )
    return parser


def _load_references(args: argparse.Namespace) -> np.ndarray:
    if args.references_file:
        return np.load(args.references_file)
    from repro.spaces.points import clustered_points

    return clustered_points(
        args.references,
        clusters=args.clusters,
        spread=args.spread,
        seed=args.seed,
    )


def _collect_stats(service: QueryService, batcher: AdmissionBatcher) -> dict:
    stats = dict(service.service_stats())
    stats["batcher"] = batcher.batcher_stats()
    return stats


async def _handle_connection(
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    service: QueryService,
    batcher: AdmissionBatcher,
    stop: asyncio.Event,
) -> None:
    async def respond(payload: dict) -> None:
        writer.write(json.dumps(payload).encode() + b"\n")
        await writer.drain()

    async def answer(request_id, query_payload) -> None:
        try:
            result = await batcher.submit(decode_query(query_payload))
            await respond(
                {"id": request_id, "ok": True, "result": encode_result(result)}
            )
        except ConnectionError:  # pragma: no cover - client went away
            pass
        except Exception as exc:
            try:
                await respond(
                    {"id": request_id, "ok": False, "error": str(exc)}
                )
            except ConnectionError:  # pragma: no cover
                pass

    tasks: set[asyncio.Task] = set()
    try:
        while True:
            line = await reader.readline()
            if not line:
                break
            try:
                request = json.loads(line)
            except json.JSONDecodeError as exc:
                await respond({"id": None, "ok": False, "error": str(exc)})
                continue
            request_id = request.get("id")
            op = request.get("op")
            if op == "query":
                task = asyncio.ensure_future(
                    answer(request_id, request.get("query", {}))
                )
                tasks.add(task)
                task.add_done_callback(tasks.discard)
            elif op == "hello":
                framing = request.get("framing", "json")
                if framing not in fr.FRAMINGS:
                    await respond(
                        {
                            "id": request_id,
                            "ok": False,
                            "error": f"unknown framing {framing!r}; "
                            f"known: {list(fr.FRAMINGS)}",
                        }
                    )
                    continue
                # Acknowledge in JSON, then (for binary) switch the
                # remainder of this connection to length-prefixed
                # frames — but only after in-flight JSON answers land.
                await respond(
                    {"id": request_id, "ok": True, "framing": framing}
                )
                if framing == "binary":
                    if tasks:
                        await asyncio.gather(
                            *tasks, return_exceptions=True
                        )
                        tasks.clear()
                    await _handle_binary(
                        reader, writer, service, batcher, stop
                    )
                    return
            elif op == "stats":
                await respond(
                    {
                        "id": request_id,
                        "ok": True,
                        "stats": _collect_stats(service, batcher),
                    }
                )
            elif op == "ping":
                await respond({"id": request_id, "ok": True})
            elif op == "shutdown":
                await respond({"id": request_id, "ok": True})
                stop.set()
                break
            else:
                await respond(
                    {
                        "id": request_id,
                        "ok": False,
                        "error": f"unknown op {op!r}",
                    }
                )
    finally:
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)
        writer.close()


async def _handle_binary(
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    service: QueryService,
    batcher: AdmissionBatcher,
    stop: asyncio.Event,
) -> None:
    """The post-hello frame loop; mirrors the JSON ops one-to-one."""

    async def send(frame_type: int, request_id: int, body: bytes = b"") -> None:
        # One write per frame keeps concurrent answers atomic on the wire.
        writer.write(fr.encode_frame(frame_type, request_id, body))
        await writer.drain()

    async def answer(request_id: int, body: bytes) -> None:
        try:
            result = await batcher.submit(fr.unpack_query(body))
            await send(fr.T_RESULT, request_id, fr.pack_result(result))
        except ConnectionError:  # pragma: no cover - client went away
            pass
        except Exception as exc:
            try:
                await send(fr.T_ERROR, request_id, str(exc).encode())
            except ConnectionError:  # pragma: no cover
                pass

    tasks: set[asyncio.Task] = set()
    try:
        while True:
            try:
                frame = await fr.read_frame_async(reader)
            except Exception:  # corrupt stream: drop the connection
                break
            if frame is None:
                break
            frame_type, request_id, body = frame
            if frame_type == fr.T_QUERY:
                task = asyncio.ensure_future(answer(request_id, body))
                tasks.add(task)
                task.add_done_callback(tasks.discard)
            elif frame_type == fr.T_STATS:
                await send(
                    fr.T_STATS_REPLY,
                    request_id,
                    json.dumps(_collect_stats(service, batcher)).encode(),
                )
            elif frame_type == fr.T_PING:
                await send(fr.T_OK, request_id)
            elif frame_type == fr.T_SHUTDOWN:
                await send(fr.T_OK, request_id)
                stop.set()
                break
            else:
                await send(
                    fr.T_ERROR,
                    request_id,
                    f"unknown frame type 0x{frame_type:02x}".encode(),
                )
    finally:
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)
        writer.close()


async def serve(args: argparse.Namespace) -> int:
    references = _load_references(args)
    config = ServiceConfig(
        leaf_size=args.leaf_size,
        query_leaf_size=args.query_leaf_size,
        max_batch=args.max_batch,
        max_hold_s=args.max_hold_ms / 1000.0,
        workers=args.workers,
        shards=args.shards,
    )
    service = QueryService(references, config)
    batcher = AdmissionBatcher(
        service.execute_batch,
        max_batch=config.max_batch,
        max_hold_s=config.max_hold_s,
        dedup=not args.no_dedup,
        adaptive_hold=not args.static_hold,
    )
    stop = asyncio.Event()

    async def handler(reader, writer):
        await _handle_connection(reader, writer, service, batcher, stop)

    server = await asyncio.start_server(handler, args.host, args.port)
    address = ", ".join(
        str(sock.getsockname()) for sock in server.sockets or ()
    )
    pinned = {
        kind: f"{choice.backend}/{choice.order}"
        for kind, choice in service.choices.items()
    }
    print(
        f"serving {len(references)} reference points on {address} "
        f"(max_batch={config.max_batch}, "
        f"max_hold={config.max_hold_s * 1000:.1f}ms, "
        f"shards={config.shards}, dedup={batcher.dedup}, "
        f"adaptive_hold={batcher.adaptive_hold}, backends={pinned})",
        flush=True,
    )
    try:
        async with server:
            await stop.wait()
            await batcher.drain()
    finally:
        service.close()
    return 0


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return asyncio.run(serve(args))
    except KeyboardInterrupt:  # pragma: no cover - interactive use
        return 130


if __name__ == "__main__":
    sys.exit(main())

"""Unit tests for the static schedule-safety analyzer."""

"""Gram table (GT) — a third lowerability-certified synthetic kernel.

An all-pairs squared-distance table over two value vectors: for every
node ``o`` of the outer index tree and every node ``i`` of the inner
index tree, ``table[o.data, i.data] = (q[o.data] - r[i.data])**2``.
This is the dependence structure of a Gram/affinity matrix build (the
dense sibling of the dual-tree point-correlation kernels): every work
point writes one unique output cell, reads two unique input scalars,
and no iteration observes another's effect.

GT exists to widen the ``compiled`` backend's eligibility surface
beyond TJ (reduction into captured state) and MM (einsum over captured
matrices): its SoA kernel exercises the third lowerable shape —
elementwise arithmetic over *gathered input vectors* indexed by the
packed ``data`` columns.  Like MM, the output write is disjoint across
iterations because ``data`` (the index owned by each tree node) is
injective on the live trees (TW212).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.spec import NestedRecursionSpec
from repro.spaces.node import TreeNode
from repro.spaces.trees import balanced_tree


#: Expected TW2xx verdicts for this kernel's spec (the output of the
#: lowerability pass).  GT is ``lowerable`` — typed column gathers,
#: elementwise arithmetic, no hot-loop allocation beyond staging — and
#: ``independent`` (disjoint output cells, TW212 injective index
#: columns).  A regression below either verdict fails tests.
LOWER_VERDICT = {"lower": "lowerable", "independence": "independent"}

#: Expected TW30x locality verdicts at the fixture size used by the
#: lint-locality suite (1024 x 1024) under the paper's Xeon cache
#: model.  Index nodes plus the gathered ``r`` vector exceed L1 but
#: fit L2 with full reuse (regular truncation) — same profile as TJ.
LOCALITY_VERDICT = {
    "interchange": "profitable",
    "twist": "profitable",
    "layout:veb": "profitable",
    "layout:bfs": "neutral",
}


@dataclass
class GramTable:
    """A runnable all-pairs squared-distance table build.

    ``q`` has one value per outer-tree node, ``r`` one per inner-tree
    node; the cross product of the two index trees is exactly the
    ``n x m`` output space.
    """

    n: int
    m: int
    seed: int = 0

    q: np.ndarray = field(init=False)
    r: np.ndarray = field(init=False)
    table: np.ndarray = field(init=False)
    outer_root: TreeNode = field(init=False)
    inner_root: TreeNode = field(init=False)

    def __post_init__(self) -> None:
        if min(self.n, self.m) < 1:
            raise ValueError("GramTable dimensions must be positive")
        rng = np.random.default_rng(self.seed)
        self.q = rng.random(self.n)
        self.r = rng.random(self.m)
        self.table = np.zeros((self.n, self.m))
        # data = the value index owned by the node (BFS order), same
        # injective index-tree convention as MM.
        self.outer_root = balanced_tree(self.n, data=lambda k: k)
        self.inner_root = balanced_tree(self.m, data=lambda k: k)

    def make_spec(self) -> NestedRecursionSpec:
        """A fresh spec; clears the output table."""
        self.table = np.zeros((self.n, self.m))
        return _gram_spec(
            self.outer_root,
            self.inner_root,
            self.q,
            self.r,
            self.table,
            f"GT({self.n}x{self.m})",
        )

    def expected(self) -> np.ndarray:
        """The oracle table, vectorized in one shot."""
        return (self.q[:, None] - self.r[None, :]) ** 2

    def max_error(self) -> float:
        """Largest absolute deviation of the last run from the oracle."""
        return float(np.abs(self.table - self.expected()).max())


def _gram_spec(
    outer_root: TreeNode,
    inner_root: TreeNode,
    q: np.ndarray,
    r: np.ndarray,
    table: np.ndarray,
    name: str,
) -> NestedRecursionSpec:
    """The GT spec over given index trees and value vectors."""

    def work(o: TreeNode, i: TreeNode) -> None:
        row, col = o.data, i.data
        table[row, col] = (q[row] - r[col]) ** 2

    def work_batch(os: list, is_: list) -> None:
        # Every (row, col) is visited exactly once per run, so the
        # fancy-index assignment never sees duplicate targets.
        rows = np.array([o.data for o in os], dtype=np.intp)
        cols = np.array([i.data for i in is_], dtype=np.intp)
        table[rows, cols] = (q[rows] - r[cols]) ** 2

    def work_batch_soa(o_view, i_view, o_positions, i_positions) -> None:
        # Value indices come straight out of the packed ``data``
        # columns; the arithmetic is elementwise over the gathers.
        rows = o_view.column("data")[np.asarray(o_positions, dtype=np.intp)]
        cols = i_view.column("data")[np.asarray(i_positions, dtype=np.intp)]
        table[rows, cols] = (q[rows] - r[cols]) ** 2

    return NestedRecursionSpec(
        outer_root=outer_root,
        inner_root=inner_root,
        work=work,
        work_batch=work_batch,
        work_batch_soa=work_batch_soa,
        name=name,
    )


def gram_footprint(o: TreeNode, i: TreeNode):
    """Soundness footprint for GT.

    Each work point reads its two input scalars and writes the unique
    output cell ``table[o.data, i.data]`` — no two iterations share a
    written location, so every schedule is trivially sound.
    """
    return (
        (("q", o.data), False),
        (("r", i.data), False),
        (("out", o.data, i.data), True),
    )

"""Parity and unit tests for the proof-gated compiled backend.

Contract under test (see :mod:`repro.core.compiled`): for every spec
the TW20x pass certifies ``lowerable``, ``backend="compiled"`` must be
*observably identical* to the SoA backend — bit-identical results on
every schedule and storage order, identical instrument event streams
when instrumented (the compiled runners delegate to the SoA engine the
moment anything is watching) — and must *refuse* every spec whose
verdict falls short, with a :class:`~repro.errors.ScheduleError` that
cites the verdict.  On top of parity: artifact caching per kernel
family, the numba tier (faked here — the CI matrix runs the real one),
and the whole-run position-array replay.
"""

import numpy as np
import pytest

from repro.bench.workloads import make_mm, make_tj, wallclock_cases
from repro.core.compiled import (
    artifact_info,
    clear_caches,
    compiled_artifact,
    run_original_compiled,
    run_twisted_compiled,
)
from repro.core.sanitize import EventRecorder, run_sanitized
from repro.core.schedules import BY_NAME, get_schedule, twist_with_cutoff
from repro.errors import ScheduleError
from repro.kernels import GramTable, MatrixMultiply, TreeJoin
from repro.spaces.soa import LINEARIZATIONS
from repro.transform.lint.lower import LowerVerdict, lint_lower

#: Every registered schedule plus a parameterized cutoff variant.
ALL_SCHEDULES = list(BY_NAME.values()) + [twist_with_cutoff(8)]


@pytest.fixture(autouse=True)
def _fresh_caches():
    """Artifact/position caches must not leak between tests."""
    clear_caches()
    yield
    clear_caches()


class TestTreeJoinParity:
    """TJ is integer-exact: compiled must equal recursive *exactly*."""

    @pytest.mark.parametrize(
        "schedule", ALL_SCHEDULES, ids=lambda s: s.name
    )
    def test_matches_recursive_on_every_schedule_and_order(self, schedule):
        tj = TreeJoin(23, 17)
        schedule.run(tj.make_spec(), backend="recursive")
        expected = (tj.accumulator.total, tj.accumulator.pairs)
        assert expected[0] == tj.expected_total()
        for order in LINEARIZATIONS:
            schedule.run(tj.make_spec(), backend="compiled", order=order)
            assert (tj.accumulator.total, tj.accumulator.pairs) == expected

    def test_single_node_trees(self):
        tj = TreeJoin(1, 1)
        run_original_compiled(tj.make_spec())
        assert tj.accumulator.total == tj.expected_total()
        assert tj.accumulator.pairs == 1

    def test_instrumented_run_replays_recursive_events(self):
        """With an instrument attached the compiled runners delegate to
        the SoA engine, whose event stream is recursive-identical."""
        tj = TreeJoin(15, 7)
        for schedule in (BY_NAME["original"], BY_NAME["twist"]):
            reference = EventRecorder()
            schedule.run(tj.make_spec(), instrument=reference, backend="recursive")
            actual = EventRecorder()
            schedule.run(tj.make_spec(), instrument=actual, backend="compiled")
            assert actual.events == reference.events


class TestMatMulParity:
    """MM is float: compiled must be *bitwise* identical to soa (both
    run the same einsum), and payload-identical to recursive."""

    @pytest.mark.parametrize(
        "schedule", ALL_SCHEDULES, ids=lambda s: s.name
    )
    def test_bitwise_identical_to_soa(self, schedule):
        mm = MatrixMultiply(n=13, m=11, p=4)
        schedule.run(mm.make_spec(), backend="soa")
        reference = mm.c.copy()
        for order in LINEARIZATIONS:
            schedule.run(mm.make_spec(), backend="compiled", order=order)
            assert np.array_equal(mm.c, reference)

    def test_payload_matches_recursive(self):
        """The benchmark's own witness (``c.sum()``) across backends."""
        mm = MatrixMultiply(n=12, m=12, p=4)
        BY_NAME["twist"].run(mm.make_spec(), backend="recursive")
        expected = repr(float(mm.c.sum()))
        BY_NAME["twist"].run(mm.make_spec(), backend="compiled")
        assert repr(float(mm.c.sum())) == expected
        assert mm.max_error() < 1e-12


class TestGramParity:
    """GT writes its table elementwise: exact versus the closed form."""

    @pytest.mark.parametrize(
        "schedule", ALL_SCHEDULES, ids=lambda s: s.name
    )
    def test_exact_on_every_schedule(self, schedule):
        gt = GramTable(14, 9)
        schedule.run(gt.make_spec(), backend="compiled")
        assert gt.max_error() == 0.0

    def test_certified_lowerable(self):
        report = lint_lower(GramTable(8, 8).make_spec())
        assert report.lower is LowerVerdict.LOWERABLE


class TestProofGating:
    """compiled is selectable *only* behind a TW20x 'lowerable' verdict."""

    def test_every_wallclock_case_is_gated_by_its_verdict(self):
        """The benchmark inventory splits cleanly: lowerable specs run,
        everything else is refused with the verdict in the message."""
        schedule = BY_NAME["original"]
        seen = set()
        for case in wallclock_cases(0.02):
            spec = case.make_spec()
            verdict = lint_lower(spec).lower
            if verdict is LowerVerdict.LOWERABLE:
                schedule.run(case.make_spec(), backend="compiled")
                seen.add("ran")
            else:
                with pytest.raises(ScheduleError, match="lowerable"):
                    schedule.run(case.make_spec(), backend="compiled")
                seen.add("refused")
        assert seen == {"ran", "refused"}

    def test_refusal_cites_the_verdict(self):
        from repro.bench.workloads import make_nn

        spec = make_nn(200).make_spec()
        with pytest.raises(ScheduleError) as excinfo:
            run_twisted_compiled(spec)
        message = str(excinfo.value)
        assert "lowerable" in message
        assert "auto" in message  # points at the escape hatch


class TestSanitizeIntegration:
    def test_explicit_compiled_survives_shadow_execution(self):
        tj = TreeJoin(31, 31)
        report = run_sanitized(
            tj.make_spec,
            get_schedule("twist"),
            backend="compiled",
            probe=lambda: tj.accumulator.total,
        )
        assert report.backend == "compiled"
        assert report.phases == ["record", "lockstep", "fast-path"]

    def test_auto_sanitize_picks_and_validates_compiled(self):
        tj_case = make_tj(200)
        tj_spec = tj_case.make_spec()
        from repro.core.backend_select import choose_backend

        assert choose_backend(tj_spec).backend == "compiled"
        report = run_sanitized(
            tj_case.make_spec,
            get_schedule("original"),
            backend="auto",
            probe=tj_case.result,
        )
        assert report.backend == "compiled"

    def test_mm_auto_sanitize(self):
        mm_case = make_mm(64, p=4)
        report = run_sanitized(
            mm_case.make_spec,
            get_schedule("twist"),
            backend="auto",
            probe=mm_case.result,
        )
        assert report.backend == "compiled"
        assert report.phases == ["record", "lockstep", "fast-path"]


class TestArtifacts:
    def test_cached_per_kernel_family(self):
        tj = TreeJoin(9, 9)
        first = compiled_artifact(tj.make_spec())
        second = compiled_artifact(tj.make_spec())  # fresh accumulator
        assert first is not None
        assert first is second

    def test_fresh_spec_instances_reuse_one_artifact_correctly(self):
        """The artifact binds per *call*: a cached kernel must read the
        new spec's accumulator, not the one it was generated from."""
        tj = TreeJoin(9, 9)
        run_original_compiled(tj.make_spec())
        first = tj.accumulator.total
        run_original_compiled(tj.make_spec())  # reset accumulator
        assert tj.accumulator.total == first == tj.expected_total()

    def test_artifact_info_reports_fused_source(self):
        info = artifact_info(TreeJoin(9, 9).make_spec())
        assert info["codegen"] == "fused-source"
        assert info["jit"] in ("numpy", "numba")
        assert "_fused" in info["source"]

    def test_codegen_decline_falls_back_to_whole_run_dispatch(
        self, monkeypatch
    ):
        """LoweringUnsupported is not a refusal: the certified kernel
        runs as one whole-run dispatch instead of generated source."""
        from repro.core import compiled as compiled_mod
        from repro.transform.lower_codegen import LoweringUnsupported

        def declined(fn):
            raise LoweringUnsupported("forced decline (test)")

        monkeypatch.setattr(
            compiled_mod, "generate_fused_kernel", declined
        )
        tj = TreeJoin(15, 15)
        assert artifact_info(tj.make_spec())["codegen"] == "fallback-dispatch"
        for schedule in (BY_NAME["original"], BY_NAME["twist"]):
            schedule.run(tj.make_spec(), backend="compiled")
            assert tj.accumulator.total == tj.expected_total()


class _FakeNumba:
    """A numba stand-in: ``njit`` wraps and counts calls."""

    def __init__(self, fail=False):
        self.calls = 0
        self.fail = fail

    def njit(self, fn):
        def wrapper(*args):
            self.calls += 1
            if self.fail:
                raise TypeError("cannot type argument (fake)")
            return fn(*args)

        return wrapper


class TestNumbaTier:
    """The real numba leg runs in CI's matrix; here the import hook is
    faked so both tiers are exercised without the dependency."""

    def test_njit_tier_is_used_when_numba_imports(self, monkeypatch):
        from repro.transform import lower_codegen

        fake = _FakeNumba()
        monkeypatch.setattr(lower_codegen, "_import_numba", lambda: fake)
        tj = TreeJoin(15, 15)
        spec = tj.make_spec()
        assert artifact_info(spec)["jit"] == "numba"
        run_original_compiled(spec)
        assert fake.calls > 0
        assert tj.accumulator.total == tj.expected_total()

    def test_first_call_failure_downgrades_to_numpy_permanently(
        self, monkeypatch
    ):
        from repro.transform import lower_codegen

        fake = _FakeNumba(fail=True)
        monkeypatch.setattr(lower_codegen, "_import_numba", lambda: fake)
        tj = TreeJoin(15, 15)
        spec = tj.make_spec()
        artifact = compiled_artifact(spec)
        assert artifact.jit == "numba"
        run_original_compiled(spec)  # first call fails inside njit
        assert artifact.jit == "numpy"
        assert "first call" in artifact.jit_note
        assert tj.accumulator.total == tj.expected_total()
        calls_after_downgrade = fake.calls
        run_original_compiled(tj.make_spec())
        assert fake.calls == calls_after_downgrade  # jitted leg is gone
        assert tj.accumulator.total == tj.expected_total()

    def test_numba_absent_runs_the_numpy_tier(self, monkeypatch):
        from repro.transform import lower_codegen

        monkeypatch.setattr(lower_codegen, "_import_numba", lambda: None)
        spec = TreeJoin(9, 9).make_spec()
        info = artifact_info(spec)
        assert info["jit"] == "numpy"
        assert "numba not importable" in info["jit_note"]


class TestPositionCache:
    def test_cache_is_bounded(self):
        from repro.core.compiled import _POSITIONS, _POSITIONS_CAP

        for k in range(_POSITIONS_CAP + 4):
            tj = TreeJoin(3 + k, 3)
            run_original_compiled(tj.make_spec())
        assert len(_POSITIONS) <= _POSITIONS_CAP

    def test_repeat_runs_hit_the_cache(self):
        from repro.core.compiled import _POSITIONS

        tj = TreeJoin(9, 9)
        run_twisted_compiled(tj.make_spec())
        size = len(_POSITIONS)
        run_twisted_compiled(tj.make_spec())  # same trees, same schedule
        assert len(_POSITIONS) == size
        assert tj.accumulator.total == tj.expected_total()

    def test_byte_cap_evicts_least_recent(self):
        from repro.core.compiled import (
            position_cache_info,
            set_position_cache_limits,
        )

        # One TJ(63,63) position pair is ~63.5 KB; a 100 KB cap fits a
        # single entry but never two, so the second insertion must
        # evict the first even though the entry cap is far away.
        previous = set_position_cache_limits(max_bytes=100 * 1024)
        try:
            run_original_compiled(TreeJoin(63, 63).make_spec())
            assert position_cache_info()["entries"] == 1
            run_original_compiled(TreeJoin(63, 63).make_spec())
            info = position_cache_info()
            assert info["entries"] == 1
            assert 0 < info["bytes"] <= info["max_bytes"]
        finally:
            set_position_cache_limits(
                max_entries=previous[0], max_bytes=previous[1]
            )

    def test_cache_info_reports_entries_and_bytes(self):
        from repro.core.compiled import position_cache_info

        tj = TreeJoin(15, 15)
        run_original_compiled(tj.make_spec())
        info = position_cache_info()
        assert info["entries"] == 1
        assert info["bytes"] > 0
        assert info["max_entries"] >= 1

    def test_limit_setter_validates_and_returns_previous(self):
        from repro.core.compiled import (
            position_cache_info,
            set_position_cache_limits,
        )

        with pytest.raises(ScheduleError):
            set_position_cache_limits(max_entries=0)
        with pytest.raises(ScheduleError):
            set_position_cache_limits(max_bytes=0)
        before = position_cache_info()
        previous = set_position_cache_limits(
            max_entries=before["max_entries"]
        )
        assert previous == (before["max_entries"], before["max_bytes"])

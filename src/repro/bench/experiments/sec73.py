"""Section 7.3 extension: task parallelism composed with twisting.

The paper does not evaluate parallel implementations ("We have not
evaluated parallel implementations of any of our benchmarks") but lays
out the recipe precisely; this experiment realizes it on the simulated
machine and reports the two multiplicative effects:

* *parallel speedup* — total task cycles / makespan, bounded by the
  worker count and the LPT load balance;
* *locality speedup* — the makespan ratio of original-order tasks vs
  twisted tasks, each worker running on a private cache hierarchy.
"""

from __future__ import annotations

from repro.bench.reporting import ExperimentReport
from repro.core.instruments import CacheProbe, OpCounter, combine
from repro.core.parallel import ParallelReport, run_task_parallel, task_spec
from repro.core.schedules import ORIGINAL, TWIST, Schedule
from repro.kernels.treejoin import TreeJoin
from repro.memory.costmodel import CostModel, WorkCost, weighted_instructions
from repro.memory.hierarchy import CacheHierarchy, LevelSpec
from repro.memory.layout import AddressMap, layout_tree

_WORKER_MODEL = CostModel(hit_latencies=(4, 12), memory_latency=120)


def _worker_machine() -> CacheHierarchy:
    return CacheHierarchy(
        [
            LevelSpec("L1", 16, ways=8).build(),
            LevelSpec("L2", 128, ways=8).build(),
        ]
    )


def _task_runner(schedule: Schedule, address_map: AddressMap):
    def run_task(task, instrument):
        machine = _worker_machine()
        ops = OpCounter()
        cache = CacheProbe(address_map, machine)
        schedule.run(task_spec(task), instrument=combine(ops, cache, instrument))
        instructions = weighted_instructions(
            dict(ops.counts), ops.work_points, WorkCost(2.0)
        )
        return _WORKER_MODEL.cycles(
            instructions, cache.cache_level_hits, cache.memory_accesses
        )

    return run_task


def run_sec73(
    num_nodes: int = 500,
    worker_counts: tuple[int, ...] = (1, 2, 4, 8),
    spawn_depth: int = 3,
) -> tuple[ExperimentReport, dict]:
    """Sweep worker counts for original vs twisted task bodies."""
    report = ExperimentReport(
        title=f"Section 7.3 extension: spawned tasks + twisting "
        f"(TJ, {num_nodes} nodes, spawn depth {spawn_depth})",
        columns=[
            "workers",
            "makespan (original)",
            "makespan (twisted)",
            "parallel speedup",
            "locality speedup",
        ],
    )
    data: dict[int, dict[str, ParallelReport]] = {}
    for workers in worker_counts:
        per_schedule: dict[str, ParallelReport] = {}
        for name, schedule in (("original", ORIGINAL), ("twisted", TWIST)):
            tj = TreeJoin(num_nodes, num_nodes)
            address_map = AddressMap()
            layout_tree(address_map, tj.outer_root, "outer")
            layout_tree(address_map, tj.inner_root, "inner")
            per_schedule[name] = run_task_parallel(
                tj.make_spec(),
                num_workers=workers,
                spawn_depth=spawn_depth,
                schedule=schedule,
                task_cycles=_task_runner(schedule, address_map),
            )
            assert tj.result == tj.expected_total()
        data[workers] = per_schedule
        report.add_row(
            workers,
            per_schedule["original"].makespan,
            per_schedule["twisted"].makespan,
            f"{per_schedule['twisted'].parallel_speedup:.2f}x",
            f"{per_schedule['original'].makespan / per_schedule['twisted'].makespan:.2f}x",
        )
    report.add_note(
        "the two effects compose: spawning buys load-balanced parallelism, "
        "twisting inside each task buys per-worker locality (Section 7.3)"
    )
    return report, data

"""Matrix Multiply (MM, §6.1) as annotated user code for the lint pass.

The recursive-matmul shape: the outer tree indexes rows, the inner
tree indexes columns, and each work point writes one output cell of a
module-level table.  The write target is *global*, but its subscript
key mentions the outer index — ``C[o.number, i.number]`` — which is
exactly the "write keyed by the outer index" form of the §3.3
criterion (each outer row owns a disjoint slice of ``C``).  The
``dot`` helper is declared pure with an in-source pragma, so the
verdict is *interchange-safe*.
"""

from repro.transform import inner_recursion, outer_recursion

#: output cells, keyed by (row number, column number)
C = {}


@outer_recursion(inner="mm_inner")
def mm_outer(o, i):
    """Outer recursion over the row tree."""
    if o is None:
        return
    mm_inner(o, i)
    mm_outer(o.left, i)
    mm_outer(o.right, i)


@inner_recursion
def mm_inner(o, i):
    """Inner recursion over the column tree: compute one cell."""
    if i is None:
        return
    C[o.number, i.number] = dot(o.data, i.data)  # lint: assume-pure: dot
    mm_inner(o, i.left)
    mm_inner(o, i.right)

"""The TW30x locality pass: pinned fixtures, schema, cache, mutations.

The benchmark verdicts asserted here are the same fixtures the modules
ship (``LOCALITY_VERDICT`` / ``LOCALITY_VERDICTS`` next to each spec's
``LOWER_VERDICT``): drift in the analyzer or in a workload's default
size must show up as a diff against a checked-in expectation, never as
a silent re-prediction.
"""

import numpy as np
import pytest

from repro.core.spec import NestedRecursionSpec
from repro.memory import CacheModel
from repro.spaces.trees import balanced_tree
from repro.transform.lint import locality
from repro.transform.lint.locality import (
    TRANSFORMS,
    LocalityVerdict,
    lint_locality,
)

#: Expected verdicts per benchmark, straight from the shipped fixtures.
def expected_verdicts():
    from repro.dualtree.algorithms import LOCALITY_VERDICTS
    from repro.dualtree.kde import LOCALITY_VERDICT as KDE_VERDICT
    from repro.kernels.gram import LOCALITY_VERDICT as GT_VERDICT
    from repro.kernels.matmul import LOCALITY_VERDICT as MM_VERDICT
    from repro.kernels.treejoin import LOCALITY_VERDICT as TJ_VERDICT

    return {
        "TJ": TJ_VERDICT,
        "MM": MM_VERDICT,
        "GT": GT_VERDICT,
        "KDE": KDE_VERDICT,
        **LOCALITY_VERDICTS,
    }


@pytest.fixture(autouse=True)
def fresh_cache():
    locality.clear_cache()
    yield
    locality.clear_cache()


@pytest.fixture(scope="module")
def benchmark_reports():
    """One lint-locality run per benchmark at the paper-shaped scale."""
    from repro.bench.workloads import wallclock_cases
    from repro.kernels.gram import GramTable

    locality.clear_cache()
    reports = {}
    for case in wallclock_cases(1.0):
        reports[case.name] = lint_locality(case.make_spec())
    reports["GT"] = lint_locality(GramTable(1024, 1024).make_spec())
    locality.clear_cache()
    return reports


class TestPinnedBenchmarkVerdicts:
    @pytest.mark.parametrize(
        "name", ["TJ", "MM", "PC", "NN", "KNN", "VP", "KDE", "GT"]
    )
    def test_verdicts_match_the_shipped_fixture(self, benchmark_reports, name):
        report = benchmark_reports[name]
        got = {t: str(v) for t, v in report.verdicts.items()}
        assert got == expected_verdicts()[name]

    def test_every_report_names_its_cache_model(self, benchmark_reports):
        for report in benchmark_reports.values():
            assert "TW305" in report.codes()
            assert report.cache_model == CacheModel.paper_default()

    def test_pinned_footprints_at_default_scale(self, benchmark_reports):
        footprints = {
            name: report.footprint_bytes
            for name, report in benchmark_reports.items()
        }
        assert footprints == {
            "TJ": 48000,
            "MM": 39936,
            "PC": 65504,
            "NN": 98256,
            "KNN": 49104,
            "VP": 49104,
            "KDE": 28616,
            "GT": 49152,
        }

    def test_regular_specs_have_full_reuse(self, benchmark_reports):
        for name in ("TJ", "MM", "GT"):
            assert benchmark_reports[name].reuse_factor == 1.0

    def test_pc_reuse_comes_from_the_sampled_density(self, benchmark_reports):
        report = benchmark_reports["PC"]
        assert "TW304" in report.codes()
        assert report.reuse_factor is not None
        assert 0.0 < report.reuse_factor < 1.0
        # The density discount is what pulls PC's working set into L1.
        assert report.fitting_level == "L1"

    def test_stateful_truncations_leave_reuse_unknown(self, benchmark_reports):
        for name in ("NN", "KNN", "VP", "KDE"):
            report = benchmark_reports[name]
            assert "TW303" in report.codes()
            assert report.reuse_factor is None
            assert report.has_unknown()

    def test_mm_footprint_counts_the_gathered_matrix_slice(
        self, benchmark_reports
    ):
        assert "array b" in benchmark_reports["MM"].footprint_detail

    def test_json_payload_shape(self, benchmark_reports):
        payload = benchmark_reports["TJ"].to_json()
        assert payload["schema_version"] == 2
        assert payload["kind"] == "locality"
        assert set(payload["verdicts"]) == set(TRANSFORMS)
        assert set(payload) == {
            "schema_version",
            "kind",
            "spec",
            "cache_model",
            "footprint_bytes",
            "footprint_detail",
            "reuse_factor",
            "reuse_detail",
            "effective_footprint_bytes",
            "fitting_level",
            "verdicts",
            "reasons",
            "diagnostics",
            "counts",
        }
        assert payload["cache_model"]["source"] == "paper-xeon"

    def test_render_lists_every_transform(self, benchmark_reports):
        rendered = benchmark_reports["TJ"].render()
        for transform in TRANSFORMS:
            assert f"TJ(1200x1200): {transform}:" in rendered


# --------------------------------------------------------------------
# Synthetic specs: verdict table edges, cache behavior, mutations
# --------------------------------------------------------------------


def payload_spec(num_nodes=15, payload=None, name="loc-test"):
    """A regular spec whose work kernel reads ``i.data``."""
    acc = np.zeros(1)

    def work(o, i):
        acc[0] += i.data

    inner = balanced_tree(num_nodes, data=lambda k: k)
    if payload is not None:
        for node in inner.iter_preorder():
            node.data = payload(node.data)
    return NestedRecursionSpec(
        outer_root=balanced_tree(num_nodes, data=lambda k: k),
        inner_root=inner,
        work=work,
        name=name,
    )


def tiny_model(l1=1024, l2=2048, l3=4096):
    return CacheModel(l1_bytes=l1, l2_bytes=l2, l3_bytes=l3)


class TestVerdictTable:
    def test_l1_resident_set_is_neutral_everywhere_that_blocks(self):
        # 15 nodes x (32 struct + 8 payload) = 600 B, inside a 1 KB L1.
        report = lint_locality(payload_spec(), cache_model=tiny_model())
        assert report.footprint_bytes == 15 * 40
        assert "TW301" in report.codes()
        assert report.verdicts["interchange"] is LocalityVerdict.NEUTRAL
        assert report.verdicts["twist"] is LocalityVerdict.NEUTRAL
        assert report.verdicts["layout:veb"] is LocalityVerdict.NEUTRAL

    def test_l2_sized_set_is_profitable(self):
        # 31 nodes x 40 B = 1240 B: spills the 1 KB L1, fits the 2 KB L2.
        report = lint_locality(
            payload_spec(num_nodes=31), cache_model=tiny_model()
        )
        assert "TW302" in report.codes()
        assert report.verdicts["interchange"] is LocalityVerdict.PROFITABLE
        assert report.verdicts["twist"] is LocalityVerdict.PROFITABLE
        assert report.verdicts["layout:veb"] is LocalityVerdict.PROFITABLE

    def test_beyond_llc_interchange_is_regressive_twist_is_not(self):
        # 127 nodes x 40 B = 5080 B: beyond the 4 KB last-level cache.
        report = lint_locality(
            payload_spec(num_nodes=127), cache_model=tiny_model()
        )
        assert "TW306" in report.codes()
        assert report.verdicts["interchange"] is LocalityVerdict.REGRESSIVE
        assert report.verdicts["twist"] is LocalityVerdict.PROFITABLE

    def test_bfs_layout_is_always_neutral(self):
        for nodes in (15, 31, 127):
            report = lint_locality(
                payload_spec(num_nodes=nodes),
                cache_model=tiny_model(),
                use_cache=False,
            )
            assert report.verdicts["layout:bfs"] is LocalityVerdict.NEUTRAL

    def test_spec_without_kernels_degrades_to_unknown(self):
        spec = payload_spec()
        spec.work = None
        report = lint_locality(spec, cache_model=tiny_model())
        assert "TW300" in report.codes()
        assert all(
            report.verdicts[t] is LocalityVerdict.UNKNOWN for t in TRANSFORMS
        )


class TestMutations:
    """Seeded data defects must flip the verdict (mutation harness)."""

    def certify_baseline(self):
        report = lint_locality(payload_spec(), cache_model=tiny_model())
        assert report.verdicts["interchange"] is LocalityVerdict.NEUTRAL
        locality.clear_cache()

    def test_inflated_payload_dtype_flips_interchange_to_regressive(self):
        self.certify_baseline()
        # Same kernel code, same tree shape — each payload scalar
        # inflated to a 64-element vector (8 B -> 512 B per node).
        spec = payload_spec(payload=lambda k: np.full(64, float(k)))
        report = lint_locality(spec, cache_model=tiny_model())
        assert report.footprint_bytes == 15 * (32 + 512)
        assert "TW306" in report.codes()
        assert report.verdicts["interchange"] is LocalityVerdict.REGRESSIVE

    def test_inflation_to_l2_only_flips_to_profitable(self):
        self.certify_baseline()
        # 8 B -> 64 B per node lands between L1 and L2 instead.
        spec = payload_spec(payload=lambda k: np.full(8, float(k)))
        report = lint_locality(spec, cache_model=tiny_model())
        assert report.footprint_bytes == 15 * (32 + 64)
        assert report.verdicts["interchange"] is LocalityVerdict.PROFITABLE


class TestReportCache:
    def test_same_spec_and_model_share_one_report(self):
        spec = payload_spec()
        first = lint_locality(spec, cache_model=tiny_model())
        assert lint_locality(spec, cache_model=tiny_model()) is first

    def test_clear_cache_forces_a_fresh_report(self):
        spec = payload_spec()
        first = lint_locality(spec, cache_model=tiny_model())
        locality.clear_cache()
        assert lint_locality(spec, cache_model=tiny_model()) is not first

    def test_a_different_cache_model_is_a_different_judgement(self):
        spec = payload_spec()
        small = lint_locality(spec, cache_model=tiny_model())
        large = lint_locality(spec, cache_model=CacheModel.paper_default())
        assert small is not large
        assert large.verdicts["interchange"] is LocalityVerdict.NEUTRAL

    def test_use_cache_false_bypasses_the_cache(self):
        spec = payload_spec()
        first = lint_locality(spec, cache_model=tiny_model())
        assert (
            lint_locality(spec, cache_model=tiny_model(), use_cache=False)
            is not first
        )

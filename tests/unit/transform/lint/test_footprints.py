"""Unit tests for static footprint inference over work statements."""

from repro.transform import recognize
from repro.transform.lint.diagnostics import DiagnosticSink
from repro.transform.lint.footprints import AccessPath, Region, analyze_work


def footprint_of(work: str, assume_pure=()):
    """Recognize a pair whose inner body runs ``work`` and analyze it."""
    indented = "\n".join(
        "    " + line for line in work.strip().splitlines()
    )
    source = f'''
def outer(o, i):
    if o is None:
        return
    inner(o, i)
    outer(o.left, i)
    outer(o.right, i)

def inner(o, i):
    if i is None:
        return
{indented}
    inner(o, i.left)
    inner(o, i.right)
'''
    template = recognize(source, "outer", "inner")
    sink = DiagnosticSink()
    fp = analyze_work(template, sink, assume_pure)
    return fp, sink


def codes(sink):
    return {d.code for d in sink.diagnostics}


class TestWriteClassification:
    def test_outer_attribute_write_is_outer_keyed(self):
        fp, sink = footprint_of("o.data = o.data + i.data")
        assert codes(sink) == set()
        (write,) = fp.writes
        assert write.path.region is Region.OUTER
        assert "outer" in write.path.keyed_by
        assert fp.outer_keyed_writes == [write]
        assert fp.shared_writes == []

    def test_inner_attribute_write_flagged(self):
        fp, sink = footprint_of("i.data = i.data + o.data")
        assert codes(sink) == {"TW010"}
        (write,) = fp.writes
        assert write.path.region is Region.INNER
        assert fp.shared_writes == [write]

    def test_global_scalar_write_flagged(self):
        _, sink = footprint_of("global total\ntotal = total + o.data")
        assert codes(sink) == {"TW011"}

    def test_subscript_keyed_by_outer_is_safe(self):
        fp, sink = footprint_of("table[o.number] = o.data * i.data")
        assert codes(sink) == set()
        (write,) = fp.writes
        assert write.path.region is Region.GLOBAL
        assert "outer" in write.path.keyed_by

    def test_subscript_keyed_by_inner_only_flagged(self):
        _, sink = footprint_of("table[i.number] = o.data")
        assert codes(sink) == {"TW010"}

    def test_unkeyed_subscript_flagged(self):
        _, sink = footprint_of("table[0] = o.data")
        assert codes(sink) == {"TW011"}

    def test_augassign_records_read_and_write(self):
        fp, sink = footprint_of("o.data += i.data")
        assert codes(sink) == set()
        assert any(r.path.display == "o.data" for r in fp.reads)
        assert any(w.path.display == "o.data" for w in fp.writes)

    def test_structural_mutation_flagged(self):
        _, sink = footprint_of("o.size = 0")
        assert codes(sink) == {"TW024"}

    def test_index_rebind_flagged(self):
        _, sink = footprint_of("o = i")
        assert codes(sink) == {"TW024"}

    def test_multi_hop_write_is_info_only(self):
        fp, sink = footprint_of("o.stats.best = i.data")
        assert codes(sink) == {"TW015"}
        (write,) = fp.writes
        assert "outer" in write.path.keyed_by


class TestAliases:
    def test_alias_of_outer_child_keeps_keying(self):
        fp, sink = footprint_of("t = o.stats\nt.best = i.data")
        assert codes(sink) == {"TW015"}
        (write,) = fp.writes
        assert write.path.display == "o.stats.best"

    def test_alias_of_inner_child_flagged(self):
        _, sink = footprint_of("t = i.left\nt.data = 1")
        assert codes(sink) == {"TW010"}

    def test_local_scratch_writes_ignored(self):
        fp, sink = footprint_of("acc = 0\nacc = acc + i.data\no.data = acc")
        assert codes(sink) == set()
        assert [w.path.display for w in fp.writes] == ["o.data"]

    def test_for_loop_target_inherits_container_keying(self):
        fp, sink = footprint_of("for c in o.parts:\n    c.data = i.data")
        assert codes(sink) == {"TW015"}
        (write,) = fp.writes
        assert "outer" in write.path.keyed_by

    def test_fresh_constructor_is_local(self):
        fp, sink = footprint_of("buf = list()\nbuf.append(i.data)")
        assert codes(sink) == set()
        assert fp.writes == []


class TestCalls:
    def test_unknown_helper_is_footprint_hole(self):
        _, sink = footprint_of("work(o, i)")
        assert codes(sink) == {"TW013"}
        (diag,) = sink.diagnostics
        assert "work" in diag.message
        assert diag.hint and "assume-pure" in diag.hint

    def test_assume_pure_silences_helper(self):
        _, sink = footprint_of("work(o, i)", assume_pure={"work"})
        assert codes(sink) == set()

    def test_pure_builtins_silent(self):
        _, sink = footprint_of("o.data = max(o.data, abs(i.data))")
        assert codes(sink) == set()

    def test_mutating_method_on_outer_receiver_is_keyed_write(self):
        fp, sink = footprint_of("o.heap.push(i.data)")
        assert codes(sink) == set()
        (write,) = fp.writes
        assert write.path.display == "o.heap"
        assert "outer" in write.path.keyed_by

    def test_mutating_method_on_global_flagged(self):
        _, sink = footprint_of("results.append(i.data)")
        assert codes(sink) == {"TW011"}

    def test_impure_call_is_global_write(self):
        _, sink = footprint_of("print(o.data)")
        assert codes(sink) == {"TW011"}

    def test_setattr_resolved_like_attribute_store(self):
        fp, sink = footprint_of("setattr(o, 'data', i.data)")
        assert codes(sink) == set()
        (write,) = fp.writes
        assert write.path.display == "o.data"

    def test_pure_module_call_silent(self):
        _, sink = footprint_of("o.data = math.sqrt(i.data)")
        assert codes(sink) == set()


class TestAccessPathOverlaps:
    def test_prefix_overlap(self):
        a = AccessPath(Region.OUTER, "o", ("best",), frozenset({"outer"}))
        b = AccessPath(Region.OUTER, "o", ("best", "value"), frozenset({"outer"}))
        assert a.overlaps(b) and b.overlaps(a)

    def test_disjoint_fields_do_not_overlap(self):
        a = AccessPath(Region.OUTER, "o", ("best",))
        b = AccessPath(Region.OUTER, "o", ("count",))
        assert not a.overlaps(b)

    def test_bare_parameter_read_never_overlaps_heap_write(self):
        bare = AccessPath(Region.INNER, "i", ())
        write = AccessPath(Region.INNER, "i", ("data",))
        assert not bare.overlaps(write)

    def test_distinct_global_roots_do_not_overlap(self):
        a = AccessPath(Region.GLOBAL, "table", ("[]",))
        b = AccessPath(Region.GLOBAL, "other", ("[]",))
        assert not a.overlaps(b)

    def test_local_never_overlaps(self):
        a = AccessPath(Region.LOCAL, "<local>", ("x",))
        assert not a.overlaps(a)

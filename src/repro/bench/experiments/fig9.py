"""Figure 9: behaviour of PC across input sizes.

"For small inputs, there is virtually no speedup, or even a slowdown
... As the input size grows, PC begins to suffer L3 cache misses, and
its speedup commensurately increases.  Eventually, the inner
recursions get so large that the caches are saturated, and the L3 miss
rate levels off (at about 80%) ... at this point, recursion twisting
is able to eliminate virtually all misses that are targeted by the
transformation ... Because there is no more opportunity to eliminate
misses, the speedup also levels off."

The driver sweeps PC input sizes on the fixed simulated machine and
reports speedup (panel a) and L2/L3 miss rates (panel b) per size —
the log-scale x axis of the paper becomes a doubling size column.
"""

from __future__ import annotations

from typing import Sequence

from repro.bench.machine import bench_hierarchy
from repro.bench.reporting import ExperimentReport, percent
from repro.bench.runner import run_case
from repro.bench.workloads import make_pc
from repro.core.schedules import ORIGINAL, TWIST
from repro.memory.counters import PerfReport, speedup

#: Default sweep: doubling sizes spanning fits-in-L2 through saturated-L3.
DEFAULT_SIZES = (128, 256, 512, 1024, 2048, 4096, 8192)


def run_fig9(
    sizes: Sequence[int] = DEFAULT_SIZES,
    radius: float = 0.35,
    leaf_size: int = 8,
) -> tuple[ExperimentReport, dict[int, tuple[PerfReport, PerfReport]]]:
    """Sweep PC input sizes; returns (report, per-size report pairs)."""
    data: dict[int, tuple[PerfReport, PerfReport]] = {}
    for size in sizes:
        case = make_pc(num_points=size, radius=radius, leaf_size=leaf_size)
        baseline = run_case(case, ORIGINAL, bench_hierarchy)
        twisted = run_case(case, TWIST, bench_hierarchy)
        data[size] = (baseline, twisted)

    report = ExperimentReport(
        title="Figure 9: PC at different input sizes (fixed simulated machine)",
        columns=[
            "points",
            "speedup",
            "L2 base",
            "L2 twist",
            "L3 base",
            "L3 twist",
        ],
    )
    for size, (baseline, twisted) in data.items():
        report.add_row(
            size,
            f"{speedup(baseline, twisted):.2f}x",
            percent(baseline.miss_rate("L2")),
            percent(twisted.miss_rate("L2")),
            percent(baseline.miss_rate("L3")),
            percent(twisted.miss_rate("L3")),
        )
    report.add_note(
        "paper shape: ~no speedup (or slowdown) while inner recursions fit "
        "in cache; speedup rises as baseline L3 misses appear, then levels "
        "off once the baseline saturates"
    )
    return report, data

#!/usr/bin/env python
"""Approximate dual-tree KDE under recursion twisting.

Kernel density estimation is the classic *approximate* dual-tree
algorithm: node pairs whose kernel contribution is pinned into a narrow
band get resolved in bulk and pruned.  Two things make it a good
showcase for the paper's machinery:

1. the approximation lives entirely in ``Score`` — the same
   truncation-flag machinery handles it under interchange and twisting;
2. because per-query traversal order is preserved by every schedule
   (the Section 3.3 invariant), the floating-point accumulations happen
   in the same order too: the estimates are *bit-identical* across
   schedules, not merely close.

Run:  python examples/kernel_density.py
"""

import numpy as np

from repro.core import OpCounter, run_original, run_twisted
from repro.dualtree import KernelDensity, brute_kde
from repro.spaces import clustered_points


def main() -> None:
    queries = clustered_points(800, clusters=12, spread=0.04, seed=90)
    references = clustered_points(1000, clusters=12, spread=0.04, seed=91)
    bandwidth = 0.08

    exact = brute_kde(queries, references, bandwidth)
    print(f"{len(queries)} queries x {len(references)} references, "
          f"bandwidth {bandwidth}\n")

    print("epsilon    visited pairs   bulk-resolved refs   max |error|   bound")
    for epsilon in (0.0, 1e-4, 1e-3, 1e-2):
        kde = KernelDensity(queries, references, bandwidth=bandwidth,
                            epsilon=epsilon)
        ops = OpCounter()
        run_twisted(kde.make_spec(), instrument=ops)
        error = float(np.abs(kde.result - exact).max())
        print(f"{epsilon:7.0e}   {ops.counts['visit']:13,d}   "
              f"{kde.rules.pruned_contributions:18,d}   {error:11.2e}   "
              f"{kde.error_bound():.2e}")
        assert error <= kde.error_bound() + 1e-12

    # Bit-identical results across schedules.
    kde = KernelDensity(queries, references, bandwidth=bandwidth, epsilon=1e-3)
    run_original(kde.make_spec())
    original = kde.result.copy()
    run_twisted(kde.make_spec())
    assert np.array_equal(original, kde.result)
    print("\noriginal and twisted KDE estimates are bit-identical: the")
    print("per-query traversal order invariant at work (Section 3.3).")


if __name__ == "__main__":
    main()

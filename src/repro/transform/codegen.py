"""Code generation: synthesizing interchanged and twisted sources.

Given a recognized :class:`~repro.transform.recognizer.RecursionTemplate`
and its :class:`~repro.transform.analysis.TruncationAnalysis`, this
module emits Python source for:

* the interchanged pair ``<outer>_swapped`` / ``<inner>_swapped``
  (Figure 3; Figure 6(b) when truncation is irregular), and
* the twisted quartet ``<outer>_twisted`` / ``<inner>_twisted`` /
  ``<outer>_twisted_swapped`` / ``<inner>_twisted_swapped``
  (Figure 4(a) with the Section 4 machinery).

The generated code preserves the user's parameter names and child
expressions verbatim — interchange swaps which *guard* bounds which
recursion and which *argument* each recursive call advances, exactly as
in the paper's listings.  Requirements on the user's node type, matching
the paper's prototype assumptions (Section 5):

* a ``size`` attribute giving the sub-recursion size ("our tool assumes
  that a method can be called to determine the size of the current
  sub-recursion ... In the simplest case, this method can simply return
  the value of a field");
* for irregular truncation, nodes must accept a boolean ``trunc``
  attribute (read via ``getattr(..., 'trunc', False)``, so nodes
  without the attribute start untruncated).

A module-level ``_TWIST_CUTOFF`` constant implements the Section 7.1
cutoff; it is generated as ``None`` (parameterless) unless a cutoff is
requested.
"""

from __future__ import annotations

import ast
import textwrap
from typing import Optional

from repro.transform.analysis import TruncationAnalysis
from repro.transform.recognizer import RecursionTemplate

_PREAMBLE = '''\
def _twist_size(node):
    """Sub-recursion size; a truncated (None) child counts as zero."""
    return node.size if node is not None else 0
'''


def _indent(text: str, levels: int = 1) -> str:
    return textwrap.indent(text, "    " * levels)


def _work_block(template: RecursionTemplate, levels: int) -> str:
    statements = "\n".join(ast.unparse(stmt) for stmt in template.work_statements)
    return _indent(statements, levels)


def generate_interchanged(
    template: RecursionTemplate, analysis: TruncationAnalysis
) -> str:
    """Source of the interchanged pair (Figure 3 / Figure 6(b))."""
    if analysis.is_irregular:
        return _generate_interchanged_irregular(template, analysis)
    return _generate_interchanged_regular(template, analysis)


def _generate_interchanged_regular(
    template: RecursionTemplate, analysis: TruncationAnalysis
) -> str:
    o, i = template.o_param, template.i_param
    outer, inner = template.outer_name, template.inner_name
    lines = [
        f"def {outer}_swapped({o}, {i}):",
        f'    """Interchanged outer recursion: traverses the inner tree."""',
        f"    if {analysis.inner1_source()}:",
        f"        return",
        f"    {inner}_swapped({o}, {i})",
    ]
    for child in template.inner_child_exprs:
        lines.append(f"    {outer}_swapped({o}, {ast.unparse(child)})")
    lines += [
        "",
        "",
        f"def {inner}_swapped({o}, {i}):",
        f'    """Interchanged inner recursion: traverses the outer tree."""',
        f"    if {ast.unparse(template.outer_guard)}:",
        f"        return",
        _work_block(template, 1),
    ]
    for child in template.outer_child_exprs:
        lines.append(f"    {inner}_swapped({ast.unparse(child)}, {i})")
    return "\n".join(lines) + "\n"


def _generate_interchanged_irregular(
    template: RecursionTemplate, analysis: TruncationAnalysis
) -> str:
    o, i = template.o_param, template.i_param
    outer, inner = template.outer_name, template.inner_name
    lines = [
        f"def {outer}_swapped({o}, {i}):",
        f'    """Interchanged outer recursion with truncation flags (Fig. 6b)."""',
        f"    if {analysis.inner1_source()}:",
        f"        return",
        f"    _untrunc = []",
        f"    {inner}_swapped({o}, {i}, _untrunc)",
    ]
    for child in template.inner_child_exprs:
        lines.append(f"    {outer}_swapped({o}, {ast.unparse(child)})")
    lines += [
        f"    for _node in _untrunc:",
        f"        _node.trunc = False",
        "",
        "",
        f"def {inner}_swapped({o}, {i}, _untrunc):",
        f'    """Interchanged inner recursion; skips work for flagged nodes."""',
        f"    if {ast.unparse(template.outer_guard)}:",
        f"        return",
        f"    if not getattr({o}, 'trunc', False):",
        f"        if {analysis.inner2_source()}:",
        f"            {o}.trunc = True",
        f"            _untrunc.append({o})",
        f"        else:",
        _work_block(template, 3),
    ]
    for child in template.outer_child_exprs:
        lines.append(f"    {inner}_swapped({ast.unparse(child)}, {i}, _untrunc)")
    return "\n".join(lines) + "\n"


def generate_twisted(
    template: RecursionTemplate,
    analysis: TruncationAnalysis,
    cutoff: Optional[int] = None,
) -> str:
    """Source of the twisted quartet (Figure 4(a) + Section 4)."""
    o, i = template.o_param, template.i_param
    outer, inner = template.outer_name, template.inner_name
    irregular = analysis.is_irregular
    cutoff_literal = "None" if cutoff is None else str(int(cutoff))

    parts: list[str] = [f"_TWIST_CUTOFF = {cutoff_literal}", "", ""]

    # ---- regular-order outer (Figure 4a, lines 1-14) -----------------
    lines = [
        f"def {outer}_twisted({o}, {i}):",
        f'    """Twisted schedule entry point (regular order)."""',
        f"    if {ast.unparse(template.outer_guard)}:",
        f"        return",
    ]
    if irregular:
        lines += [
            f"    if not getattr({o}, 'trunc', False):",
            f"        {inner}_twisted({o}, {i})",
        ]
    else:
        lines.append(f"    {inner}_twisted({o}, {i})")
    for index, child in enumerate(template.outer_child_exprs):
        lines += [
            f"    _child{index} = {ast.unparse(child)}",
            f"    if _twist_size(_child{index}) <= _twist_size({i}) and (",
            f"        _TWIST_CUTOFF is None or _twist_size({i}) > _TWIST_CUTOFF",
            f"    ):",
            f"        {outer}_twisted_swapped(_child{index}, {i})",
            f"    else:",
            f"        {outer}_twisted(_child{index}, {i})",
        ]
    parts.append("\n".join(lines))
    parts.append("")
    parts.append("")

    # ---- regular-order inner: the original inner, renamed ------------
    lines = [
        f"def {inner}_twisted({o}, {i}):",
        f'    """Regular-order inner traversal (original semantics)."""',
        f"    if {ast.unparse(template.inner_guard)}:",
        f"        return",
        _work_block(template, 1),
    ]
    for child in template.inner_child_exprs:
        lines.append(f"    {inner}_twisted({o}, {ast.unparse(child)})")
    parts.append("\n".join(lines))
    parts.append("")
    parts.append("")

    # ---- swapped-order outer (Figure 4a, lines 16-29) ----------------
    lines = [
        f"def {outer}_twisted_swapped({o}, {i}):",
        f'    """Twisted schedule, swapped order."""',
        f"    if {analysis.inner1_source()}:",
        f"        return",
    ]
    if irregular:
        lines += [
            f"    _untrunc = []",
            f"    {inner}_twisted_swapped({o}, {i}, _untrunc)",
        ]
    else:
        lines.append(f"    {inner}_twisted_swapped({o}, {i})")
    for index, child in enumerate(template.inner_child_exprs):
        lines += [
            f"    _child{index} = {ast.unparse(child)}",
            f"    if _twist_size(_child{index}) <= _twist_size({o}):",
            f"        {outer}_twisted({o}, _child{index})",
            f"    else:",
            f"        {outer}_twisted_swapped({o}, _child{index})",
        ]
    if irregular:
        lines += [
            f"    for _node in _untrunc:",
            f"        _node.trunc = False",
        ]
    parts.append("\n".join(lines))
    parts.append("")
    parts.append("")

    # ---- swapped-order inner ------------------------------------------
    if irregular:
        lines = [
            f"def {inner}_twisted_swapped({o}, {i}, _untrunc):",
            f'    """Swapped-order inner traversal with truncation flags."""',
            f"    if {ast.unparse(template.outer_guard)}:",
            f"        return",
            f"    if not getattr({o}, 'trunc', False):",
            f"        if {analysis.inner2_source()}:",
            f"            {o}.trunc = True",
            f"            _untrunc.append({o})",
            f"        else:",
            _work_block(template, 3),
        ]
        for child in template.outer_child_exprs:
            lines.append(
                f"    {inner}_twisted_swapped({ast.unparse(child)}, {i}, _untrunc)"
            )
    else:
        lines = [
            f"def {inner}_twisted_swapped({o}, {i}):",
            f'    """Swapped-order inner traversal."""',
            f"    if {ast.unparse(template.outer_guard)}:",
            f"        return",
            _work_block(template, 1),
        ]
        for child in template.outer_child_exprs:
            lines.append(f"    {inner}_twisted_swapped({ast.unparse(child)}, {i})")
    parts.append("\n".join(lines))

    return "\n".join(parts) + "\n"


def generate_module(
    template: RecursionTemplate,
    analysis: TruncationAnalysis,
    cutoff: Optional[int] = None,
    include_original: bool = True,
) -> str:
    """A complete generated module: preamble, originals, both transforms."""
    sections = [_PREAMBLE]
    if include_original:
        sections += [template.outer_source, "", template.inner_source, ""]
    sections += [
        generate_interchanged(template, analysis),
        "",
        generate_twisted(template, analysis, cutoff=cutoff),
    ]
    source = "\n".join(sections)
    # Validate before handing back: the generator must never emit
    # unparsable code.
    ast.parse(source)
    return source

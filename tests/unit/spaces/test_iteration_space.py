"""Unit tests for materialized iteration spaces and schedule rendering."""

import pytest

from repro.spaces import (
    IterationSpace,
    column_major_order,
    paper_inner_tree,
    paper_outer_tree,
    preorder_labels,
    render_schedule,
    row_major_order,
    schedule_order_grid,
    transposes_to,
)


@pytest.fixture
def space():
    return IterationSpace.from_trees(paper_outer_tree(), paper_inner_tree())


class TestConstruction:
    def test_axes_are_preorder(self, space):
        assert space.outer_axis == ["A", "B", "C", "D", "E", "F", "G"]
        assert space.inner_axis == [1, 2, 3, 4, 5, 6, 7]

    def test_full_rectangle_by_default(self, space):
        assert space.num_points == 49
        assert space.is_rectangular
        assert space.skipped() == set()

    def test_explicit_executed_subset(self):
        space = IterationSpace.from_trees(
            paper_outer_tree(),
            paper_inner_tree(),
            executed=[("A", 1), ("B", 2)],
        )
        assert space.num_points == 2
        assert not space.is_rectangular
        assert ("A", 7) in space.skipped()

    def test_preorder_labels_fall_back_to_number(self):
        from repro.spaces import balanced_tree
        from repro.spaces.node import IndexNode, finalize_tree

        a = IndexNode()
        b = IndexNode()
        a.children = (b,)
        finalize_tree(a)
        assert preorder_labels(a) == [0, 1]


class TestValidation:
    def test_accepts_exact_enumeration(self, space):
        space.validate_schedule(column_major_order(space))

    def test_rejects_duplicates(self, space):
        schedule = column_major_order(space)
        with pytest.raises(ValueError, match="more than once"):
            space.validate_schedule(schedule + [schedule[0]])

    def test_rejects_missing(self, space):
        with pytest.raises(ValueError, match="misses"):
            space.validate_schedule(column_major_order(space)[:-1])

    def test_rejects_out_of_bounds(self, space):
        schedule = column_major_order(space)[:-1] + [("Z", 99)]
        with pytest.raises(ValueError, match="out-of-bounds"):
            space.validate_schedule(schedule)


class TestOrders:
    def test_column_major_is_original(self, space):
        order = column_major_order(space)
        assert order[:8] == [
            ("A", 1), ("A", 2), ("A", 3), ("A", 4),
            ("A", 5), ("A", 6), ("A", 7), ("B", 1),
        ]

    def test_row_major_is_interchange(self, space):
        order = row_major_order(space)
        assert order[:8] == [
            ("A", 1), ("B", 1), ("C", 1), ("D", 1),
            ("E", 1), ("F", 1), ("G", 1), ("A", 2),
        ]

    def test_transposes_to(self, space):
        assert transposes_to(column_major_order(space), row_major_order(space))
        assert not transposes_to(column_major_order(space), column_major_order(space)[:-1])


class TestRendering:
    def test_grid_positions(self, space):
        grid = schedule_order_grid(space, column_major_order(space))
        # grid[inner][outer]: (A,1) is step 0, (A,2) step 1, (B,1) step 7
        assert grid[0][0] == 0
        assert grid[1][0] == 1
        assert grid[0][1] == 7

    def test_skipped_cells_render_as_dots(self):
        space = IterationSpace.from_trees(
            paper_outer_tree(), paper_inner_tree(),
            executed=[("A", 1)],
        )
        text = render_schedule(space, [("A", 1)])
        assert "." in text
        assert text.splitlines()[1].strip().startswith("1")

    def test_render_includes_headers(self, space):
        text = render_schedule(space, column_major_order(space))
        header = text.splitlines()[0]
        for label in "ABCDEFG":
            assert label in header

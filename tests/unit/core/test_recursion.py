"""Unit tests for recursion-limit management."""

import sys

from repro.core import recursion_guard, required_limit
from repro.spaces import balanced_tree, list_tree


class TestRequiredLimit:
    def test_scales_with_depth(self):
        shallow = required_limit(balanced_tree(7), balanced_tree(7))
        deep = required_limit(list_tree(500), list_tree(500))
        assert deep > shallow
        assert deep >= 1000 * 4  # both depths, 4 frames per level

    def test_includes_headroom(self):
        assert required_limit(balanced_tree(1), balanced_tree(1)) > 200


class TestGuard:
    def test_raises_limit_temporarily(self):
        before = sys.getrecursionlimit()
        with recursion_guard(list_tree(2000), list_tree(2000)):
            assert sys.getrecursionlimit() >= 4000
        assert sys.getrecursionlimit() == before

    def test_never_lowers_limit(self):
        before = sys.getrecursionlimit()
        with recursion_guard(balanced_tree(1), balanced_tree(1)):
            assert sys.getrecursionlimit() >= before
        assert sys.getrecursionlimit() == before

    def test_minimum_override(self):
        with recursion_guard(balanced_tree(1), balanced_tree(1), minimum=123456):
            assert sys.getrecursionlimit() >= 123456

    def test_restores_on_exception(self):
        before = sys.getrecursionlimit()
        try:
            with recursion_guard(list_tree(2000), list_tree(2000)):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert sys.getrecursionlimit() == before

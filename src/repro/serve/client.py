"""A small blocking client for the serve CLI (JSON or binary framing).

Used by the integration tests and the load generator's TCP mode.  The
default protocol is one JSON object per line, each request carrying a
caller ``id`` echoed in its response (responses may arrive out of
submission order — admission ticks complete independently).  Passing
``framing="binary"`` negotiates the length-prefixed frame protocol of
:mod:`repro.serve.framing` with one JSON hello, then speaks frames for
the rest of the connection; results decode bit-identically either way.
"""

from __future__ import annotations

import json
import socket
from typing import Optional, Sequence

from repro.errors import ReproError
from repro.serve import framing as fr
from repro.serve.protocol import (
    Query,
    Result,
    decode_result,
    encode_query,
)


class ServeClientError(ReproError):
    """The server reported a failure for one request."""


class ServeClient:
    """One blocking connection to a ``python -m repro.serve`` server."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8642,
        timeout: float = 60.0,
        framing: str = "json",
    ) -> None:
        if framing not in fr.FRAMINGS:
            raise ServeClientError(
                f"unknown framing {framing!r}; known: {list(fr.FRAMINGS)}"
            )
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")
        self._next_id = 0
        self.framing = "json"
        if framing == "binary":
            self._negotiate_binary()

    def _negotiate_binary(self) -> None:
        """One JSON hello, then frames for the connection's lifetime."""
        self._next_id += 1
        hello = {"id": self._next_id, "op": "hello", "framing": "binary"}
        self._file.write(json.dumps(hello).encode() + b"\n")
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ServeClientError("server closed during framing hello")
        response = json.loads(line)
        if not response.get("ok") or response.get("framing") != "binary":
            raise ServeClientError(
                response.get("error", "binary framing refused")
            )
        self.framing = "binary"

    # -- request plumbing --------------------------------------------------

    def _roundtrip(self, requests: Sequence[dict]) -> list[dict]:
        """Pipeline requests, return responses matched by id, in order.

        Every request dict carries ``op`` plus op-specific fields; the
        framing layer below turns it into a JSON line or a frame, and
        responses come back as the *JSON-shaped* dicts the callers
        already consume (binary frames are translated on read).
        """
        by_id: dict[int, Optional[dict]] = {}
        for request in requests:
            self._next_id += 1
            by_id[self._next_id] = None
            self._send(dict(request, id=self._next_id))
        self._file.flush()
        outstanding = len(by_id)
        while outstanding:
            response = self._receive()
            if response is None:
                raise ServeClientError("server closed the connection")
            rid = response.get("id")
            if rid in by_id and by_id[rid] is None:
                by_id[rid] = response
                outstanding -= 1
        return list(by_id.values())  # type: ignore[arg-type]

    def _send(self, request: dict) -> None:
        if self.framing == "json":
            self._file.write(json.dumps(request).encode() + b"\n")
            return
        op = request["op"]
        request_id = request["id"]
        if op == "query":
            self._file.write(
                fr.encode_frame(
                    fr.T_QUERY, request_id, fr.pack_query(request["query"])
                )
            )
        elif op == "stats":
            self._file.write(fr.encode_frame(fr.T_STATS, request_id))
        elif op == "ping":
            self._file.write(fr.encode_frame(fr.T_PING, request_id))
        elif op == "shutdown":
            self._file.write(fr.encode_frame(fr.T_SHUTDOWN, request_id))
        else:  # pragma: no cover - internal misuse
            raise ServeClientError(f"op {op!r} has no binary frame")

    def _receive(self) -> Optional[dict]:
        if self.framing == "json":
            line = self._file.readline()
            if not line:
                return None
            return json.loads(line)
        frame = fr.read_frame_blocking(self._file)
        if frame is None:
            return None
        frame_type, request_id, body = frame
        if frame_type == fr.T_RESULT:
            return {
                "id": request_id,
                "ok": True,
                "binary_result": fr.unpack_result(body),
            }
        if frame_type == fr.T_STATS_REPLY:
            return {
                "id": request_id,
                "ok": True,
                "stats": json.loads(body.decode()),
            }
        if frame_type == fr.T_OK:
            return {"id": request_id, "ok": True}
        if frame_type == fr.T_ERROR:
            return {"id": request_id, "ok": False, "error": body.decode()}
        raise ServeClientError(f"unknown frame type 0x{frame_type:02x}")

    # -- operations --------------------------------------------------------

    def query(self, query: Query) -> Result:
        """Answer one query."""
        return self.query_many([query])[0]

    def query_many(self, queries: Sequence[Query]) -> list[Result]:
        """Pipeline many queries over one connection, results in order."""
        if self.framing == "binary":
            # pack_query runs in _send; carry the query object through.
            responses = self._roundtrip(
                [{"op": "query", "query": q} for q in queries]
            )
        else:
            responses = self._roundtrip(
                [{"op": "query", "query": encode_query(q)} for q in queries]
            )
        results: list[Result] = []
        for response in responses:
            if not response.get("ok"):
                raise ServeClientError(
                    response.get("error", "unknown server error")
                )
            if "binary_result" in response:
                results.append(response["binary_result"])
            else:
                results.append(decode_result(response["result"]))
        return results

    def stats(self) -> dict:
        """The server's service + batcher counters."""
        response = self._roundtrip([{"op": "stats"}])[0]
        if not response.get("ok"):
            raise ServeClientError(response.get("error", "stats failed"))
        return response["stats"]

    def ping(self) -> bool:
        """Liveness check."""
        return bool(self._roundtrip([{"op": "ping"}])[0].get("ok"))

    def shutdown(self) -> None:
        """Ask the server to exit (fire and forget)."""
        try:
            if self.framing == "binary":
                self._file.write(fr.encode_frame(fr.T_SHUTDOWN, 0))
            else:
                self._file.write(
                    json.dumps({"op": "shutdown", "id": 0}).encode() + b"\n"
                )
            self._file.flush()
        except OSError:  # server may close before the flush completes
            pass

    def close(self) -> None:
        """Close the connection."""
        try:
            self._file.close()
        except OSError:  # pragma: no cover - already closed
            pass
        self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def wait_for_server(
    host: str, port: int, timeout: float = 30.0
) -> Optional[ServeClient]:
    """Poll until the server accepts connections; None on timeout."""
    import time

    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            client = ServeClient(host, port, timeout=timeout)
        except OSError:
            time.sleep(0.05)
            continue
        try:
            if client.ping():
                return client
        except (OSError, ServeClientError):  # pragma: no cover - races
            client.close()
            time.sleep(0.05)
            continue
    return None

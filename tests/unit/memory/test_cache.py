"""Unit tests for the set-associative LRU cache."""

import pytest

from repro.errors import MemorySimError
from repro.memory import SetAssociativeCache, fully_associative


class TestBasicBehaviour:
    def test_cold_miss_then_hit(self):
        cache = fully_associative(4)
        assert cache.access(1) is False
        assert cache.access(1) is True
        assert cache.stats.accesses == 2
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_lru_eviction_order(self):
        cache = fully_associative(2)
        cache.access(1)
        cache.access(2)
        cache.access(1)  # 1 becomes MRU
        cache.access(3)  # evicts 2 (LRU)
        assert cache.contains(1)
        assert not cache.contains(2)
        assert cache.contains(3)
        assert cache.stats.evictions == 1

    def test_hit_refreshes_recency(self):
        cache = fully_associative(2)
        cache.access(1)
        cache.access(2)
        cache.access(1)
        cache.access(3)
        assert cache.access(1) is True  # survived because refreshed

    def test_capacity(self):
        cache = SetAssociativeCache(num_sets=4, ways=3)
        assert cache.capacity_lines == 12


class TestSetMapping:
    def test_addresses_map_by_modulo(self):
        cache = SetAssociativeCache(num_sets=2, ways=1)
        cache.access(0)  # set 0
        cache.access(1)  # set 1
        assert cache.contains(0) and cache.contains(1)
        cache.access(2)  # set 0: evicts 0
        assert not cache.contains(0)
        assert cache.contains(1)

    def test_conflict_misses_with_low_associativity(self):
        # Two lines in the same set of a direct-mapped cache always
        # conflict even though capacity would fit both.
        cache = SetAssociativeCache(num_sets=2, ways=1)
        for _round in range(3):
            cache.access(0)
            cache.access(2)
        assert cache.stats.hits == 0

    def test_full_associativity_avoids_conflicts(self):
        cache = fully_associative(2)
        for _round in range(3):
            cache.access(0)
            cache.access(2)
        assert cache.stats.hits == 4


class TestMaintenance:
    def test_flush_keeps_stats(self):
        cache = fully_associative(4)
        cache.access(1)
        cache.flush()
        assert not cache.contains(1)
        assert cache.stats.accesses == 1

    def test_reset_stats_keeps_contents(self):
        cache = fully_associative(4)
        cache.access(1)
        cache.reset_stats()
        assert cache.contains(1)
        assert cache.stats.accesses == 0

    def test_contains_does_not_mutate(self):
        cache = fully_associative(2)
        cache.access(1)
        cache.access(2)
        cache.contains(1)  # must NOT refresh recency
        before = cache.stats.accesses
        cache.access(3)  # evicts 1 (still LRU)
        assert not cache.contains(1)
        assert cache.stats.accesses == before + 1


class TestStats:
    def test_miss_rate(self):
        cache = fully_associative(4)
        cache.access(1)
        cache.access(1)
        cache.access(2)
        assert cache.stats.miss_rate == pytest.approx(2 / 3)
        assert cache.stats.hit_rate == pytest.approx(1 / 3)

    def test_idle_rates_are_zero(self):
        cache = fully_associative(4)
        assert cache.stats.miss_rate == 0.0
        assert cache.stats.hit_rate == 0.0


class TestValidation:
    def test_rejects_bad_geometry(self):
        with pytest.raises(MemorySimError):
            SetAssociativeCache(num_sets=0, ways=1)
        with pytest.raises(MemorySimError):
            SetAssociativeCache(num_sets=1, ways=0)

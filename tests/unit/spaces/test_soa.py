"""Unit tests for structure-of-arrays tree layouts."""

import gc

import numpy as np
import pytest

from repro.errors import SpecError
from repro.spaces import (
    LINEARIZATIONS,
    balanced_tree,
    finalize_tree,
    linearize,
    list_tree,
    paper_outer_tree,
    perfect_tree,
    random_tree,
    soa_view,
    to_linked,
    to_soa,
    tree_from_nested,
    validate_index_node,
)
from repro.spaces.node import IndexNode


def wide_tree(fanout=30):
    from repro.spaces import TreeNode

    root = TreeNode("root")
    root.children = tuple(TreeNode(str(k), data=k) for k in range(fanout))
    return finalize_tree(root)


def sample_trees():
    return [
        ("paper", paper_outer_tree()),
        ("balanced", balanced_tree(25, data=lambda k: k * 3)),
        ("list", list_tree(40)),
        ("random", random_tree(33, seed=5)),
        ("wide", wide_tree()),
        ("single", tree_from_nested("only")),
    ]


class TestLinearize:
    def test_preorder_matches_iter_preorder(self):
        root = random_tree(40, seed=1)
        assert linearize(root, "preorder") == list(root.iter_preorder())

    def test_bfs_is_level_order(self):
        root = perfect_tree(4)
        labels = [node.label for node in linearize(root, "bfs")]
        assert labels == sorted(labels)  # perfect_tree labels in BFS order

    @pytest.mark.parametrize("order", LINEARIZATIONS)
    @pytest.mark.parametrize(
        "name,root", sample_trees(), ids=[n for n, _ in sample_trees()]
    )
    def test_every_order_is_a_permutation(self, order, name, root):
        ordered = linearize(root, order)
        assert len(ordered) == root.size
        assert {id(node) for node in ordered} == {
            id(node) for node in root.iter_preorder()
        }
        assert ordered[0] is root  # every order starts at the root

    def test_veb_keeps_depth_neighborhoods_close(self):
        # In a perfect tree of depth 4 (budget 4 -> top block of depth
        # 2), the root's block {root, its children} must precede all
        # grandchildren.
        root = perfect_tree(4)
        positions = {
            id(node): pos for pos, node in enumerate(linearize(root, "veb"))
        }
        top_block = [root, *root.children]
        deeper = [
            grandchild
            for child in root.children
            for grandchild in child.children
        ]
        assert max(positions[id(n)] for n in top_block) < min(
            positions[id(n)] for n in deeper
        )

    def test_veb_handles_deep_list_trees(self):
        # The budget at least halves per nesting level, so a 5000-deep
        # chain must not hit the recursion limit.
        root = list_tree(5000)
        assert len(linearize(root, "veb")) == 5000

    def test_unknown_order_rejected(self):
        with pytest.raises(SpecError, match="unknown linearization"):
            linearize(balanced_tree(3), "zorder")
        with pytest.raises(SpecError, match="unknown linearization"):
            soa_view(balanced_tree(3), "zorder")


class TestPackedStructure:
    @pytest.mark.parametrize("order", LINEARIZATIONS)
    def test_links_match_linked_tree(self, order):
        root = random_tree(50, seed=9)
        soa = to_soa(root, order)
        pos_of = {id(node): pos for pos, node in enumerate(soa.nodes)}
        for pos, node in enumerate(soa.nodes):
            kids = node.children
            if kids:
                assert soa.first_child[pos] == pos_of[id(kids[0])]
                for left, right in zip(kids, kids[1:]):
                    assert soa.next_sibling[pos_of[id(left)]] == pos_of[
                        id(right)
                    ]
                assert soa.next_sibling[pos_of[id(kids[-1])]] == -1
            else:
                assert soa.first_child[pos] == -1
            for child in kids:
                assert soa.parent[pos_of[id(child)]] == pos
        assert soa.parent[pos_of[id(root)]] == -1
        assert soa.nodes[soa.root] is root

    @pytest.mark.parametrize("order", LINEARIZATIONS)
    def test_rank_space_invariants(self, order):
        root = random_tree(50, seed=2)
        soa = to_soa(root, order)
        pre = list(root.iter_preorder())
        # rank_pos/pos_rank are inverse permutations, rank 0 = root.
        assert (soa.pos_rank[soa.rank_pos] == np.arange(soa.num_nodes)).all()
        assert soa.rank_nodes == pre
        # A subtree is the contiguous rank run [rank, rank + span).
        rank_of = {id(node): rank for rank, node in enumerate(pre)}
        for rank, node in enumerate(pre):
            assert soa.span[rank] == node.size
            subtree = {rank_of[id(n)] for n in node.iter_preorder()}
            assert subtree == set(range(rank, rank + node.size))

    def test_children_rank_accessors(self):
        root = balanced_tree(25)
        soa = to_soa(root)
        pre = list(root.iter_preorder())
        rank_of = {id(node): rank for rank, node in enumerate(pre)}
        for rank, node in enumerate(pre):
            kids = [rank_of[id(child)] for child in node.children]
            assert soa.children_ranks(rank) == kids
            assert soa.rank_children_rev[rank] == list(reversed(kids))

    def test_payload_columns_are_typed(self):
        root = balanced_tree(15, data=lambda k: float(k))
        soa = to_soa(root)
        assert soa.column("data").dtype == np.float64
        assert soa.column("data")[soa.root] == root.data

    def test_missing_column_error_lists_available(self):
        soa = to_soa(balanced_tree(7))
        with pytest.raises(SpecError, match="data.*label|label.*data"):
            soa.column("weights")

    def test_custom_payload_getters(self):
        root = balanced_tree(7, data=lambda k: k)
        soa = to_soa(root, payload={"double": lambda node: node.data * 2})
        assert sorted(soa.payload) == ["double"]
        assert soa.column("double")[soa.root] == root.data * 2

    def test_ragged_payload_falls_back_to_object_dtype(self):
        root = balanced_tree(3, data=lambda k: [0] * (k + 1))
        soa = to_soa(root)
        assert soa.column("data").dtype == object


class TestRoundTrip:
    @pytest.mark.parametrize("order", LINEARIZATIONS)
    @pytest.mark.parametrize(
        "name,root", sample_trees(), ids=[n for n, _ in sample_trees()]
    )
    def test_round_trip_preserves_everything(self, order, name, root):
        rebuilt = to_linked(to_soa(root, order))
        originals = list(root.iter_preorder())
        copies = list(rebuilt.iter_preorder())
        assert len(copies) == len(originals)
        for original, copy in zip(originals, copies):
            assert copy.label == original.label
            assert copy.data == original.data
            assert copy.size == original.size
            assert copy.number == original.number
            assert len(copy.children) == len(original.children)

    def test_round_trip_restores_python_scalar_types(self):
        root = balanced_tree(7, data=lambda k: k)
        rebuilt = to_linked(to_soa(root))
        assert type(rebuilt.data) is int
        assert type(rebuilt.size) is int

    def test_round_trip_preserves_truncation_scratch(self):
        root = balanced_tree(7)
        root.trunc = True
        root.children[0].trunc_counter = 42
        rebuilt = to_linked(to_soa(root))
        assert rebuilt.trunc is True
        assert rebuilt.children[0].trunc_counter == 42

    def test_bare_index_nodes_round_trip_as_index_nodes(self):
        root = IndexNode()
        child = IndexNode()
        root.children = (child,)
        finalize_tree(root)
        rebuilt = to_linked(to_soa(root))
        assert type(rebuilt) is IndexNode
        assert rebuilt.size == 2


class TestViewCache:
    def test_same_view_returned_per_root_and_order(self):
        root = balanced_tree(15)
        assert soa_view(root, "bfs") is soa_view(root, "bfs")
        assert soa_view(root, "bfs") is not soa_view(root, "preorder")

    def test_refresh_repacks(self):
        root = balanced_tree(15)
        first = soa_view(root)
        assert soa_view(root, refresh=True) is not first

    def test_cached_views_die_with_the_tree(self):
        # The views live on the root object (not a module cache): a
        # SoATree references every node, so any global table would pin
        # the dead tree through its own value.  Dropping the last tree
        # reference must free root + views as one cycle.
        import weakref

        root = balanced_tree(15)
        soa_view(root)
        ref = weakref.ref(root)
        del root
        gc.collect()
        assert ref() is None


class TestValidateRejectsSoAHandles:
    def test_soa_tree_rejected_with_pointer_to_soa_backend(self):
        soa = to_soa(balanced_tree(7))
        with pytest.raises(SpecError, match="soa-native executors"):
            validate_index_node(soa)

    def test_spec_construction_rejects_soa_roots(self):
        from repro.core import NestedRecursionSpec

        soa = to_soa(balanced_tree(7))
        with pytest.raises(SpecError, match="soa-native executors"):
            NestedRecursionSpec(soa, balanced_tree(7))


class TestFinalizeScales:
    def test_million_node_list_tree_finalizes_without_recursion(self):
        import sys

        # Build the chain bottom-up without the builders (list_tree
        # already finalizes; this test pins finalize_tree itself).
        node = IndexNode()
        for _ in range(1_000_000 - 1):
            parent = IndexNode()
            parent.children = (node,)
            node = parent
        root = node
        limit = sys.getrecursionlimit()
        # A recursive implementation would need ~10^6 frames; cap the
        # interpreter far below that so regressions fail loudly.
        sys.setrecursionlimit(5_000)
        try:
            finalize_tree(root)
        finally:
            sys.setrecursionlimit(limit)
        assert root.size == 1_000_000
        assert root.number == 0
        deepest = root
        while deepest.children:
            deepest = deepest.children[0]
        assert deepest.number == 999_999
        assert deepest.size == 1

"""Unit tests for reuse-profile comparison."""

import pytest

from repro.analysis import (
    compare_profiles,
    dominance,
    reuse_profile,
    working_set_fraction,
)
from repro.core import NestedRecursionSpec
from repro.core.schedules import INTERCHANGE, ORIGINAL, TWIST
from repro.memory.reuse import ReuseDistanceAnalyzer
from repro.spaces import balanced_tree


def spec_factory():
    return NestedRecursionSpec(balanced_tree(127), balanced_tree(127))


@pytest.fixture(scope="module")
def profiles():
    return compare_profiles(spec_factory, [ORIGINAL, INTERCHANGE, TWIST])


class TestReuseProfile:
    def test_counts_all_accesses(self, profiles):
        assert profiles["original"].num_accesses == 2 * 127 * 127

    def test_compare_keys_by_schedule_name(self, profiles):
        assert set(profiles) == {"original", "interchange", "twist"}


class TestDominance:
    def test_twist_dominates_beyond_the_smallest_distances(self, profiles):
        # The paper's caveat: twisting is "not uniform" — it gives up a
        # few O(1) outer reuses (distances 2-4) and wins everywhere
        # else.  Assert exactly that structure.
        report = dominance(profiles["twist"], profiles["original"], 512)
        assert report.dominance_fraction >= 0.7
        # Better-or-equal at every mid-range size, strictly better for
        # the cache-interesting band (at the top end both CDFs saturate
        # near 1.0 and meet).
        for distance, a, b in zip(report.distances, report.first, report.second):
            if distance >= 8:
                assert a >= b, distance
            if 8 <= distance <= 128:
                assert a > b, distance

    def test_interchange_does_not_dominate(self, profiles):
        # Interchange just moves the bad half: no dominance either way
        # would be ideal, but at minimum it must not dominate original
        # the way twisting does at every sampled size.
        up = dominance(profiles["interchange"], profiles["original"], 512)
        down = dominance(profiles["original"], profiles["interchange"], 512)
        assert min(up.dominance_fraction, down.dominance_fraction) > 0.4

    def test_report_shape(self, profiles):
        report = dominance(profiles["twist"], profiles["original"], 64)
        assert report.distances == [1, 2, 4, 8, 16, 32, 64]
        assert len(report.first) == len(report.second) == 7

    def test_empty_dominance(self):
        a, b = ReuseDistanceAnalyzer(), ReuseDistanceAnalyzer()
        assert dominance(a, b, 0).dominance_fraction == 0.0


class TestWorkingSet:
    def test_predicted_hit_rate_matches_theorem(self, profiles):
        analyzer = profiles["original"]
        # Compare against a real fully associative simulation.
        from repro.core import ReuseDistanceProbe
        from repro.core.instruments import CacheProbe
        from repro.memory import AddressMap, layout_tree
        from repro.memory.cache import fully_associative
        from repro.memory.hierarchy import CacheHierarchy

        spec = spec_factory()
        amap = AddressMap()
        layout_tree(amap, spec.outer_root, "outer")
        layout_tree(amap, spec.inner_root, "inner")
        machine = CacheHierarchy([fully_associative(64, "L")])
        probe = CacheProbe(amap, machine)
        ORIGINAL.run(spec, instrument=probe)
        simulated_hit_rate = machine.levels[0].stats.hit_rate
        predicted = working_set_fraction(analyzer, 64)
        assert predicted == pytest.approx(simulated_hit_rate, abs=1e-9)

    def test_degenerate_cache(self, profiles):
        assert working_set_fraction(profiles["original"], 0) == 0.0

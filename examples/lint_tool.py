#!/usr/bin/env python
"""The static schedule-safety linter on the six paper benchmarks (§3.3, §6.1).

Each file under ``examples/annotated/`` writes one benchmark the
natural way — a nested recursive traversal with ``@outer_recursion`` /
``@inner_recursion`` annotations — and the linter decides, without
running anything, whether the schedule transformations are safe:

* **interchange-safe** — every write is keyed by the outer index and
  the guards are pure and non-adaptive: the §3.3 criterion holds
  statically, so interchange and twisting preserve semantics.
* **twist-safe** — same, but the inner guard reads both indices
  (irregular truncation, §4): safe via the generated flag machinery.
* **needs-dynamic-check** — the guard reads state the work updates
  (adaptive pruning, NN/KNN/VP): confirm per input with
  :func:`repro.core.soundness.check_transformation`.
* **unsafe** — a write not keyed by the outer index, or an impure
  guard: the tool refuses to transform.

Run:  python examples/lint_tool.py
"""

from pathlib import Path

from repro.transform import lint_source

ANNOTATED = Path(__file__).resolve().parent / "annotated"

#: An example the linter must *reject*: the write is keyed by the
#: inner index, so interchange would merge contributions across outer
#: nodes into the wrong accumulators (TW010).
UNSAFE_SOURCE = '''
from repro.transform import outer_recursion, inner_recursion

@outer_recursion(inner="bad_inner")
def bad_outer(o, i):
    if o is None:
        return
    bad_inner(o, i)
    bad_outer(o.left, i)
    bad_outer(o.right, i)

@inner_recursion
def bad_inner(o, i):
    if i is None:
        return
    i.data = i.data + o.data
    bad_inner(o, i.left)
    bad_inner(o, i.right)
'''


def main() -> None:
    """Lint every annotated benchmark spec and one crafted-unsafe case."""
    for path in sorted(ANNOTATED.glob("*.py")):
        report = lint_source(path.read_text(), filename=path.name)
        print(f"{path.name:8s} -> {report.verdict.value}")
        for diag in report.diagnostics:
            print(f"    {diag.format(path.name)}")

    print()
    report = lint_source(UNSAFE_SOURCE, filename="inner_keyed.py")
    print(f"{'inner_keyed.py':8s} -> {report.verdict.value}")
    for diag in report.errors:
        print(f"    {diag.format('inner_keyed.py')}")
    assert report.verdict.value == "unsafe"
    assert "TW010" in report.codes()


if __name__ == "__main__":
    main()

"""Property-based guarantee for the compiled backend.

The contract: *any* spec the TW20x pass certifies ``lowerable`` may
run under ``backend="compiled"`` and never observably diverge from the
recursive oracle — for arbitrary tree sizes (including the degenerate
one-node trees), every registered schedule, and every storage
linearization.  TJ (integer accumulation, exact) and the Gram table
(elementwise float writes, closed-form oracle) drive it; both are
certified lowerable, which a property below also pins.
"""

from hypothesis import given, settings, strategies as st

from repro.core.schedules import BY_NAME, twist_with_cutoff
from repro.kernels import GramTable, TreeJoin
from repro.spaces.soa import LINEARIZATIONS
from repro.transform.lint.lower import LowerVerdict, lint_lower

sizes = st.integers(min_value=1, max_value=48)
orders = st.sampled_from(LINEARIZATIONS)
schedules = st.one_of(
    st.sampled_from(sorted(BY_NAME)).map(BY_NAME.get),
    st.integers(min_value=0, max_value=12).map(twist_with_cutoff),
)


@settings(max_examples=40, deadline=None)
@given(sizes, sizes, schedules, orders)
def test_lowerable_specs_never_diverge_under_compiled(
    n_outer, n_inner, schedule, order
):
    tj = TreeJoin(n_outer, n_inner)
    assert lint_lower(tj.make_spec()).lower is LowerVerdict.LOWERABLE
    schedule.run(tj.make_spec(), backend="recursive")
    oracle = (tj.accumulator.total, tj.accumulator.pairs)
    schedule.run(tj.make_spec(), backend="compiled", order=order)
    assert (tj.accumulator.total, tj.accumulator.pairs) == oracle
    assert tj.accumulator.total == tj.expected_total()


@settings(max_examples=25, deadline=None)
@given(sizes, sizes, schedules, orders)
def test_gram_table_is_exact_under_compiled(n, m, schedule, order):
    gt = GramTable(n, m)
    schedule.run(gt.make_spec(), backend="compiled", order=order)
    assert gt.max_error() == 0.0

"""Bench target: Figure 9 — PC across input sizes.

Paper shape asserted: near-zero (or negative) gain at small sizes,
rising speedup as the baseline starts missing in L3, leveling off once
the baseline saturates; twisted miss rates stay low throughout.
"""

from benchmarks.conftest import register_report
from repro.bench.experiments import run_fig9
from repro.memory.counters import speedup


def test_fig9_scaling(benchmark, bench_scale):
    sizes = (128, 256, 512, 1024, 2048, 4096, 8192)
    if bench_scale < 1.0:
        sizes = tuple(max(64, int(s * bench_scale)) for s in sizes[:5])
    report, data = benchmark.pedantic(
        run_fig9, kwargs={"sizes": sizes}, rounds=1, iterations=1
    )
    register_report(report, "fig9_scaling.txt")

    speedups = [speedup(*data[size]) for size in sizes]
    # Left edge: overhead dominates (paper: "virtually no speedup, or
    # even a slowdown").
    assert speedups[0] < 1.2
    if bench_scale >= 1.0:
        # Right edge: decisively faster.
        assert speedups[-1] > 2.0
        # Broadly increasing: the largest size beats the smallest by a
        # lot, and the curve's maximum sits in the saturated half.
        assert speedups[-1] > 2 * speedups[0]
        assert speedups.index(max(speedups)) >= len(sizes) // 2

    if bench_scale >= 1.0:
        # Baseline saturation at the top end (paper: levels off ~80%).
        baseline_top = data[sizes[-1]][0]
        assert baseline_top.miss_rate("L3") > 0.8
        twisted_top = data[sizes[-1]][1]
        assert twisted_top.miss_rate("L3") < 0.5

"""The trajectory aggregator: tolerant readers, labeled baselines."""

import json
import os

from repro.bench.trajectory import TRAJECTORY_SOURCES, run_trajectory


def write_json(directory, name, payload):
    path = os.path.join(directory, name)
    with open(path, "w") as handle:
        json.dump(payload, handle)
    return path


def soa_payload():
    return {
        "experiment": "wallclock_backends",
        "results": [
            {
                "benchmark": "treejoin",
                "schedule": "original",
                "timings": {"recursive": 4.0, "soa": 1.0, "auto": 0.9},
            },
            {
                "benchmark": "treejoin",
                "schedule": "twist",
                "timings": {"recursive": 9.0, "soa": 1.0},
            },
        ],
    }


def compiled_payload():
    return {
        "experiment": "wallclock_backends",
        "results": [
            {
                "benchmark": "treejoin",
                "schedule": "original",
                "timings": {"soa": 8.0, "compiled": 1.0},
            }
        ],
    }


def parallel_payload():
    return {
        "experiment": "wallclock_parallel",
        "results": [
            {
                "benchmark": "treejoin",
                "schedule": "original",
                "runs": [
                    {
                        "engine": "process",
                        "workers": 2,
                        "speedup_vs_serial_soa": 1.4,
                    },
                    {
                        "engine": "process",
                        "workers": 4,
                        "speedup_vs_serial_soa": 1.9,
                    },
                ],
            }
        ],
    }


def serve_payload():
    return {
        "experiment": "serve",
        "users": 1000,
        "references": 4096,
        "speedup": 6.5,
    }


def serve_suite_payload():
    return {
        "experiment": "serve_suite",
        "workload": {"users": 1000, "references": 4096},
        "runs": {
            "baseline-pr8": {"speedup": 4.0},
            "dedup-2shards": {"speedup": 8.0},
            "malformed": {"speedup": "not-a-number"},
        },
    }


class TestTrajectory:
    def test_all_sources_fold_into_one_labeled_table(self, tmp_path):
        write_json(tmp_path, "BENCH_soa.json", soa_payload())
        write_json(tmp_path, "BENCH_parallel.json", parallel_payload())
        write_json(tmp_path, "BENCH_compiled.json", compiled_payload())
        write_json(tmp_path, "BENCH_serve.json", serve_payload())
        report = run_trajectory(root=str(tmp_path))
        rendered = report.render()
        # Every payload contributes, each labeled with its own baseline.
        assert ("BENCH_soa.json", "treejoin/original", "soa", "recursive", 4.0, "-") in report.rows
        assert ("BENCH_compiled.json", "treejoin/original", "compiled", "soa", 8.0, "-") in report.rows
        assert ("BENCH_parallel.json", "treejoin/original", "processx4", "serial soa", 1.9, "-") in report.rows
        assert (
            "BENCH_serve.json",
            "1000 users / 4096 refs",
            "admission batching",
            "per-query serial",
            6.5,
            "-",
        ) in report.rows
        assert "per-query serial" in rendered

    def test_serve_suite_payloads_get_one_row_per_run(self, tmp_path):
        write_json(tmp_path, "BENCH_serve.json", serve_suite_payload())
        report = run_trajectory(
            paths=[os.path.join(tmp_path, "BENCH_serve.json")]
        )
        labels = {row[1] for row in report.rows}
        assert "1000 users / 4096 refs [baseline-pr8]" in labels
        assert "1000 users / 4096 refs [dedup-2shards]" in labels
        # The malformed run is dropped, the rest keep their baselines.
        assert not any("malformed" in label for label in labels)
        for row in report.rows:
            if row[1] != "geomean":
                assert row[3] == "per-query serial"
        # sqrt(4 * 8)
        assert any(
            row[1] == "geomean" and abs(row[4] - 5.657) < 0.001
            for row in report.rows
        )

    def test_multi_row_sources_get_a_geomean_row(self, tmp_path):
        write_json(tmp_path, "BENCH_soa.json", soa_payload())
        report = run_trajectory(
            paths=[os.path.join(tmp_path, "BENCH_soa.json")]
        )
        # sqrt(4 * 9) = 6
        assert ("BENCH_soa.json", "geomean", "", "", 6.0, "") in report.rows

    def test_missing_files_become_a_note_not_a_crash(self, tmp_path):
        report = run_trajectory(root=str(tmp_path))
        assert report.rows == []
        missing = [note for note in report.notes if "not present" in note]
        assert len(missing) == 1
        for name in TRAJECTORY_SOURCES:
            assert name in missing[0]

    def test_malformed_and_alien_payloads_become_notes(self, tmp_path):
        broken = os.path.join(tmp_path, "BENCH_soa.json")
        with open(broken, "w") as handle:
            handle.write("{not json")
        write_json(
            tmp_path, "BENCH_serve.json", {"experiment": "warp-factor"}
        )
        report = run_trajectory(
            paths=[broken, os.path.join(tmp_path, "BENCH_serve.json")]
        )
        assert report.rows == []
        assert any("BENCH_soa.json" in note for note in report.notes)
        assert any(
            "unrecognized" in note and "BENCH_serve.json" in note
            for note in report.notes
        )

    def test_rows_for_real_benchmarks_carry_the_locality_verdict(self, tmp_path):
        payload = {
            "experiment": "wallclock_backends",
            "results": [
                {
                    "benchmark": "TJ",
                    "schedule": "original",
                    "timings": {"recursive": 4.0, "soa": 1.0},
                },
                {
                    "benchmark": "TJ",
                    "schedule": "twist",
                    "timings": {"recursive": 4.0, "soa": 1.0},
                },
                {
                    "benchmark": "PC",
                    "schedule": "twist",
                    "timings": {"recursive": 4.0, "batched": 1.0},
                },
            ],
        }
        write_json(tmp_path, "BENCH_soa.json", payload)
        report = run_trajectory(
            paths=[os.path.join(tmp_path, "BENCH_soa.json")]
        )
        by_label = {
            (row[0], row[1]): row[5]
            for row in report.rows
            if row[1] != "geomean"
        }
        # Non-twist rows show the layout:veb verdict, twist rows the
        # twist verdict — straight from the pinned TW30x fixtures.
        assert by_label[("BENCH_soa.json", "TJ/original")] == "profitable"
        assert by_label[("BENCH_soa.json", "TJ/twist")] == "profitable"
        assert by_label[("BENCH_soa.json", "PC/twist")] == "neutral"
        assert "locality" in report.columns

    def test_repo_defaults_point_at_the_checked_in_names(self):
        assert TRAJECTORY_SOURCES == (
            "BENCH_soa.json",
            "BENCH_parallel.json",
            "BENCH_compiled.json",
            "BENCH_serve.json",
        )

"""Unit tests for bounding volumes."""

import math

import numpy as np
import pytest

from repro.dualtree import Ball, HRect, point_dist


class TestHRect:
    def test_of_points(self):
        pts = np.array([[0.0, 1.0], [2.0, 3.0], [1.0, -1.0]])
        box = HRect.of_points(pts)
        assert box.mins == (0.0, -1.0)
        assert box.maxs == (2.0, 3.0)
        assert box.dim == 2

    def test_min_dist_overlapping_is_zero(self):
        a = HRect((0, 0), (2, 2))
        b = HRect((1, 1), (3, 3))
        assert a.min_dist(b) == 0.0

    def test_min_dist_axis_gap(self):
        a = HRect((0, 0), (1, 1))
        b = HRect((3, 0), (4, 1))
        assert a.min_dist(b) == pytest.approx(2.0)

    def test_min_dist_diagonal_gap(self):
        a = HRect((0, 0), (1, 1))
        b = HRect((2, 2), (3, 3))
        assert a.min_dist(b) == pytest.approx(math.sqrt(2))

    def test_min_dist_symmetric(self):
        a = HRect((0, 0), (1, 2))
        b = HRect((5, -3), (6, -1))
        assert a.min_dist(b) == pytest.approx(b.min_dist(a))

    def test_max_dist(self):
        a = HRect((0, 0), (1, 1))
        b = HRect((2, 2), (3, 3))
        assert a.max_dist(b) == pytest.approx(math.sqrt(18))

    def test_max_dist_bounds_any_pair(self):
        rng = np.random.default_rng(0)
        pa, pb = rng.random((20, 2)), rng.random((20, 2)) + 2.0
        a, b = HRect.of_points(pa), HRect.of_points(pb)
        pairwise = np.sqrt(((pa[:, None] - pb[None, :]) ** 2).sum(-1))
        assert pairwise.max() <= a.max_dist(b) + 1e-9
        assert pairwise.min() >= a.min_dist(b) - 1e-9

    def test_contains_point(self):
        box = HRect((0, 0), (1, 1))
        assert box.contains_point((0.5, 1.0))
        assert not box.contains_point((1.5, 0.5))

    def test_validation(self):
        with pytest.raises(ValueError):
            HRect((0, 0), (1,))
        with pytest.raises(ValueError):
            HRect((2,), (1,))


class TestBall:
    def test_min_dist_disjoint(self):
        a = Ball((0, 0), 1.0)
        b = Ball((5, 0), 1.0)
        assert a.min_dist(b) == pytest.approx(3.0)

    def test_min_dist_intersecting_is_zero(self):
        a = Ball((0, 0), 2.0)
        b = Ball((1, 0), 2.0)
        assert a.min_dist(b) == 0.0

    def test_max_dist(self):
        a = Ball((0, 0), 1.0)
        b = Ball((5, 0), 2.0)
        assert a.max_dist(b) == pytest.approx(8.0)

    def test_bounds_any_contained_pair(self):
        rng = np.random.default_rng(1)
        ca, cb = np.array([0.0, 0.0]), np.array([4.0, 0.0])
        pa = ca + rng.normal(0, 0.3, (50, 2))
        pb = cb + rng.normal(0, 0.3, (50, 2))
        ra = float(np.sqrt(((pa - ca) ** 2).sum(1)).max())
        rb = float(np.sqrt(((pb - cb) ** 2).sum(1)).max())
        a, b = Ball(ca, ra), Ball(cb, rb)
        pairwise = np.sqrt(((pa[:, None] - pb[None, :]) ** 2).sum(-1))
        assert pairwise.min() >= a.min_dist(b) - 1e-9
        assert pairwise.max() <= a.max_dist(b) + 1e-9

    def test_negative_radius_rejected(self):
        with pytest.raises(ValueError):
            Ball((0, 0), -0.1)


class TestPointDist:
    def test_euclidean(self):
        assert point_dist((0, 0), (3, 4)) == pytest.approx(5.0)
        assert point_dist((1, 1, 1), (1, 1, 1)) == 0.0

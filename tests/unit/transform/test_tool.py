"""Unit tests for the tool driver and annotations."""

import pytest

from repro.errors import TransformError
from repro.spaces import paper_inner_tree, paper_outer_tree
from repro.transform import (
    find_annotated_pair,
    inner_recursion,
    outer_recursion,
    role_of,
    transform_annotated_source,
    transform_source,
    twist_functions,
)

SOURCE = '''
def outer(o, i):
    if o is None:
        return
    inner(o, i)
    outer(o.left, i)
    outer(o.right, i)

def inner(o, i):
    if i is None:
        return
    work(o, i)
    inner(o, i.left)
    inner(o, i.right)
'''

ANNOTATED = '''
from repro.transform import outer_recursion, inner_recursion

@outer_recursion(inner="walk_inner")
def walk_outer(o, i):
    if o is None:
        return
    walk_inner(o, i)
    walk_outer(o.left, i)
    walk_outer(o.right, i)

@inner_recursion
def walk_inner(o, i):
    if i is None:
        return
    work(o, i)
    walk_inner(o, i.left)
    walk_inner(o, i.right)
'''


class TestAnnotations:
    def test_markers_attach_metadata(self):
        @outer_recursion(inner="their_inner")
        def their_outer(o, i):
            pass

        @inner_recursion
        def their_inner(o, i):
            pass

        assert role_of(their_outer) == ("outer", "their_inner")
        assert role_of(their_inner) == ("inner", None)
        assert role_of(lambda: None) is None

    def test_outer_requires_name(self):
        with pytest.raises(TypeError):
            outer_recursion(42)


class TestDiscovery:
    def test_finds_annotated_pair(self):
        assert find_annotated_pair(ANNOTATED) == ("walk_outer", "walk_inner")

    def test_missing_annotations(self):
        with pytest.raises(TransformError, match="annotated pair"):
            find_annotated_pair(SOURCE)

    def test_inconsistent_declaration(self):
        bad = ANNOTATED.replace('inner="walk_inner"', 'inner="other"')
        with pytest.raises(TransformError, match="names inner"):
            find_annotated_pair(bad)


class TestTransformSource:
    def test_pipeline_produces_runnable_module(self):
        result = transform_source(SOURCE, "outer", "inner")
        seen = []
        namespace = result.compile({"work": lambda o, i: seen.append((o.label, i.label))})
        namespace.outer_twisted(paper_outer_tree(), paper_inner_tree())
        assert len(seen) == 49

    def test_entry_names(self):
        result = transform_source(SOURCE, "outer", "inner")
        assert result.twisted_entry == "outer_twisted"
        assert result.interchanged_entry == "outer_swapped"
        assert not result.is_irregular

    def test_annotated_entry_point(self):
        result = transform_annotated_source(ANNOTATED)
        assert result.template.outer_name == "walk_outer"


class TestTwistFunctions:
    def test_live_functions_roundtrip(self):
        collected = []

        def their_work(o, i):
            collected.append((o.label, i.label))

        namespace = {"their_work": their_work}
        exec(
            SOURCE.replace("work(o, i)", "their_work(o, i)"),
            namespace,
        )
        # Simulate "live functions defined in a module".
        import types

        module = types.ModuleType("user_module")
        module.__dict__.update(namespace)

        import textwrap

        result = transform_source(
            SOURCE.replace("work(o, i)", "their_work(o, i)"), "outer", "inner"
        )
        ns = result.compile({"their_work": their_work})
        ns.outer_twisted(paper_outer_tree(), paper_inner_tree())
        assert len(collected) == 49

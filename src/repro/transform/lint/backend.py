"""Backend-conformance analysis: batch/SoA kernels vs scalar semantics.

PR 1's linter certifies the §3.3 *schedule* proofs for annotated
source; this module guards the other trust boundary the executors
added since: a spec's vectorized kernels.  ``work_batch``,
``work_batch_soa`` and ``truncate_inner2_batch`` promise to be
semantically equivalent to their scalar counterparts ("as if ``work``
ran on each pair in order"), and both the batched engine and
``backend="auto"`` lean on that promise without checking it.

:func:`lint_spec` checks what can be checked statically, on the live
function objects of a :class:`~repro.core.spec.NestedRecursionSpec`:

* **write/read sets** — the state locations each kernel writes and the
  node fields it reads are inferred by walking its AST (resolving
  names through closures, globals and bound methods, recursing into
  helpers defined in this package) and compared across scalar/batch
  forms (TW101/TW102);
* **purity & order-independence** — no cross-dispatch state capture
  (TW103), no mutation or retention of the dispatcher's block
  arguments (TW104), guard read-set consistency (TW105/TW106), and
  order-sensitivity of read-modify-write state updates (TW108: a
  vectorized update of state the kernel also reads is only provably
  order-equivalent when it is a commutative reduction or a literal
  per-pair replay loop);
* **a verdict per backend** folded into one spec classification:
  ``batch-safe`` / ``soa-safe`` (proofs went through), explicit
  ``needs-dynamic-check`` (holes remain — discharge them with the
  ``sanitize`` backend, :mod:`repro.core.sanitize`), or ``unsafe``
  (a kernel refutes equivalence; ``backend="auto"`` refuses it).

Helpers that stage per-tree caches (``repro.dualtree.batch``) mark
themselves ``__conformance_staged__ = True``: calls to them are
treated as pure reads of pre-staged copies of tree data and surface as
TW109 *info* findings rather than unknown-helper warnings.  Plain
read-only helpers may set ``__conformance_pure__ = True``.

This is the spec-level descendant of the paper's §5 prototype
"sanity checking tool": where the paper checked the template shape and
trusted the programmer for everything else, this pass checks the
kernels themselves and says exactly what it could not prove.
"""

from __future__ import annotations

import ast
import enum
import importlib
import inspect
import json
import textwrap
import types
from dataclasses import dataclass, field
from typing import Optional

from repro.core.spec import NestedRecursionSpec
from repro.transform.lint.diagnostics import DiagnosticSink, Severity
from repro.transform.lint.footprints import (
    FRESH_CONSTRUCTORS,
    KNOWN_MUTATING_METHODS,
    KNOWN_PURE_METHODS,
    PURE_BUILTINS,
    PURE_MODULES,
)

#: Schema version shared with :class:`~repro.transform.lint.report.LintReport`.
SCHEMA_VERSION = 2

#: Array/query methods assumed pure on *any* receiver.  Extends the
#: footprint analyzer's query set with the ndarray surface the batch
#: kernels use, plus the two staging accessors whose receivers are
#: values of staged helpers (``LeafBlocks.rows``, ``SoATree.column``).
PURE_VALUE_METHODS = KNOWN_PURE_METHODS | frozenset(
    {
        "all",
        "any",
        "argmax",
        "argmin",
        "argsort",
        "astype",
        "column",
        "item",
        "max",
        "max_dist",
        "mean",
        "min",
        "min_dist",
        "nonzero",
        "ravel",
        "reshape",
        "rows",
        "sum",
        "take",
        "tobytes",
    }
)

#: Maximum helper-recursion depth before giving up with TW110.
MAX_DEPTH = 10

#: Kernel roles whose findings gate a *vectorized* backend (TW103/104/
#: 110 only fire here; the scalar kernel is the reference semantics).
BATCH_ROLES = frozenset(
    {"work_batch", "work_batch_soa", "truncate_inner2_batch"}
)

# Value kinds tracked per local name (plain tuples, hashable).
_NODE = ("node",)
_NODE_SEQ = ("node_seq",)
_VIEW = ("view",)
_DATA = ("data",)
_FRESH = ("fresh",)

#: Root key for writes/reads on the traversal's node objects.
NODE_ROOT = "<node>"

#: Commutative-reduction augmented ops (order-independent updates).
_REDUCTION_OPS = (ast.Add, ast.Sub, ast.Mult, ast.BitOr, ast.BitAnd, ast.BitXor)


class SpecVerdict(enum.Enum):
    """Overall backend-conformance classification of one spec."""

    BATCH_SAFE = "batch-safe"
    SOA_SAFE = "soa-safe"
    NEEDS_DYNAMIC_CHECK = "needs-dynamic-check"
    UNSAFE = "unsafe"

    def __str__(self) -> str:
        return self.value


@dataclass
class WriteRecord:
    """Everything observed about writes to one (root, field) location."""

    label: str
    #: every write was an augmented commutative reduction (+=, |=, ...)
    reduction_only: bool = True
    #: every write sat inside a for/while loop (per-pair replay)
    in_loop_only: bool = True


@dataclass
class KernelFootprint:
    """Inferred effect summary of one kernel function."""

    role: str
    name: str = "<kernel>"
    analyzable: bool = True
    #: (root key, field) -> write evidence
    writes: dict = field(default_factory=dict)
    #: (root key, field) state locations read outside staging calls
    state_reads: set = field(default_factory=set)
    #: state locations read only as arguments to staged helpers
    staged_state_reads: set = field(default_factory=set)
    #: node attribute names read from traversal nodes (or SoA columns)
    node_reads: set = field(default_factory=set)
    #: names of ``__conformance_staged__`` helpers called
    staged_helpers: set = field(default_factory=set)

    def write_keys(self) -> set:
        """The ``(state_root, field)`` keys this kernel writes."""
        return set(self.writes)

    def to_json(self) -> dict:
        """JSON-ready dict for the conformance report's ``kernels``."""
        return {
            "role": self.role,
            "name": self.name,
            "analyzable": self.analyzable,
            "writes": sorted(
                record.label for record in self.writes.values()
            ),
            "node_reads": sorted(self.node_reads),
            "staged_helpers": sorted(self.staged_helpers),
        }


class _Span:
    """Line/col carrier for diagnostics pinned into the kernel's file."""

    __slots__ = ("lineno", "col_offset")

    def __init__(self, lineno: int, col_offset: int) -> None:
        self.lineno = lineno
        self.col_offset = col_offset


class _KernelAnalyzer(ast.NodeVisitor):
    """AST walker inferring one kernel's :class:`KernelFootprint`.

    Works on the live function object: free variables resolve through
    ``__closure__``, then ``__globals__``; bound methods recurse with
    ``self`` mapped onto the receiver's state root, so ``base_case``
    and ``base_case_batch`` on one rules instance share root labels.
    """

    def __init__(
        self,
        fn,
        kinds: dict,
        footprint: KernelFootprint,
        sink: DiagnosticSink,
        labels: dict,
        memo: set,
        depth: int = 0,
        line_offset: int = 0,
    ) -> None:
        self.fn = fn
        self.kinds = dict(kinds)
        self.footprint = footprint
        self.sink = sink
        self.labels = labels
        self.memo = memo
        self.depth = depth
        self.line_offset = line_offset
        self.loop_depth = 0
        self.cell_names: set[str] = set()
        self._staged_ctx = False
        self._is_batch = footprint.role in BATCH_ROLES

    # -- plumbing ----------------------------------------------------

    def _span(self, node: ast.AST) -> _Span:
        return _Span(
            getattr(node, "lineno", 0) + self.line_offset,
            getattr(node, "col_offset", 0),
        )

    def _emit(self, code: str, message: str, node: ast.AST, hint=None) -> None:
        qualname = getattr(self.fn, "__qualname__", "<kernel>")
        self.sink.emit(
            code,
            f"{self.footprint.role}: {message} (in {qualname})",
            self._span(node),
            hint=hint,
        )

    def _state_root(self, obj, name: str) -> tuple:
        key = id(obj)
        _LIVE_OBJECTS[key] = obj
        self.labels.setdefault(key, name)
        return ("state", key, self.labels[key])

    def _external_kind(self, obj, name: str) -> tuple:
        if isinstance(obj, types.ModuleType):
            return ("module", obj, name)
        if isinstance(
            obj, (types.FunctionType, types.MethodType, types.BuiltinFunctionType)
        ) or isinstance(obj, type):
            return ("callable", obj, name)
        return self._state_root(obj, name)

    def resolve_name(self, name: str) -> Optional[tuple]:
        """Kind of a bare name: locals, then closure, then globals."""
        if name in self.kinds:
            return self.kinds[name]
        code = self.fn.__code__
        closure = self.fn.__closure__ or ()
        for var, cell in zip(code.co_freevars, closure):
            if var == name:
                try:
                    return self._external_kind(cell.cell_contents, name)
                except ValueError:  # pragma: no cover - empty cell
                    return None
        if name in self.fn.__globals__:
            return self._external_kind(self.fn.__globals__[name], name)
        return None

    def _kind_of(self, node: ast.AST) -> tuple:
        """Shallow value-kind inference for receivers and RHS values."""
        if isinstance(node, ast.Name):
            return self.resolve_name(node.id) or _DATA
        if isinstance(node, ast.Attribute):
            base = self._kind_of(node.value)
            if base[0] == "state":
                return ("state_field", base[1], node.attr)
            if base[0] == "state_field":
                return base
            if base[0] == "module":
                attr = getattr(base[1], node.attr, None)
                if attr is not None:
                    return self._external_kind(attr, node.attr)
            return _DATA
        if isinstance(node, ast.Subscript):
            base = self._kind_of(node.value)
            if base[0] in ("state", "state_field"):
                field_name = node.value.attr if isinstance(
                    node.value, ast.Attribute
                ) else ""
                root = base[1]
                return ("state_field", root, base[2] if base[0] == "state_field" else field_name)
            if base == _NODE_SEQ:
                return _NODE
            return _DATA
        if isinstance(node, (ast.List, ast.Set, ast.Dict, ast.DictComp, ast.SetComp)):
            return _FRESH
        if isinstance(node, ast.ListComp):
            return self._comprehension_kind(node)
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in FRESH_CONSTRUCTORS:
                return _FRESH
            return _DATA
        if isinstance(node, ast.Starred):
            return self._kind_of(node.value)
        return _DATA

    def _comprehension_kind(self, node: ast.ListComp) -> tuple:
        bound = self._comprehension_bindings(node.generators)
        element = _KernelAnalyzer.__new__(_KernelAnalyzer)
        element.__dict__ = dict(self.__dict__)
        element.kinds = {**self.kinds, **bound}
        return (
            _NODE_SEQ
            if element._kind_of(node.elt) in (_NODE, _NODE_SEQ)
            else _FRESH
        )

    # -- write recording ---------------------------------------------

    def _locate(self, node: ast.AST) -> tuple:
        """Map an assignment-target base onto a write location.

        Returns ``("state", root, field)``, ``("node",)``,
        ``("block",)`` (a dispatcher argument), ``("cell", name)``,
        ``("local",)`` or ``("opaque", text)``.
        """
        if isinstance(node, ast.Name):
            if node.id in self.cell_names:
                return ("cell", node.id)
            kind = self.resolve_name(node.id)
            if kind is None:
                return ("local",)
            if kind[0] == "state":
                return ("state", kind[1], "")
            if kind[0] == "state_field":
                return ("state", kind[1], kind[2])
            if kind == _NODE:
                return ("node",)
            if kind in (_NODE_SEQ, _VIEW):
                return ("block",)
            return ("local",)
        if isinstance(node, ast.Attribute):
            base = self._locate_value(node.value)
            if base[0] == "state":
                return ("state", base[1], node.attr if not base[2] else base[2])
            if base[0] in ("node", "block", "cell"):
                return base
            return ("local",)
        if isinstance(node, ast.Subscript):
            return self._locate(node.value)
        return ("opaque", ast.dump(node)[:60])

    def _locate_value(self, node: ast.AST) -> tuple:
        kind = self._kind_of(node)
        if kind[0] == "state":
            return ("state", kind[1], "")
        if kind[0] == "state_field":
            return ("state", kind[1], kind[2])
        if kind == _NODE:
            return ("node",)
        if kind in (_NODE_SEQ, _VIEW):
            return ("block",)
        return ("local",)

    def _record_write(
        self, target: ast.AST, node: ast.AST, aug_reduction: bool
    ) -> None:
        location = self._locate(target)
        if location[0] == "state":
            root, field_name = location[1], location[2]
            label = self.labels.get(root, "<state>")
            display = f"{label}.{field_name}" if field_name else label
            record = self.footprint.writes.setdefault(
                (root, field_name), WriteRecord(label=display)
            )
            record.reduction_only = record.reduction_only and aug_reduction
            record.in_loop_only = record.in_loop_only and self.loop_depth > 0
        elif location[0] == "node":
            record = self.footprint.writes.setdefault(
                (NODE_ROOT, ""), WriteRecord(label="<traversal node>")
            )
            record.reduction_only = record.reduction_only and aug_reduction
            record.in_loop_only = record.in_loop_only and self.loop_depth > 0
        elif location[0] == "block":
            if self._is_batch:
                self._emit(
                    "TW104",
                    "kernel writes into a dispatcher block argument; "
                    "flushed blocks are cleared in place and must not "
                    "be mutated",
                    node,
                )
        elif location[0] == "cell":
            if self._is_batch:
                self._emit(
                    "TW103",
                    f"kernel rebinds captured variable {location[1]!r}, "
                    "carrying state from one dispatch to the next",
                    node,
                    hint="batch kernels must be a pure function of the "
                    "block plus declared spec state",
                )
            record = self.footprint.writes.setdefault(
                ("<cell>", location[1]),
                WriteRecord(label=f"<captured {location[1]}>"),
            )
            record.reduction_only = record.reduction_only and aug_reduction
            record.in_loop_only = record.in_loop_only and self.loop_depth > 0
        elif location[0] == "opaque":
            record = self.footprint.writes.setdefault(
                ("<opaque>", location[1]),
                WriteRecord(label=f"<unresolved {location[1]}>"),
            )
            record.reduction_only = False

    def _check_retention(self, value: ast.AST, stmt: ast.AST) -> None:
        """TW104 when a block argument is stored into spec state.

        Only *references* count: a bare block name, or one nested in a
        container literal.  A block consumed by a call or expression
        (``len(os)``, ``sum(... for o in os)``) produces a derived
        value and is fine.
        """
        if not self._is_batch:
            return
        if isinstance(value, ast.Name):
            if self.kinds.get(value.id) in (_NODE_SEQ, _VIEW):
                self._emit(
                    "TW104",
                    f"kernel retains block argument {value.id!r} "
                    "beyond the dispatch; flushed blocks are cleared "
                    "in place",
                    stmt,
                )
            return
        if isinstance(value, (ast.Tuple, ast.List, ast.Set)):
            for element in value.elts:
                self._check_retention(element, stmt)
        elif isinstance(value, ast.Dict):
            for element in value.values:
                self._check_retention(element, stmt)
        elif isinstance(value, ast.Starred):
            self._check_retention(value.value, stmt)

    # -- statements ---------------------------------------------------

    def visit_Assign(self, node: ast.Assign) -> None:
        self.visit(node.value)
        value_kind = self._kind_of(node.value)
        for target in node.targets:
            self._assign_target(target, node.value, value_kind, node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self.visit(node.value)
            self._assign_target(
                node.target, node.value, self._kind_of(node.value), node
            )

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self.visit(node.value)
        # An augmented assign both reads and writes its target.
        self._record_read_expr(node.target)
        reduction = isinstance(node.op, _REDUCTION_OPS)
        if isinstance(node.target, ast.Name):
            self._local_rebind(node.target.id, _DATA, node)
        self._record_write(node.target, node, aug_reduction=reduction)
        self._check_retention(node.value, node)

    def _assign_target(
        self, target: ast.AST, value: ast.AST, value_kind: tuple, stmt: ast.AST
    ) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            kinds = [_DATA] * len(target.elts)
            if isinstance(value, (ast.Tuple, ast.List)) and len(
                value.elts
            ) == len(target.elts):
                kinds = [self._kind_of(element) for element in value.elts]
            for element, kind in zip(target.elts, kinds):
                self._assign_target(element, value, kind, stmt)
            return
        if isinstance(target, ast.Name):
            if target.id in self.cell_names:
                self._record_write(target, stmt, aug_reduction=False)
            self._local_rebind(target.id, value_kind, stmt)
            return
        self._record_write(target, stmt, aug_reduction=False)
        self._check_retention(value, stmt)

    def _local_rebind(self, name: str, kind: tuple, stmt: ast.AST) -> None:
        if name in self.cell_names:
            return
        self.kinds[name] = kind

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            try:
                module = importlib.import_module(alias.name)
            except ImportError:  # pragma: no cover - broken import
                continue
            bound_name = alias.asname or alias.name.split(".")[0]
            self.kinds[bound_name] = ("module", module, alias.name)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module is None or node.level:
            return
        try:
            module = importlib.import_module(node.module)
        except ImportError:  # pragma: no cover - broken import
            return
        for alias in node.names:
            obj = getattr(module, alias.name, None)
            if obj is not None:
                self.kinds[alias.asname or alias.name] = self._external_kind(
                    obj, alias.name
                )

    def visit_Nonlocal(self, node: ast.Nonlocal) -> None:
        self.cell_names.update(node.names)

    def visit_Global(self, node: ast.Global) -> None:
        self.cell_names.update(node.names)

    def visit_For(self, node: ast.For) -> None:
        self.visit(node.iter)
        self._bind_loop_target(node.target, node.iter)
        self.loop_depth += 1
        for stmt in node.body:
            self.visit(stmt)
        self.loop_depth -= 1
        for stmt in node.orelse:
            self.visit(stmt)

    def visit_While(self, node: ast.While) -> None:
        self.visit(node.test)
        self.loop_depth += 1
        for stmt in node.body:
            self.visit(stmt)
        self.loop_depth -= 1
        for stmt in node.orelse:
            self.visit(stmt)

    def _iter_element_kinds(self, iter_node: ast.AST) -> list:
        """Element kind(s) produced by iterating ``iter_node``."""
        kind = self._kind_of(iter_node)
        if kind == _NODE_SEQ:
            return [_NODE]
        if isinstance(iter_node, ast.Call) and isinstance(
            iter_node.func, ast.Name
        ):
            name = iter_node.func.id
            if name == "zip":
                return [
                    _NODE
                    if self._kind_of(arg) == _NODE_SEQ
                    else _DATA
                    for arg in iter_node.args
                ]
            if name == "enumerate" and iter_node.args:
                inner = (
                    _NODE
                    if self._kind_of(iter_node.args[0]) == _NODE_SEQ
                    else _DATA
                )
                return [_DATA, inner]
        return [_DATA]

    def _bind_loop_target(self, target: ast.AST, iter_node: ast.AST) -> None:
        kinds = self._iter_element_kinds(iter_node)
        if isinstance(target, (ast.Tuple, ast.List)):
            if len(kinds) != len(target.elts):
                kinds = [_DATA] * len(target.elts)
            for element, kind in zip(target.elts, kinds):
                if isinstance(element, ast.Name):
                    self.kinds[element.id] = kind
        elif isinstance(target, ast.Name):
            self.kinds[target.id] = kinds[0] if len(kinds) == 1 else _DATA

    def _comprehension_bindings(self, generators) -> dict:
        bound: dict = {}
        for comp in generators:
            kinds = self._iter_element_kinds(comp.iter)
            target = comp.target
            if isinstance(target, (ast.Tuple, ast.List)):
                if len(kinds) != len(target.elts):
                    kinds = [_DATA] * len(target.elts)
                for element, kind in zip(target.elts, kinds):
                    if isinstance(element, ast.Name):
                        bound[element.id] = kind
            elif isinstance(target, ast.Name):
                bound[target.id] = kinds[0] if len(kinds) == 1 else _DATA
        return bound

    def _visit_comprehension(self, node) -> None:
        for comp in node.generators:
            self.visit(comp.iter)
        saved = dict(self.kinds)
        self.kinds.update(self._comprehension_bindings(node.generators))
        for comp in node.generators:
            for condition in comp.ifs:
                self.visit(condition)
        if isinstance(node, ast.DictComp):
            self.visit(node.key)
            self.visit(node.value)
        else:
            self.visit(node.elt)
        self.kinds = saved

    visit_ListComp = _visit_comprehension
    visit_SetComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension
    visit_DictComp = _visit_comprehension

    # -- reads --------------------------------------------------------

    def _record_state_read(self, root: int, field_name: str) -> None:
        target = (
            self.footprint.staged_state_reads
            if self._staged_ctx
            else self.footprint.state_reads
        )
        target.add((root, field_name))

    def _record_read_expr(self, node: ast.AST) -> None:
        """Record the read half of an augmented assignment target."""
        if isinstance(node, ast.Attribute):
            self.visit_Attribute(node)
        elif isinstance(node, ast.Subscript):
            self.visit(node)
        elif isinstance(node, ast.Name):
            kind = self.resolve_name(node.id)
            if kind and kind[0] == "state":
                self._record_state_read(kind[1], "")

    def visit_Attribute(self, node: ast.Attribute) -> None:
        base_kind = self._kind_of(node.value)
        if base_kind == _NODE:
            self.footprint.node_reads.add(node.attr)
        elif base_kind[0] == "state":
            self._record_state_read(base_kind[1], node.attr)
        elif base_kind[0] == "state_field":
            self._record_state_read(base_kind[1], base_kind[2])
        self.generic_visit(node)

    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, ast.Load):
            kind = self.resolve_name(node.id)
            if kind and kind[0] == "state":
                self._record_state_read(kind[1], "")

    # -- calls --------------------------------------------------------

    def _visit_call_args(self, call: ast.Call) -> None:
        for arg in call.args:
            self.visit(arg)
        for keyword in call.keywords:
            self.visit(keyword.value)

    def _module_rooted(self, node: ast.AST) -> bool:
        """True when a dotted chain bottoms out in a pure module."""
        while isinstance(node, ast.Attribute):
            node = node.value
        if isinstance(node, ast.Name):
            if node.id in PURE_MODULES:
                return True
            kind = self.resolve_name(node.id)
            return bool(kind and kind[0] == "module")
        return False

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Name):
            self._call_by_name(node, func.id)
            return
        if isinstance(func, ast.Attribute):
            self._call_method(node, func)
            return
        self._visit_call_args(node)

    def _call_by_name(self, call: ast.Call, name: str) -> None:
        if name in PURE_BUILTINS or name in FRESH_CONSTRUCTORS:
            self._visit_call_args(call)
            return
        kind = self.resolve_name(name)
        if kind is not None and kind[0] == "callable":
            self._dispatch_function(kind[1], call, name)
            return
        if kind is not None and kind[0] in ("state", "state_field"):
            # Calling a state object: unknown effect.
            self._unknown_helper(name, call)
            self._visit_call_args(call)
            return
        if kind is None:
            self._unknown_helper(name, call)
        self._visit_call_args(call)

    def _call_method(self, call: ast.Call, func: ast.Attribute) -> None:
        method = func.attr
        if self._module_rooted(func.value):
            self.visit(func.value)
            self._visit_call_args(call)
            return
        base_kind = self._kind_of(func.value)
        # Visit the receiver (recording its reads) but not the method
        # attribute itself: ``acc.join_batch`` is a dispatch, not a
        # state read named "join_batch".
        self.visit(func.value)
        if base_kind == _VIEW and method == "column":
            for arg in call.args:
                if isinstance(arg, ast.Constant) and isinstance(
                    arg.value, str
                ):
                    self.footprint.node_reads.add(arg.value)
            self._visit_call_args(call)
            return
        if base_kind[0] == "state":
            obj = _LIVE_OBJECTS.get(base_kind[1])
            bound = getattr(obj, method, None) if obj is not None else None
            if callable(bound) and (
                hasattr(bound, "__func__") or isinstance(
                    bound, types.FunctionType
                )
            ):
                self._dispatch_function(bound, call, method)
                return
            if method in KNOWN_MUTATING_METHODS:
                self._state_method_write(base_kind[1], "", call)
                self._visit_call_args(call)
                return
            if method in PURE_VALUE_METHODS:
                self._visit_call_args(call)
                return
            self._unknown_helper(method, call)
            self._visit_call_args(call)
            return
        if base_kind[0] == "state_field":
            if method in KNOWN_MUTATING_METHODS:
                self._state_method_write(base_kind[1], base_kind[2], call)
            elif method not in PURE_VALUE_METHODS:
                self._unknown_helper(method, call)
            self._visit_call_args(call)
            return
        if base_kind in (_NODE_SEQ, _VIEW):
            if method in KNOWN_MUTATING_METHODS:
                if self._is_batch:
                    self._emit(
                        "TW104",
                        f"kernel mutates its block argument via "
                        f".{method}(); flushed blocks are cleared in "
                        "place by the dispatcher",
                        call,
                    )
            elif method not in PURE_VALUE_METHODS:
                self._unknown_helper(method, call)
            self._visit_call_args(call)
            return
        if base_kind == _NODE:
            self.footprint.node_reads.add(method)
            if method in KNOWN_MUTATING_METHODS:
                self._record_write(func, call, aug_reduction=False)
            self._visit_call_args(call)
            return
        if base_kind == _FRESH:
            # Appending nodes into a fresh list makes it a node block.
            if (
                method in ("append", "extend", "insert", "add")
                and isinstance(func.value, ast.Name)
                and any(
                    self._kind_of(arg) in (_NODE, _NODE_SEQ)
                    for arg in call.args
                )
            ):
                self.kinds[func.value.id] = _NODE_SEQ
            self._visit_call_args(call)
            return
        # Plain data receiver: pure query methods are fine, mutation of
        # a fresh temporary is fine, anything else is unknown.
        if method not in PURE_VALUE_METHODS and method not in KNOWN_MUTATING_METHODS:
            self._unknown_helper(method, call)
        self._visit_call_args(call)

    def _state_method_write(self, root: int, field_name: str, call) -> None:
        label = self.labels.get(root, "<state>")
        display = f"{label}.{field_name}" if field_name else label
        record = self.footprint.writes.setdefault(
            (root, field_name), WriteRecord(label=display)
        )
        record.reduction_only = False
        record.in_loop_only = record.in_loop_only and self.loop_depth > 0

    def _unknown_helper(self, name: str, call: ast.Call) -> None:
        if self._is_batch:
            self._emit(
                "TW110",
                f"call to unanalyzable helper {name!r}; its effects "
                "are not part of the conformance proof",
                call,
                hint="mark read-only helpers __conformance_pure__ "
                "= True (or __conformance_staged__ for staging caches)",
            )

    def _dispatch_function(self, obj, call: ast.Call, name: str) -> None:
        """Resolve a call target to a python function and recurse."""
        if getattr(obj, "__conformance_staged__", False):
            self.footprint.staged_helpers.add(
                getattr(obj, "__name__", name)
            )
            was_staged = self._staged_ctx
            self._staged_ctx = True
            self._visit_call_args(call)
            self._staged_ctx = was_staged
            return
        if getattr(obj, "__conformance_pure__", False):
            self._visit_call_args(call)
            return
        if isinstance(obj, type):
            self._visit_call_args(call)
            return
        self_obj = getattr(obj, "__self__", None)
        fn = getattr(obj, "__func__", obj)
        code = getattr(fn, "__code__", None)
        if code is None or not isinstance(fn, types.FunctionType):
            module = getattr(obj, "__module__", "") or ""
            if not module.split(".")[0] in PURE_MODULES:
                self._unknown_helper(name, call)
            self._visit_call_args(call)
            return
        module = getattr(fn, "__module__", "") or ""
        if not module.startswith("repro") or self.depth >= MAX_DEPTH:
            self._unknown_helper(name, call)
            self._visit_call_args(call)
            return
        self._visit_call_args(call)
        # Bind parameter kinds from the call site.
        arg_kinds = [self._kind_of(arg) for arg in call.args]
        params = list(code.co_varnames[: code.co_argcount])
        kinds: dict = {}
        if self_obj is not None:
            _LIVE_OBJECTS[id(self_obj)] = self_obj
            kinds[params[0]] = self._state_root(
                self_obj, type(self_obj).__name__.lower()
            )
            params = params[1:]
        for param, kind in zip(params, arg_kinds):
            kinds[param] = kind
        for keyword in call.keywords:
            if keyword.arg in code.co_varnames[: code.co_argcount]:
                kinds[keyword.arg] = self._kind_of(keyword.value)
        for param in code.co_varnames[: code.co_argcount]:
            kinds.setdefault(param, _DATA)
        memo_key = (code, tuple(sorted(
            (param, _hashable_kind(kind)) for param, kind in kinds.items()
        )), self.footprint.role)
        if memo_key in self.memo:
            return
        self.memo.add(memo_key)
        _analyze_function(
            fn,
            kinds,
            self.footprint,
            self.sink,
            self.labels,
            self.memo,
            self.depth + 1,
            loop_depth=self.loop_depth,
        )


#: ``id(obj) -> obj`` for state roots whose methods we may recurse into.
_LIVE_OBJECTS: dict = {}


def _hashable_kind(kind: tuple) -> tuple:
    return tuple(
        part if isinstance(part, (str, int, float, bool, type(None))) else id(part)
        for part in kind
    )


def _analyze_function(
    fn,
    kinds: dict,
    footprint: KernelFootprint,
    sink: DiagnosticSink,
    labels: dict,
    memo: set,
    depth: int = 0,
    loop_depth: int = 0,
) -> None:
    """Walk one function body, accumulating into ``footprint``."""
    try:
        source = textwrap.dedent(inspect.getsource(fn))
        tree = ast.parse(source)
    except (OSError, TypeError, SyntaxError, IndentationError):
        footprint.analyzable = False
        sink.emit(
            "TW100",
            f"{footprint.role}: source of "
            f"{getattr(fn, '__qualname__', fn)!r} is unavailable; "
            "conformance cannot be analyzed",
        )
        return
    function_def = next(
        (
            node
            for node in tree.body
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        ),
        None,
    )
    if function_def is None:
        footprint.analyzable = False
        sink.emit(
            "TW100",
            f"{footprint.role}: {getattr(fn, '__qualname__', fn)!r} is "
            "not a plain function definition",
        )
        return
    analyzer = _KernelAnalyzer(
        fn,
        kinds,
        footprint,
        sink,
        labels,
        memo,
        depth,
        line_offset=fn.__code__.co_firstlineno - 1,
    )
    analyzer.loop_depth = loop_depth
    for stmt in function_def.body:
        analyzer.visit(stmt)


#: Parameter kinds per kernel role (positional).
_ROLE_PARAM_KINDS = {
    "work": (_NODE, _NODE),
    "truncate_inner2": (_NODE, _NODE),
    "work_batch": (_NODE_SEQ, _NODE_SEQ),
    "work_batch_soa": (_VIEW, _VIEW, _DATA, _DATA),
    "truncate_inner2_batch": (_NODE,),
}


def analyze_kernel(
    fn,
    role: str,
    sink: DiagnosticSink,
    labels: dict,
) -> KernelFootprint:
    """Infer the footprint of one spec kernel function."""
    footprint = KernelFootprint(
        role=role, name=getattr(fn, "__qualname__", "<kernel>")
    )
    fn0 = getattr(fn, "__func__", fn)
    kinds: dict = {}
    self_obj = getattr(fn, "__self__", None)
    code = getattr(fn0, "__code__", None)
    if code is not None:
        params = list(code.co_varnames[: code.co_argcount])
        if self_obj is not None and params:
            _LIVE_OBJECTS[id(self_obj)] = self_obj
            key = id(self_obj)
            labels.setdefault(key, type(self_obj).__name__.lower())
            kinds[params[0]] = ("state", key, labels[key])
            params = params[1:]
        for param, kind in zip(params, _ROLE_PARAM_KINDS[role]):
            kinds[param] = kind
        for param in params:
            kinds.setdefault(param, _DATA)
    _analyze_function(fn0, kinds, footprint, sink, labels, dict_memo := set())
    del dict_memo
    return footprint


# ---------------------------------------------------------------------
# Spec-level comparison and verdicts
# ---------------------------------------------------------------------


@dataclass
class SpecConformanceReport:
    """Everything :func:`lint_spec` concluded about one spec."""

    spec_name: str
    verdict: SpecVerdict
    #: per-backend verdict strings: safe / needs-dynamic-check / unsafe
    backends: dict = field(default_factory=dict)
    #: why each backend got its verdict (one line per backend)
    reasons: dict = field(default_factory=dict)
    diagnostics: list = field(default_factory=list)
    kernels: list = field(default_factory=list)

    @property
    def errors(self) -> list:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> list:
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    def codes(self) -> set:
        """The distinct diagnostic codes present in this report."""
        return {d.code for d in self.diagnostics}

    def render(self) -> str:
        """Human-readable report: findings, per-backend verdicts, summary."""
        lines = [
            diagnostic.format(self.spec_name)
            for diagnostic in sorted(
                self.diagnostics, key=lambda d: (d.code, d.line)
            )
        ]
        for backend in sorted(self.backends):
            lines.append(
                f"{self.spec_name}: backend {backend}: "
                f"{self.backends[backend]} ({self.reasons[backend]})"
            )
        lines.append(
            f"{self.spec_name}: verdict: {self.verdict} "
            f"({len(self.errors)} error(s), {len(self.warnings)} "
            f"warning(s))"
        )
        return "\n".join(lines)

    def to_json(self) -> dict:
        """JSON payload, same schema family as ``LintReport.to_json``."""
        return {
            "schema_version": SCHEMA_VERSION,
            "kind": "spec-conformance",
            "spec": self.spec_name,
            "verdict": str(self.verdict),
            "backends": dict(self.backends),
            "reasons": dict(self.reasons),
            "diagnostics": [d.to_json() for d in self.diagnostics],
            "suppressed": [],
            "kernels": [k.to_json() for k in self.kernels],
            "counts": {
                "errors": len(self.errors),
                "warnings": len(self.warnings),
                "suppressed": 0,
            },
        }

    def dumps(self) -> str:
        """The JSON payload as an indented, key-sorted string."""
        return json.dumps(self.to_json(), indent=2, sort_keys=True)


def _fold_verdict(sink: DiagnosticSink) -> str:
    if sink.errors:
        return "unsafe"
    if sink.warnings:
        return "needs-dynamic-check"
    return "safe"


def _compare_write_sets(
    scalar: KernelFootprint,
    batch: KernelFootprint,
    sink: DiagnosticSink,
) -> None:
    """TW101: the batch kernel must write exactly the scalar locations."""
    scalar_writes = scalar.write_keys()
    batch_writes = batch.write_keys()
    for key in sorted(batch_writes - scalar_writes, key=str):
        sink.emit(
            "TW101",
            f"{batch.role} writes {batch.writes[key].label!r} which the "
            f"scalar work kernel never writes",
            hint="a vectorized kernel must touch exactly the state its "
            "scalar counterpart touches",
        )
    for key in sorted(scalar_writes - batch_writes, key=str):
        sink.emit(
            "TW101",
            f"{batch.role} never writes {scalar.writes[key].label!r} "
            f"which the scalar work kernel writes on every pair",
        )


def _compare_read_sets(
    scalar: KernelFootprint,
    batch: KernelFootprint,
    sink: DiagnosticSink,
    labels: dict,
) -> None:
    """TW102: extra reads mean the batch result may depend on more."""
    extra_nodes = batch.node_reads - scalar.node_reads
    if extra_nodes:
        sink.emit(
            "TW102",
            f"{batch.role} reads node field(s) "
            f"{sorted(extra_nodes)} that the scalar kernel never "
            "touches; equivalence depends on those fields matching the "
            "scalar derivation",
        )
    extra_state = batch.state_reads - scalar.state_reads
    if extra_state:
        names = sorted(
            f"{labels.get(root, '<state>')}"
            + (f".{field_name}" if field_name else "")
            for root, field_name in extra_state
        )
        sink.emit(
            "TW102",
            f"{batch.role} reads state {names} that the scalar kernel "
            "never reads",
        )


def _check_order_sensitivity(
    batch: KernelFootprint, sink: DiagnosticSink
) -> None:
    """TW108: vectorized read-modify-write without an in-order replay."""
    for key, record in sorted(batch.writes.items(), key=lambda kv: str(kv[0])):
        if key not in batch.state_reads:
            continue
        if record.reduction_only:
            continue  # commutative reduction: order-independent
        if record.in_loop_only:
            continue  # literal per-pair replay: order-faithful
        sink.emit(
            "TW108",
            f"{batch.role} reads and overwrites {record.label!r} with a "
            "vectorized update; equivalence to the scalar kernel's "
            "in-order updates is not statically provable",
            hint="discharge at runtime with backend='sanitize'",
        )


def _check_guards(
    spec: NestedRecursionSpec,
    scalar_guard: Optional[KernelFootprint],
    block_guard: Optional[KernelFootprint],
    sink: DiagnosticSink,
    labels: dict,
) -> None:
    if spec.truncate_inner2_batch is None:
        return
    if spec.truncation_observes_work:
        sink.emit(
            "TW106",
            "spec provides truncate_inner2_batch while "
            "truncation_observes_work is set: pre-evaluating a "
            "work-observing guard changes its decisions",
            hint="drop the block guard or make the rules stateless",
        )
    if block_guard is None:
        return
    if block_guard.writes:
        labels_written = sorted(
            record.label for record in block_guard.writes.values()
        )
        sink.emit(
            "TW106",
            f"truncate_inner2_batch writes {labels_written}; a block "
            "guard is pre-evaluated for whole subtrees and must be pure",
        )
    if scalar_guard is None:
        return
    extra_state = block_guard.state_reads - scalar_guard.state_reads
    extra_nodes = block_guard.node_reads - scalar_guard.node_reads
    if extra_state or extra_nodes:
        names = sorted(
            f"{labels.get(root, '<state>')}"
            + (f".{field_name}" if field_name else "")
            for root, field_name in extra_state
        ) + sorted(extra_nodes)
        sink.emit(
            "TW105",
            f"truncate_inner2_batch reads {names} that the scalar "
            "truncate_inner2 never consults; block decisions may "
            "diverge from scalar ones",
        )


#: Conformance verdict cache, keyed on kernel code objects + flags.
_REPORT_CACHE: dict = {}


def _kernel_cache_key(fn) -> object:
    if fn is None:
        return None
    fn0 = getattr(fn, "__func__", fn)
    code = getattr(fn0, "__code__", None)
    if code is None:
        return ("opaque", type(fn).__name__)
    cells = []
    closure = getattr(fn0, "__closure__", None) or ()
    for name, cell in zip(code.co_freevars, closure):
        try:
            value = cell.cell_contents
        except ValueError:  # pragma: no cover - unfilled cell
            cells.append((name, None))
            continue
        inner = getattr(value, "__func__", value)
        inner_code = getattr(inner, "__code__", None)
        cells.append(
            (name, inner_code if inner_code is not None else type(value).__name__)
        )
    return (code, tuple(cells))


def _spec_cache_key(spec: NestedRecursionSpec) -> tuple:
    return (
        _kernel_cache_key(spec.work),
        _kernel_cache_key(spec.work_batch),
        _kernel_cache_key(spec.work_batch_soa),
        _kernel_cache_key(spec.truncate_inner2),
        _kernel_cache_key(spec.truncate_inner2_batch),
        bool(spec.truncation_observes_work),
    )


def clear_cache() -> None:
    """Drop memoized conformance reports (tests and mutation harnesses)."""
    _REPORT_CACHE.clear()
    _LIVE_OBJECTS.clear()


def lint_spec(
    spec: NestedRecursionSpec, use_cache: bool = True
) -> SpecConformanceReport:
    """Statically check a spec's vectorized kernels against ``work``.

    Returns a :class:`SpecConformanceReport` with per-backend verdicts
    (``recursive`` is always safe — it *is* the reference semantics)
    and one overall :class:`SpecVerdict`.  Reports are cached on the
    kernels' code objects, so re-making a spec from the same factory
    (fresh closures, same code) reuses the verdict.
    """
    key = _spec_cache_key(spec) if use_cache else None
    if key is not None and key in _REPORT_CACHE:
        cached = _REPORT_CACHE[key]
        if cached.spec_name == (spec.name or "<spec>"):
            return cached
    labels: dict = {}
    sink = DiagnosticSink()

    scalar = None
    if spec.work is not None:
        scalar = analyze_kernel(spec.work, "work", sink, labels)

    batch_sink = DiagnosticSink()
    soa_sink = DiagnosticSink()
    guard_sink = DiagnosticSink()

    batch_fp = soa_fp = None
    if spec.work_batch is not None:
        batch_fp = analyze_kernel(
            spec.work_batch, "work_batch", batch_sink, labels
        )
    if spec.work_batch_soa is not None:
        soa_fp = analyze_kernel(
            spec.work_batch_soa, "work_batch_soa", soa_sink, labels
        )

    scalar_guard = None
    if spec.truncate_inner2 is not None and spec.truncate_inner2_batch is not None:
        scalar_guard = analyze_kernel(
            spec.truncate_inner2, "truncate_inner2", DiagnosticSink(), labels
        )
    block_guard = None
    if spec.truncate_inner2_batch is not None:
        block_guard = analyze_kernel(
            spec.truncate_inner2_batch,
            "truncate_inner2_batch",
            guard_sink,
            labels,
        )

    for vector_fp, vector_sink in ((batch_fp, batch_sink), (soa_fp, soa_sink)):
        if vector_fp is None:
            continue
        if scalar is None:
            vector_sink.emit(
                "TW100",
                f"{vector_fp.role}: spec has no scalar work kernel to "
                "compare against",
            )
            continue
        if scalar.analyzable and vector_fp.analyzable:
            _compare_write_sets(scalar, vector_fp, vector_sink)
            _compare_read_sets(scalar, vector_fp, vector_sink, labels)
            _check_order_sensitivity(vector_fp, vector_sink)
        else:
            vector_sink.emit(
                "TW100",
                f"{vector_fp.role}: scalar reference or kernel source "
                "is unanalyzable; conformance cannot be proven",
            )
        if vector_fp.staged_helpers:
            vector_sink.emit(
                "TW109",
                f"{vector_fp.role} reads staged copies via "
                f"{sorted(vector_fp.staged_helpers)}; conformance "
                "assumes the staging mirrors live tree data",
            )
    if block_guard is not None and block_guard.staged_helpers:
        guard_sink.emit(
            "TW109",
            f"truncate_inner2_batch reads staged copies via "
            f"{sorted(block_guard.staged_helpers)}; conformance assumes "
            "the staging mirrors live tree data",
        )
    _check_guards(spec, scalar_guard, block_guard, guard_sink, labels)
    if spec.truncation_observes_work and (
        spec.work_batch is not None or spec.work_batch_soa is not None
    ):
        batch_sink.emit(
            "TW107",
            "truncation observes work: deferred dispatch is only "
            "equivalent under the executors' per-outer barrier flushes",
        )

    # Per-backend verdicts.  ``soa`` depends on its dispatch mode: the
    # inline mode runs the scalar kernel itself, so there is nothing to
    # prove; the nodes mode reuses the batched dispatcher wholesale.
    from repro.core.soa_exec import dispatch_mode

    batched_errors = batch_sink.errors + guard_sink.errors
    batched_warnings = batch_sink.warnings + guard_sink.warnings
    if spec.work_batch is None and spec.truncate_inner2_batch is None:
        batched_verdict = "safe"
        batched_reason = "no vectorized kernels: scalar work dispatched per pair"
    elif batched_errors:
        batched_verdict = "unsafe"
        batched_reason = "; ".join(
            sorted({d.code for d in batched_errors})
        ) + " refute scalar equivalence"
    elif batched_warnings:
        batched_verdict = "needs-dynamic-check"
        batched_reason = "; ".join(
            sorted({d.code for d in batched_warnings})
        ) + " leave holes in the proof"
    else:
        batched_verdict = "safe"
        batched_reason = "write/read sets match and updates are order-independent"

    mode = dispatch_mode(spec)
    if mode == "inline":
        soa_errors = guard_sink.errors
        soa_warnings = guard_sink.warnings
        soa_reason_safe = "inline mode: the scalar work kernel runs at schedule position"
    elif mode == "positions":
        soa_errors = soa_sink.errors + guard_sink.errors
        soa_warnings = soa_sink.warnings + guard_sink.warnings
        soa_reason_safe = "work_batch_soa conforms to the scalar kernel"
    else:
        soa_errors = batched_errors
        soa_warnings = batched_warnings
        soa_reason_safe = "nodes mode reuses the (conforming) batched dispatcher"
    if soa_errors:
        soa_verdict = "unsafe"
        soa_reason = "; ".join(
            sorted({d.code for d in soa_errors})
        ) + " refute scalar equivalence"
    elif soa_warnings:
        soa_verdict = "needs-dynamic-check"
        soa_reason = "; ".join(
            sorted({d.code for d in soa_warnings})
        ) + " leave holes in the proof"
    else:
        soa_verdict = "safe"
        soa_reason = soa_reason_safe

    backends = {
        "recursive": "safe",
        "batched": batched_verdict,
        "soa": soa_verdict,
    }
    reasons = {
        "recursive": "reference semantics",
        "batched": batched_reason,
        "soa": soa_reason,
    }

    for sub_sink in (batch_sink, soa_sink, guard_sink):
        sink.extend(sub_sink)

    if "unsafe" in backends.values():
        verdict = SpecVerdict.UNSAFE
    elif "needs-dynamic-check" in backends.values():
        verdict = SpecVerdict.NEEDS_DYNAMIC_CHECK
    elif spec.work_batch_soa is not None:
        verdict = SpecVerdict.SOA_SAFE
    else:
        verdict = SpecVerdict.BATCH_SAFE

    report = SpecConformanceReport(
        spec_name=spec.name or "<spec>",
        verdict=verdict,
        backends=backends,
        reasons=reasons,
        diagnostics=sink.diagnostics,
        kernels=[
            fp
            for fp in (scalar, batch_fp, soa_fp, scalar_guard, block_guard)
            if fp is not None
        ],
    )
    if key is not None:
        _REPORT_CACHE[key] = report
    return report

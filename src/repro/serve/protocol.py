"""Queries, results, and their JSON wire encoding.

Three query kinds cover the dual-tree benchmarks the service answers:

* :class:`NNQuery` — nearest neighbor of one point;
* :class:`KNNQuery` — the k nearest neighbors, nearest first;
* :class:`CountQuery` — how many reference points lie within a radius
  (one query point's slice of the PC pair count).

Queries carry plain float tuples, never arrays: they are hashable (the
load generator dedups hot queries by value) and JSON-trivial.  The
wire format is one JSON object per query/result; floats survive the
round trip exactly (``json`` emits ``repr`` floats), so a decoded
result still bit-matches the serial oracle.

:func:`group_key` decides which queries may share one admitted batch:
kind plus the parameters the batch executes under (``k``, ``radius``).
Two KNN queries with different ``k`` build different result columns,
and two count queries with different radii prune differently, so they
never share a tick.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.errors import SpecError


@dataclass(frozen=True)
class NNQuery:
    """Nearest reference neighbor of ``point``."""

    point: tuple[float, ...]


@dataclass(frozen=True)
class KNNQuery:
    """The ``k`` nearest reference neighbors of ``point``."""

    point: tuple[float, ...]
    k: int = 5


@dataclass(frozen=True)
class CountQuery:
    """Count of reference points within ``radius`` of ``point``."""

    point: tuple[float, ...]
    radius: float = 0.3


@dataclass(frozen=True)
class NNResult:
    """Answer to an :class:`NNQuery`."""

    neighbor_id: int
    distance: float


@dataclass(frozen=True)
class KNNResult:
    """Answer to a :class:`KNNQuery`, nearest first."""

    neighbor_ids: tuple[int, ...]
    distances: tuple[float, ...]


@dataclass(frozen=True)
class CountResult:
    """Answer to a :class:`CountQuery`."""

    count: int


Query = Union[NNQuery, KNNQuery, CountQuery]
Result = Union[NNResult, KNNResult, CountResult]

#: Wire tags, one per query/result kind.
_QUERY_KINDS = {"nn": NNQuery, "knn": KNNQuery, "count": CountQuery}


def _point(values) -> tuple[float, ...]:
    point = tuple(float(value) for value in values)
    if not point:
        raise SpecError("query point must have at least one coordinate")
    return point


def group_key(query: Query) -> tuple:
    """The admission-batching key: queries sharing it may share a tick."""
    if isinstance(query, NNQuery):
        return ("nn",)
    if isinstance(query, KNNQuery):
        return ("knn", int(query.k))
    if isinstance(query, CountQuery):
        return ("count", float(query.radius))
    raise SpecError(f"unknown query type {type(query).__name__}")


def encode_query(query: Query) -> dict:
    """One JSON-able dict for a query."""
    if isinstance(query, NNQuery):
        return {"kind": "nn", "point": list(query.point)}
    if isinstance(query, KNNQuery):
        return {"kind": "knn", "point": list(query.point), "k": int(query.k)}
    if isinstance(query, CountQuery):
        return {
            "kind": "count",
            "point": list(query.point),
            "radius": float(query.radius),
        }
    raise SpecError(f"unknown query type {type(query).__name__}")


def decode_query(payload: dict) -> Query:
    """Inverse of :func:`encode_query`, validating as it goes."""
    kind = payload.get("kind")
    if kind not in _QUERY_KINDS:
        raise SpecError(
            f"unknown query kind {kind!r}; known: {sorted(_QUERY_KINDS)}"
        )
    point = _point(payload.get("point", ()))
    if kind == "nn":
        return NNQuery(point)
    if kind == "knn":
        k = int(payload.get("k", 5))
        if k < 1:
            raise SpecError(f"knn query needs k >= 1, got {k}")
        return KNNQuery(point, k)
    radius = float(payload.get("radius", 0.3))
    if radius < 0:
        raise SpecError(f"count query needs radius >= 0, got {radius}")
    return CountQuery(point, radius)


def encode_result(result: Result) -> dict:
    """One JSON-able dict for a result."""
    if isinstance(result, NNResult):
        return {
            "kind": "nn",
            "neighbor_id": int(result.neighbor_id),
            "distance": float(result.distance),
        }
    if isinstance(result, KNNResult):
        return {
            "kind": "knn",
            "neighbor_ids": [int(i) for i in result.neighbor_ids],
            "distances": [float(d) for d in result.distances],
        }
    if isinstance(result, CountResult):
        return {"kind": "count", "count": int(result.count)}
    raise SpecError(f"unknown result type {type(result).__name__}")


def decode_result(payload: dict) -> Result:
    """Inverse of :func:`encode_result`."""
    kind = payload.get("kind")
    if kind == "nn":
        return NNResult(
            int(payload["neighbor_id"]), float(payload["distance"])
        )
    if kind == "knn":
        return KNNResult(
            tuple(int(i) for i in payload["neighbor_ids"]),
            tuple(float(d) for d in payload["distances"]),
        )
    if kind == "count":
        return CountResult(int(payload["count"]))
    raise SpecError(f"unknown result kind {kind!r}")

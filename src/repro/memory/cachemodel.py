"""Cache-capacity model for the static locality analyzer (TW30x).

The simulation substrate in this package *replays* traces against
set-associative caches; the locality cost model in
:mod:`repro.transform.lint.locality` needs something much smaller — a
byte capacity per cache level to compare a statically inferred
footprint against.  :class:`CacheModel` is that: three capacities and
a line size, with three provenances:

* :meth:`CacheModel.paper_default` — the paper's evaluation Xeon
  (32 KB L1 / 256 KB L2 / 20 MB L3, Section 6.1).  This is the default
  everywhere a deterministic verdict matters (pinned fixtures, CI),
  because a host probe would make the verdicts hostname-dependent.
* :meth:`CacheModel.probe_host` — read the real machine's capacities
  from sysfs where available, falling back level-by-level to the paper
  Xeon.  Opt-in (``lint-locality --probe-host``).
* explicit construction — tests and the CLI's ``--l1/--l2/--l3``.

The model records where its numbers came from (``source``), and the
analyzer surfaces that provenance as a TW305 assumption diagnostic.
"""

from __future__ import annotations

import glob
import os
import re
from dataclasses import dataclass

from repro.errors import MemorySimError

#: Paper Xeon capacities (Section 6.1), in bytes.
PAPER_L1_BYTES = 32 * 1024
PAPER_L2_BYTES = 256 * 1024
PAPER_L3_BYTES = 20 * 1024 * 1024

_SIZE_RE = re.compile(r"^\s*(\d+)\s*([KMG]?)B?\s*$", re.IGNORECASE)

_SIZE_UNITS = {"": 1, "K": 1024, "M": 1024 * 1024, "G": 1024 * 1024 * 1024}


def parse_cache_size(text: str) -> int:
    """Parse a sysfs-style cache size string (``"32K"``, ``"20480K"``,
    ``"8M"``) into bytes; raises :class:`MemorySimError` on junk."""
    match = _SIZE_RE.match(text)
    if match is None:
        raise MemorySimError(f"unparsable cache size {text!r}")
    value, unit = match.groups()
    return int(value) * _SIZE_UNITS[unit.upper()]


@dataclass(frozen=True)
class CacheModel:
    """Byte capacities of a three-level cache hierarchy.

    Hashable and frozen so it can key the locality pass's report cache.
    ``fitting_level`` answers the analyzer's one question: which level
    (if any) can hold a working set of a given size.
    """

    l1_bytes: int = PAPER_L1_BYTES
    l2_bytes: int = PAPER_L2_BYTES
    l3_bytes: int = PAPER_L3_BYTES
    line_bytes: int = 64
    #: where the capacities came from: ``"paper-xeon"``, ``"host-probe"``,
    #: or ``"explicit"``
    source: str = "explicit"

    def __post_init__(self) -> None:
        if min(self.l1_bytes, self.l2_bytes, self.l3_bytes) <= 0:
            raise MemorySimError("cache capacities must be positive")
        if not self.l1_bytes <= self.l2_bytes <= self.l3_bytes:
            raise MemorySimError(
                "cache capacities must be non-decreasing "
                f"(got L1={self.l1_bytes}, L2={self.l2_bytes}, "
                f"L3={self.l3_bytes})"
            )
        if self.line_bytes <= 0:
            raise MemorySimError("line_bytes must be positive")

    def levels(self) -> tuple[tuple[str, int], ...]:
        """``(("L1", bytes), ("L2", bytes), ("L3", bytes))``."""
        return (
            ("L1", self.l1_bytes),
            ("L2", self.l2_bytes),
            ("L3", self.l3_bytes),
        )

    def fitting_level(self, footprint_bytes: float) -> str | None:
        """The smallest level that holds ``footprint_bytes``, or ``None``
        when the working set exceeds the last-level cache."""
        for name, capacity in self.levels():
            if footprint_bytes <= capacity:
                return name
        return None

    def to_json(self) -> dict:
        """Stable-key dict for report payloads."""
        return {
            "l1_bytes": self.l1_bytes,
            "l2_bytes": self.l2_bytes,
            "l3_bytes": self.l3_bytes,
            "line_bytes": self.line_bytes,
            "source": self.source,
        }

    @classmethod
    def paper_default(cls) -> "CacheModel":
        """The paper's evaluation Xeon — the deterministic default."""
        return cls(
            PAPER_L1_BYTES, PAPER_L2_BYTES, PAPER_L3_BYTES, source="paper-xeon"
        )

    @classmethod
    def from_hierarchy(
        cls, hierarchy, line_bytes: int = 64, source: str = "hierarchy"
    ) -> "CacheModel":
        """Capacities of a simulated :class:`~repro.memory.hierarchy.
        CacheHierarchy` (``capacity_lines * line_bytes`` per level)."""
        capacities = [
            level.num_sets * level.ways * line_bytes
            for level in hierarchy.levels[:3]
        ]
        while len(capacities) < 3:
            capacities.append(capacities[-1])
        return cls(*capacities, line_bytes=line_bytes, source=source)

    @classmethod
    def probe_host(cls, sysfs_root: str = "/sys") -> "CacheModel":
        """Capacities of the host's own data caches, from sysfs.

        Levels sysfs does not expose (non-Linux hosts, containers with
        a masked ``/sys``) fall back to the paper Xeon value for that
        level; a probe that finds nothing at all returns
        :meth:`paper_default` unchanged.  Capacities are clamped to
        stay non-decreasing so a partial probe can never build an
        inverted hierarchy.
        """
        found: dict[int, int] = {}
        pattern = os.path.join(
            sysfs_root, "devices/system/cpu/cpu0/cache/index*"
        )
        for index_dir in sorted(glob.glob(pattern)):
            try:
                with open(os.path.join(index_dir, "type")) as handle:
                    kind = handle.read().strip()
                if kind not in ("Data", "Unified"):
                    continue
                with open(os.path.join(index_dir, "level")) as handle:
                    level = int(handle.read().strip())
                with open(os.path.join(index_dir, "size")) as handle:
                    size = parse_cache_size(handle.read().strip())
            except (OSError, ValueError, MemorySimError):
                continue
            # Keep the largest capacity per level (unified beats split).
            found[level] = max(size, found.get(level, 0))
        if not found:
            return cls.paper_default()
        l1 = found.get(1, PAPER_L1_BYTES)
        l2 = max(found.get(2, PAPER_L2_BYTES), l1)
        l3 = max(found.get(3, PAPER_L3_BYTES), l2)
        return cls(l1, l2, l3, source="host-probe")

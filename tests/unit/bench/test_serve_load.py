"""The serving load generator at a small, test-sized scale.

One real end-to-end scenario (hundreds of users, not 10^5) proves the
measurement plumbing: the payload carries every field the trajectory
table and the CI gate read, the bit-identity check really ran over
every user, and the report renders.  The full-scale numbers live in
the checked-in ``BENCH_serve.json``.
"""

import json

import pytest

from repro.bench.serve_load import (
    DEFAULT_RUNS,
    LoadSpec,
    RunConfig,
    framing_microbench,
    generate_workload,
    run_serve_load,
    run_serve_suite,
    write_serve_json,
)
from repro.serve.protocol import CountQuery, KNNQuery, NNQuery

SMALL = LoadSpec(
    references=512,
    users=200,
    serial_sample=50,
    concurrency=64,
    hot_set=16,
)


class TestGenerateWorkload:
    def test_deterministic_mix_with_a_hot_set(self):
        from repro.spaces.points import clustered_points

        references = clustered_points(128, clusters=8, spread=0.1, seed=1)
        first = generate_workload(SMALL, references)
        second = generate_workload(SMALL, references)
        assert first == second
        assert len(first) == SMALL.users
        kinds = {type(query) for query in first}
        assert kinds == {NNQuery, KNNQuery, CountQuery}
        # The hot set makes queries recur — the skew the verdict cache
        # and the admission batcher are built for.
        assert len(set(first)) < len(first)


class TestRunServeLoad:
    def test_payload_carries_the_contract_fields(self, tmp_path):
        report, payload = run_serve_load(SMALL)
        assert payload["experiment"] == "serve"
        assert payload["users"] == SMALL.users
        assert payload["references"] == SMALL.references
        assert payload["bit_identical"] is True
        assert payload["speedup"] > 0
        assert payload["qps"] > 0
        for percentile in ("p50", "p99", "mean", "max"):
            assert payload["latency_ms"][percentile] >= 0
        assert payload["serial"]["sampled"] == SMALL.serial_sample
        assert payload["serial"]["mean_ms"] > 0
        assert set(payload["backends"]) == {"nn", "knn", "count"}
        assert payload["batcher"]["ticks"] >= 1
        assert "hits" in payload["verdict_cache"]

        rendered = report.render()
        assert "queries/sec (batched service)" in rendered
        assert "bit-identical vs oracle" in rendered

        path = write_serve_json(payload, str(tmp_path / "BENCH_serve.json"))
        with open(path) as handle:
            assert json.load(handle) == payload


SUITE_RUNS = (
    RunConfig("baseline-pr8", dedup=False, adaptive_hold=False),
    RunConfig("dedup-2shards", shards=2),
)


class TestRunServeSuite:
    def test_suite_payload_carries_the_gate_contract(self, tmp_path):
        report, payload = run_serve_suite(SMALL, runs=SUITE_RUNS)
        assert payload["experiment"] == "serve_suite"
        assert payload["workload"]["users"] == SMALL.users
        assert payload["workload"]["references"] == SMALL.references
        assert payload["workload"]["distinct_queries"] < SMALL.users
        assert payload["bit_identical"] is True
        assert set(payload["runs"]) == {"baseline-pr8", "dedup-2shards"}

        baseline = payload["runs"]["baseline-pr8"]
        candidate = payload["runs"]["dedup-2shards"]
        # The baseline run really ran the PR 8 configuration...
        assert baseline["config"] == {
            "shards": 1,
            "dedup": False,
            "adaptive_hold": False,
            "workers": 0,
            "max_batch": 256,
            "max_hold_ms": 2.0,
        }
        assert baseline["dedup_hit_rate"] == 0.0
        # ...and the candidate folded duplicates over two shards.
        assert candidate["config"]["shards"] == 2
        assert candidate["dedup_hit_rate"] > 0.0
        assert candidate["batcher"]["dedup_folded"] > 0
        for run in payload["runs"].values():
            assert run["bit_identical"] is True
            assert run["qps"] > 0
            assert run["speedup"] > 0
            for percentile in ("p50", "p99", "mean", "max"):
                assert run["latency_ms"][percentile] >= 0
            assert set(run["backends"]) == {"nn", "knn", "count"}

        comparison = payload["comparison"]
        assert comparison["baseline"] == "baseline-pr8"
        assert comparison["candidate"] == "dedup-2shards"
        assert comparison["qps_gain"] > 0
        assert payload["serial"]["sampled"] == SMALL.serial_sample

        framing = payload["framing"]
        assert framing["messages"] > 0
        assert framing["binary"]["bytes"] < framing["json"]["bytes"]

        rendered = report.render()
        assert "baseline-pr8" in rendered
        assert "dedup-2shards" in rendered
        assert "framing" in rendered

        path = write_serve_json(payload, str(tmp_path / "suite.json"))
        with open(path) as handle:
            assert json.load(handle) == payload

    def test_default_runs_are_the_checked_in_sweep(self):
        assert [run.name for run in DEFAULT_RUNS] == [
            "baseline-pr8",
            "dedup",
            "dedup-2shards",
        ]
        assert DEFAULT_RUNS[0].dedup is False
        assert DEFAULT_RUNS[0].adaptive_hold is False
        assert DEFAULT_RUNS[-1].shards == 2


class TestFramingMicrobench:
    def test_measures_verified_round_trips(self):
        queries = [
            NNQuery((0.25, 0.75)),
            KNNQuery((0.1, 0.2), 3),
            CountQuery((0.5, 0.5), 0.3),
        ]
        from repro.serve.service import QueryService, ServiceConfig
        from repro.spaces.points import clustered_points

        references = clustered_points(64, clusters=4, spread=0.1, seed=3)
        with QueryService(references, ServiceConfig()) as service:
            results = service.execute_serial(queries)
        stats = framing_microbench(queries, results, messages=3)
        assert stats["messages"] == 3
        assert stats["json"]["round_trip_us"] > 0
        assert stats["binary"]["round_trip_us"] > 0
        assert stats["bytes_ratio"] > 1.0

    def test_tampered_results_fail_the_round_trip_check(self):
        queries = [NNQuery((0.25, 0.75))]
        with pytest.raises(Exception):
            framing_microbench(queries, ["not a result"], messages=1)

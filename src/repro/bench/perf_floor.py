"""CI perf floor: ``auto`` must track the best single backend.

The point of ``backend="auto"`` is that nobody should have to sweep
backends by hand; the selector is only trustworthy if it never falls
far behind the best single backend on any (benchmark, schedule) pair.
This module turns that contract into a CI gate: it parses a
``BENCH_soa.json`` payload (written by ``python -m repro.bench
wallclock``) and fails if any entry's auto speedup drops below
``floor`` (default 0.9) times the best single-backend speedup — i.e.
if ``auto`` is more than 10% slower than the best backend anywhere.

Result mismatches fail the gate too: a fast wrong backend is worse
than a slow right one.

Run it as ``python -m repro.bench perf-floor [--json PATH]``.
"""

from __future__ import annotations

import json
from typing import Sequence

#: Default floor: auto must reach 90% of the best single backend.
DEFAULT_FLOOR = 0.9

#: Backends eligible as "best single" references.
SINGLE_BACKENDS = ("recursive", "batched", "soa")


def check_perf_floor(
    payload: dict, floor: float = DEFAULT_FLOOR
) -> list[str]:
    """Violation messages for one wall-clock payload (empty = pass).

    An entry violates the floor when ``auto``'s wall-clock time exceeds
    ``best_single / floor`` — equivalently, when auto's speedup over
    recursive is below ``floor`` times the best single backend's.
    Entries without an ``auto`` timing are skipped (a filtered sweep);
    entries with mismatched results always violate.
    """
    violations = []
    for entry in payload.get("results", []):
        label = f"{entry.get('benchmark')}/{entry.get('schedule')}"
        if not entry.get("results_match", True):
            violations.append(f"{label}: backend results mismatch")
            continue
        timings = entry.get("timings", {})
        auto_s = timings.get("auto")
        singles = {
            backend: seconds
            for backend, seconds in timings.items()
            if backend in SINGLE_BACKENDS and seconds > 0
        }
        if auto_s is None or not singles:
            continue
        best_backend = min(singles, key=singles.get)
        best_s = singles[best_backend]
        ratio = best_s / auto_s if auto_s > 0 else float("inf")
        if ratio < floor:
            violations.append(
                f"{label}: auto ({auto_s:.4f}s, picked "
                f"{entry.get('auto_choice', '?')}) is {ratio:.2f}x the best "
                f"single backend ({best_backend}, {best_s:.4f}s); "
                f"floor is {floor:.2f}"
            )
    return violations


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.bench perf-floor",
        description="Fail if backend='auto' falls below the perf floor.",
    )
    parser.add_argument(
        "--json",
        default="BENCH_soa.json",
        help="wall-clock payload to check (default BENCH_soa.json)",
    )
    parser.add_argument(
        "--floor",
        type=float,
        default=DEFAULT_FLOOR,
        help="required fraction of the best single backend's speedup "
        f"(default {DEFAULT_FLOOR})",
    )
    args = parser.parse_args(argv)
    with open(args.json) as handle:
        payload = json.load(handle)
    violations = check_perf_floor(payload, floor=args.floor)
    checked = sum(
        1
        for entry in payload.get("results", [])
        if "auto" in entry.get("timings", {})
    )
    if violations:
        print(f"perf floor FAILED ({len(violations)} violation(s)):")
        for violation in violations:
            print(f"  - {violation}")
        return 1
    print(
        f"perf floor passed: auto within {args.floor:.0%} of the best "
        f"single backend on all {checked} checked configurations"
    )
    return 0

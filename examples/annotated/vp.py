"""Vantage-Point k-NN (VP, §6.1) as annotated user code for the lint pass.

The same k-nearest-neighbors computation as KNN but over a vantage
point tree: the pruning test uses the triangle inequality on distances
to the vantage point instead of a kd-box lower bound.  The safety
structure is identical — outer-keyed writes, but an adaptive guard
that reads the query node's evolving ``kth`` bound — so the verdict is
*needs-dynamic-check* (TW023), resolved per input by the dynamic
checker in :mod:`repro.core.soundness`.
"""

from repro.transform import inner_recursion, outer_recursion

# lint: assume-pure: vpdist, kth_best, candidates


@outer_recursion(inner="vp_inner")
def vp_outer(o, i):
    """Outer recursion over the query tree."""
    if o is None:
        return
    vp_inner(o, i)
    vp_outer(o.left, i)
    vp_outer(o.right, i)


@inner_recursion
def vp_inner(o, i):
    """Inner recursion over the vantage point tree."""
    if i is None or vpdist(o, i) - i.radius > o.kth:
        return
    o.heap.push(candidates(o, i))
    o.kth = kth_best(o.heap)
    vp_inner(o, i.left)
    vp_inner(o, i.right)

"""CI perf floors: ``auto`` tracking and real parallel speedup.

The point of ``backend="auto"`` is that nobody should have to sweep
backends by hand; the selector is only trustworthy if it never falls
far behind the best single backend on any (benchmark, schedule) pair.
This module turns that contract into a CI gate: it parses a
``BENCH_soa.json`` payload (written by ``python -m repro.bench
wallclock``) and fails if any entry's auto speedup drops below
``floor`` (default 0.9) times the best single-backend speedup — i.e.
if ``auto`` is more than 10% slower than the best backend anywhere.

A second, host-aware gate (:func:`check_parallel_floor`) guards the
multi-worker runtime's ``BENCH_parallel.json``: the 4-worker process
engine must reach :data:`PARALLEL_MIN_SPEEDUP` over the serial SoA
baseline on the regular benchmarks (TJ, MM) — *speed* checks are
skipped when the measuring host has fewer cores than the row's worker
count, but *correctness* (``results_match``) always gates.

A third, host-aware gate (:func:`check_compiled_floor`) guards a
compiled-backend wall-clock payload: ``compiled`` must reach
:data:`COMPILED_MIN_SPEEDUP` over serial ``soa`` on the lowerable
regular benchmarks (TJ, MM) when the host has numba and at least two
cores; without those, the speed check self-reports a skip while
correctness (``results_match``, no refusal on TJ/MM) always gates.

A fourth, host-aware gate (:func:`check_serve_floor`) guards the
serving suite's ``BENCH_serve.json``: every run must stay bit-identical
to the serial oracle and every dedup run must fold duplicates on the
skewed workload (always gated); the dedup+sharded candidate must beat
the PR 8 single-shard baseline on qps and p99 whenever the host has
:data:`SERVE_FLOOR_MIN_CPU`+ cores.

Result mismatches fail the gates too: a fast wrong backend is worse
than a slow right one.

Run it as ``python -m repro.bench perf-floor [--json PATH]
[--parallel-json PATH] [--compiled-json PATH] [--serve-json PATH]``.
"""

from __future__ import annotations

import json
import os
from typing import Sequence

#: Default floor: auto must reach 90% of the best single backend.
DEFAULT_FLOOR = 0.9

#: Backends eligible as "best single" references.
SINGLE_BACKENDS = ("recursive", "batched", "soa", "compiled")

#: Required compiled-over-soa speedup on the lowerable regular
#: benchmarks.  The compiled backend replaces the per-block dispatch
#: loop with one fused whole-run kernel over cached position arrays,
#: so it must clear this bar wherever the hardware can show it.
COMPILED_MIN_SPEEDUP = 1.3

#: Benchmarks the compiled floor guards: the two TW20x-``lowerable``
#: regular kernels every sweep carries.
COMPILED_FLOOR_BENCHMARKS = ("TJ", "MM")

#: Required 4-worker process-engine speedup over serial SoA on the
#: regular benchmarks.  Far below linear on purpose: pool startup,
#: shared-memory publication, and reduction are all inside the timer.
PARALLEL_MIN_SPEEDUP = 1.5

#: Benchmarks whose parallel speedup the floor guards.  The dual-tree
#: traversals prune irregularly (task imbalance is workload-dependent)
#: so only the regular kernels carry a hard number.
PARALLEL_FLOOR_BENCHMARKS = ("TJ", "MM")

#: The (engine, workers) row the parallel floor reads.
PARALLEL_FLOOR_CONFIG = ("process", 4)

#: Cores the serve floor's speed comparison needs: the sharded
#: candidate only has hardware to beat the single-shard baseline when
#: at least two cores exist.
SERVE_FLOOR_MIN_CPU = 2


def check_perf_floor(
    payload: dict, floor: float = DEFAULT_FLOOR
) -> list[str]:
    """Violation messages for one wall-clock payload (empty = pass).

    An entry violates the floor when ``auto``'s wall-clock time exceeds
    ``best_single / floor`` — equivalently, when auto's speedup over
    recursive is below ``floor`` times the best single backend's.
    Entries without an ``auto`` timing are skipped (a filtered sweep);
    entries with mismatched results always violate.
    """
    violations = []
    for entry in payload.get("results", []):
        label = f"{entry.get('benchmark')}/{entry.get('schedule')}"
        if not entry.get("results_match", True):
            violations.append(f"{label}: backend results mismatch")
            continue
        timings = entry.get("timings", {})
        auto_s = timings.get("auto")
        singles = {
            backend: seconds
            for backend, seconds in timings.items()
            if backend in SINGLE_BACKENDS
            and isinstance(seconds, (int, float))
            and seconds > 0
        }
        if auto_s is None or not singles:
            continue
        best_backend = min(singles, key=singles.get)
        best_s = singles[best_backend]
        ratio = best_s / auto_s if auto_s > 0 else float("inf")
        if ratio < floor:
            violations.append(
                f"{label}: auto ({auto_s:.4f}s, picked "
                f"{entry.get('auto_choice', '?')}) is {ratio:.2f}x the best "
                f"single backend ({best_backend}, {best_s:.4f}s); "
                f"floor is {floor:.2f}"
            )
    return violations


def check_parallel_floor(
    payload: dict,
    min_speedup: float = PARALLEL_MIN_SPEEDUP,
    host_cpu_count: int | None = None,
) -> tuple[list[str], list[str]]:
    """Check one ``BENCH_parallel.json`` payload.

    Returns ``(violations, skips)``.  Correctness first: any run with
    ``results_match`` false violates, on every benchmark, engine, and
    worker count.  Speed second, host-aware: on the benchmarks in
    :data:`PARALLEL_FLOOR_BENCHMARKS` (schedule ``original``), the
    :data:`PARALLEL_FLOOR_CONFIG` row must reach ``min_speedup`` over
    serial SoA — unless the measuring host (``host.cpu_count`` in the
    payload, overridable for tests) has fewer cores than the row's
    worker count, in which case the speed check lands in ``skips``
    instead: an undersized host cannot falsify a parallelism claim.
    """
    engine, workers = PARALLEL_FLOOR_CONFIG
    if host_cpu_count is None:
        host_cpu_count = payload.get("host", {}).get("cpu_count")
    if host_cpu_count is None:
        host_cpu_count = os.cpu_count() or 1
    violations: list[str] = []
    skips: list[str] = []
    for entry in payload.get("results", []):
        label = f"{entry.get('benchmark')}/{entry.get('schedule')}"
        for run in entry.get("runs", []):
            run_label = (
                f"{label} [{run.get('engine')}, "
                f"{run.get('workers')} workers]"
            )
            if not run.get("results_match", True):
                violations.append(
                    f"{run_label}: parallel results diverge from serial"
                )
        if (
            entry.get("benchmark") not in PARALLEL_FLOOR_BENCHMARKS
            or entry.get("schedule") != "original"
        ):
            continue
        row = next(
            (
                run
                for run in entry.get("runs", [])
                if run.get("engine") == engine
                and run.get("workers") == workers
            ),
            None,
        )
        if row is None:
            continue
        if host_cpu_count < workers:
            skips.append(
                f"{label}: speed check skipped — host has "
                f"{host_cpu_count} core(s), row needs {workers}"
            )
            continue
        speedup = row.get("speedup_vs_serial_soa", 0.0)
        if speedup < min_speedup:
            violations.append(
                f"{label} [{engine}, {workers} workers]: speedup "
                f"{speedup:.2f}x over serial soa is below the "
                f"{min_speedup:.2f}x floor"
            )
    return violations, skips


def check_compiled_floor(
    payload: dict,
    min_speedup: float = COMPILED_MIN_SPEEDUP,
    host_cpu_count: int | None = None,
    host_numba: bool | None = None,
) -> tuple[list[str], list[str]]:
    """Check a wall-clock payload that timed the compiled backend.

    Returns ``(violations, skips)``.  Correctness first: any entry
    with ``results_match`` false violates.  Speed second, host-aware:
    on :data:`COMPILED_FLOOR_BENCHMARKS`, every entry that timed both
    ``soa`` and ``compiled`` must show ``soa_s / compiled_s >=
    min_speedup`` — unless the measuring host (the payload's ``host``
    key, overridable for tests) has no importable numba or fewer than
    2 cores, in which case the speed check lands in ``skips``: the
    pure-NumPy fallback on a starved host cannot falsify the jitted
    backend's speed claim.  A compiled *refusal* on a floor benchmark
    is always a violation — TJ/MM regressing below ``lowerable`` must
    turn the gate red.
    """
    host = payload.get("host", {})
    if host_cpu_count is None:
        host_cpu_count = host.get("cpu_count") or os.cpu_count() or 1
    if host_numba is None:
        host_numba = bool(host.get("numba"))
    speed_ok = host_numba and host_cpu_count >= 2
    violations: list[str] = []
    skips: list[str] = []
    for entry in payload.get("results", []):
        label = f"{entry.get('benchmark')}/{entry.get('schedule')}"
        if not entry.get("results_match", True):
            violations.append(f"{label}: backend results mismatch")
            continue
        if entry.get("benchmark") not in COMPILED_FLOOR_BENCHMARKS:
            continue
        timings = entry.get("timings", {})
        compiled_s = timings.get("compiled")
        soa_s = timings.get("soa")
        if "compiled" in entry.get("refused", {}):
            violations.append(
                f"{label}: compiled refused a floor benchmark "
                f"({entry['refused']['compiled']})"
            )
            continue
        if not isinstance(compiled_s, (int, float)) or not isinstance(
            soa_s, (int, float)
        ):
            continue
        if not speed_ok:
            skips.append(
                f"{label}: compiled speed check skipped — host has "
                f"{host_cpu_count} core(s), numba "
                f"{'importable' if host_numba else 'not importable'}"
            )
            continue
        speedup = soa_s / compiled_s if compiled_s > 0 else float("inf")
        if speedup < min_speedup:
            violations.append(
                f"{label}: compiled is {speedup:.2f}x soa "
                f"({compiled_s:.4f}s vs {soa_s:.4f}s); floor is "
                f"{min_speedup:.2f}x"
            )
    return violations, skips


def check_serve_floor(
    payload: dict,
    host_cpu_count: int | None = None,
) -> tuple[list[str], list[str]]:
    """Check one ``BENCH_serve.json`` suite payload.

    Returns ``(violations, skips)``.  Correctness always gates: every
    run must be bit-identical to the serial oracle, and every
    dedup-enabled run must show a nonzero dedup hit rate on the skewed
    workload (a zero rate means the folding silently stopped).  Speed
    is host-aware: the payload's ``comparison`` candidate (dedup +
    shards) must beat its baseline (the PR 8 single-shard, no-dedup
    config) on both qps and p99 — skipped when the measuring host has
    fewer than :data:`SERVE_FLOOR_MIN_CPU` cores, where scattering
    shards buys nothing a correctness check could falsify.
    """
    if host_cpu_count is None:
        host_cpu_count = payload.get("host", {}).get("cpu_count")
    if host_cpu_count is None:
        host_cpu_count = os.cpu_count() or 1
    violations: list[str] = []
    skips: list[str] = []
    runs = payload.get("runs", {})
    if not runs:
        violations.append("serve payload carries no runs")
        return violations, skips
    for name, run in runs.items():
        if not run.get("bit_identical", False):
            violations.append(
                f"serve[{name}]: answers are not bit-identical to the "
                "serial oracle"
            )
        if run.get("config", {}).get("dedup") and (
            run.get("dedup_hit_rate", 0.0) <= 0.0
        ):
            violations.append(
                f"serve[{name}]: dedup enabled but the hit rate is zero "
                "on the skewed workload"
            )
    comparison = payload.get("comparison", {})
    baseline = runs.get(comparison.get("baseline"))
    candidate = runs.get(comparison.get("candidate"))
    if baseline is None or candidate is None:
        violations.append(
            "serve payload's comparison does not name two present runs"
        )
        return violations, skips
    if host_cpu_count < SERVE_FLOOR_MIN_CPU:
        skips.append(
            f"serve[{comparison['candidate']}]: speed check skipped — "
            f"host has {host_cpu_count} core(s), floor needs "
            f">= {SERVE_FLOOR_MIN_CPU}"
        )
        return violations, skips
    if candidate.get("qps", 0.0) <= baseline.get("qps", 0.0):
        violations.append(
            f"serve[{comparison['candidate']}]: qps "
            f"{candidate.get('qps', 0.0):.1f} does not beat the "
            f"{comparison['baseline']} baseline "
            f"({baseline.get('qps', 0.0):.1f})"
        )
    candidate_p99 = candidate.get("latency_ms", {}).get("p99")
    baseline_p99 = baseline.get("latency_ms", {}).get("p99")
    if (
        isinstance(candidate_p99, (int, float))
        and isinstance(baseline_p99, (int, float))
        and candidate_p99 > baseline_p99
    ):
        violations.append(
            f"serve[{comparison['candidate']}]: p99 {candidate_p99:.3f}ms "
            f"regresses the {comparison['baseline']} baseline "
            f"({baseline_p99:.3f}ms)"
        )
    return violations, skips


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.bench perf-floor",
        description="Fail if backend='auto' falls below the perf floor.",
    )
    parser.add_argument(
        "--json",
        default="BENCH_soa.json",
        help="wall-clock payload to check (default BENCH_soa.json)",
    )
    parser.add_argument(
        "--floor",
        type=float,
        default=DEFAULT_FLOOR,
        help="required fraction of the best single backend's speedup "
        f"(default {DEFAULT_FLOOR})",
    )
    parser.add_argument(
        "--parallel-json",
        default=None,
        help="also check a BENCH_parallel.json payload (host-aware "
        f"{PARALLEL_MIN_SPEEDUP}x floor on "
        f"{'/'.join(PARALLEL_FLOOR_BENCHMARKS)})",
    )
    parser.add_argument(
        "--parallel-floor",
        type=float,
        default=PARALLEL_MIN_SPEEDUP,
        help="required parallel speedup over serial soa "
        f"(default {PARALLEL_MIN_SPEEDUP})",
    )
    parser.add_argument(
        "--compiled-json",
        default=None,
        help="also check a compiled-backend wall-clock payload "
        f"(host-aware {COMPILED_MIN_SPEEDUP}x-over-soa floor on "
        f"{'/'.join(COMPILED_FLOOR_BENCHMARKS)})",
    )
    parser.add_argument(
        "--compiled-floor",
        type=float,
        default=COMPILED_MIN_SPEEDUP,
        help="required compiled speedup over soa "
        f"(default {COMPILED_MIN_SPEEDUP})",
    )
    parser.add_argument(
        "--serve-json",
        default=None,
        help="also check a BENCH_serve.json suite payload (host-aware "
        "dedup+sharded-beats-baseline floor; correctness always gated)",
    )
    args = parser.parse_args(argv)
    with open(args.json) as handle:
        payload = json.load(handle)
    violations = check_perf_floor(payload, floor=args.floor)
    checked = sum(
        1
        for entry in payload.get("results", [])
        if "auto" in entry.get("timings", {})
    )
    skips: list[str] = []
    parallel_checked = 0
    if args.parallel_json is not None:
        with open(args.parallel_json) as handle:
            parallel_payload = json.load(handle)
        parallel_violations, skips = check_parallel_floor(
            parallel_payload, min_speedup=args.parallel_floor
        )
        violations += parallel_violations
        parallel_checked = sum(
            len(entry.get("runs", []))
            for entry in parallel_payload.get("results", [])
        )
    compiled_checked = 0
    if args.compiled_json is not None:
        with open(args.compiled_json) as handle:
            compiled_payload = json.load(handle)
        compiled_violations, compiled_skips = check_compiled_floor(
            compiled_payload, min_speedup=args.compiled_floor
        )
        violations += compiled_violations
        skips += compiled_skips
        compiled_checked = sum(
            1
            for entry in compiled_payload.get("results", [])
            if entry.get("benchmark") in COMPILED_FLOOR_BENCHMARKS
            and isinstance(
                entry.get("timings", {}).get("compiled"), (int, float)
            )
        )
    serve_checked = 0
    if args.serve_json is not None:
        with open(args.serve_json) as handle:
            serve_payload = json.load(handle)
        serve_violations, serve_skips = check_serve_floor(serve_payload)
        violations += serve_violations
        skips += serve_skips
        serve_checked = len(serve_payload.get("runs", {}))
    if violations:
        print(f"perf floor FAILED ({len(violations)} violation(s)):")
        for violation in violations:
            print(f"  - {violation}")
        return 1
    for skip in skips:
        print(f"  (skip) {skip}")
    message = (
        f"perf floor passed: auto within {args.floor:.0%} of the best "
        f"single backend on all {checked} checked configurations"
    )
    if args.parallel_json is not None:
        message += f"; parallel floor checked {parallel_checked} run(s)"
    if args.compiled_json is not None:
        message += (
            f"; compiled floor checked {compiled_checked} entr(y/ies)"
        )
    if args.serve_json is not None:
        message += f"; serve floor checked {serve_checked} run(s)"
    if skips:
        message += f" ({len(skips)} host-aware skip(s))"
    print(message)
    return 0

"""Unit tests for the Tree Join kernel."""

import pytest

from repro.core import run_interchanged, run_original, run_twisted
from repro.kernels import TreeJoin, tree_join_footprint


class TestTreeJoin:
    def test_result_matches_closed_form(self):
        tj = TreeJoin(31, 15)
        run_original(tj.make_spec())
        assert tj.result == tj.expected_total()

    def test_all_schedules_agree(self):
        tj = TreeJoin(31, 31)
        results = []
        for run in (run_original, run_interchanged, run_twisted):
            run(tj.make_spec())
            results.append(tj.result)
        assert len(set(results)) == 1
        assert results[0] == tj.expected_total()

    def test_pair_count(self):
        tj = TreeJoin(10, 12)
        run_original(tj.make_spec())
        assert tj.accumulator.pairs == 120

    def test_make_spec_resets_accumulator(self):
        tj = TreeJoin(7, 7)
        run_original(tj.make_spec())
        run_original(tj.make_spec())
        assert tj.result == tj.expected_total()

    def test_rejects_empty_trees(self):
        with pytest.raises(ValueError):
            TreeJoin(0, 5)

    def test_footprint_is_read_only(self):
        tj = TreeJoin(3, 3)
        touches = tree_join_footprint(tj.outer_root, tj.inner_root)
        assert all(not is_write for _loc, is_write in touches)

"""Serving-grade dual-tree rule sets with a batch-robustness proof.

The service folds a tick's worth of admitted queries into one query
tree and runs the batch as a single dual-tree pass.  For the demuxed
per-query answers to be **bit-identical** to per-query serial
execution, the rule sets here are built so the final state is a pure
function of *which* leaf pairs were visited and the per-pair distance
values — never of the traversal interleaving:

* distances are computed with the same elementwise expression
  (:func:`~repro.dualtree.rules._pairwise_distances`) regardless of
  block shape, so each (query point, reference point) distance has the
  same bit pattern in any batch;
* :class:`ServeCountRules` reduces with exact integer sums, which are
  order-independent outright;
* :class:`ServeKnnRules` merges candidates under **set semantics**:
  the kept state per query is the k smallest ``(distance, id)`` pairs
  (lexicographic, ids break ties) over all candidates seen.  Pruning
  is conservative against a monotonically shrinking bound, so any
  subtree pruned under *any* schedule contains only candidates with
  distance strictly greater than the final kth distance — candidates
  that can never enter the final top-k.  Visiting more (a staler
  bound) or fewer (a tighter bound) such candidates therefore leaves
  the final k-set unchanged, making the result identical across batch
  shapes, traversal orders, and merge timings.

That schedule-robustness is also a *performance* license: the KNN
rules buffer surviving reference leaves per query leaf and merge them
in chunks (``flush_candidates``), turning many tiny per-leaf-pair
sorts into a few wide vectorized ones, with the pruning bound updated
at merge time.  Staleness only weakens pruning, never the answer.

:class:`SubtreeVerdictCache` is the cross-batch LRU of truncation
verdicts.  Count-query ``Score`` against a *single point* is a pure
function of (point, reference tree, radius), so the cache keys whole
verdict rows — "which reference subtrees can this point truncate" —
by exact point coordinates.  Hot points recur across ticks no matter
how the admission batcher happens to slice them into query leaves, so
their rows hit forever.  A query *leaf*'s truncation decision is then
assembled as the elementwise AND of its points' rows: prune a
reference subtree iff every admitted point in the leaf individually
prunes it.  That is a *refinement* of the leaf-bound prune (a point's
min-dist to a box is never smaller than its enclosing leaf bound's),
and any refinement of a conservative count prune is count-exact — a
pruned subtree holds zero in-radius references for every query in the
leaf, so the skipped base cases would have contributed zero.  The
per-point rows themselves are computed with the very expression the
serial oracle's degenerate one-point leaves use, so cached decisions
are bit-for-bit the oracle's decisions.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

import numpy as np

from repro.dualtree.rules import DualTreeRules, _pairwise_distances
from repro.dualtree.spatial import SpatialNode, SpatialTree
from repro.errors import SpecError

#: Identifier padding for unfilled k-NN slots; larger than any real
#: point id, so lexicographic merge pushes empty slots last.
PAD_ID = np.iinfo(np.int64).max


class SubtreeVerdictCache:
    """LRU cache of per-query-point truncation verdict rows.

    Keys are exact query-point coordinates (float tuples) plus the
    radius — no tolerance, so a hit can never change a decision.
    Values are read-only boolean arrays indexed by reference pre-order
    ``number``: entry ``n`` says "this point alone truncates reference
    subtree ``n``".  Keying by point rather than by query-leaf bound is
    what makes the cache survive admission noise: a hot point lands in
    a differently-shaped batch tree every tick, but its own verdict row
    never changes.  Only *stateless* scores may use this cache (a
    stateful bound would make the row a function of traversal history);
    :class:`ServeKnnRules` therefore never touches it.
    """

    def __init__(self, max_entries: int = 1024) -> None:
        if max_entries < 1:
            raise SpecError("verdict cache needs max_entries >= 1")
        self.max_entries = max_entries
        self._rows: "OrderedDict[tuple, np.ndarray]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def lookup(self, key: tuple) -> Optional[np.ndarray]:
        """The cached verdict row for ``key``, or None."""
        row = self._rows.get(key)
        if row is None:
            self.misses += 1
            return None
        self._rows.move_to_end(key)
        self.hits += 1
        return row

    def store(self, key: tuple, row: np.ndarray) -> np.ndarray:
        """Cache ``row`` (frozen read-only) and return the stored view."""
        frozen = np.array(row, copy=True)
        frozen.setflags(write=False)
        self._rows[key] = frozen
        while len(self._rows) > self.max_entries:
            self._rows.popitem(last=False)
        return frozen

    def clear(self) -> None:
        """Drop all rows and zero the counters."""
        self._rows.clear()
        self.hits = 0
        self.misses = 0

    def stats(self) -> dict:
        """Hit/miss/occupancy counters for service stats."""
        return {
            "entries": len(self._rows),
            "max_entries": self.max_entries,
            "hits": self.hits,
            "misses": self.misses,
        }


def assemble_leaf_verdict_row(rules: "ServeCountRules", q: SpatialNode):
    """Stage one query leaf's assembled truncation-verdict row.

    The row is a pure function of (the leaf's points, the reference
    tree, the radius): the elementwise AND of per-point
    :func:`~repro.dualtree.batch.point_prune_row` rows, each of which
    is itself bit-identical to the serial oracle's one-point-leaf
    decision (module docstring).  The writes below — the cross-batch
    LRU and the per-batch leaf memo — are *staging*: they cache that
    pure function's value and can never change a decision, which is
    why this helper carries the ``__conformance_staged__`` marker the
    backend-conformance analyzer honors (surfaced as a TW109 info
    finding instead of a purity refutation).

    Returns ``None`` when no verdict cache is attached or the
    reference tree has no packed bound arrays — callers fall back to
    the stateless leaf-bound prune.
    """
    from repro.dualtree.batch import bound_arrays, point_prune_row

    cache = rules.verdict_cache
    if cache is None:
        return None
    memo = rules._node_rows
    row = memo.get(q.number)
    if row is not None:
        return row
    arrays = bound_arrays(rules.reference_tree)
    if arrays is None:
        return None
    rows = []
    points = rules.query_tree.points
    for point_id in rules.query_tree.indices[q.start : q.end]:
        point = tuple(float(value) for value in points[point_id])
        key = (point, rules.radius)
        cached_row = cache.lookup(key)
        if cached_row is None:
            # point_prune_row is the degenerate one-point rectangle
            # the serial oracle's one-point leaves carry, so this
            # row reproduces the oracle's decisions bit for bit.
            cached_row = point_prune_row(point, arrays, rules.radius)
            cached_row = cache.store(key, cached_row)
        rows.append(cached_row)
    row = rows[0] if len(rows) == 1 else np.logical_and.reduce(rows)
    memo[q.number] = row
    return row


assemble_leaf_verdict_row.__conformance_staged__ = True  # type: ignore[attr-defined]


class ServeCountRules(DualTreeRules):
    """Per-query range counting (each query's slice of PC).

    ``Score`` is stateless geometry, so block truncation is legal and
    the batched backend gets its biggest wins here; counts accumulate
    into a caller-supplied int64 column for demuxing.  The verdict-row
    assembly lives in the staged module helper
    :func:`assemble_leaf_verdict_row` so the conformance analyzer can
    certify the block guard pure-modulo-staging (batched verdict
    ``safe``) instead of refusing the serve path to ``recursive``.
    """

    observes_results = False

    def __init__(
        self,
        query_tree: SpatialTree,
        reference_tree: SpatialTree,
        radius: float,
        counts: Optional[np.ndarray] = None,
        verdict_cache: Optional[SubtreeVerdictCache] = None,
    ) -> None:
        if radius < 0.0:
            raise SpecError(f"negative radius {radius}")
        self.query_tree = query_tree
        self.reference_tree = reference_tree
        self.radius = float(radius)
        if counts is None:
            counts = np.zeros(query_tree.num_points, dtype=np.int64)
        if counts.shape != (query_tree.num_points,):
            raise SpecError(
                f"counts column has shape {counts.shape}, expected "
                f"({query_tree.num_points},)"
            )
        self.counts = counts
        self.verdict_cache = verdict_cache
        #: assembled per-leaf rows, memoized for this batch's lifetime
        self._node_rows: dict[int, np.ndarray] = {}

    def score(self, q: SpatialNode, r: SpatialNode) -> bool:
        row = assemble_leaf_verdict_row(self, q)
        if row is not None:
            return bool(row[r.number])
        return q.bound.min_dist(r.bound) > self.radius

    def score_block(self, q: SpatialNode):
        """Verdicts for every reference node at once (or ``None``).

        With a verdict cache attached, the row is the AND of the
        leaf's per-point rows (hot points hit across batches; the
        module docstring proves the refinement count-exact).  Without
        one, it is the leaf-bound row — the same vectorized min-dist
        expression :func:`~repro.dualtree.batch.min_dists_to_tree` the
        other stateless rules use, bit-identical to the scalar path.
        """
        row = assemble_leaf_verdict_row(self, q)
        if row is not None:
            return row
        return self._bound_row(q)

    def _bound_row(self, q: SpatialNode):
        from repro.dualtree.batch import bound_arrays, min_dists_to_tree

        arrays = bound_arrays(self.reference_tree)
        if arrays is None:
            return None
        return min_dists_to_tree(q.bound, arrays) > self.radius

    def base_case(self, q: SpatialNode, r: SpatialNode) -> None:
        q_ids = self.query_tree.indices[q.start : q.end]
        r_ids = self.reference_tree.indices[r.start : r.end]
        distances = _pairwise_distances(
            self.query_tree.points[q_ids], self.reference_tree.points[r_ids]
        )
        np.add.at(
            self.counts, q_ids, (distances <= self.radius).sum(axis=1)
        )


class ServeKnnRules(DualTreeRules):
    """Batched k-NN with buffered set-semantics candidate merging.

    Serves both NN (``k=1``) and KNN queries.  Per query the rules
    keep the k smallest ``(distance, id)`` candidates — lexicographic
    ``np.lexsort`` merge, ids breaking distance ties — which makes the
    final state independent of merge order and pruning staleness (see
    the module docstring).  Surviving reference leaves are buffered
    per query leaf and merged once ``flush_candidates`` candidate
    points accumulate; callers **must** call :meth:`finalize` after
    the traversal to merge the tail buffer.
    """

    observes_results = True

    def __init__(
        self,
        query_tree: SpatialTree,
        reference_tree: SpatialTree,
        k: int,
        flush_candidates: int = 128,
        dists: Optional[np.ndarray] = None,
        ids: Optional[np.ndarray] = None,
    ) -> None:
        if k < 1:
            raise SpecError(f"k must be >= 1, got {k}")
        if k > reference_tree.num_points:
            raise SpecError(
                f"k={k} exceeds the {reference_tree.num_points}-point "
                "reference set"
            )
        self.query_tree = query_tree
        self.reference_tree = reference_tree
        self.k = int(k)
        self.flush_candidates = max(1, int(flush_candidates))
        n = query_tree.num_points
        if dists is None:
            dists = np.full((n, k), np.inf)
        if ids is None:
            ids = np.full((n, k), PAD_ID, dtype=np.int64)
        if dists.shape != (n, k) or ids.shape != (n, k):
            raise SpecError(
                f"result columns have shapes {dists.shape}/{ids.shape}, "
                f"expected ({n}, {k})"
            )
        self.dists = dists
        self.ids = ids
        #: per-query kth-best distance, the pruning bound
        self.kth = np.full(n, np.inf)
        self._leaf: Optional[SpatialNode] = None
        self._buffer: list[np.ndarray] = []
        self._buffered = 0

    def score(self, q: SpatialNode, r: SpatialNode) -> bool:
        if self._leaf is not None and self._leaf is not q:
            self._flush()
        q_ids = self.query_tree.indices[q.start : q.end]
        bound = float(self.kth[q_ids].max())
        return q.bound.min_dist(r.bound) > bound

    def base_case(self, q: SpatialNode, r: SpatialNode) -> None:
        if self._leaf is not None and self._leaf is not q:
            self._flush()
        self._leaf = q
        self._buffer.append(self.reference_tree.indices[r.start : r.end])
        self._buffered += r.end - r.start
        if self._buffered >= self.flush_candidates:
            self._flush()

    def _flush(self) -> None:
        q = self._leaf
        if q is None or not self._buffer:
            self._buffer = []
            self._buffered = 0
            return
        r_ids = (
            self._buffer[0]
            if len(self._buffer) == 1
            else np.concatenate(self._buffer)
        )
        self._buffer = []
        self._buffered = 0
        q_ids = self.query_tree.indices[q.start : q.end]
        distances = _pairwise_distances(
            self.query_tree.points[q_ids], self.reference_tree.points[r_ids]
        )
        cand_d = np.concatenate([self.dists[q_ids], distances], axis=1)
        cand_i = np.concatenate(
            [self.ids[q_ids], np.broadcast_to(r_ids, distances.shape)],
            axis=1,
        )
        order = np.lexsort((cand_i, cand_d), axis=1)
        top = order[:, : self.k]
        self.dists[q_ids] = np.take_along_axis(cand_d, top, axis=1)
        self.ids[q_ids] = np.take_along_axis(cand_i, top, axis=1)
        self.kth[q_ids] = self.dists[q_ids, -1]

    def finalize(self) -> None:
        """Merge the tail buffer; required once after the traversal."""
        self._flush()
        self._leaf = None

"""Unit tests for experiment reporting."""

import os

import pytest

from repro.bench import ExperimentReport, ascii_bar, percent


class TestExperimentReport:
    def test_render_aligns_columns(self):
        report = ExperimentReport("demo", ["name", "value"])
        report.add_row("a", 1)
        report.add_row("long-name", 12345)
        text = report.render()
        lines = text.splitlines()
        assert lines[0] == "== demo =="
        assert "long-name" in text
        assert "12,345" in text

    def test_row_arity_checked(self):
        report = ExperimentReport("demo", ["a", "b"])
        with pytest.raises(ValueError):
            report.add_row(1)

    def test_notes_rendered(self):
        report = ExperimentReport("demo", ["x"])
        report.add_row(1)
        report.add_note("hello")
        assert "note: hello" in report.render()

    def test_float_formatting(self):
        report = ExperimentReport("demo", ["x"])
        report.add_row(0.00123)
        report.add_row(3.14159)
        report.add_row(1234567.0)
        text = report.render()
        assert "0.0012" in text
        assert "3.142" in text
        assert "1,234,567" in text

    def test_save(self, tmp_path):
        report = ExperimentReport("demo", ["x"])
        report.add_row(1)
        path = report.save("demo.txt", directory=str(tmp_path))
        assert os.path.exists(path)
        with open(path) as handle:
            assert "== demo ==" in handle.read()


class TestHelpers:
    def test_percent(self):
        assert percent(0.7234) == "72.34%"

    def test_ascii_bar_proportional(self):
        assert len(ascii_bar(5, 10, width=10)) == 5
        assert ascii_bar(10, 10, width=10) == "#" * 10
        assert ascii_bar(0, 10) == ""
        assert ascii_bar(1, 0) == ""

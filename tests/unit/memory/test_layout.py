"""Unit tests for address layout."""

import pytest

from repro.errors import MemorySimError
from repro.memory import AddressMap, layout_tree, node_lines, register_blocks
from repro.spaces import balanced_tree


class TestAddressMap:
    def test_sequential_allocation(self):
        amap = AddressMap()
        assert amap.register("a", 2) == 0
        assert amap.register("b", 3) == 2
        assert amap.total_lines == 5
        assert list(amap.lines_of("a")) == [0, 1]
        assert list(amap.lines_of("b")) == [2, 3, 4]

    def test_address_of_first_line(self):
        amap = AddressMap()
        amap.register("x", 4)
        assert amap.address_of("x") == 0

    def test_contains(self):
        amap = AddressMap()
        amap.register("x")
        assert "x" in amap
        assert "y" not in amap

    def test_rejects_duplicate_registration(self):
        amap = AddressMap()
        amap.register("x")
        with pytest.raises(MemorySimError, match="already registered"):
            amap.register("x")

    def test_rejects_zero_lines(self):
        with pytest.raises(MemorySimError):
            AddressMap().register("x", 0)

    def test_unknown_key(self):
        with pytest.raises(MemorySimError, match="no assigned address"):
            AddressMap().lines_of("ghost")


class TestTreeLayout:
    def test_every_node_registered(self):
        amap = AddressMap()
        root = balanced_tree(15)
        layout_tree(amap, root, "t")
        for node in root.iter_preorder():
            assert ("t", node.number) in amap
        assert amap.total_lines == 15

    def test_preorder_policy_matches_preorder(self):
        amap = AddressMap()
        root = balanced_tree(7)
        layout_tree(amap, root, "t", policy="preorder")
        addresses = [
            amap.address_of(("t", node.number)) for node in root.iter_preorder()
        ]
        assert addresses == sorted(addresses)

    def test_bfs_policy_orders_by_level(self):
        amap = AddressMap()
        root = balanced_tree(7)
        layout_tree(amap, root, "t", policy="bfs")
        # BFS labels equal balanced_tree's labels, so address order
        # should follow label order.
        by_label = sorted(root.iter_preorder(), key=lambda n: n.label)
        addresses = [amap.address_of(("t", node.number)) for node in by_label]
        assert addresses == sorted(addresses)

    def test_random_policy_is_seeded(self):
        root = balanced_tree(31)
        a, b = AddressMap(), AddressMap()
        layout_tree(a, root, "t", policy="random", seed=3)
        layout_tree(b, root, "t", policy="random", seed=3)
        assert all(
            a.address_of(("t", n.number)) == b.address_of(("t", n.number))
            for n in root.iter_preorder()
        )

    def test_veb_policy_matches_linearization(self):
        from repro.spaces.soa import linearize

        amap = AddressMap()
        root = balanced_tree(31)
        layout_tree(amap, root, "t", policy="veb")
        addresses = [
            amap.address_of(("t", node.number))
            for node in linearize(root, "veb")
        ]
        assert addresses == sorted(addresses)

    def test_veb_policy_keeps_root_block_contiguous(self):
        # The cache-oblivious point: the root's top block lands in one
        # address run ahead of every deeper node.
        amap = AddressMap()
        root = balanced_tree(15)
        layout_tree(amap, root, "t", policy="veb")
        root_addr = amap.address_of(("t", root.number))
        child_addrs = [
            amap.address_of(("t", child.number)) for child in root.children
        ]
        rest = [
            amap.address_of(("t", node.number))
            for node in root.iter_preorder()
            if node is not root and node not in root.children
        ]
        assert max(root_addr, *child_addrs) < min(rest)

    def test_unknown_policy(self):
        with pytest.raises(MemorySimError, match="unknown layout policy"):
            layout_tree(AddressMap(), balanced_tree(3), "t", policy="zigzag")

    def test_two_trees_disjoint(self):
        amap = AddressMap()
        a, b = balanced_tree(7), balanced_tree(7)
        layout_tree(amap, a, "a")
        layout_tree(amap, b, "b")
        lines_a = {line for n in a.iter_preorder() for line in amap.lines_of(("a", n.number))}
        lines_b = {line for n in b.iter_preorder() for line in amap.lines_of(("b", n.number))}
        assert lines_a.isdisjoint(lines_b)

    def test_node_lines_helper(self):
        amap = AddressMap()
        root = balanced_tree(3)
        layout_tree(amap, root, "t", lines_per_node=2)
        assert len(node_lines(amap, "t", root)) == 2


class TestBlocks:
    def test_register_blocks_with_prefix(self):
        amap = AddressMap()
        register_blocks(amap, range(3), lines_per_block=4, prefix="row")
        assert len(amap.lines_of(("row", 1))) == 4
        assert amap.total_lines == 12

    def test_register_blocks_bare_keys(self):
        amap = AddressMap()
        register_blocks(amap, ["x", "y"], lines_per_block=1)
        assert "x" in amap and "y" in amap

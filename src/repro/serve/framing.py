"""Opt-in length-prefixed binary framing for the serve wire protocol.

The server speaks newline-delimited JSON by default (see
``repro.serve.__main__``); a client may *negotiate* binary framing per
connection by sending one ordinary JSON hello line first::

    -> {"id": 0, "op": "hello", "framing": "binary"}
    <- {"id": 0, "ok": true, "framing": "binary"}

and from the next byte onward both sides exchange frames::

    u32 length | u8 type | u32 request id | body

with ``length`` covering everything after the length word.  Clients
that never send a hello get the JSON protocol untouched — the framing
is strictly additive and the wire-compat tests pin both encodings.

Query and result bodies are packed ``struct`` float64/int64 fields
(little-endian), so the binary round trip is bit-exact by construction
— the same guarantee JSON gives via ``repr`` floats, without the
float-to-text-to-float detour or the per-message ``json`` tax.  The
``stats`` reply stays JSON (UTF-8 inside a frame): it is a nested
diagnostic document, not hot-path data.

Frame types (request): :data:`T_QUERY`, :data:`T_STATS`,
:data:`T_PING`, :data:`T_SHUTDOWN`.  Response: :data:`T_RESULT`,
:data:`T_ERROR` (UTF-8 message body), :data:`T_OK` (empty body),
:data:`T_STATS_REPLY` (UTF-8 JSON body).
"""

from __future__ import annotations

import struct
from typing import Optional

from repro.errors import SpecError
from repro.serve.protocol import (
    CountQuery,
    CountResult,
    KNNQuery,
    KNNResult,
    NNQuery,
    NNResult,
    Query,
    Result,
)

#: Negotiable framings, in hello order of preference.
FRAMINGS = ("json", "binary")

# -- frame types ------------------------------------------------------------

T_QUERY = 0x01
T_STATS = 0x02
T_PING = 0x03
T_SHUTDOWN = 0x04
T_RESULT = 0x05
T_ERROR = 0x06
T_OK = 0x07
T_STATS_REPLY = 0x08

_HEADER = struct.Struct("<BI")  # type, request id
_LENGTH = struct.Struct("<I")

#: Frame-size ceiling: a decoded length beyond this is a corrupt or
#: hostile stream, not a real request (a 4096-point KNN reply is ~64KB).
MAX_FRAME_BODY = 16 * 1024 * 1024

# -- query/result bodies ----------------------------------------------------

_Q_NN = 0x01
_Q_KNN = 0x02
_Q_COUNT = 0x03
_R_NN = 0x01
_R_KNN = 0x02
_R_COUNT = 0x03

_U8 = struct.Struct("<B")
_U16 = struct.Struct("<H")
_U32 = struct.Struct("<I")
_I64 = struct.Struct("<q")
_F64 = struct.Struct("<d")
_NN_RESULT = struct.Struct("<qd")


def _pack_point(point: tuple[float, ...]) -> bytes:
    if len(point) > 0xFFFF:
        raise SpecError(f"{len(point)}-dimensional point exceeds framing")
    return _U16.pack(len(point)) + struct.pack(
        f"<{len(point)}d", *point
    )


def _unpack_point(body: bytes, offset: int) -> tuple[tuple[float, ...], int]:
    (dim,) = _U16.unpack_from(body, offset)
    offset += _U16.size
    point = struct.unpack_from(f"<{dim}d", body, offset)
    return point, offset + 8 * dim


def pack_query(query: Query) -> bytes:
    """One binary body for a query; exact inverse of :func:`unpack_query`."""
    if isinstance(query, NNQuery):
        return _U8.pack(_Q_NN) + _pack_point(query.point)
    if isinstance(query, KNNQuery):
        return (
            _U8.pack(_Q_KNN)
            + _U32.pack(int(query.k))
            + _pack_point(query.point)
        )
    if isinstance(query, CountQuery):
        return (
            _U8.pack(_Q_COUNT)
            + _F64.pack(float(query.radius))
            + _pack_point(query.point)
        )
    raise SpecError(f"unknown query type {type(query).__name__}")


def unpack_query(body: bytes) -> Query:
    """Decode one binary query body, validating like the JSON decoder."""
    if not body:
        raise SpecError("empty query body")
    (tag,) = _U8.unpack_from(body, 0)
    offset = _U8.size
    if tag == _Q_NN:
        point, _ = _unpack_point(body, offset)
        if not point:
            raise SpecError("query point must have at least one coordinate")
        return NNQuery(point)
    if tag == _Q_KNN:
        (k,) = _U32.unpack_from(body, offset)
        point, _ = _unpack_point(body, offset + _U32.size)
        if k < 1:
            raise SpecError(f"knn query needs k >= 1, got {k}")
        if not point:
            raise SpecError("query point must have at least one coordinate")
        return KNNQuery(point, int(k))
    if tag == _Q_COUNT:
        (radius,) = _F64.unpack_from(body, offset)
        point, _ = _unpack_point(body, offset + _F64.size)
        if radius < 0:
            raise SpecError(f"count query needs radius >= 0, got {radius}")
        if not point:
            raise SpecError("query point must have at least one coordinate")
        return CountQuery(point, float(radius))
    raise SpecError(f"unknown binary query tag 0x{tag:02x}")


def pack_result(result: Result) -> bytes:
    """One binary body for a result; bit-exact float64/int64 fields."""
    if isinstance(result, NNResult):
        return _U8.pack(_R_NN) + _NN_RESULT.pack(
            int(result.neighbor_id), float(result.distance)
        )
    if isinstance(result, KNNResult):
        k = len(result.neighbor_ids)
        return (
            _U8.pack(_R_KNN)
            + _U32.pack(k)
            + struct.pack(f"<{k}q", *result.neighbor_ids)
            + struct.pack(f"<{k}d", *result.distances)
        )
    if isinstance(result, CountResult):
        return _U8.pack(_R_COUNT) + _I64.pack(int(result.count))
    raise SpecError(f"unknown result type {type(result).__name__}")


def unpack_result(body: bytes) -> Result:
    """Exact inverse of :func:`pack_result`."""
    if not body:
        raise SpecError("empty result body")
    (tag,) = _U8.unpack_from(body, 0)
    offset = _U8.size
    if tag == _R_NN:
        neighbor_id, distance = _NN_RESULT.unpack_from(body, offset)
        return NNResult(int(neighbor_id), float(distance))
    if tag == _R_KNN:
        (k,) = _U32.unpack_from(body, offset)
        offset += _U32.size
        ids = struct.unpack_from(f"<{k}q", body, offset)
        dists = struct.unpack_from(f"<{k}d", body, offset + 8 * k)
        return KNNResult(
            tuple(int(i) for i in ids), tuple(float(d) for d in dists)
        )
    if tag == _R_COUNT:
        (count,) = _I64.unpack_from(body, offset)
        return CountResult(int(count))
    raise SpecError(f"unknown binary result tag 0x{tag:02x}")


# -- frames -----------------------------------------------------------------


def encode_frame(frame_type: int, request_id: int, body: bytes = b"") -> bytes:
    """One complete wire frame (length word included)."""
    payload = _HEADER.pack(frame_type, request_id & 0xFFFFFFFF) + body
    return _LENGTH.pack(len(payload)) + payload


def decode_frame(payload: bytes) -> tuple[int, int, bytes]:
    """Split one frame payload (length word already consumed)."""
    if len(payload) < _HEADER.size:
        raise SpecError(f"truncated frame: {len(payload)} bytes")
    frame_type, request_id = _HEADER.unpack_from(payload, 0)
    return frame_type, request_id, payload[_HEADER.size :]


def read_frame_length(word: bytes) -> int:
    """Validate and decode one length word."""
    if len(word) != _LENGTH.size:
        raise SpecError(f"truncated frame length: {len(word)} bytes")
    (length,) = _LENGTH.unpack(word)
    if length < _HEADER.size or length > MAX_FRAME_BODY:
        raise SpecError(f"implausible frame length {length}")
    return length


def read_frame_blocking(file) -> Optional[tuple[int, int, bytes]]:
    """Read one frame from a blocking file object; None on clean EOF."""
    word = file.read(_LENGTH.size)
    if not word:
        return None
    length = read_frame_length(word)
    payload = file.read(length)
    if len(payload) != length:
        raise SpecError("connection closed mid-frame")
    return decode_frame(payload)


async def read_frame_async(reader) -> Optional[tuple[int, int, bytes]]:
    """Read one frame from an asyncio reader; None on clean EOF."""
    import asyncio

    try:
        word = await reader.readexactly(_LENGTH.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise SpecError("connection closed mid-frame") from exc
    length = read_frame_length(word)
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise SpecError("connection closed mid-frame") from exc
    return decode_frame(payload)

#!/usr/bin/env python
"""Quickstart: recursion twisting on Tree Join in five minutes.

Builds the paper's running example (a cross product of two trees),
executes it under the original, interchanged, and twisted schedules,
and shows what the transformation buys: identical results, identical
iteration counts, and dramatically better locality on the simulated
memory hierarchy.

Run:  python examples/quickstart.py
"""

from repro import (
    NestedRecursionSpec,
    WorkRecorder,
    paper_inner_tree,
    paper_outer_tree,
    render_schedule,
    run_interchanged,
    run_original,
    run_twisted,
)
from repro.bench import bench_hierarchy, make_tj, run_case
from repro.core.schedules import INTERCHANGE, ORIGINAL, TWIST
from repro.memory import instruction_overhead, speedup
from repro.spaces import IterationSpace


def show_paper_example() -> None:
    """The 7x7 worked example of Figures 1 and 4."""
    outer, inner = paper_outer_tree(), paper_inner_tree()
    spec = NestedRecursionSpec(outer, inner, name="figure-1")
    space = IterationSpace.from_trees(outer, inner)

    for name, runner in [("original (Figure 1c)", run_original),
                         ("interchanged", run_interchanged),
                         ("twisted (Figure 4b)", run_twisted)]:
        recorder = WorkRecorder()
        runner(spec, instrument=recorder)
        space.validate_schedule(recorder.points)  # same iterations, new order
        print(f"--- {name} ---")
        print(render_schedule(space, recorder.points))
        print()


def show_locality_effect() -> None:
    """Tree Join at benchmark scale on the simulated machine."""
    case = make_tj(800)
    baseline = run_case(case, ORIGINAL, bench_hierarchy)
    interchanged = run_case(case, INTERCHANGE, bench_hierarchy)
    twisted = run_case(case, TWIST, bench_hierarchy)

    print("--- Tree Join, two 800-node trees, simulated L1/L2/L3 ---")
    for report in (baseline, interchanged, twisted):
        print(report.summary())
    print(f"\nresults identical: "
          f"{baseline.result == interchanged.result == twisted.result}")
    print(f"twisting speedup (modeled):   {speedup(baseline, twisted):.2f}x")
    print(f"interchange speedup (modeled): {speedup(baseline, interchanged):.2f}x"
          "   <- interchange alone doesn't help (Section 2.2)")
    print(f"twisting instruction overhead: "
          f"{100 * instruction_overhead(baseline, twisted):.1f}%")


if __name__ == "__main__":
    show_paper_example()
    show_locality_effect()

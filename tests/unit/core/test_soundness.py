"""Unit tests for the soundness checker (Section 3.3)."""

import pytest

from repro.core import (
    FootprintRecorder,
    NestedRecursionSpec,
    canonical_form,
    check_transformation,
    compare_recordings,
    is_outer_parallel,
    run_interchanged,
    run_original,
    run_twisted,
)
from repro.errors import SoundnessError
from repro.spaces import balanced_tree, paper_inner_tree, paper_outer_tree


class TestCanonicalForm:
    def test_reads_between_writes_commute(self):
        a = [(("p", 1), False), (("q", 1), False), (("r", 1), True)]
        b = [(("q", 1), False), (("p", 1), False), (("r", 1), True)]
        assert canonical_form(a) == canonical_form(b)

    def test_write_order_matters(self):
        a = [(("p", 1), True), (("q", 1), True)]
        b = [(("q", 1), True), (("p", 1), True)]
        assert canonical_form(a) != canonical_form(b)

    def test_read_cannot_cross_write(self):
        a = [(("p", 1), False), (("w", 1), True)]
        b = [(("w", 1), True), (("p", 1), False)]
        assert canonical_form(a) != canonical_form(b)

    def test_duplicate_reads_counted(self):
        a = [(("p", 1), False), (("p", 1), False)]
        b = [(("p", 1), False)]
        assert canonical_form(a) != canonical_form(b)


def read_only_footprint(o, i):
    return [(("outer", o.number), False), (("inner", i.number), False)]


def accumulator_footprint(o, i):
    # Every iteration writes one shared location: fully serialized.
    return [("acc", True)]


def per_outer_footprint(o, i):
    # Per-outer-index accumulators: outer-parallel dependence shape.
    return [(("acc", o.number), True)]


class TestTransformationChecks:
    def spec_factory(self, **kwargs):
        return lambda: NestedRecursionSpec(
            paper_outer_tree(), paper_inner_tree(), **kwargs
        )

    def test_read_only_is_always_sound(self):
        report = check_transformation(
            self.spec_factory(), read_only_footprint, run_original, run_twisted
        )
        assert report.is_sound
        report.raise_if_unsound()

    def test_shared_accumulator_breaks_interchange(self):
        # A single written location serializes ALL iterations; changing
        # any order is flagged.
        report = check_transformation(
            self.spec_factory(), accumulator_footprint, run_original, run_interchanged
        )
        assert not report.is_sound
        with pytest.raises(SoundnessError, match="dependence order"):
            report.raise_if_unsound()

    def test_per_outer_state_is_sound_under_twisting(self):
        # The paper's common case: intra-traversal dependences only.
        report = check_transformation(
            self.spec_factory(), per_outer_footprint, run_original, run_twisted
        )
        assert report.is_sound

    def test_different_iteration_sets_detected(self):
        def run_truncated(spec, instrument=None):
            truncated = NestedRecursionSpec(
                spec.outer_root,
                spec.inner_root,
                work=spec.work,
                truncate_outer=lambda o: o.label == "E",
            )
            run_original(truncated, instrument=instrument)

        report = check_transformation(
            self.spec_factory(), read_only_footprint, run_original, run_truncated
        )
        assert not report.same_work_points
        with pytest.raises(SoundnessError, match="different set"):
            report.raise_if_unsound()


class TestOuterParallel:
    def run_with(self, footprint):
        spec = NestedRecursionSpec(paper_outer_tree(), paper_inner_tree())
        recorder = FootprintRecorder(footprint)
        run_original(spec, instrument=recorder)
        return recorder

    def test_read_only_is_parallel(self):
        assert is_outer_parallel(self.run_with(read_only_footprint))

    def test_shared_writes_are_not_parallel(self):
        assert not is_outer_parallel(self.run_with(accumulator_footprint))

    def test_per_outer_writes_are_parallel(self):
        assert is_outer_parallel(self.run_with(per_outer_footprint))

    def test_read_only_shared_location_is_fine(self):
        def footprint(o, i):
            return [("shared", False), (("acc", o.number), True)]

        assert is_outer_parallel(self.run_with(footprint))


class TestCompareRecordings:
    def test_counts_locations(self):
        a = FootprintRecorder(read_only_footprint)
        b = FootprintRecorder(read_only_footprint)
        spec = NestedRecursionSpec(balanced_tree(3), balanced_tree(3))
        run_original(spec, instrument=a)
        run_original(spec, instrument=b)
        report = compare_recordings(a, b)
        assert report.is_sound
        assert report.locations_checked == 6

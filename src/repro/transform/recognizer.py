"""Template recognition: the tool's "syntactic sanity check" (Section 5).

"Given annotated nested recursive functions, the tool performs a
syntactic sanity check to make sure that the annotated recursive
functions conform to the template shown in Figure [2]."  This module is
that check for Python sources: it parses the two functions and either
produces a structured :class:`RecursionTemplate` — every piece the code
generator needs — or raises :class:`~repro.errors.TransformError` with
a precise explanation of the violation.

The accepted shape, mirroring Figure 2 exactly:

outer function::

    def outer(o, i):
        if <truncateOuter?(o)>:
            return
        inner(o, i)
        outer(<child-expr-1 of o>, i)
        ...
        outer(<child-expr-k of o>, i)

inner function::

    def inner(o, i):
        if <truncateInner?(o, i)>:
            return
        <work statement(s)>
        inner(o, <child-expr-1 of i>)
        ...
        inner(o, <child-expr-m of i>)

Unlike the paper's prototype, which "currently only works with
recursive methods that make two recursive calls", any positive number
of recursive calls is accepted.
"""

from __future__ import annotations

import ast
import textwrap
from dataclasses import dataclass

from repro.errors import TransformError


@dataclass
class RecursionTemplate:
    """Everything extracted from a conforming nested recursive pair."""

    outer_name: str
    inner_name: str
    #: parameter names shared by both functions, in order (outer, inner)
    o_param: str
    i_param: str
    #: ``truncateOuter?`` condition (an ``ast.expr``)
    outer_guard: ast.expr
    #: the inner function's full truncation condition
    inner_guard: ast.expr
    #: the work statements of the inner function (``ast.stmt`` list)
    work_statements: list[ast.stmt]
    #: child expressions advanced by the outer recursion's calls
    outer_child_exprs: list[ast.expr]
    #: child expressions advanced by the inner recursion's calls
    inner_child_exprs: list[ast.expr]
    #: the original function sources (for round-tripping into output)
    outer_source: str = ""
    inner_source: str = ""

    def unparse(self, node: ast.AST) -> str:
        """Source text of an extracted fragment."""
        return ast.unparse(node)


def _function_def(tree: ast.Module, name: str) -> ast.FunctionDef:
    """Find a top-level function definition by name."""
    for node in tree.body:
        if isinstance(node, ast.FunctionDef) and node.name == name:
            return node
    raise TransformError(f"no top-level function named {name!r} in the source")


def _names_in(node: ast.AST) -> set[str]:
    """All identifier names appearing in an expression."""
    return {child.id for child in ast.walk(node) if isinstance(child, ast.Name)}


def _check_params(function: ast.FunctionDef) -> tuple[str, str]:
    """The template takes exactly the two index parameters."""
    args = function.args
    if (
        args.posonlyargs
        or args.kwonlyargs
        or args.vararg
        or args.kwarg
        or len(args.args) != 2
    ):
        raise TransformError(
            f"{function.name} must take exactly two positional parameters "
            f"(the outer and inner indices), like the Figure 2 template"
        )
    return args.args[0].arg, args.args[1].arg


def _extract_guard(function: ast.FunctionDef) -> ast.expr:
    """The leading ``if <cond>: return`` truncation statement."""
    body = function.body
    # Tolerate a leading docstring.
    if body and isinstance(body[0], ast.Expr) and isinstance(body[0].value, ast.Constant):
        body = body[1:]
    if not body or not isinstance(body[0], ast.If):
        raise TransformError(
            f"{function.name} must start with a truncation check "
            f"('if <condition>: return')"
        )
    guard = body[0]
    if (
        len(guard.body) != 1
        or not isinstance(guard.body[0], ast.Return)
        or guard.body[0].value is not None
        or guard.orelse
    ):
        raise TransformError(
            f"{function.name}: the truncation check must be exactly "
            f"'if <condition>: return' with no else branch"
        )
    return guard.test


def _stmts_after_guard(function: ast.FunctionDef) -> list[ast.stmt]:
    body = function.body
    if body and isinstance(body[0], ast.Expr) and isinstance(body[0].value, ast.Constant):
        body = body[1:]
    return body[1:]


def _is_call_to(stmt: ast.stmt, name: str) -> bool:
    return (
        isinstance(stmt, ast.Expr)
        and isinstance(stmt.value, ast.Call)
        and isinstance(stmt.value.func, ast.Name)
        and stmt.value.func.id == name
    )


def _call_args(stmt: ast.stmt) -> list[ast.expr]:
    assert isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call)
    call = stmt.value
    if call.keywords:
        raise TransformError("recursive calls must use positional arguments only")
    return list(call.args)


def recognize(source: str, outer_name: str, inner_name: str) -> RecursionTemplate:
    """Parse and sanity-check a nested recursive pair.

    ``source`` is module-level Python source containing both function
    definitions (decorators are permitted and ignored).  Raises
    :class:`~repro.errors.TransformError` when the code does not match
    the template.
    """
    try:
        tree = ast.parse(textwrap.dedent(source))
    except SyntaxError as error:
        raise TransformError(
            f"input source does not parse: {error}", code="TW001"
        ) from error

    outer = _function_def(tree, outer_name)
    inner = _function_def(tree, inner_name)

    o_param, i_param = _check_params(outer)
    inner_params = _check_params(inner)
    if inner_params != (o_param, i_param):
        raise TransformError(
            f"{inner_name} must use the same parameter names as "
            f"{outer_name} ({o_param}, {i_param}); got {inner_params}"
        )

    outer_guard = _extract_guard(outer)
    if i_param in _names_in(outer_guard):
        raise TransformError(
            f"{outer_name}: the outer truncation may only depend on "
            f"{o_param!r} (the template's truncateOuter? takes the outer "
            f"index only)"
        )
    inner_guard = _extract_guard(inner)

    # --- outer body: inner launch + self-recursive calls -------------
    outer_rest = _stmts_after_guard(outer)
    if not outer_rest or not _is_call_to(outer_rest[0], inner_name):
        raise TransformError(
            f"{outer_name} must call {inner_name}({o_param}, {i_param}) "
            f"immediately after its truncation check"
        )
    launch_args = _call_args(outer_rest[0])
    if [ast.unparse(arg) for arg in launch_args] != [o_param, i_param]:
        raise TransformError(
            f"{outer_name} must launch the inner recursion on exactly "
            f"({o_param}, {i_param})"
        )
    outer_child_exprs: list[ast.expr] = []
    for stmt in outer_rest[1:]:
        if not _is_call_to(stmt, outer_name):
            raise TransformError(
                f"{outer_name}: after the inner launch, only recursive "
                f"calls to itself are allowed; found "
                f"{ast.unparse(stmt)!r}"
            )
        first, second = _require_two_args(stmt, outer_name)
        if ast.unparse(second) != i_param:
            raise TransformError(
                f"{outer_name}: recursive calls must keep the inner index "
                f"fixed ({i_param}); found {ast.unparse(second)!r}"
            )
        if o_param not in _names_in(first):
            raise TransformError(
                f"{outer_name}: recursive calls must advance the outer "
                f"index {o_param!r}; found {ast.unparse(first)!r}"
            )
        outer_child_exprs.append(first)
    if not outer_child_exprs:
        raise TransformError(f"{outer_name} makes no recursive calls")

    # --- inner body: work + self-recursive calls ----------------------
    inner_rest = _stmts_after_guard(inner)
    work_statements: list[ast.stmt] = []
    inner_child_exprs: list[ast.expr] = []
    for stmt in inner_rest:
        if _is_call_to(stmt, inner_name):
            first, second = _require_two_args(stmt, inner_name)
            if ast.unparse(first) != o_param:
                raise TransformError(
                    f"{inner_name}: recursive calls must keep the outer "
                    f"index fixed ({o_param}); found {ast.unparse(first)!r}"
                )
            if i_param not in _names_in(second):
                raise TransformError(
                    f"{inner_name}: recursive calls must advance the inner "
                    f"index {i_param!r}; found {ast.unparse(second)!r}"
                )
            inner_child_exprs.append(second)
        else:
            if inner_child_exprs:
                raise TransformError(
                    f"{inner_name}: work statements must precede the "
                    f"recursive calls; found {ast.unparse(stmt)!r} after "
                    f"a recursive call"
                )
            if _contains_call_to(stmt, outer_name) or _contains_call_to(stmt, inner_name):
                raise TransformError(
                    f"{inner_name}: work statements must not invoke the "
                    f"recursive functions"
                )
            work_statements.append(stmt)
    if not inner_child_exprs:
        raise TransformError(f"{inner_name} makes no recursive calls")
    if not work_statements:
        raise TransformError(
            f"{inner_name} has no work statements — nothing to schedule"
        )

    return RecursionTemplate(
        outer_name=outer_name,
        inner_name=inner_name,
        o_param=o_param,
        i_param=i_param,
        outer_guard=outer_guard,
        inner_guard=inner_guard,
        work_statements=work_statements,
        outer_child_exprs=outer_child_exprs,
        inner_child_exprs=inner_child_exprs,
        outer_source=_source_without_decorators(outer),
        inner_source=_source_without_decorators(inner),
    )


def _source_without_decorators(function: ast.FunctionDef) -> str:
    """Round-trip source of a function, dropping its decorators.

    The generated module must not re-apply annotation markers (which
    may not be importable in the execution namespace).
    """
    stripped = ast.FunctionDef(
        name=function.name,
        args=function.args,
        body=function.body,
        decorator_list=[],
        returns=function.returns,
        type_comment=None,
    )
    return ast.unparse(ast.fix_missing_locations(ast.Module(body=[stripped], type_ignores=[])))


def _require_two_args(stmt: ast.stmt, name: str) -> tuple[ast.expr, ast.expr]:
    args = _call_args(stmt)
    if len(args) != 2:
        raise TransformError(
            f"{name}: recursive calls must pass exactly the two indices"
        )
    return args[0], args[1]


def _contains_call_to(stmt: ast.stmt, name: str) -> bool:
    for node in ast.walk(stmt):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == name
        ):
            return True
    return False

"""Recursion-depth management for deep iteration spaces.

The faithful executors are written recursively, like the paper's
listings.  CPython's default recursion limit (1000) is too small for
the degenerate (list-shaped) trees that make the template "devolve into
a doubly-nested loop" (Section 2.1), so every executor wraps its run in
:func:`recursion_guard`, which raises the limit to cover the combined
depth of the two trees plus interpreter headroom and restores it
afterwards.

Raising the limit has a ceiling: past
:data:`MAX_SAFE_RECURSION_LIMIT`, deep Python recursion risks
exhausting the C stack (a hard crash, not a catchable
``RecursionError``, on interpreters whose frames consume native
stack).  The recursive executors therefore test
:func:`exceeds_safe_depth` up front and route such spaces through the
explicit-stack batched executors (:mod:`repro.core.batched`), which
are event-for-event identical and have no depth limit;
:func:`recursion_guard` itself refuses to raise the limit past the
ceiling with a :class:`~repro.errors.ScheduleError` as a last line of
defense.
"""

from __future__ import annotations

import sys
from contextlib import contextmanager
from typing import Iterator, Optional

from repro.errors import ScheduleError
from repro.spaces.node import IndexNode, tree_depth

#: Stack frames reserved for the interpreter, pytest, and instruments.
_HEADROOM = 256

#: Frames one template level consumes per tree level (outer + inner
#: recursive calls, instruments, predicate calls).
_FRAMES_PER_LEVEL = 4

#: Never raise the interpreter recursion limit beyond this.  Python
#: frames may consume native stack (so a high limit can turn a tidy
#: ``RecursionError`` into a C-stack overflow); 10k covers every sane
#: balanced workload while staying far from typical 8 MB stacks.
MAX_SAFE_RECURSION_LIMIT = 10_000


def required_limit(outer_root: IndexNode, inner_root: IndexNode) -> int:
    """A recursion limit sufficient for any schedule over the two trees.

    Every schedule's call depth is bounded by the sum of the two tree
    depths (the twisted schedule interleaves the recursions but each
    call still descends one of the trees by one level).
    """
    depth = tree_depth(outer_root) + tree_depth(inner_root)
    return depth * _FRAMES_PER_LEVEL + _HEADROOM


def exceeds_safe_depth(outer_root: IndexNode, inner_root: IndexNode) -> bool:
    """True when the trees are too deep for the recursive executors.

    Callers holding such a pair should run the explicit-stack batched
    executor instead (the recursive executors do so automatically).
    """
    return required_limit(outer_root, inner_root) > MAX_SAFE_RECURSION_LIMIT


@contextmanager
def recursion_guard(
    outer_root: IndexNode,
    inner_root: IndexNode,
    minimum: Optional[int] = None,
) -> Iterator[None]:
    """Temporarily raise the interpreter recursion limit if needed."""
    needed = max(required_limit(outer_root, inner_root), minimum or 0)
    if needed > MAX_SAFE_RECURSION_LIMIT:
        raise ScheduleError(
            f"iteration space needs a recursion limit of {needed}, past "
            f"the safe ceiling of {MAX_SAFE_RECURSION_LIMIT}; run it "
            "through the explicit-stack executors in repro.core.batched"
        )
    previous = sys.getrecursionlimit()
    if needed > previous:
        sys.setrecursionlimit(needed)
    try:
        yield
    finally:
        sys.setrecursionlimit(previous)

"""The original (untransformed) schedule — Figure 2 of the paper.

``run_original`` executes a :class:`~repro.core.spec.NestedRecursionSpec`
exactly as the template's source code would: for each outer-tree node
(depth-first, pre-order), traverse the inner tree, truncating the inner
recursion on ``truncateInner1?`` and — when present — the irregular
``truncateInner2?``.  On a rectangular space this is the
"column-by-column" enumeration of Figure 1(c).

The executor reports instrumentation events with the conventions shared
by all schedules (see :mod:`repro.core.instruments`): one ``call`` plus
one ``trunc_check`` op per recursive invocation, one extra
``trunc_check`` when ``truncateInner2?`` is evaluated, and one access
to each of ``o`` and ``i`` per executed work point (the Section 3.2
access model: "work(o, i) accesses exactly node o and node i").
"""

from __future__ import annotations

from typing import Optional

from repro.core.instruments import NULL_INSTRUMENT, Instrument
from repro.core.recursion import exceeds_safe_depth, recursion_guard
from repro.core.spec import INNER_TREE, OUTER_TREE, NestedRecursionSpec


def run_original(
    spec: NestedRecursionSpec,
    instrument: Optional[Instrument] = None,
) -> None:
    """Execute the spec in the original nested-recursion order.

    Iteration spaces too deep for safe Python recursion are routed
    through the explicit-stack batched executor, which emits the exact
    same instrumentation event sequence (see
    :mod:`repro.core.batched`'s exactness contract).
    """
    if exceeds_safe_depth(spec.outer_root, spec.inner_root):
        from repro.core.batched import run_original_batched

        run_original_batched(spec, instrument)
        return
    ins = instrument or NULL_INSTRUMENT
    truncate_outer = spec.truncate_outer
    truncate_inner1 = spec.truncate_inner1
    truncate_inner2 = spec.truncate_inner2
    work = spec.work
    ins_op = ins.op
    ins_access = ins.access
    ins_work = ins.work

    def recurse_outer(o, i):
        ins_op("call")
        ins_op("trunc_check")
        if truncate_outer(o):
            return
        recurse_inner(o, i)
        for child in o.children:
            recurse_outer(child, i)

    def recurse_inner(o, i):
        ins_op("call")
        ins_op("trunc_check")
        if truncate_inner1(i):
            return
        # One "visit" per (o, i) point reached — the "iterations" metric
        # of Section 4.2 (visited points, whether or not work executes).
        ins_op("visit")
        if truncate_inner2 is not None:
            ins_op("trunc_check")
            if truncate_inner2(o, i):
                return
        # Inner node first: work(o, i) reads the inner tree datum before
        # the outer accumulator.  This ordering is what reproduces the
        # paper's Section 3.2 reuse distances exactly (e.g. [inf, 8, 8,
        # ...] for inner node 5 in the original schedule).
        ins_access(INNER_TREE, i)
        ins_access(OUTER_TREE, o)
        ins_work(o, i)
        if work is not None:
            work(o, i)
        for child in i.children:
            recurse_inner(o, child)

    spec.reset_truncation_state()
    with recursion_guard(spec.outer_root, spec.inner_root):
        recurse_outer(spec.outer_root, spec.inner_root)

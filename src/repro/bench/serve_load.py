"""Load generator for the serving layer (``python -m repro.bench serve``).

Drives 10^5–10^6 simulated users against a resident
:class:`~repro.serve.service.QueryService` through the asyncio
:class:`~repro.serve.batcher.AdmissionBatcher` — the exact production
admission path, minus the TCP framing (measured separately by the
integration tests; the serving claim is about execution, not socket
I/O).  Each simulated user submits one query drawn from a configurable
kind mix with a hot set: ``hot_fraction`` of users re-ask one of
``hot_set`` popular queries, the rest ask unique ones — the skew that
makes the cross-batch verdict cache earn its keep.

Three measurements come out:

* **service latency** — per-user submit→result seconds through the
  batcher (includes admission hold), reported as p50/p99/mean;
* **service throughput** — users / wall seconds for the whole run;
* **serial baseline** — per-query execution time of the same workload
  shape through :meth:`QueryService.execute_serial` (auto backend per
  query — the best a non-batching server would do), measured on a
  uniform sample of ``serial_sample`` users and scaled: per-query
  serial cost is independent of workload length, so the sample mean is
  the estimator, and the sample size is recorded in the payload.

Correctness is not sampled: the batched result of **every** user is
bit-compared against the serial oracle of its distinct query (equal
queries have equal oracles — the oracle is deterministic), and the
run fails loudly on any mismatch.  The payload lands in
``BENCH_serve.json`` for the trajectory table and the CI gate.
"""

from __future__ import annotations

import asyncio
import json
import os
import platform
import time
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.bench.reporting import ExperimentReport
from repro.errors import ReproError
from repro.serve.batcher import AdmissionBatcher
from repro.serve.protocol import (
    CountQuery,
    KNNQuery,
    NNQuery,
    Query,
)
from repro.serve.service import QueryService, ServiceConfig

#: Default knobs of the checked-in BENCH_serve.json run.
DEFAULT_REFERENCES = 16384
DEFAULT_USERS = 100_000
DEFAULT_JSON_PATH = "BENCH_serve.json"

#: Kind mix (nn, knn, count) the simulated users draw from.
DEFAULT_MIX = (0.4, 0.2, 0.4)


@dataclass(frozen=True)
class LoadSpec:
    """One load-generation scenario."""

    references: int = DEFAULT_REFERENCES
    users: int = DEFAULT_USERS
    hot_fraction: float = 0.7
    hot_set: int = 64
    mix: tuple[float, float, float] = DEFAULT_MIX
    k: int = 5
    radius: float = 0.3
    seed: int = 1
    concurrency: int = 2048
    serial_sample: int = 1500


def generate_workload(
    spec: LoadSpec, references: np.ndarray
) -> list[Query]:
    """The full, deterministic user query sequence for one scenario.

    Query points are fresh clustered draws (same distribution as the
    references, never the same points); hot users resample from the
    first ``hot_set`` of them.
    """
    from repro.spaces.points import clustered_points

    rng = np.random.default_rng(spec.seed)
    distinct = clustered_points(
        max(spec.hot_set, spec.users),
        clusters=24,
        spread=0.05,
        seed=spec.seed + 1,
    )
    kinds = rng.choice(3, size=spec.users, p=list(spec.mix))
    hot = rng.random(spec.users) < spec.hot_fraction
    hot_pick = rng.integers(0, spec.hot_set, size=spec.users)
    queries: list[Query] = []
    for index in range(spec.users):
        row = hot_pick[index] if hot[index] else index
        point = tuple(float(value) for value in distinct[row])
        kind = int(kinds[index])
        if kind == 0:
            queries.append(NNQuery(point))
        elif kind == 1:
            queries.append(KNNQuery(point, spec.k))
        else:
            queries.append(CountQuery(point, spec.radius))
    return queries


async def _drive(
    batcher: AdmissionBatcher,
    queries: Sequence[Query],
    concurrency: int,
) -> tuple[list, np.ndarray, float]:
    """Submit every user query; returns (results, latencies, wall).

    ``concurrency`` long-lived simulator tasks pull user indices from
    one shared iterator — bounded task count regardless of workload
    length, with ``concurrency`` queries in flight at steady state.
    """
    results: list = [None] * len(queries)
    latencies = np.zeros(len(queries))
    indices = iter(range(len(queries)))

    async def simulator() -> None:
        for index in indices:
            start = time.perf_counter()
            results[index] = await batcher.submit(queries[index])
            latencies[index] = time.perf_counter() - start

    wall_start = time.perf_counter()
    await asyncio.gather(
        *(simulator() for _ in range(min(concurrency, len(queries))))
    )
    await batcher.drain()
    wall = time.perf_counter() - wall_start
    return results, latencies, wall


def run_serve_load(
    spec: LoadSpec = LoadSpec(),
    config: Optional[ServiceConfig] = None,
    service: Optional[QueryService] = None,
) -> tuple[ExperimentReport, dict]:
    """Run one scenario; returns (report, BENCH_serve payload).

    Raises :class:`~repro.errors.ReproError` on any batched-vs-serial
    result mismatch — bit-identity is an acceptance criterion, not a
    statistic.
    """
    from repro.spaces.points import clustered_points

    config = config or ServiceConfig()
    own_service = service is None
    if service is None:
        references = clustered_points(
            spec.references, clusters=24, spread=0.05, seed=spec.seed
        )
        service = QueryService(references, config)
    try:
        queries = generate_workload(spec, service.references)
        batcher_holder: dict = {}

        async def scenario():
            batcher = AdmissionBatcher(
                service.execute_batch,
                max_batch=config.max_batch,
                max_hold_s=config.max_hold_s,
            )
            batcher_holder["batcher"] = batcher
            return await _drive(batcher, queries, spec.concurrency)

        results, latencies, wall = asyncio.run(scenario())
        batcher = batcher_holder["batcher"]

        # Serial baseline: per-query cost sampled uniformly.
        rng = np.random.default_rng(spec.seed + 2)
        sample_size = min(spec.serial_sample, len(queries))
        sample = rng.choice(len(queries), size=sample_size, replace=False)
        serial_start = time.perf_counter()
        service.execute_serial([queries[index] for index in sample])
        serial_seconds = time.perf_counter() - serial_start
        serial_mean = serial_seconds / sample_size
        serial_qps = 1.0 / serial_mean

        # Bit-identity: every user's answer vs its distinct oracle.
        distinct: dict[Query, list[int]] = {}
        for index, query in enumerate(queries):
            distinct.setdefault(query, []).append(index)
        oracle = service.execute_serial(list(distinct))
        mismatches = 0
        for answer, indices in zip(oracle, distinct.values()):
            for index in indices:
                if results[index] != answer:
                    mismatches += 1
        if mismatches:
            raise ReproError(
                f"serving bit-identity violated: {mismatches} of "
                f"{len(queries)} batched answers differ from the serial "
                "oracle"
            )

        qps = len(queries) / wall
        speedup = qps / serial_qps
        payload = {
            "experiment": "serve",
            "host": {
                "cpu_count": os.cpu_count(),
                "platform": platform.platform(),
                "python": platform.python_version(),
            },
            "references": int(len(service.references)),
            "users": len(queries),
            "distinct_queries": len(distinct),
            "hot_fraction": spec.hot_fraction,
            "hot_set": spec.hot_set,
            "mix": {
                "nn": spec.mix[0],
                "knn": spec.mix[1],
                "count": spec.mix[2],
            },
            "config": {
                "leaf_size": config.leaf_size,
                "query_leaf_size": config.query_leaf_size,
                "max_batch": config.max_batch,
                "max_hold_ms": config.max_hold_s * 1000.0,
                "flush_candidates": config.flush_candidates,
                "workers": config.workers,
            },
            "backends": {
                kind: dict(entry)
                for kind, entry in service.analysis.items()
            },
            "latency_ms": {
                "p50": float(np.percentile(latencies, 50) * 1000),
                "p99": float(np.percentile(latencies, 99) * 1000),
                "mean": float(latencies.mean() * 1000),
                "max": float(latencies.max() * 1000),
            },
            "qps": qps,
            "wall_seconds": wall,
            "serial": {
                "sampled": sample_size,
                "mean_ms": serial_mean * 1000.0,
                "qps": serial_qps,
            },
            "speedup": speedup,
            "bit_identical": True,
            "batcher": batcher.batcher_stats(),
            "verdict_cache": service.verdict_cache.stats(),
        }
        report = _report(payload)
        return report, payload
    finally:
        if own_service:
            service.close()


def _report(payload: dict) -> ExperimentReport:
    report = ExperimentReport(
        title=(
            f"Serving: {payload['users']:,} users over "
            f"{payload['references']:,} reference points"
        ),
        columns=["metric", "value"],
    )
    latency = payload["latency_ms"]
    report.add_row("queries/sec (batched service)", round(payload["qps"], 1))
    report.add_row("p50 latency (ms)", round(latency["p50"], 3))
    report.add_row("p99 latency (ms)", round(latency["p99"], 3))
    report.add_row("mean latency (ms)", round(latency["mean"], 3))
    report.add_row(
        "serial baseline (ms/query)",
        round(payload["serial"]["mean_ms"], 3),
    )
    report.add_row("serial queries/sec", round(payload["serial"]["qps"], 1))
    report.add_row("throughput speedup", round(payload["speedup"], 2))
    report.add_row(
        "mean admitted batch",
        payload["batcher"]["mean_tick_size"],
    )
    report.add_row(
        "bit-identical vs oracle",
        "yes" if payload["bit_identical"] else "NO",
    )
    cache = payload["verdict_cache"]
    lookups = cache["hits"] + cache["misses"]
    if lookups:
        report.add_row(
            "verdict-cache hit rate",
            f"{100.0 * cache['hits'] / lookups:.1f}%",
        )
    backends = ", ".join(
        f"{kind}={entry['backend']}"
        for kind, entry in payload["backends"].items()
    )
    report.add_note(f"pinned backends: {backends}")
    report.add_note(
        f"serial baseline sampled on {payload['serial']['sampled']} "
        "queries (per-query cost is workload-length independent)"
    )
    return report


def write_serve_json(
    payload: dict, path: str = DEFAULT_JSON_PATH
) -> str:
    """Write the serving payload as indented JSON; returns the path."""
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    return path

"""Unit tests for the multi-level cache hierarchy."""

import pytest

from repro.errors import MemorySimError
from repro.memory import CacheHierarchy, LevelSpec, scaled_hierarchy, tiny_hierarchy
from repro.memory.hierarchy import xeon_like_hierarchy


class TestAccessRouting:
    def test_first_access_reaches_memory(self):
        machine = tiny_hierarchy()
        assert machine.access(1) == machine.memory_level
        assert machine.memory_accesses == 1

    def test_second_access_hits_l1(self):
        machine = tiny_hierarchy()
        machine.access(1)
        assert machine.access(1) == 0

    def test_l1_eviction_falls_to_l2(self):
        machine = tiny_hierarchy()  # L1 = 4 lines (2-way)
        # Lines mapping to the same L1 set: stride = num_sets = 2.
        lines = [0, 2, 4, 6]
        for line in lines:
            machine.access(line)
        # 0 evicted from its L1 set (2-way) but resident in L2.
        assert machine.access(0) == 1

    def test_access_all(self):
        machine = tiny_hierarchy()
        machine.access_all([1, 2, 3])
        assert machine.levels[0].stats.accesses == 3


class TestStats:
    def test_local_miss_rates(self):
        machine = tiny_hierarchy()
        machine.access(1)  # miss everywhere
        machine.access(1)  # L1 hit
        stats = machine.stats_by_name()
        assert stats["L1"].accesses == 2
        assert stats["L1"].misses == 1
        assert stats["L2"].accesses == 1  # only the L1 miss
        assert stats["L2"].miss_rate == 1.0

    def test_stats_ordering(self):
        machine = tiny_hierarchy()
        assert [level.name for level in machine.levels] == ["L1", "L2", "L3"]
        assert len(machine.stats()) == 3

    def test_reset(self):
        machine = tiny_hierarchy()
        machine.access(1)
        machine.reset_stats()
        assert machine.memory_accesses == 0
        assert machine.stats_by_name()["L1"].accesses == 0

    def test_flush_forces_misses(self):
        machine = tiny_hierarchy()
        machine.access(1)
        machine.flush()
        assert machine.access(1) == machine.memory_level


class TestConfigurations:
    def test_scaled_hierarchy_shape(self):
        machine = scaled_hierarchy()
        assert [level.capacity_lines for level in machine.levels] == [32, 256, 4096]

    def test_xeon_hierarchy_shape(self):
        machine = xeon_like_hierarchy()
        assert [level.capacity_lines for level in machine.levels] == [
            512,
            4096,
            327_680,
        ]

    def test_level_spec_validates_geometry(self):
        with pytest.raises(MemorySimError):
            LevelSpec("bad", capacity_lines=10, ways=4).build()

    def test_empty_hierarchy_rejected(self):
        with pytest.raises(MemorySimError):
            CacheHierarchy([])

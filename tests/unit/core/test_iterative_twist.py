"""Unit tests for the explicit-stack twisted executor."""

import pytest

from repro.core import (
    AccessTraceRecorder,
    NestedRecursionSpec,
    OpCounter,
    WorkRecorder,
    combine,
    run_twisted,
    run_twisted_iterative,
)
from repro.spaces import list_tree, paper_inner_tree, paper_outer_tree, random_tree


def parity_check(spec, **kwargs):
    """Assert byte-for-byte event parity with the recursive executor."""
    recursive = (WorkRecorder(), AccessTraceRecorder(), OpCounter())
    run_twisted(
        spec,
        instrument=combine(*recursive),
        subtree_truncation=False,
        **kwargs,
    )
    iterative = (WorkRecorder(), AccessTraceRecorder(), OpCounter())
    run_twisted_iterative(spec, instrument=combine(*iterative), **kwargs)
    assert iterative[0].points == recursive[0].points
    assert iterative[1].trace == recursive[1].trace
    assert iterative[2].counts == recursive[2].counts


class TestParity:
    def test_paper_trees(self):
        parity_check(NestedRecursionSpec(paper_outer_tree(), paper_inner_tree()))

    @pytest.mark.parametrize("seed", range(6))
    def test_random_trees(self, seed):
        spec = NestedRecursionSpec(
            random_tree(25, seed=seed), random_tree(19, seed=seed + 50)
        )
        parity_check(spec)

    @pytest.mark.parametrize("cutoff", [0, 3, 100])
    def test_cutoffs(self, cutoff):
        spec = NestedRecursionSpec(random_tree(20, seed=1), random_tree(20, seed=2))
        parity_check(spec, cutoff=cutoff)

    def test_irregular_flags(self):
        spec = NestedRecursionSpec(
            paper_outer_tree(),
            paper_inner_tree(),
            truncate_inner2=lambda o, i: o.label in "BE" and i.label in (2, 5),
        )
        parity_check(spec)

    def test_irregular_counters(self):
        spec = NestedRecursionSpec(
            random_tree(22, seed=3),
            random_tree(22, seed=4),
            truncate_inner2=lambda o, i: (o.label * i.label) % 5 == 1,
        )
        parity_check(spec, use_counters=True)


class TestDeepSpaces:
    def test_deep_list_trees_without_recursion(self):
        # Depth far beyond anything the recursive executor could take
        # without dangerous recursion limits.
        spec = NestedRecursionSpec(list_tree(20_000), list_tree(3))
        ops = OpCounter()
        run_twisted_iterative(spec, instrument=ops)
        assert ops.work_points == 60_000

    def test_results_correct_on_deep_trees(self):
        from repro.kernels import TreeJoin

        tj = TreeJoin(2000, 5)
        # Rebuild the outer tree as a degenerate list for depth.
        run_twisted_iterative(tj.make_spec())
        assert tj.result == tj.expected_total()

"""Unit tests for the explicit-stack executors."""

import pytest

from repro.core import (
    AccessTraceRecorder,
    NestedRecursionSpec,
    OpCounter,
    WorkRecorder,
    combine,
    iter_original_points,
    run_interchanged,
    run_interchanged_iterative,
    run_original,
    run_original_iterative,
)
from repro.errors import ScheduleError
from repro.spaces import balanced_tree, list_tree, paper_inner_tree, paper_outer_tree


def paper_spec(**kwargs):
    return NestedRecursionSpec(paper_outer_tree(), paper_inner_tree(), **kwargs)


class TestOriginalIterative:
    def test_identical_event_stream(self):
        spec = paper_spec(truncate_inner2=lambda o, i: o.label == "B" and i.label == 2)
        recursive = (WorkRecorder(), AccessTraceRecorder(), OpCounter())
        iterative = (WorkRecorder(), AccessTraceRecorder(), OpCounter())
        run_original(spec, instrument=combine(*recursive))
        run_original_iterative(spec, instrument=combine(*iterative))
        assert recursive[0].points == iterative[0].points
        assert recursive[1].trace == iterative[1].trace
        assert recursive[2].counts == iterative[2].counts

    def test_handles_extreme_depth(self):
        # 50k-deep outer tree: impossible recursively even with a
        # raised limit in reasonable memory.
        spec = NestedRecursionSpec(list_tree(50_000), list_tree(1))
        ops = OpCounter()
        run_original_iterative(spec, instrument=ops)
        assert ops.work_points == 50_000

    def test_work_called(self):
        total = []
        spec = NestedRecursionSpec(
            balanced_tree(3), balanced_tree(3), work=lambda o, i: total.append(1)
        )
        run_original_iterative(spec)
        assert len(total) == 9


class TestIterPoints:
    def test_yields_node_pairs(self):
        spec = paper_spec()
        points = [(o.label, i.label) for o, i in iter_original_points(spec)]
        recorder = WorkRecorder()
        run_original(spec, instrument=recorder)
        assert points == recorder.points

    def test_respects_irregular_truncation(self):
        spec = paper_spec(truncate_inner2=lambda o, i: o.label == "B" and i.label == 2)
        points = [(o.label, i.label) for o, i in iter_original_points(spec)]
        assert len(points) == 46


class TestInterchangedIterative:
    def test_matches_recursive_interchange(self):
        spec = paper_spec()
        recursive, iterative = WorkRecorder(), WorkRecorder()
        run_interchanged(spec, instrument=recursive)
        run_interchanged_iterative(spec, instrument=iterative)
        assert recursive.points == iterative.points

    def test_rejects_irregular(self):
        spec = paper_spec(truncate_inner2=lambda o, i: False)
        with pytest.raises(ScheduleError, match="regular truncation only"):
            run_interchanged_iterative(spec)

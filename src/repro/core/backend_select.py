"""Automatic backend selection (``backend="auto"``).

Three executor families now realize every schedule — recursive
(faithful, lowest constant overhead), batched
(:mod:`repro.core.batched`), and SoA (:mod:`repro.core.soa_exec`) —
and no single one wins everywhere: the batched engine's barrier
flushes *regress* the pruning-heavy guided traversals (NN/KNN/VP)
while winning big on work-dense schedules, and the SoA engine's
packed-view setup is wasted on tiny spaces.  ``backend="auto"`` runs
the cheap calibration probe below once per (spec, schedule) and picks
a backend from structural features, so callers get near-best wall
clock without sweeping.

The probe is deliberately *read-only*: it never calls ``work`` and
never calls a truncation predicate unless the spec itself declares
pre-evaluation legal by providing ``truncate_inner2_batch`` (a
stateful ``Score`` — KDE's writes its density at prune time — must not
be probed).  Everything else comes from stored sizes, sampled arity,
and which vectorized hooks the spec carries.

The decision table is calibrated against ``BENCH_soa.json`` (see
EXPERIMENTS.md): measured per-benchmark timings at scale 1.0, both
schedules, are what the thresholds below encode.
"""

from __future__ import annotations

import os
import warnings
import weakref
from collections import OrderedDict
from dataclasses import dataclass, field, replace
from itertools import islice
from typing import Optional

from repro.core.spec import NestedRecursionSpec
from repro.errors import ScheduleError

#: Backends ``choose_backend`` may return.
SINGLE_BACKENDS = ("recursive", "batched", "soa")

#: Every backend name :func:`resolve_backend` accepts besides ``auto``.
KNOWN_BACKENDS = SINGLE_BACKENDS + ("compiled", "parallel")

#: Minimum (outer x inner) iteration-space points before the real
#: multi-worker runtime can amortize pool startup and shared-memory
#: publication.  Calibrated against BENCH_parallel.json: below roughly
#: a million points the serial SoA backend wins on setup alone.
PARALLEL_SPACE_POINTS = 1_000_000

#: Below this many (outer x inner) iteration-space points, per-run
#: setup (dispatcher objects, packed-view construction on first touch)
#: outweighs any dispatch savings and the recursive executors win.
SMALL_SPACE_POINTS = 4096

#: Outer nodes sampled when estimating arity / truncation density.
PROBE_SAMPLES = 32


@dataclass(frozen=True)
class BackendChoice:
    """The selector's verdict plus the evidence it used.

    ``order`` is the recommended SoA storage linearization — only
    meaningful when ``backend`` is ``"soa"``, ``"compiled"`` (whose
    fused loop gathers through the same packed views), or
    ``"parallel"`` (whose tasks run SoA kernels); callers that did not
    pin an order themselves should adopt it.

    ``evidence`` is the deduplicated list of analyzer diagnostic codes
    the selection rested on: the TW30x locality-profitability prior on
    every automatic pick, plus the full TW10x conformance code list on
    a refusal/downgrade and the TW20x codes behind a compiled-gate
    decision.  Order is first-cited-first; it is evidence *provenance*,
    never a second verdict channel.
    """

    backend: str
    reason: str
    features: dict = field(default_factory=dict)
    order: str = "preorder"
    evidence: tuple = ()


def probe_features(spec: NestedRecursionSpec) -> dict:
    """Cheap structural calibration probe for one spec.

    Collects tree sizes, sampled mean arity, which vectorized hooks
    exist, and — only when the spec carries the (stateless, legally
    pre-evaluable) ``truncate_inner2_batch`` — a sampled truncation
    density over outer leaves.  Runs in O(sample) time and touches no
    benchmark state.
    """
    outer_root = spec.outer_root
    inner_root = spec.inner_root
    outer_size = max(1, outer_root.size)
    inner_size = max(1, inner_root.size)
    sample = list(islice(outer_root.iter_preorder(), PROBE_SAMPLES))
    arity = sum(len(node.children) for node in sample) / len(sample)
    features = {
        "outer_size": outer_size,
        "inner_size": inner_size,
        "points": outer_size * inner_size,
        "mean_arity": round(arity, 3),
        "is_irregular": spec.is_irregular,
        "observes_work": bool(spec.truncation_observes_work),
        "has_work": spec.work is not None,
        "has_work_batch": spec.work_batch is not None,
        "has_work_batch_soa": spec.work_batch_soa is not None,
        "has_block_truncation": spec.truncate_inner2_batch is not None,
        "truncation_density": None,
    }
    if spec.truncate_inner2_batch is not None:
        features["truncation_density"] = _sample_truncation_density(spec)
    return features


def _sample_truncation_density(spec: NestedRecursionSpec) -> Optional[float]:
    """Fraction of inner nodes pruned, over a sample of outer leaves.

    Uses the spec's own block form of ``truncateInner2?`` — whose
    presence is the spec's declaration that pre-evaluation has no side
    effects — on up to :data:`PROBE_SAMPLES` outer *leaves* (internal
    nodes of dual-tree specs trivially prune everything and would skew
    the estimate).
    """
    block_t2 = spec.truncate_inner2_batch
    inner_size = max(1, spec.inner_root.size)
    sampled = 0
    pruned = 0.0
    for node in spec.outer_root.iter_preorder():
        if node.children:
            continue
        decisions = block_t2(node)
        if decisions is None:
            continue
        if decisions is True or decisions is False:
            pruned += inner_size if decisions else 0
        else:
            pruned += float(sum(decisions))
        sampled += 1
        if sampled >= PROBE_SAMPLES:
            break
    if sampled == 0:
        return None
    return pruned / (sampled * inner_size)


#: Most recent analyzer failure (``None`` after a clean call).  Written
#: by :func:`conformance_verdicts`, consumed by :func:`_refuse_unproven`
#: so the failure lands in ``BackendChoice.features`` without changing
#: the public return contract.
_LAST_CONFORMANCE_ERROR: Optional[str] = None

#: One-shot guard: the analyzer-failure warning is emitted once per
#: process, not once per selection.
_CONFORMANCE_WARNED = False


def _reset_conformance_warning() -> None:
    """Re-arm the one-shot analyzer-failure warning (test hook)."""
    global _CONFORMANCE_WARNED, _LAST_CONFORMANCE_ERROR
    _CONFORMANCE_WARNED = False
    _LAST_CONFORMANCE_ERROR = None


def conformance_verdicts(spec: NestedRecursionSpec) -> Optional[dict]:
    """Per-backend conformance verdicts from the static analyzer.

    Returns ``{"recursive"|"batched"|"soa": "safe"|"needs-dynamic-check"
    |"unsafe"}`` via :func:`repro.transform.lint.backend.lint_spec`
    (memoized on the kernels' code objects, so this is cheap after the
    first call per spec family), or ``None`` when the analyzer itself
    fails — selection then proceeds on structural evidence alone, and
    the failure is *recorded*: a one-shot :class:`RuntimeWarning` plus
    a ``"conformance_error"`` entry in the returned
    :class:`BackendChoice`'s features (silent-``None`` analyzer crashes
    used to make evidence-free selection invisible).
    """
    global _LAST_CONFORMANCE_ERROR, _CONFORMANCE_WARNED
    _LAST_CONFORMANCE_ERROR = None
    try:
        from repro.transform.lint.backend import lint_spec

        return dict(lint_spec(spec).backends)
    except Exception as exc:  # analyzer must never block runs
        _LAST_CONFORMANCE_ERROR = f"{type(exc).__name__}: {exc}"
        if not _CONFORMANCE_WARNED:
            _CONFORMANCE_WARNED = True
            warnings.warn(
                "backend-conformance analyzer failed "
                f"({_LAST_CONFORMANCE_ERROR}); backend selection "
                "proceeds on structural evidence alone",
                RuntimeWarning,
                stacklevel=2,
            )
        return None


def _with_evidence(choice: BackendChoice, codes) -> BackendChoice:
    """Fold diagnostic codes into the choice's evidence, deduplicated.

    Keeps first-cited order (the existing evidence wins position over
    the new codes) so a downgrade's conformance codes do not shuffle
    the locality prior recorded before it.
    """
    merged = tuple(dict.fromkeys(tuple(choice.evidence) + tuple(codes)))
    if merged == tuple(choice.evidence):
        return choice
    return replace(choice, evidence=merged)


def _conformance_codes(spec: NestedRecursionSpec) -> tuple:
    """Every TW1xx code the conformance analyzer raised for this spec.

    A separate entry point from :func:`conformance_verdicts` (which
    returns only the per-backend verdicts and is the documented test
    seam): the downgrade path needs the *complete* diagnostic code
    list as evidence, not just the verdict that triggered it.  Any
    analyzer failure degrades to an empty tuple — evidence is
    best-effort provenance, never a gate.
    """
    try:
        from repro.transform.lint.backend import lint_spec

        return tuple(sorted(lint_spec(spec).codes()))
    except Exception:
        return ()


def _refuse_unproven(
    choice: BackendChoice, spec: NestedRecursionSpec
) -> BackendChoice:
    """Never return a backend whose conformance verdict is ``unsafe``.

    A ``needs-dynamic-check`` verdict stays selectable (the holes are
    warnings, dischargeable via ``backend="sanitize"``); an ``unsafe``
    verdict means a kernel *refutes* scalar equivalence, so the
    selector swaps to the other vectorized backend when that one is
    proven safe, else to the reference executors.  Either downgrade
    records the analyzer's *full* diagnostic code list as evidence —
    citing only the triggering verdict used to hide the sibling
    findings a caller would need to discharge the refusal.
    """
    verdicts = conformance_verdicts(spec)
    if verdicts is None:
        if _LAST_CONFORMANCE_ERROR is not None:
            choice.features["conformance_error"] = _LAST_CONFORMANCE_ERROR
        return choice
    # The compiled backend executes the same work_batch_soa kernel the
    # SoA engine dispatches, so it stands or falls with the soa verdict.
    verdict_key = "soa" if choice.backend == "compiled" else choice.backend
    if verdicts.get(verdict_key) != "unsafe":
        return choice
    evidence = _conformance_codes(spec)
    alternate = "soa" if verdict_key == "batched" else "batched"
    if verdicts.get(alternate) == "safe":
        # The order recommendation is evidence about the *spec* (its
        # work_batch_soa gathers favour veb blocking), not about the
        # refused backend, so the downgrade carries it instead of
        # silently resetting to preorder.
        return _with_evidence(
            BackendChoice(
                alternate,
                f"conformance: {choice.backend!r} verdict is unsafe; "
                f"{alternate!r} is proven safe (structural pick was: "
                f"{choice.reason})",
                choice.features,
                order=choice.order,
                evidence=choice.evidence,
            ),
            evidence,
        )
    return _with_evidence(
        BackendChoice(
            "recursive",
            f"conformance: {choice.backend!r} verdict is unsafe; falling "
            f"back to the reference executors (structural pick was: "
            f"{choice.reason})",
            choice.features,
            order=choice.order,
            evidence=choice.evidence,
        ),
        evidence,
    )


def _compiled_eligible(spec: NestedRecursionSpec) -> tuple[bool, str, tuple]:
    """May the fused/compiled backend run this spec?

    Proof-carrying gate: only a clean TW20x ``lowerable`` verdict from
    :func:`repro.transform.lint.lower.lint_lower` qualifies — holes
    (``needs-runtime-check``) or refutations keep the spec on the
    interpreted backends.  An analyzer crash counts as "not proven".
    Returns ``(eligible, reason, codes)`` where ``codes`` is the
    report's full diagnostic code list, cited as selection evidence.
    """
    try:
        from repro.transform.lint.lower import LowerVerdict, lint_lower

        report = lint_lower(spec)
    except Exception as exc:  # the proof gate must never block runs
        return False, f"lint-lower failed ({type(exc).__name__}: {exc})", ()
    codes = tuple(sorted(report.codes()))
    if report.lower is LowerVerdict.LOWERABLE:
        return True, report.lower_reason, codes
    return False, f"{report.lower}: {report.lower_reason}", codes


def _locality_prior(spec: NestedRecursionSpec, features: dict) -> tuple:
    """The TW30x locality cost prior, as evidence codes plus features.

    Runs :func:`repro.transform.lint.locality.lint_locality` under the
    deterministic paper cache model (memoized per spec family and live
    trees, so the steady state costs one dict lookup), records the
    per-transformation verdicts in ``features["locality"]``, and
    returns the report's diagnostic codes for
    :attr:`BackendChoice.evidence`.  The prior never changes *which*
    backend is safe — it is the profitability context the decision
    table's order/layout recommendations cite.  An analyzer failure
    degrades to no prior, recorded in ``features["locality_error"]``.
    """
    try:
        from repro.transform.lint.locality import lint_locality

        report = lint_locality(spec)
    except Exception as exc:  # the prior must never block selection
        features["locality_error"] = f"{type(exc).__name__}: {exc}"
        return ()
    features["locality"] = {
        transform: str(verdict)
        for transform, verdict in sorted(report.verdicts.items())
    }
    return tuple(sorted(report.codes()))


# ---------------------------------------------------------------------------
# Probe-once choice cache (keyed by finalized-tree identity)

#: key -> (outer ref, inner ref, outer size, inner size, choice).  The
#: key pairs the live roots' ids with the kernels' code-object key, so
#: a fresh spec instance over the *same finalized trees* (a resident
#: service re-specs per batch) hits without re-probing; the weakrefs
#: and stored sizes invalidate the entry if a root dies (ids can be
#: reused) or is re-finalized to a different shape.
_CHOICE_CACHE: "OrderedDict[tuple, tuple]" = OrderedDict()
_CHOICE_CACHE_CAP = 64


def _choice_cache_key(
    spec: NestedRecursionSpec, schedule_name: str, allow_unproven: bool
) -> Optional[tuple]:
    try:
        from repro.transform.lint.backend import _spec_cache_key

        kernel_key = _spec_cache_key(spec)
    except Exception:  # un-keyable spec: selection just runs uncached
        return None
    return (
        id(spec.outer_root),
        id(spec.inner_root),
        kernel_key,
        schedule_name,
        bool(allow_unproven),
        spec.parallel_plan is not None,
    )


def _choice_cache_get(
    key: tuple, spec: NestedRecursionSpec
) -> Optional[BackendChoice]:
    entry = _CHOICE_CACHE.get(key)
    if entry is None:
        return None
    ref_outer, ref_inner, outer_size, inner_size, choice = entry
    if (
        ref_outer() is spec.outer_root
        and ref_inner() is spec.inner_root
        and spec.outer_root.size == outer_size
        and spec.inner_root.size == inner_size
    ):
        _CHOICE_CACHE.move_to_end(key)
        return choice
    del _CHOICE_CACHE[key]
    return None


def _choice_cache_put(
    key: tuple, spec: NestedRecursionSpec, choice: BackendChoice
) -> None:
    try:
        entry = (
            weakref.ref(spec.outer_root),
            weakref.ref(spec.inner_root),
            spec.outer_root.size,
            spec.inner_root.size,
            choice,
        )
    except TypeError:  # un-weakrefable custom nodes: skip caching
        return
    _CHOICE_CACHE[key] = entry
    while len(_CHOICE_CACHE) > _CHOICE_CACHE_CAP:
        _CHOICE_CACHE.popitem(last=False)


def clear_choice_cache() -> None:
    """Drop every cached backend choice (test/service hook)."""
    _CHOICE_CACHE.clear()


def choose_backend(
    spec: NestedRecursionSpec,
    schedule_name: str = "original",
    features: Optional[dict] = None,
    allow_unproven: bool = False,
) -> BackendChoice:
    """Pick recursive/batched/soa/compiled for one spec, probe-once.

    The structural decision is memoized per (finalized tree pair,
    kernel family, schedule): repeated selections against a resident
    reference tree — the serving steady state — return the pinned
    :class:`BackendChoice` with **zero** probe work (no tree sampling,
    no truncation-density pass, no analyzer round-trip).  Callers that
    pass explicit ``features`` bypass the cache, and a root that dies
    or is re-finalized to a different size invalidates its entries.
    Cached hits share the same ``BackendChoice`` (and features dict).

    ``schedule_name`` is recorded as evidence in ``features`` (and is
    part of the memo key) but never changes the verdict: the decision
    table's calibration found schedule-independent winners.
    """
    if features is None:
        cache_key = _choice_cache_key(spec, schedule_name, allow_unproven)
        if cache_key is not None:
            cached = _choice_cache_get(cache_key, spec)
            if cached is not None:
                return cached
    else:
        cache_key = None
    choice = _choose_backend_uncached(
        spec, schedule_name, features, allow_unproven
    )
    if cache_key is not None:
        _choice_cache_put(cache_key, spec, choice)
    return choice


def _choose_backend_uncached(
    spec: NestedRecursionSpec,
    schedule_name: str = "original",
    features: Optional[dict] = None,
    allow_unproven: bool = False,
) -> BackendChoice:
    """Pick recursive/batched/soa/compiled for one spec.

    ``schedule_name`` is *recorded* as evidence (``features["schedule"]``)
    but does not change the decision: the BENCH_soa.json calibration
    found the same winner per spec on every schedule (the twist rows
    shift the timings, never the ranking), so the table below is
    deliberately schedule-independent.  A test pins this contract
    (``choose_backend(spec, "original") == choose_backend(spec,
    "twist")`` up to the recorded schedule).

    The structural decision is filtered through the backend-conformance
    analyzer: a backend whose verdict is ``unsafe`` is never returned
    (see :func:`_refuse_unproven`).  ``allow_unproven=True`` skips that
    filter — the explicit override for callers who have discharged the
    verdict themselves.

    The rules, in order (first match wins), with the BENCH_soa.json /
    BENCH_parallel.json evidence behind each:

    1. **Tiny spaces -> recursive.**  Below ~4K iteration-space points
       every deferred-dispatch engine loses to plain recursion on
       setup cost alone.
    2. **Huge spaces with a proven-parallel plan -> parallel.**  When
       the spec carries a :class:`~repro.core.parallel_exec.ParallelPlan`,
       the host has multiple cores, the space exceeds
       :data:`PARALLEL_SPACE_POINTS`, and the plan's witness proves
       outer-independence (:func:`~repro.core.parallel_exec.check_outer_independence`
       — the dynamic counterpart of the analyzer's TW030), the real
       multi-worker runtime wins.  Parallelism is *refused* — never
       silently selected — when independence is unproven.
    3. **Stateful truncation -> soa.**  When ``truncateInner2?``
       observes ``work`` (NN/KNN/VP bounds, KDE), the batched engine's
       per-outer barriers shred its blocks (NN regressed to 0.35x);
       the SoA engine executes work inline over packed index space and
       keeps the explicit-stack savings.
    4. **Certified SoA work -> compiled, in veb order.**  A regular
       spec whose ``work_batch_soa`` kernel carries a clean TW20x
       ``lowerable`` verdict (TJ, MM, Gram) runs the fused backend:
       the traversal's position sequence is enumerated once, cached,
       and the kernel dispatched over the whole run — no per-block
       Python on the hot path at all.  The gate is proof-carrying:
       anything short of ``lowerable`` falls through to rule 5.
    5. **SoA-native work -> soa, in veb order.**  A spec carrying
       ``work_batch_soa`` dispatches integer position blocks —
       strictly less per-pair Python than the node-object dispatcher on
       every schedule.  For these regular specs the van-Emde-Boas
       blocked layout beats the default (BENCH_soa.json, TJ original:
       0.067s veb vs 0.079s preorder), so the choice recommends
       ``order="veb"``.
    6. **Everything else -> batched.**  Stateless irregular specs (PC)
       and plain ``work_batch`` specs ride the mature node-block
       engine; the SoA engine matches it within noise here, so the
       tie breaks toward the longer-serving backend.
    """
    if features is None:
        features = probe_features(spec)
    features["schedule"] = schedule_name
    prior = _locality_prior(spec, features)
    locality = features.get("locality", {})
    if features["points"] < SMALL_SPACE_POINTS:
        return _with_evidence(
            BackendChoice(
                "recursive",
                f"iteration space has only {features['points']} points "
                f"(< {SMALL_SPACE_POINTS}); dispatch setup would dominate",
                features,
            ),
            prior,
        )
    parallel = _consider_parallel(spec, features)
    if parallel is not None:
        return _with_evidence(parallel, prior)
    # The locality prior annotates the order recommendation: "veb" is
    # cited as profitable blocking (TW302) when the working set spans
    # cache levels, or kept as a no-cost default when it already fits
    # L1 (TW301) — the decision table stays the safety envelope either
    # way.
    veb_verdict = locality.get("layout:veb", "unknown")
    veb_note = f"; locality verdict for layout:veb is {veb_verdict} (TW30x)"
    if features["is_irregular"] and features["observes_work"]:
        choice = BackendChoice(
            "soa",
            "truncation observes work: barriers would shred deferred "
            "blocks, so run inline work over packed index space",
            features,
        )
    elif features["has_work_batch_soa"] and not features["is_irregular"]:
        lowerable, why, lower_codes = _compiled_eligible(spec)
        features["lowerable"] = lowerable
        prior = tuple(prior) + lower_codes
        if lowerable:
            choice = BackendChoice(
                "compiled",
                "TW20x verdict is lowerable: fuse the traversal with "
                f"the certified work_batch_soa kernel ({why}); veb "
                f"storage order recommended{veb_note}",
                features,
                order="veb",
            )
        else:
            choice = BackendChoice(
                "soa",
                "spec provides work_batch_soa: position-block dispatch "
                "over packed payload columns; veb storage order "
                "recommended (BENCH_soa: TJ original 0.067s veb vs "
                f"0.079s preorder); compiled refused ({why}){veb_note}",
                features,
                order="veb",
            )
    elif features["has_work_batch_soa"]:
        choice = BackendChoice(
            "soa",
            "spec provides work_batch_soa: position-block dispatch over "
            "packed payload columns; veb storage order recommended "
            f"(BENCH_soa: TJ original 0.067s veb vs 0.079s preorder)"
            f"{veb_note}",
            features,
            order="veb",
        )
    else:
        choice = BackendChoice(
            "batched",
            "stateless spec without SoA-native work: node-block dispatch "
            "through work_batch",
            features,
        )
    choice = _with_evidence(choice, prior)
    if allow_unproven:
        return choice
    return _refuse_unproven(choice, spec)


def _consider_parallel(
    spec: NestedRecursionSpec, features: dict
) -> Optional[BackendChoice]:
    """The real multi-worker runtime, when it is provably worth it.

    Requires all of: a parallel plan on the spec, at least two host
    cores, an iteration space past :data:`PARALLEL_SPACE_POINTS`, and
    a *proven* outer-independence witness — static first: when the
    TW21x affine-footprint pass certifies the spec ``independent``,
    the proof costs zero warm-up runs; otherwise the dynamic TW030
    probe decides.  An unproven witness means refusal, not a silent
    fallback with a hidden reason — the reason string records why
    parallelism was skipped either way.
    """
    if spec.parallel_plan is None:
        return None
    cores = os.cpu_count() or 1
    if cores < 2 or features["points"] < PARALLEL_SPACE_POINTS:
        return None
    from repro.core.parallel_exec import check_outer_independence

    proven, why = check_outer_independence(spec.parallel_plan, spec)
    if not proven:
        return None
    order = "veb" if features["has_work_batch_soa"] and not features["is_irregular"] else "preorder"
    return BackendChoice(
        "parallel",
        f"{features['points']} iteration-space points across {cores} "
        f"cores with a proven-parallel plan ({why})",
        features,
        order=order,
    )


def resolve_backend_choice(
    spec: NestedRecursionSpec, schedule_name: str, backend: str
) -> BackendChoice:
    """Map a user-facing backend name to a full :class:`BackendChoice`.

    ``"auto"`` returns the selector's verdict *whole* — backend, reason,
    features, and the ``order`` recommendation.  (The old string-only
    path threw ``order`` away, so auto-picked SoA ran in default
    ``preorder`` even when the selector's evidence said ``veb``;
    callers that did not pin an order themselves should adopt
    ``choice.order``.)  Explicit backend names resolve to a choice with
    the neutral ``preorder`` recommendation: a caller who named the
    backend keeps full control of the order knob.
    """
    if backend == "auto":
        return choose_backend(spec, schedule_name)
    if backend in KNOWN_BACKENDS:
        return BackendChoice(
            backend, "explicitly requested", {"schedule": schedule_name}
        )
    raise ScheduleError(
        f"unknown backend {backend!r}; known: "
        f"{list(KNOWN_BACKENDS) + ['auto']}"
    )


def resolve_backend(
    spec: NestedRecursionSpec, schedule_name: str, backend: str
) -> str:
    """Map a user-facing backend name to a concrete executor family.

    Kept as the string-returning convenience wrapper around
    :func:`resolve_backend_choice`; callers that run the resolved
    backend should use the full choice so the selector's ``order``
    recommendation survives the trip.
    """
    return resolve_backend_choice(spec, schedule_name, backend).backend

"""Memory-hierarchy simulation substrate.

This subpackage is the reproduction's stand-in for the paper's
evaluation hardware (see DESIGN.md Section 2 for the substitution
argument):

* :mod:`repro.memory.reuse` — exact reuse-distance analysis (the
  metric of Sections 1.1/3.2 and Figure 5);
* :mod:`repro.memory.layout` — mapping abstract nodes and data blocks
  onto cache-line addresses;
* :mod:`repro.memory.cache` / :mod:`repro.memory.hierarchy` —
  set-associative LRU caches composed into L1/L2/L3 hierarchies;
* :mod:`repro.memory.costmodel` — cycles from instructions + misses;
* :mod:`repro.memory.counters` — perf-style reports and the derived
  metrics (speedup, instruction overhead, work overhead) the figures
  plot.
"""

from repro.memory.cache import (
    CacheStats,
    SetAssociativeCache,
    fully_associative,
)
from repro.memory.cachemodel import (
    PAPER_L1_BYTES,
    PAPER_L2_BYTES,
    PAPER_L3_BYTES,
    CacheModel,
    parse_cache_size,
)
from repro.memory.costmodel import (
    DEFAULT_COST_MODEL,
    DEFAULT_OP_WEIGHTS,
    CostModel,
    WorkCost,
    weighted_instructions,
)
from repro.memory.counters import (
    PerfReport,
    geomean_speedup,
    instruction_overhead,
    speedup,
    work_overhead,
)
from repro.memory.hierarchy import (
    CacheHierarchy,
    LevelSpec,
    scaled_hierarchy,
    tiny_hierarchy,
    xeon_like_hierarchy,
)
from repro.memory.layout import (
    AddressMap,
    layout_tree,
    node_lines,
    register_blocks,
)
from repro.memory.reuse import (
    FenwickTree,
    ReuseDistanceAnalyzer,
    distances_of_key,
    naive_reuse_distances,
)
from repro.memory.tracefile import Trace, from_tuples, load_trace, save_trace

__all__ = [
    "AddressMap",
    "CacheHierarchy",
    "CacheModel",
    "CacheStats",
    "CostModel",
    "DEFAULT_COST_MODEL",
    "DEFAULT_OP_WEIGHTS",
    "FenwickTree",
    "LevelSpec",
    "PAPER_L1_BYTES",
    "PAPER_L2_BYTES",
    "PAPER_L3_BYTES",
    "PerfReport",
    "ReuseDistanceAnalyzer",
    "SetAssociativeCache",
    "Trace",
    "WorkCost",
    "from_tuples",
    "load_trace",
    "save_trace",
    "distances_of_key",
    "fully_associative",
    "geomean_speedup",
    "instruction_overhead",
    "layout_tree",
    "naive_reuse_distances",
    "node_lines",
    "parse_cache_size",
    "register_blocks",
    "scaled_hierarchy",
    "speedup",
    "tiny_hierarchy",
    "weighted_instructions",
    "work_overhead",
    "xeon_like_hierarchy",
]

"""Command-line interface of the transformation tool.

Two subcommands (the bare legacy form ``python -m repro.transform
INPUT.py`` still works and means ``transform``)::

    python -m repro.transform transform INPUT.py [-o OUTPUT.py]
        [--outer NAME --inner NAME]      # or rely on annotations
        [--cutoff N]                     # Section 7.1 cutoff
        [--print-analysis]               # report template + truncation
        [--json]                         # machine-readable result
        [--no-lint]                      # skip the safety analyzer
        [--allow-unproven]               # generate despite lint errors
        [--assume-pure NAMES]            # comma-separated pure helpers

    python -m repro.transform lint INPUT.py
        [--outer NAME --inner NAME] [--json] [--assume-pure NAMES]

    python -m repro.transform lint-spec
        [--benchmark NAME]               # default: every built-in spec
        [--scale S] [--json]

    python -m repro.transform lint-lower
        [--benchmark NAME]               # default: every built-in spec
        [--scale S] [--json]

``lint-spec`` runs the backend-conformance analyzer
(:mod:`repro.transform.lint.backend`, ``TW1xx``) over the built-in
benchmark specs and reports one verdict per spec.  ``lint-lower`` runs
the lowerability and static-independence passes
(:mod:`repro.transform.lint.lower`, ``TW2xx``) over the same specs and
reports two verdicts per spec.

Exit codes are stable and distinct per failure class:

==  ============================================================
0   success (for ``lint``: statically safe; for ``lint-spec``:
    every spec proven batch-safe/soa-safe; for ``lint-lower``:
    every spec lowerable *and* statically independent)
1   template violation (the Figure 2 sanity check failed)
2   usage or I/O error — including an analyzer crash, which
    ``--json`` wraps as a schema-v2 ``analyzer-error`` object
    instead of a traceback
3   input source does not parse
4   lint verdict *unsafe* (refuted; ``transform`` refused codegen;
    for ``lint-lower``: *not-lowerable* or *dependent*)
5   lint verdict *needs-dynamic-check* (for ``lint-lower``:
    *needs-runtime-check* on either dimension)
==  ============================================================
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional

from repro.errors import LintError, TransformError
from repro.transform.lint import Verdict, lint_source
from repro.transform.tool import (
    TransformResult,
    transform_annotated_source,
    transform_source,
)

EXIT_OK = 0
EXIT_TEMPLATE_VIOLATION = 1
EXIT_USAGE = 2
EXIT_PARSE_ERROR = 3
EXIT_UNSAFE = 4
EXIT_NEEDS_DYNAMIC_CHECK = 5


def _split_names(text: Optional[str]) -> tuple[str, ...]:
    if not text:
        return ()
    return tuple(name.strip() for name in text.split(",") if name.strip())


def _add_common_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("input", help="Python source file")
    parser.add_argument("--outer", help="outer recursive function name")
    parser.add_argument("--inner", help="inner recursive function name")
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit a machine-readable JSON result on stdout",
    )
    parser.add_argument(
        "--assume-pure",
        metavar="NAMES",
        help="comma-separated helper names the analyzer may treat as "
        "read-only (adds to in-source '# lint: assume-pure:' pragmas)",
    )


def build_parser() -> argparse.ArgumentParser:
    """The ``transform`` subcommand's argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.transform",
        description="Synthesize interchanged and twisted versions of an "
        "annotated nested recursive pair (ASPLOS'17 recursion twisting).",
    )
    _add_common_arguments(parser)
    parser.add_argument(
        "-o",
        "--output",
        help="write the generated module here (default: stdout)",
    )
    parser.add_argument(
        "--cutoff",
        type=int,
        default=None,
        help="Section 7.1 cutoff: twist only while the inner tree has "
        "more than CUTOFF nodes (default: parameterless)",
    )
    parser.add_argument(
        "--print-analysis",
        action="store_true",
        help="print the recognized template and truncation analysis "
        "to stderr",
    )
    parser.add_argument(
        "--no-lint",
        action="store_true",
        help="skip the static schedule-safety analyzer entirely",
    )
    parser.add_argument(
        "--allow-unproven",
        action="store_true",
        help="generate code even when the analyzer refutes safety "
        "(findings are still reported on stderr)",
    )
    return parser


def build_lint_parser() -> argparse.ArgumentParser:
    """The ``lint`` subcommand's argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.transform lint",
        description="Statically analyze an annotated nested recursive "
        "pair for schedule safety (footprints, purity, task-parallel "
        "races) and report TW0xx diagnostics with a verdict.",
    )
    _add_common_arguments(parser)
    return parser


def build_lint_spec_parser() -> argparse.ArgumentParser:
    """The ``lint-spec`` subcommand's argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.transform lint-spec",
        description="Run the backend-conformance analyzer (TW1xx) over "
        "the built-in benchmark specs: prove the vectorized "
        "work_batch/work_batch_soa/truncate_inner2_batch kernels "
        "equivalent to their scalar counterparts, or say exactly what "
        "could not be proven.",
    )
    parser.add_argument(
        "--benchmark",
        help="restrict to one benchmark name (default: all built-ins)",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=0.05,
        help="workload scale used to build the specs (default: 0.05 — "
        "the analysis is static, so small is fine)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit one machine-readable JSON object on stdout",
    )
    return parser


def _analyzer_error_payload(error: BaseException) -> dict:
    """Schema-v2 JSON object standing in for a crashed analyzer run.

    ``--json`` consumers must always receive valid JSON: when the
    analyzer itself raises (a malformed spec, an analyzer bug), the
    traceback goes to stderr and stdout carries this wrapper instead.
    """
    return {
        "schema_version": 2,
        "kind": "analyzer-error",
        "error": {
            "type": type(error).__name__,
            "message": str(error),
        },
        "diagnostics": [],
        "counts": {"errors": 0, "warnings": 0, "suppressed": 0},
    }


def _emit_analyzer_error(error: BaseException, as_json: bool) -> int:
    import traceback

    traceback.print_exc(file=sys.stderr)
    if as_json:
        print(json.dumps(_analyzer_error_payload(error), indent=2, sort_keys=True))
    else:
        print(
            f"error: analyzer failed: {type(error).__name__}: {error}",
            file=sys.stderr,
        )
    return EXIT_USAGE


def _select_cases(benchmark: Optional[str], scale: float):
    """Built-in benchmark cases, optionally restricted to one name."""
    from repro.bench.workloads import wallclock_cases

    cases = wallclock_cases(scale)
    if benchmark:
        cases = [case for case in cases if case.name == benchmark]
        if not cases:
            print(f"error: unknown benchmark {benchmark!r}", file=sys.stderr)
            return None
    return cases


def _lint_spec_main(argv: list[str]) -> int:
    args = build_lint_spec_parser().parse_args(argv)
    from repro.transform.lint import SpecVerdict, lint_spec

    cases = _select_cases(args.benchmark, args.scale)
    if cases is None:
        return EXIT_USAGE

    try:
        reports = [lint_spec(case.make_spec()) for case in cases]
    except Exception as error:
        return _emit_analyzer_error(error, args.json)
    if args.json:
        from repro.transform.lint.backend import SCHEMA_VERSION

        payload = {
            "schema_version": SCHEMA_VERSION,
            "kind": "spec-conformance-suite",
            "specs": [report.to_json() for report in reports],
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        for report in reports:
            print(report.render())

    verdicts = {report.verdict for report in reports}
    if SpecVerdict.UNSAFE in verdicts:
        return EXIT_UNSAFE
    if SpecVerdict.NEEDS_DYNAMIC_CHECK in verdicts:
        return EXIT_NEEDS_DYNAMIC_CHECK
    return EXIT_OK


def build_lint_lower_parser() -> argparse.ArgumentParser:
    """The ``lint-lower`` subcommand's argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.transform lint-lower",
        description="Run the lowerability and static-independence "
        "passes (TW2xx) over the built-in benchmark specs: decide "
        "whether each spec's SoA kernel could run on a fused/compiled "
        "backend, and whether outer tasks are provably independent "
        "without a dynamic warm-up probe.",
    )
    parser.add_argument(
        "--benchmark",
        help="restrict to one benchmark name (default: all built-ins)",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=0.05,
        help="workload scale used to build the specs (default: 0.05 — "
        "the analysis reads code plus an O(n) payload scan, so small "
        "is fine)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit one machine-readable JSON object on stdout",
    )
    return parser


def _lint_lower_main(argv: list[str]) -> int:
    args = build_lint_lower_parser().parse_args(argv)
    from repro.transform.lint.lower import (
        SCHEMA_VERSION,
        IndependenceVerdict,
        LowerVerdict,
        lint_lower,
    )

    cases = _select_cases(args.benchmark, args.scale)
    if cases is None:
        return EXIT_USAGE

    try:
        reports = [lint_lower(case.make_spec()) for case in cases]
    except Exception as error:
        return _emit_analyzer_error(error, args.json)
    if args.json:
        payload = {
            "schema_version": SCHEMA_VERSION,
            "kind": "lowerability-suite",
            "specs": [report.to_json() for report in reports],
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        for report in reports:
            print(report.render())

    lower_verdicts = {report.lower for report in reports}
    independence_verdicts = {report.independence for report in reports}
    if (
        LowerVerdict.NOT_LOWERABLE in lower_verdicts
        or IndependenceVerdict.DEPENDENT in independence_verdicts
    ):
        return EXIT_UNSAFE
    if (
        LowerVerdict.NEEDS_RUNTIME_CHECK in lower_verdicts
        or IndependenceVerdict.NEEDS_RUNTIME_CHECK in independence_verdicts
    ):
        return EXIT_NEEDS_DYNAMIC_CHECK
    return EXIT_OK


def _read_input(path: str) -> Optional[str]:
    try:
        with open(path) as handle:
            return handle.read()
    except OSError as error:
        print(f"error: cannot read {path}: {error}", file=sys.stderr)
        return None


def _transform_error_exit(error: TransformError) -> int:
    print(f"error: {error}", file=sys.stderr)
    return EXIT_PARSE_ERROR if error.code == "TW001" else EXIT_TEMPLATE_VIOLATION


def _lint_main(argv: list[str]) -> int:
    args = build_lint_parser().parse_args(argv)
    if bool(args.outer) != bool(args.inner):
        print("error: --outer and --inner must be given together", file=sys.stderr)
        return EXIT_USAGE
    source = _read_input(args.input)
    if source is None:
        return EXIT_USAGE

    try:
        report = lint_source(
            source,
            args.outer or None,
            args.inner or None,
            assume_pure=_split_names(args.assume_pure),
            filename=args.input,
        )
    except Exception as error:
        return _emit_analyzer_error(error, args.json)
    if args.json:
        print(report.dumps())
    else:
        print(report.render())

    codes = report.codes()
    if "TW001" in codes:
        return EXIT_PARSE_ERROR
    if codes & {"TW002", "TW003"}:
        return EXIT_TEMPLATE_VIOLATION
    if report.verdict is Verdict.UNSAFE:
        return EXIT_UNSAFE
    if report.verdict is Verdict.NEEDS_DYNAMIC_CHECK:
        return EXIT_NEEDS_DYNAMIC_CHECK
    return EXIT_OK


def _transform_json(result: TransformResult) -> dict:
    template = result.template
    payload = {
        "outer": template.outer_name,
        "inner": template.inner_name,
        "params": [template.o_param, template.i_param],
        "irregular": result.is_irregular,
        "entries": {
            "interchanged": result.interchanged_entry,
            "twisted": result.twisted_entry,
        },
        "truncation": {
            "inner1": result.analysis.inner1_source(),
            "inner2": result.analysis.inner2_source(),
        },
        "source": result.source,
        "lint": result.lint_report.to_json() if result.lint_report else None,
    }
    return payload


def _transform_main(argv: list[str]) -> int:
    args = build_parser().parse_args(argv)
    if bool(args.outer) != bool(args.inner):
        print("error: --outer and --inner must be given together", file=sys.stderr)
        return EXIT_USAGE
    source = _read_input(args.input)
    if source is None:
        return EXIT_USAGE

    assume_pure = _split_names(args.assume_pure)
    try:
        if args.outer:
            result = transform_source(
                source,
                args.outer,
                args.inner,
                cutoff=args.cutoff,
                lint=not args.no_lint,
                allow_unproven=args.allow_unproven,
                assume_pure=assume_pure,
            )
        else:
            result = transform_annotated_source(
                source,
                cutoff=args.cutoff,
                lint=not args.no_lint,
                allow_unproven=args.allow_unproven,
                assume_pure=assume_pure,
            )
    except LintError as error:
        if error.report is not None:
            print(error.report.render(), file=sys.stderr)
        print(f"error: {error}", file=sys.stderr)
        return EXIT_UNSAFE
    except TransformError as error:
        return _transform_error_exit(error)

    report = result.lint_report
    if report is not None and report.diagnostics:
        # Surface non-blocking findings without polluting stdout.
        print(report.render(), file=sys.stderr)

    if args.print_analysis:
        template = result.template
        print(
            f"recognized: {template.outer_name}({template.o_param}, "
            f"{template.i_param}) / {template.inner_name}",
            file=sys.stderr,
        )
        print(
            f"truncation: inner1 = {result.analysis.inner1_source()}; "
            f"inner2 = {result.analysis.inner2_source()} "
            f"({'irregular' if result.is_irregular else 'regular'})",
            file=sys.stderr,
        )
        print(
            f"entry points: {result.interchanged_entry}, {result.twisted_entry}",
            file=sys.stderr,
        )

    if args.json:
        output_text = json.dumps(_transform_json(result), indent=2, sort_keys=True)
    else:
        output_text = result.source
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(output_text)
    else:
        sys.stdout.write(output_text)
        if args.json:
            sys.stdout.write("\n")
    return EXIT_OK


def main(argv: Optional[list[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] == "lint-spec":
        return _lint_spec_main(argv[1:])
    if argv and argv[0] == "lint-lower":
        return _lint_lower_main(argv[1:])
    if argv and argv[0] == "lint":
        return _lint_main(argv[1:])
    if argv and argv[0] == "transform":
        argv = argv[1:]
    return _transform_main(argv)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())

"""Command-line interface of the transformation tool.

Two subcommands (the bare legacy form ``python -m repro.transform
INPUT.py`` still works and means ``transform``)::

    python -m repro.transform transform INPUT.py [-o OUTPUT.py]
        [--outer NAME --inner NAME]      # or rely on annotations
        [--cutoff N]                     # Section 7.1 cutoff
        [--print-analysis]               # report template + truncation
        [--json]                         # machine-readable result
        [--no-lint]                      # skip the safety analyzer
        [--allow-unproven]               # generate despite lint errors
        [--assume-pure NAMES]            # comma-separated pure helpers

    python -m repro.transform lint INPUT.py
        [--outer NAME --inner NAME] [--json] [--assume-pure NAMES]

    python -m repro.transform lint-spec
        [--benchmark NAME]               # default: every built-in spec
        [--scale S] [--json]

    python -m repro.transform lint-lower
        [--benchmark NAME]               # default: every built-in spec
        [--scale S] [--json]

    python -m repro.transform lint-locality
        [--benchmark NAME]               # default: every built-in spec
        [--scale S]                      # default 1.0 (footprints scale)
        [--l1 SIZE --l2 SIZE --l3 SIZE]  # e.g. 48K, 1M (else paper Xeon)
        [--probe-host]                   # sysfs-probed cache model
        [--json]

    python -m repro.transform lint-all
        [--benchmark NAME] [--scale S] [--locality-scale S]
        [--examples DIR] [--json]

``lint-spec`` runs the backend-conformance analyzer
(:mod:`repro.transform.lint.backend`, ``TW1xx``) over the built-in
benchmark specs and reports one verdict per spec.  ``lint-lower`` runs
the lowerability and static-independence passes
(:mod:`repro.transform.lint.lower`, ``TW2xx``) over the same specs and
reports two verdicts per spec.  ``lint-locality`` runs the locality
cost-model analyzer (:mod:`repro.transform.lint.locality`, ``TW30x``)
over the same specs plus the GramTable fixture and reports one
profitability verdict per transformation per spec.  ``lint-all`` runs
every analyzer in one invocation — TW0xx over the annotated example
sources, TW1xx/TW2xx/TW30x over the built-in specs — and merges the
results into one report (one JSON object with ``--json``), exiting
with the most severe code of any section (precedence 4 > 3 > 1 > 5).

Exit codes are stable and distinct per failure class:

==  ============================================================
0   success (for ``lint``: statically safe; for ``lint-spec``:
    every spec proven batch-safe/soa-safe; for ``lint-lower``:
    every spec lowerable *and* statically independent; for
    ``lint-locality``: every transformation verdict decided)
1   template violation (the Figure 2 sanity check failed)
2   usage or I/O error — including an analyzer crash, which
    ``--json`` wraps as a schema-v2 ``analyzer-error`` object
    instead of a traceback
3   input source does not parse
4   lint verdict *unsafe* (refuted; ``transform`` refused codegen;
    for ``lint-lower``: *not-lowerable* or *dependent*)
5   lint verdict *needs-dynamic-check* (for ``lint-lower``:
    *needs-runtime-check* on either dimension; for
    ``lint-locality``: any *unknown* profitability verdict)
==  ============================================================
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional

from repro.errors import LintError, TransformError
from repro.transform.lint import Verdict, lint_source
from repro.transform.tool import (
    TransformResult,
    transform_annotated_source,
    transform_source,
)

EXIT_OK = 0
EXIT_TEMPLATE_VIOLATION = 1
EXIT_USAGE = 2
EXIT_PARSE_ERROR = 3
EXIT_UNSAFE = 4
EXIT_NEEDS_DYNAMIC_CHECK = 5


def _split_names(text: Optional[str]) -> tuple[str, ...]:
    if not text:
        return ()
    return tuple(name.strip() for name in text.split(",") if name.strip())


def _add_common_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("input", help="Python source file")
    parser.add_argument("--outer", help="outer recursive function name")
    parser.add_argument("--inner", help="inner recursive function name")
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit a machine-readable JSON result on stdout",
    )
    parser.add_argument(
        "--assume-pure",
        metavar="NAMES",
        help="comma-separated helper names the analyzer may treat as "
        "read-only (adds to in-source '# lint: assume-pure:' pragmas)",
    )


def build_parser() -> argparse.ArgumentParser:
    """The ``transform`` subcommand's argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.transform",
        description="Synthesize interchanged and twisted versions of an "
        "annotated nested recursive pair (ASPLOS'17 recursion twisting).",
    )
    _add_common_arguments(parser)
    parser.add_argument(
        "-o",
        "--output",
        help="write the generated module here (default: stdout)",
    )
    parser.add_argument(
        "--cutoff",
        type=int,
        default=None,
        help="Section 7.1 cutoff: twist only while the inner tree has "
        "more than CUTOFF nodes (default: parameterless)",
    )
    parser.add_argument(
        "--print-analysis",
        action="store_true",
        help="print the recognized template and truncation analysis "
        "to stderr",
    )
    parser.add_argument(
        "--no-lint",
        action="store_true",
        help="skip the static schedule-safety analyzer entirely",
    )
    parser.add_argument(
        "--allow-unproven",
        action="store_true",
        help="generate code even when the analyzer refutes safety "
        "(findings are still reported on stderr)",
    )
    return parser


def build_lint_parser() -> argparse.ArgumentParser:
    """The ``lint`` subcommand's argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.transform lint",
        description="Statically analyze an annotated nested recursive "
        "pair for schedule safety (footprints, purity, task-parallel "
        "races) and report TW0xx diagnostics with a verdict.",
    )
    _add_common_arguments(parser)
    return parser


def build_lint_spec_parser() -> argparse.ArgumentParser:
    """The ``lint-spec`` subcommand's argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.transform lint-spec",
        description="Run the backend-conformance analyzer (TW1xx) over "
        "the built-in benchmark specs: prove the vectorized "
        "work_batch/work_batch_soa/truncate_inner2_batch kernels "
        "equivalent to their scalar counterparts, or say exactly what "
        "could not be proven.",
    )
    parser.add_argument(
        "--benchmark",
        help="restrict to one benchmark name (default: all built-ins)",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=0.05,
        help="workload scale used to build the specs (default: 0.05 — "
        "the analysis is static, so small is fine)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit one machine-readable JSON object on stdout",
    )
    return parser


def _analyzer_error_payload(error: BaseException) -> dict:
    """Schema-v2 JSON object standing in for a crashed analyzer run.

    ``--json`` consumers must always receive valid JSON: when the
    analyzer itself raises (a malformed spec, an analyzer bug), the
    traceback goes to stderr and stdout carries this wrapper instead.
    """
    return {
        "schema_version": 2,
        "kind": "analyzer-error",
        "error": {
            "type": type(error).__name__,
            "message": str(error),
        },
        "diagnostics": [],
        "counts": {"errors": 0, "warnings": 0, "suppressed": 0},
    }


def _emit_analyzer_error(error: BaseException, as_json: bool) -> int:
    import traceback

    traceback.print_exc(file=sys.stderr)
    if as_json:
        print(json.dumps(_analyzer_error_payload(error), indent=2, sort_keys=True))
    else:
        print(
            f"error: analyzer failed: {type(error).__name__}: {error}",
            file=sys.stderr,
        )
    return EXIT_USAGE


def _select_cases(benchmark: Optional[str], scale: float):
    """Built-in benchmark cases, optionally restricted to one name."""
    from repro.bench.workloads import wallclock_cases

    cases = wallclock_cases(scale)
    if benchmark:
        cases = [case for case in cases if case.name == benchmark]
        if not cases:
            print(f"error: unknown benchmark {benchmark!r}", file=sys.stderr)
            return None
    return cases


def _lint_spec_main(argv: list[str]) -> int:
    args = build_lint_spec_parser().parse_args(argv)
    from repro.transform.lint import SpecVerdict, lint_spec

    cases = _select_cases(args.benchmark, args.scale)
    if cases is None:
        return EXIT_USAGE

    try:
        reports = [lint_spec(case.make_spec()) for case in cases]
    except Exception as error:
        return _emit_analyzer_error(error, args.json)
    if args.json:
        from repro.transform.lint.backend import SCHEMA_VERSION

        payload = {
            "schema_version": SCHEMA_VERSION,
            "kind": "spec-conformance-suite",
            "specs": [report.to_json() for report in reports],
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        for report in reports:
            print(report.render())

    verdicts = {report.verdict for report in reports}
    if SpecVerdict.UNSAFE in verdicts:
        return EXIT_UNSAFE
    if SpecVerdict.NEEDS_DYNAMIC_CHECK in verdicts:
        return EXIT_NEEDS_DYNAMIC_CHECK
    return EXIT_OK


def build_lint_lower_parser() -> argparse.ArgumentParser:
    """The ``lint-lower`` subcommand's argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.transform lint-lower",
        description="Run the lowerability and static-independence "
        "passes (TW2xx) over the built-in benchmark specs: decide "
        "whether each spec's SoA kernel could run on a fused/compiled "
        "backend, and whether outer tasks are provably independent "
        "without a dynamic warm-up probe.",
    )
    parser.add_argument(
        "--benchmark",
        help="restrict to one benchmark name (default: all built-ins)",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=0.05,
        help="workload scale used to build the specs (default: 0.05 — "
        "the analysis reads code plus an O(n) payload scan, so small "
        "is fine)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit one machine-readable JSON object on stdout",
    )
    return parser


def _lint_lower_main(argv: list[str]) -> int:
    args = build_lint_lower_parser().parse_args(argv)
    from repro.transform.lint.lower import (
        SCHEMA_VERSION,
        IndependenceVerdict,
        LowerVerdict,
        lint_lower,
    )

    cases = _select_cases(args.benchmark, args.scale)
    if cases is None:
        return EXIT_USAGE

    try:
        reports = [lint_lower(case.make_spec()) for case in cases]
    except Exception as error:
        return _emit_analyzer_error(error, args.json)
    if args.json:
        payload = {
            "schema_version": SCHEMA_VERSION,
            "kind": "lowerability-suite",
            "specs": [report.to_json() for report in reports],
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        for report in reports:
            print(report.render())

    lower_verdicts = {report.lower for report in reports}
    independence_verdicts = {report.independence for report in reports}
    if (
        LowerVerdict.NOT_LOWERABLE in lower_verdicts
        or IndependenceVerdict.DEPENDENT in independence_verdicts
    ):
        return EXIT_UNSAFE
    if (
        LowerVerdict.NEEDS_RUNTIME_CHECK in lower_verdicts
        or IndependenceVerdict.NEEDS_RUNTIME_CHECK in independence_verdicts
    ):
        return EXIT_NEEDS_DYNAMIC_CHECK
    return EXIT_OK


def build_lint_locality_parser() -> argparse.ArgumentParser:
    """The ``lint-locality`` subcommand's argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.transform lint-locality",
        description="Run the locality cost-model analyzer (TW30x) over "
        "the built-in benchmark specs: infer each spec's inner working "
        "set and outer-point reuse, and predict per transformation "
        "(interchange, twist, layout:veb, layout:bfs) whether it pays "
        "off against a cache model.",
    )
    parser.add_argument(
        "--benchmark",
        help="restrict to one benchmark name (default: all built-ins "
        "plus the GT fixture)",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="workload scale used to build the specs (default: 1.0 — "
        "footprints depend on the live tree sizes, so verdicts are "
        "pinned at the benchmarks' paper-shaped defaults)",
    )
    parser.add_argument(
        "--l1",
        metavar="SIZE",
        help="override the L1 capacity (e.g. 48K; implies an explicit "
        "cache model seeded from the paper's Xeon)",
    )
    parser.add_argument(
        "--l2", metavar="SIZE", help="override the L2 capacity (e.g. 1M)"
    )
    parser.add_argument(
        "--l3", metavar="SIZE", help="override the L3 capacity (e.g. 32M)"
    )
    parser.add_argument(
        "--probe-host",
        action="store_true",
        help="judge against the host's sysfs-probed cache hierarchy "
        "instead of the paper's Xeon (verdicts become host-dependent)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit one machine-readable JSON object on stdout",
    )
    return parser


def _cache_model_from_args(args) -> "object | None":
    """Resolve the CLI cache-model flags, or print an error and None."""
    from repro.errors import MemorySimError
    from repro.memory import CacheModel, parse_cache_size

    base = (
        CacheModel.probe_host()
        if getattr(args, "probe_host", False)
        else CacheModel.paper_default()
    )
    overrides = {
        level: text
        for level, text in (
            ("l1_bytes", args.l1),
            ("l2_bytes", args.l2),
            ("l3_bytes", args.l3),
        )
        if text
    }
    if not overrides:
        return base
    try:
        sizes = {
            level: parse_cache_size(text) for level, text in overrides.items()
        }
        return CacheModel(
            l1_bytes=sizes.get("l1_bytes", base.l1_bytes),
            l2_bytes=sizes.get("l2_bytes", base.l2_bytes),
            l3_bytes=sizes.get("l3_bytes", base.l3_bytes),
            line_bytes=base.line_bytes,
            source="explicit",
        )
    except MemorySimError as error:
        print(f"error: bad cache model: {error}", file=sys.stderr)
        return None


def _locality_cases(benchmark: Optional[str], scale: float):
    """(name, spec factory) pairs for the locality suite.

    The wall-clock benchmark roster plus the GramTable fixture — GT is
    not a wall-clock case (it exists to widen the compiled backend's
    eligibility surface), but its locality profile is pinned alongside
    the others, so the suite carries it too.
    """
    from repro.bench.workloads import wallclock_cases
    from repro.kernels.gram import GramTable

    gram_side = max(2, int(1024 * scale))
    cases = [(case.name, case.make_spec) for case in wallclock_cases(scale)]
    cases.append(("GT", lambda: GramTable(gram_side, gram_side).make_spec()))
    if benchmark:
        cases = [pair for pair in cases if pair[0] == benchmark]
        if not cases:
            print(f"error: unknown benchmark {benchmark!r}", file=sys.stderr)
            return None
    return cases


def _locality_reports(benchmark: Optional[str], scale: float, model):
    """Run the TW30x pass over the suite; (reports, None) or (None, exit)."""
    from repro.transform.lint.locality import lint_locality

    cases = _locality_cases(benchmark, scale)
    if cases is None:
        return None, EXIT_USAGE
    reports = [
        lint_locality(make_spec(), cache_model=model)
        for _name, make_spec in cases
    ]
    return reports, None


def _locality_exit(reports) -> int:
    from repro.transform.lint.locality import LocalityVerdict

    if any(
        LocalityVerdict.UNKNOWN in report.verdicts.values()
        for report in reports
    ):
        return EXIT_NEEDS_DYNAMIC_CHECK
    return EXIT_OK


def _lint_locality_main(argv: list[str]) -> int:
    args = build_lint_locality_parser().parse_args(argv)
    model = _cache_model_from_args(args)
    if model is None:
        return EXIT_USAGE

    try:
        reports, error_exit = _locality_reports(args.benchmark, args.scale, model)
    except Exception as error:
        return _emit_analyzer_error(error, args.json)
    if reports is None:
        return error_exit
    exit_code = _locality_exit(reports)
    if args.json:
        from repro.transform.lint.locality import SCHEMA_VERSION

        payload = {
            "schema_version": SCHEMA_VERSION,
            "kind": "locality-suite",
            "exit_code": exit_code,
            "cache_model": model.to_json(),
            "specs": [report.to_json() for report in reports],
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        for report in reports:
            print(report.render())
    return exit_code


def build_lint_all_parser() -> argparse.ArgumentParser:
    """The ``lint-all`` subcommand's argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.transform lint-all",
        description="Run every static analyzer in one invocation: "
        "TW0xx schedule safety over the annotated example sources, "
        "and TW1xx conformance, TW2xx lowerability/independence, and "
        "TW30x locality profitability over the built-in benchmark "
        "specs.  One merged report; the exit code is the most severe "
        "of any section (4 > 3 > 1 > 5 > 0).",
    )
    parser.add_argument(
        "--benchmark",
        help="restrict the spec analyzers to one benchmark name",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=0.05,
        help="workload scale for the conformance/lowerability specs "
        "(default: 0.05 — those analyses are size-independent)",
    )
    parser.add_argument(
        "--locality-scale",
        type=float,
        default=1.0,
        help="workload scale for the locality specs (default: 1.0 — "
        "footprints depend on tree sizes)",
    )
    parser.add_argument(
        "--examples",
        default="examples/annotated",
        metavar="DIR",
        help="directory of annotated sources for the TW0xx pass "
        "(default: examples/annotated; skipped with a note if absent)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit one merged machine-readable JSON object on stdout",
    )
    return parser


def _merge_exits(exits) -> int:
    """Most severe exit wins: unsafe > parse > template > dynamic > ok."""
    for code in (
        EXIT_UNSAFE,
        EXIT_PARSE_ERROR,
        EXIT_TEMPLATE_VIOLATION,
        EXIT_NEEDS_DYNAMIC_CHECK,
    ):
        if code in exits:
            return code
    return EXIT_OK


def _lint_source_exit(report) -> int:
    codes = report.codes()
    if "TW001" in codes:
        return EXIT_PARSE_ERROR
    if codes & {"TW002", "TW003"}:
        return EXIT_TEMPLATE_VIOLATION
    if report.verdict is Verdict.UNSAFE:
        return EXIT_UNSAFE
    if report.verdict is Verdict.NEEDS_DYNAMIC_CHECK:
        return EXIT_NEEDS_DYNAMIC_CHECK
    return EXIT_OK


def _lint_all_main(argv: list[str]) -> int:
    import glob
    import os

    args = build_lint_all_parser().parse_args(argv)

    from repro.transform.lint import lint_spec
    from repro.transform.lint.backend import SpecVerdict
    from repro.transform.lint.lower import (
        IndependenceVerdict,
        LowerVerdict,
        lint_lower,
    )

    exits: list[int] = []
    sections: dict[str, object] = {}
    renders: list[str] = []
    notes: list[str] = []

    # TW0xx over the annotated example sources.
    source_reports = []
    if os.path.isdir(args.examples):
        for path in sorted(glob.glob(os.path.join(args.examples, "*.py"))):
            source = _read_input(path)
            if source is None:
                return EXIT_USAGE
            try:
                report = lint_source(source, None, None, filename=path)
            except Exception as error:
                return _emit_analyzer_error(error, args.json)
            source_reports.append((path, report))
            exits.append(_lint_source_exit(report))
    else:
        notes.append(f"examples directory {args.examples!r} absent; TW0xx skipped")
    sections["sources"] = [
        {"path": path, **report.to_json()} for path, report in source_reports
    ]
    renders.extend(
        f"== {path} ==\n{report.render()}" for path, report in source_reports
    )

    # TW1xx + TW2xx over the built-in specs (shared case roster).
    cases = _select_cases(args.benchmark, args.scale)
    if cases is None:
        return EXIT_USAGE
    try:
        spec_reports = [lint_spec(case.make_spec()) for case in cases]
        lower_reports = [lint_lower(case.make_spec()) for case in cases]
    except Exception as error:
        return _emit_analyzer_error(error, args.json)
    sections["conformance"] = [report.to_json() for report in spec_reports]
    sections["lowerability"] = [report.to_json() for report in lower_reports]
    renders.extend(report.render() for report in spec_reports)
    renders.extend(report.render() for report in lower_reports)

    spec_verdicts = {report.verdict for report in spec_reports}
    if SpecVerdict.UNSAFE in spec_verdicts:
        exits.append(EXIT_UNSAFE)
    elif SpecVerdict.NEEDS_DYNAMIC_CHECK in spec_verdicts:
        exits.append(EXIT_NEEDS_DYNAMIC_CHECK)
    if any(
        report.lower is LowerVerdict.NOT_LOWERABLE
        or report.independence is IndependenceVerdict.DEPENDENT
        for report in lower_reports
    ):
        exits.append(EXIT_UNSAFE)
    elif any(
        report.lower is LowerVerdict.NEEDS_RUNTIME_CHECK
        or report.independence is IndependenceVerdict.NEEDS_RUNTIME_CHECK
        for report in lower_reports
    ):
        exits.append(EXIT_NEEDS_DYNAMIC_CHECK)

    # TW30x over the built-in specs plus GT, at the locality scale.
    from repro.memory import CacheModel

    model = CacheModel.paper_default()
    try:
        locality_reports, error_exit = _locality_reports(
            args.benchmark, args.locality_scale, model
        )
    except Exception as error:
        return _emit_analyzer_error(error, args.json)
    if locality_reports is None:
        return error_exit
    sections["locality"] = [report.to_json() for report in locality_reports]
    renders.extend(report.render() for report in locality_reports)
    exits.append(_locality_exit(locality_reports))

    exit_code = _merge_exits(set(exits))
    if args.json:
        payload = {
            "schema_version": 2,
            "kind": "lint-all",
            "exit_code": exit_code,
            "notes": notes,
            "sections": sections,
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        for note in notes:
            print(f"note: {note}", file=sys.stderr)
        print("\n".join(renders))
        print(
            "lint-all: sources: {} file(s); conformance: {} spec(s); "
            "lowerability: {} spec(s); locality: {} spec(s); exit {}".format(
                len(source_reports),
                len(spec_reports),
                len(lower_reports),
                len(locality_reports),
                exit_code,
            )
        )
    return exit_code


def _read_input(path: str) -> Optional[str]:
    try:
        with open(path) as handle:
            return handle.read()
    except OSError as error:
        print(f"error: cannot read {path}: {error}", file=sys.stderr)
        return None


def _transform_error_exit(error: TransformError) -> int:
    print(f"error: {error}", file=sys.stderr)
    return EXIT_PARSE_ERROR if error.code == "TW001" else EXIT_TEMPLATE_VIOLATION


def _lint_main(argv: list[str]) -> int:
    args = build_lint_parser().parse_args(argv)
    if bool(args.outer) != bool(args.inner):
        print("error: --outer and --inner must be given together", file=sys.stderr)
        return EXIT_USAGE
    source = _read_input(args.input)
    if source is None:
        return EXIT_USAGE

    try:
        report = lint_source(
            source,
            args.outer or None,
            args.inner or None,
            assume_pure=_split_names(args.assume_pure),
            filename=args.input,
        )
    except Exception as error:
        return _emit_analyzer_error(error, args.json)
    if args.json:
        print(report.dumps())
    else:
        print(report.render())

    codes = report.codes()
    if "TW001" in codes:
        return EXIT_PARSE_ERROR
    if codes & {"TW002", "TW003"}:
        return EXIT_TEMPLATE_VIOLATION
    if report.verdict is Verdict.UNSAFE:
        return EXIT_UNSAFE
    if report.verdict is Verdict.NEEDS_DYNAMIC_CHECK:
        return EXIT_NEEDS_DYNAMIC_CHECK
    return EXIT_OK


def _transform_json(result: TransformResult) -> dict:
    template = result.template
    payload = {
        "outer": template.outer_name,
        "inner": template.inner_name,
        "params": [template.o_param, template.i_param],
        "irregular": result.is_irregular,
        "entries": {
            "interchanged": result.interchanged_entry,
            "twisted": result.twisted_entry,
        },
        "truncation": {
            "inner1": result.analysis.inner1_source(),
            "inner2": result.analysis.inner2_source(),
        },
        "source": result.source,
        "lint": result.lint_report.to_json() if result.lint_report else None,
    }
    return payload


def _transform_main(argv: list[str]) -> int:
    args = build_parser().parse_args(argv)
    if bool(args.outer) != bool(args.inner):
        print("error: --outer and --inner must be given together", file=sys.stderr)
        return EXIT_USAGE
    source = _read_input(args.input)
    if source is None:
        return EXIT_USAGE

    assume_pure = _split_names(args.assume_pure)
    try:
        if args.outer:
            result = transform_source(
                source,
                args.outer,
                args.inner,
                cutoff=args.cutoff,
                lint=not args.no_lint,
                allow_unproven=args.allow_unproven,
                assume_pure=assume_pure,
            )
        else:
            result = transform_annotated_source(
                source,
                cutoff=args.cutoff,
                lint=not args.no_lint,
                allow_unproven=args.allow_unproven,
                assume_pure=assume_pure,
            )
    except LintError as error:
        if error.report is not None:
            print(error.report.render(), file=sys.stderr)
        print(f"error: {error}", file=sys.stderr)
        return EXIT_UNSAFE
    except TransformError as error:
        return _transform_error_exit(error)

    report = result.lint_report
    if report is not None and report.diagnostics:
        # Surface non-blocking findings without polluting stdout.
        print(report.render(), file=sys.stderr)

    if args.print_analysis:
        template = result.template
        print(
            f"recognized: {template.outer_name}({template.o_param}, "
            f"{template.i_param}) / {template.inner_name}",
            file=sys.stderr,
        )
        print(
            f"truncation: inner1 = {result.analysis.inner1_source()}; "
            f"inner2 = {result.analysis.inner2_source()} "
            f"({'irregular' if result.is_irregular else 'regular'})",
            file=sys.stderr,
        )
        print(
            f"entry points: {result.interchanged_entry}, {result.twisted_entry}",
            file=sys.stderr,
        )

    if args.json:
        output_text = json.dumps(_transform_json(result), indent=2, sort_keys=True)
    else:
        output_text = result.source
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(output_text)
    else:
        sys.stdout.write(output_text)
        if args.json:
            sys.stdout.write("\n")
    return EXIT_OK


def main(argv: Optional[list[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] == "lint-spec":
        return _lint_spec_main(argv[1:])
    if argv and argv[0] == "lint-lower":
        return _lint_lower_main(argv[1:])
    if argv and argv[0] == "lint-locality":
        return _lint_locality_main(argv[1:])
    if argv and argv[0] == "lint-all":
        return _lint_all_main(argv[1:])
    if argv and argv[0] == "lint":
        return _lint_main(argv[1:])
    if argv and argv[0] == "transform":
        argv = argv[1:]
    return _transform_main(argv)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
